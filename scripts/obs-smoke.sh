#!/bin/sh
# obs-smoke boots brokerd with both listeners and a journal directory,
# drives one publish + negotiate through the v1 API, scrapes
# /v1/metrics, asserts the metric families are present, then fetches
# the negotiation's flight-recorder journal and verifies it with
# softsoa-replay — both the HTTP copy and the -journal-dir dump. A
# second identical negotiation must then replay from the solve cache
# (cache_hits_total > 0) and still emit a journal that replays
# exactly. The SLO reconciler runs on a fast sweep so the slo_*
# families and the /v1/debug/slo snapshot are asserted too. Exits
# non-zero on any miss.
set -eu

ADDR=127.0.0.1:18700
OPS=127.0.0.1:18701
WORK=$(mktemp -d)
BIN=$WORK/brokerd
REPLAY=$WORK/softsoa-replay
JOURNALS=$WORK/journals
METRICS=$(mktemp)

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK" "$METRICS"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/brokerd
go build -o "$REPLAY" ./cmd/softsoa-replay
"$BIN" -addr "$ADDR" -ops-addr "$OPS" -journal-dir "$JOURNALS" -slo-sweep-every 100ms &
PID=$!

# Wait for the health endpoint (up to ~5s).
i=0
until curl -fsS "http://$ADDR/v1/health" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: brokerd did not come up on $ADDR" >&2
        exit 1
    fi
    sleep 0.1
done

curl -fsS -X POST "http://$ADDR/v1/providers" -d \
    '<qos service="failmgmt" provider="p1" region="eu"><attribute name="fee" metric="cost" base="2" perUnit="0" resource="failures" maxUnits="10"></attribute></qos>' \
    >/dev/null
SLA=$(curl -fsS -X POST "http://$ADDR/v1/negotiations" -d \
    '<negotiate service="failmgmt" client="shop" metric="cost"><requirement metric="cost" base="0" perUnit="2" resource="failures" maxUnits="10"></requirement><lower>4</lower><upper>1</upper></negotiate>')
SLA_ID=$(printf '%s' "$SLA" | sed -n 's/.*sla id="\([^"]*\)".*/\1/p')
if [ -z "$SLA_ID" ]; then
    echo "obs-smoke: negotiation returned no SLA id" >&2
    exit 1
fi

curl -fsS "http://$ADDR/v1/metrics" >"$METRICS"
for family in broker_http_requests_total broker_negotiations_total broker_slas_active journal_events_dropped_total; do
    if ! grep -q "^$family" "$METRICS"; then
        echo "obs-smoke: family $family missing from /v1/metrics" >&2
        exit 1
    fi
done

# The SLO reconciler sweeps every 100ms: within ~3s the debug snapshot
# must report the negotiated SLA. Only then do the per-SLA slo_*
# series exist on the metrics surface.
i=0
until curl -fsS "http://$ADDR/v1/debug/slo" | grep -q "\"$SLA_ID\""; do
    i=$((i + 1))
    if [ "$i" -ge 30 ]; then
        echo "obs-smoke: /v1/debug/slo never reported $SLA_ID" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v1/metrics" >"$METRICS"
for family in slo_sweeps_total slo_slas_tracked slo_compliance slo_burn_rate \
    slo_at_risk slo_at_risk_transitions_total slo_blevel_drift; do
    if ! grep -q "^$family" "$METRICS"; then
        echo "obs-smoke: family $family missing from /v1/metrics" >&2
        exit 1
    fi
done

# The ops listener must serve the same exposition plus pprof. grep
# without -q drains the whole pipe so curl never sees a closed sink.
curl -fsS "http://$OPS/metrics" | grep '^broker_http_requests_total' >/dev/null
curl -fsS "http://$OPS/debug/pprof/cmdline" >/dev/null
curl -fsS "http://$OPS/debug/traces" | grep '"traces"' >/dev/null

# The negotiation's journal must be served as JSONL and replay exactly.
curl -fsS "http://$ADDR/v1/negotiations/$SLA_ID/journal?format=jsonl" | "$REPLAY" -
# The JSON document form must be served too.
curl -fsS "http://$ADDR/v1/negotiations/$SLA_ID/journal" | grep -q '"segments"'
# -journal-dir must have dumped the same journal; replay that copy.
if [ ! -f "$JOURNALS/$SLA_ID.jsonl" ]; then
    echo "obs-smoke: journal dir is missing $SLA_ID.jsonl" >&2
    exit 1
fi
"$REPLAY" -q "$JOURNALS/$SLA_ID.jsonl"

# A second identical negotiation replays the memoised plan. Its
# journal must still replay exactly, and the cache families must
# show up on the next scrape with at least one hit.
SLA2=$(curl -fsS -X POST "http://$ADDR/v1/negotiations" -d \
    '<negotiate service="failmgmt" client="shop" metric="cost"><requirement metric="cost" base="0" perUnit="2" resource="failures" maxUnits="10"></requirement><lower>4</lower><upper>1</upper></negotiate>')
SLA2_ID=$(printf '%s' "$SLA2" | sed -n 's/.*sla id="\([^"]*\)".*/\1/p')
if [ -z "$SLA2_ID" ] || [ "$SLA2_ID" = "$SLA_ID" ]; then
    echo "obs-smoke: repeat negotiation returned no fresh SLA id" >&2
    exit 1
fi
curl -fsS "http://$ADDR/v1/negotiations/$SLA2_ID/journal?format=jsonl" | "$REPLAY" -

curl -fsS "http://$ADDR/v1/metrics" >"$METRICS"
for family in cache_hits_total cache_misses_total cache_entries cache_warm_starts_total; do
    if ! grep -q "^$family" "$METRICS"; then
        echo "obs-smoke: family $family missing from /v1/metrics" >&2
        exit 1
    fi
done
HITS=$(awk '/^cache_hits_total\{/ { sum += $NF } END { print sum + 0 }' "$METRICS")
if [ "$HITS" -lt 1 ]; then
    echo "obs-smoke: repeat negotiation produced no cache hits (cache_hits_total = $HITS)" >&2
    exit 1
fi

# With OBS_SMOKE_ARTIFACTS set, keep the dumped journals (CI uploads
# them as build artifacts).
if [ -n "${OBS_SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$OBS_SMOKE_ARTIFACTS"
    cp "$JOURNALS"/*.jsonl "$OBS_SMOKE_ARTIFACTS"/
fi

echo "obs-smoke: ok ($(grep -c '^# TYPE' "$METRICS") metric families, journal $SLA_ID replayed)"
