#!/bin/sh
# obs-smoke boots brokerd with both listeners, drives one publish +
# negotiate through the v1 API, scrapes /v1/metrics, and asserts three
# metric families are present. Exits non-zero on any miss.
set -eu

ADDR=127.0.0.1:18700
OPS=127.0.0.1:18701
BIN=$(mktemp -d)/brokerd
METRICS=$(mktemp)

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$METRICS"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/brokerd
"$BIN" -addr "$ADDR" -ops-addr "$OPS" &
PID=$!

# Wait for the health endpoint (up to ~5s).
i=0
until curl -fsS "http://$ADDR/v1/health" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: brokerd did not come up on $ADDR" >&2
        exit 1
    fi
    sleep 0.1
done

curl -fsS -X POST "http://$ADDR/v1/providers" -d \
    '<qos service="failmgmt" provider="p1" region="eu"><attribute name="fee" metric="cost" base="2" perUnit="0" resource="failures" maxUnits="10"></attribute></qos>' \
    >/dev/null
curl -fsS -X POST "http://$ADDR/v1/negotiations" -d \
    '<negotiate service="failmgmt" client="shop" metric="cost"><requirement metric="cost" base="0" perUnit="2" resource="failures" maxUnits="10"></requirement><lower>4</lower><upper>1</upper></negotiate>' \
    >/dev/null

curl -fsS "http://$ADDR/v1/metrics" >"$METRICS"
for family in broker_http_requests_total broker_negotiations_total broker_slas_active; do
    if ! grep -q "^$family" "$METRICS"; then
        echo "obs-smoke: family $family missing from /v1/metrics" >&2
        exit 1
    fi
done

# The ops listener must serve the same exposition plus pprof. grep
# without -q drains the whole pipe so curl never sees a closed sink.
curl -fsS "http://$OPS/metrics" | grep '^broker_http_requests_total' >/dev/null
curl -fsS "http://$OPS/debug/pprof/cmdline" >/dev/null
curl -fsS "http://$OPS/debug/traces" | grep '"traces"' >/dev/null

echo "obs-smoke: ok ($(grep -c '^# TYPE' "$METRICS") metric families)"
