#!/bin/sh
# load-smoke boots brokerd with the SLO reconciler on a fast sweep and
# failover enabled, runs softsoa-load for a few seconds at modest RPS,
# and asserts the run actually exercised the broker: nonzero
# negotiations in the JSON report, every slo_* family present on
# /v1/metrics, and a /v1/debug/slo snapshot with at least one sweep.
# With LOAD_SMOKE_ARTIFACTS set the JSON report is copied there for CI
# to upload. Exits non-zero on any miss.
set -eu

ADDR=127.0.0.1:18720
WORK=$(mktemp -d)
BIN=$WORK/brokerd
LOAD=$WORK/softsoa-load
REPORT=$WORK/BENCH_load.json
METRICS=$(mktemp)

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK" "$METRICS"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/brokerd
go build -o "$LOAD" ./cmd/softsoa-load
"$BIN" -addr "$ADDR" -failover -slo-sweep-every 200ms &
PID=$!

i=0
until curl -fsS "http://$ADDR/v1/health" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "load-smoke: brokerd did not come up on $ADDR" >&2
        exit 1
    fi
    sleep 0.1
done

"$LOAD" -addr "http://$ADDR" -duration 5s -rps 40 -arrivals poisson -seed 7 \
    -out "$REPORT" >/dev/null

# The report must show completed negotiations and per-route quantiles.
for want in '"negotiate"' '"observe"' '"renegotiate"' '"p999_ms"'; do
    if ! grep -q "$want" "$REPORT"; then
        echo "load-smoke: report is missing $want" >&2
        cat "$REPORT" >&2
        exit 1
    fi
done
NEG=$(sed -n '/"negotiate"/,/}/s/.*"sent": \([0-9]*\).*/\1/p' "$REPORT" | head -1)
if [ -z "$NEG" ] || [ "$NEG" -lt 1 ]; then
    echo "load-smoke: no negotiations completed (sent = ${NEG:-0})" >&2
    cat "$REPORT" >&2
    exit 1
fi

# Every SLO family must be live on the public metrics surface.
curl -fsS "http://$ADDR/v1/metrics" >"$METRICS"
for family in slo_sweeps_total slo_slas_tracked slo_compliance slo_burn_rate \
    slo_at_risk slo_at_risk_transitions_total slo_blevel_drift; do
    if ! grep -q "^$family" "$METRICS"; then
        echo "load-smoke: family $family missing from /v1/metrics" >&2
        exit 1
    fi
done

# The reconciler must have swept the standing SLAs at least once.
SWEEPS=$(awk '/^slo_sweeps_total / { print $NF }' "$METRICS")
if [ -z "$SWEEPS" ] || [ "$SWEEPS" -lt 1 ]; then
    echo "load-smoke: slo_sweeps_total = ${SWEEPS:-0}, want >= 1" >&2
    exit 1
fi
curl -fsS "http://$ADDR/v1/debug/slo" | grep -q '"sweeps"'

if [ -n "${LOAD_SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$LOAD_SMOKE_ARTIFACTS"
    cp "$REPORT" "$LOAD_SMOKE_ARTIFACTS"/
fi

echo "load-smoke: ok ($NEG negotiations, $SWEEPS sweeps)"
