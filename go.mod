module softsoa

go 1.22
