.PHONY: all build test race vet lint lint-sarif lint-debt fuzz cover bench bench-go bench-cache bench-par obs-smoke load-smoke replay-check crash-recovery clean

all: build vet lint test

build:
	go build ./...

# softsoa-lint is the repo's own stdlib-only analyzer suite
# (internal/analysis): six intraprocedural analyzers (determinism,
# ctxfirst, lockcheck, errcheck, gohygiene, writecheck) plus four
# interprocedural ones over the module call graph (atomiccheck,
# lockorder, leakcheck, hotpath). Exits 0 clean, 1 with findings,
# 2 on usage/load errors.
lint:
	go run ./cmd/softsoa-lint ./...

# Same findings as a SARIF 2.1.0 log, for code-scanning upload.
lint-sarif:
	go run ./cmd/softsoa-lint -sarif lint.sarif ./...

# Suppression-debt report: every //lint:ignore with its age; stale
# directives (no longer firing) are marked ! and should be deleted.
lint-debt:
	go run ./cmd/softsoa-lint -debt ./...

# Short fuzz pass over the sccp parser/compiler, mirroring CI.
fuzz:
	go test ./internal/sccp -run '^$$' -fuzz FuzzParseAndCompile -fuzztime 10s

test:
	go test ./...

# The dependability layer's concurrency guarantees (per-session
# critical sections, breaker board, retry loop) are only meaningfully
# tested under the race detector.
race:
	go test -race ./...

vet:
	go vet ./...

cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -1

# Reproducible benchmark report: E-series anchors, the indexed-eval
# ablation, and the workload grid sequential vs parallel. Writes
# BENCH_pr3.json (no timestamps, so reruns diff cleanly).
bench:
	go run ./cmd/softsoa-bench -out BENCH_pr3.json

# One-shot smoke pass over the go-test E-series benchmarks.
bench-go:
	go test -bench . -benchtime 1x -run '^$$' .

# Solve-cache report: the CI-sized grid plus the cache group — cold vs
# memo-hit fixpoints and solves, warm-started perturbed re-solves, and
# negotiation/renegotiation plan replay. Every hot row asserts result
# equality with its cold partner before timing and records the
# speedup; ratios are machine-dependent snapshots.
bench-cache:
	go run ./cmd/softsoa-bench -short -cache -out BENCH_pr8.json

# Work-stealing scaling table: every workload-grid instance solved at
# 1/2/4/8 workers, full result (blevel, frontier, assignments)
# asserted identical to the 1-worker reference before timing; rows
# carry speedup and the steal/split counters. Timestamp-free like the
# other reports; the speedups are whatever the current machine's core
# count yields.
bench-par:
	go run ./cmd/softsoa-bench -scaling 1,2,4,8 -out BENCH_pr9.json

# End-to-end observability smoke: boot brokerd with the ops listener
# and a journal directory, scrape /v1/metrics, fetch the negotiation's
# flight-recorder journal, and replay it with softsoa-replay.
obs-smoke:
	./scripts/obs-smoke.sh

# Standing-load smoke: boot brokerd with the SLO reconciler on a fast
# sweep, drive it with softsoa-load for ~5s (open-loop Poisson
# arrivals), and assert nonzero negotiations, every slo_* metric
# family, and a live /v1/debug/slo snapshot.
load-smoke:
	./scripts/load-smoke.sh

# E21 durability check: SIGKILL a brokerd mid-traffic (plus a torn
# WAL frame) and a SIGTERM drain, then compare the recovered state
# byte-exact against a never-crashed control. CRASH_DIFF_DIR collects
# a diff artifact on failure.
crash-recovery:
	go test -race -run 'TestBrokerdCrashRecovery|TestBrokerdGracefulDrain' -v .

# Replay every golden journal fixture against the current engine; any
# semantic drift in the nmsccp transition system shows up as a
# rule-by-rule mismatch.
replay-check:
	@for j in testdata/journals/*.jsonl; do \
		go run ./cmd/softsoa-replay $$j || exit 1; \
	done

clean:
	rm -f coverage.out
