.PHONY: all build test race vet cover bench clean

all: build vet test

build:
	go build ./...

test:
	go test ./...

# The dependability layer's concurrency guarantees (per-session
# critical sections, breaker board, retry loop) are only meaningfully
# tested under the race detector.
race:
	go test -race ./...

vet:
	go vet ./...

cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -1

bench:
	go test -bench . -benchtime 1x -run '^$$' .

clean:
	rm -f coverage.out
