.PHONY: all build test race vet lint fuzz cover bench bench-go obs-smoke clean

all: build vet lint test

build:
	go build ./...

# softsoa-lint is the repo's own stdlib-only analyzer suite
# (internal/analysis): determinism of the pure layers, context-first
# I/O, lock discipline, error discipline, goroutine hygiene.
lint:
	go run ./cmd/softsoa-lint ./...

# Short fuzz pass over the sccp parser/compiler, mirroring CI.
fuzz:
	go test ./internal/sccp -run '^$$' -fuzz FuzzParseAndCompile -fuzztime 10s

test:
	go test ./...

# The dependability layer's concurrency guarantees (per-session
# critical sections, breaker board, retry loop) are only meaningfully
# tested under the race detector.
race:
	go test -race ./...

vet:
	go vet ./...

cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -1

# Reproducible benchmark report: E-series anchors, the indexed-eval
# ablation, and the workload grid sequential vs parallel. Writes
# BENCH_pr3.json (no timestamps, so reruns diff cleanly).
bench:
	go run ./cmd/softsoa-bench -out BENCH_pr3.json

# One-shot smoke pass over the go-test E-series benchmarks.
bench-go:
	go test -bench . -benchtime 1x -run '^$$' .

# End-to-end observability smoke: boot brokerd with the ops listener,
# scrape /v1/metrics, and check three metric families are served.
obs-smoke:
	./scripts/obs-smoke.sh

clean:
	rm -f coverage.out
