// Benchmarks regenerating every experiment of EXPERIMENTS.md. Each
// BenchmarkEn corresponds to experiment En; run all with
//
//	go test -bench=. -benchmem
package softsoa_test

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"runtime"
	"testing"

	"softsoa/internal/broker"
	"softsoa/internal/coalition"
	"softsoa/internal/core"
	"softsoa/internal/integrity"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
	"softsoa/internal/trust"
	"softsoa/internal/workload"
)

func fig1Problem() *core.Problem[float64] {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))
	return core.NewProblem(s, x).Add(
		core.Unary(s, x, map[string]float64{"a": 1, "b": 9}),
		core.Binary(s, x, y, map[[2]string]float64{
			{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
		}),
		core.Unary(s, y, map[string]float64{"a": 5, "b": 5}),
	)
}

// BenchmarkE1Fig1WeightedCSP solves the Fig. 1 worked example.
func BenchmarkE1Fig1WeightedCSP(b *testing.B) {
	p := fig1Problem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := solver.BranchAndBound(p)
		if res.Blevel != 7 {
			b.Fatalf("blevel = %v", res.Blevel)
		}
	}
}

// BenchmarkE2Fig5FuzzyAgreement rebuilds and combines the Fig. 5
// provider/client constraints. The store construction inside the loop
// is the measured operation — the experiment times an agreement round
// from empty store to blevel, not just the two Tells.
func BenchmarkE2Fig5FuzzyAgreement(b *testing.B) {
	s := core.NewSpace[float64](semiring.Fuzzy{})
	x := s.AddVariable("x", core.IntDomain(1, 9))
	cp := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return math.Max(0, math.Min(1, (a.Num(x)-1)/8))
	})
	cc := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return math.Max(0, math.Min(1, (9-a.Num(x))/8))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := core.NewStore(s)
		st.Tell(cp)
		st.Tell(cc)
		if st.Blevel() != 0.5 {
			b.Fatal("agreement drifted")
		}
	}
}

const example1Src = `
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.
p1() :: tell(x + 5) -> tell(spv2 == 1) -> ask(spv1 == 1)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) -> ask(spv2 == 1)->[4,1] success.
main :: p1() || p2().
`

const example2Src = `
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.
p1() :: tell(x + 5) -> tell(spv2 == 1) ->
        ask(spv1 == 1)->[10,2] retract(x + 3)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) -> ask(spv2 == 1)->[4,1] success.
main :: p1() || p2().
`

const example3Src = `
semiring weighted.
var x in 0..10.
var y in 0..10.
main :: tell(x + 3) -> update{x}(y + 1) -> success.
`

func benchProgram(b *testing.B, src string, want sccp.Status) {
	b.Helper()
	compiled, err := sccp.ParseAndCompile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := compiled.NewMachine()
		status, err := m.Run(300)
		if err != nil {
			b.Fatal(err)
		}
		if status != want {
			b.Fatalf("status = %v, want %v", status, want)
		}
	}
}

// BenchmarkE3Ex1TellNegotiation runs Example 1 (a failed SLA
// negotiation) end to end through the nmsccp machine.
func BenchmarkE3Ex1TellNegotiation(b *testing.B) {
	benchProgram(b, example1Src, sccp.Stuck)
}

// BenchmarkE4Ex2Retract runs Example 2 (retract relaxes the store).
func BenchmarkE4Ex2Retract(b *testing.B) {
	benchProgram(b, example2Src, sccp.Succeeded)
}

// BenchmarkE5Ex3Update runs Example 3 (update refreshes a variable).
func BenchmarkE5Ex3Update(b *testing.B) {
	benchProgram(b, example3Src, sccp.Succeeded)
}

// BenchmarkE6Fig8CrispIntegrity checks both Fig. 8 refinements.
func BenchmarkE6Fig8CrispIntegrity(b *testing.B) {
	s := integrity.NewCrispPhotoSpace()
	sys := integrity.CrispPhotoSystem(s)
	broken := sys.Clone()
	if err := broken.FailModule("REDF"); err != nil {
		b.Fatal(err)
	}
	mem := integrity.CrispMemoryRequirement(s)
	iface := []core.Variable{integrity.PhotoVars.Incomp, integrity.PhotoVars.Outcomp}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sys.Upholds(mem, iface...) || broken.Upholds(mem, iface...) {
			b.Fatal("integrity verdicts drifted")
		}
	}
}

// BenchmarkE7Fig8QuantIntegrity checks the quantitative analysis.
func BenchmarkE7Fig8QuantIntegrity(b *testing.B) {
	s := integrity.NewQuantPhotoSpace()
	sys := integrity.QuantPhotoSystem(s)
	req := integrity.MemoryProbRequirement(s, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sys.MeetsMin(req, integrity.PhotoVars.Outcomp, integrity.PhotoVars.Incomp) {
			b.Fatal("requirement verdict drifted")
		}
	}
}

// BenchmarkE8Fig9Coalitions forms the optimal stable 2-partition of
// the Fig. 9 network.
func BenchmarkE8Fig9Coalitions(b *testing.B) {
	net := coalition.Fig9Network()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := coalition.Exact(net, trust.Min, coalition.WithMaxCoalitions(2))
		if !res.Stable || len(res.Partition) != 2 {
			b.Fatal("partition drifted")
		}
	}
}

// BenchmarkE9Fig6BrokerNegotiation measures a full negotiate round
// trip against an in-process HTTP broker.
func BenchmarkE9Fig6BrokerNegotiation(b *testing.B) {
	srv := broker.NewServer(broker.DefaultLinkPenalty)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := broker.NewClient(ts.URL, ts.Client())
	err := client.Publish(context.Background(), &soa.Document{
		Service: "failmgmt", Provider: "p1", Region: "eu",
		Attributes: []soa.Attribute{{
			Name: "hours", Metric: soa.MetricCost,
			Base: 2, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	lower, upper := 4.0, 1.0
	req := broker.NegotiateRequest{
		Service: "failmgmt", Client: "bench", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: &lower, Upper: &upper,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sla, err := client.Negotiate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if sla.AgreedLevel != 2 {
			b.Fatalf("agreed level = %v", sla.AgreedLevel)
		}
	}
}

// BenchmarkE10SolverScaling sweeps problem size × solver, including
// the pruning ablation.
func BenchmarkE10SolverScaling(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: n, DomainSize: 3, Density: 0.5, Tightness: 0.9, Seed: int64(n),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/exhaustive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.Exhaustive(p)
			}
		})
		b.Run(fmt.Sprintf("n=%d/bb", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solver.BranchAndBound(p)
			}
		})
		b.Run(fmt.Sprintf("n=%d/bb-par", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solver.BranchAndBound(p, solver.WithParallel(benchWorkers()))
			}
		})
		b.Run(fmt.Sprintf("n=%d/bb-lookahead", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.BranchAndBound(p, solver.WithLookahead())
			}
		})
		b.Run(fmt.Sprintf("n=%d/bb-noprune", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.BranchAndBound(p, solver.WithoutPruning())
			}
		})
		b.Run(fmt.Sprintf("n=%d/ve", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.Eliminate(p)
			}
		})
	}
	chain, err := workload.ChainWeightedSCSP(16, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("chain-n=16/ve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.Eliminate(chain)
		}
	})
}

// BenchmarkE11CompositionOptVsGreedy sweeps pipeline length ×
// algorithm.
func BenchmarkE11CompositionOptVsGreedy(b *testing.B) {
	for _, stages := range []int{2, 4, 6} {
		reg := soa.NewRegistry()
		params := workload.CatalogParams{
			Stages: stages, ProvidersPerStage: 6, Regions: 3, Seed: int64(stages) * 11,
		}
		if err := workload.CostCatalog(reg, params); err != nil {
			b.Fatal(err)
		}
		comp := broker.NewComposer(reg, broker.LinkPenalty{Cost: 8, Factor: 0.9})
		req := broker.PipelineRequest{
			Client: "bench", Stages: params.StageNames(), Metric: soa.MetricCost,
		}
		b.Run(fmt.Sprintf("k=%d/optimal", stages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := comp.Compose(req); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/greedy", stages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := comp.ComposeGreedy(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12CoalitionEncodings compares the direct partition solver
// with the §6.1 SCSP encoding.
func BenchmarkE12CoalitionEncodings(b *testing.B) {
	for _, n := range []int{3, 4} {
		net := trust.Random(n, 2, int64(n)*7)
		b.Run(fmt.Sprintf("n=%d/direct", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coalition.Exact(net, trust.Min, coalition.WithMaxCoalitions(2))
			}
		})
		b.Run(fmt.Sprintf("n=%d/scsp", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coalition.SolveViaSCSP(net, trust.Min, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13SemiringOps measures the raw algebra.
func BenchmarkE13SemiringOps(b *testing.B) {
	w, f, pr := semiring.Weighted{}, semiring.Fuzzy{}, semiring.Probabilistic{}
	set := semiring.NewSet("a", "b", "c", "d", "e", "f", "g", "h")
	prod := semiring.NewProduct[float64, float64](w, pr)
	var sink float64
	var bsink semiring.Bitset
	var psink semiring.Pair[float64, float64]
	b.Run("weighted/times", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = w.Times(float64(i&7), 3)
		}
	})
	b.Run("weighted/div", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = w.Div(float64(i&7), 3)
		}
	})
	b.Run("fuzzy/times", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = f.Times(float64(i&7)/8, 0.5)
		}
	})
	b.Run("probabilistic/times", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = pr.Times(float64(i&7)/8, 0.5)
		}
	})
	b.Run("set/times", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bsink = set.Times(semiring.Bitset(i), semiring.Bitset(i>>1))
		}
	})
	b.Run("product/times", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			psink = prod.Times(semiring.P(float64(i&7), 0.5), semiring.P(3.0, 0.5))
		}
	})
	_, _, _ = sink, bsink, psink
}

// BenchmarkE14InterpreterThroughput measures nmsccp transitions per
// second on a tell/retract ping-pong. The machine built per iteration
// is intentional: a run consumes the machine, so construction belongs
// to the measured cost of executing 100 transitions.
func BenchmarkE14InterpreterThroughput(b *testing.B) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 10))
	c := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return a.Num(x) })
	defs := sccp.Defs[float64]{}
	defs.Declare("pingpong", 0, func([]core.Variable) sccp.Agent[float64] {
		return sccp.Tell[float64]{C: c, Next: sccp.Retract[float64]{C: c, Next: sccp.Call[float64]{Name: "pingpong"}}}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sccp.NewMachine[float64](s, sccp.Call[float64]{Name: "pingpong"}, sccp.WithDefs[float64](defs))
		if _, err := m.Run(100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15Propagation measures propagation cost and its effect on
// branch-and-bound search.
func BenchmarkE15Propagation(b *testing.B) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 9, DomainSize: 3, Density: 0.7, Tightness: 1, Seed: 27,
	})
	if err != nil {
		b.Fatal(err)
	}
	q, _, _ := solver.Propagate(p, 0)
	b.Run("propagate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.Propagate(p, 0)
		}
	})
	b.Run("bb-original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.BranchAndBound(p)
		}
	})
	b.Run("bb-propagated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.BranchAndBound(q)
		}
	})
	b.Run("bb-with-propagation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.BranchAndBound(p, solver.WithPropagation(0))
		}
	})
}

// benchWorkers picks the worker count for parallel solver benchmarks:
// every hardware thread, but at least two so the parallel code path is
// exercised even on a single-core runner.
func benchWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 2 {
		return n
	}
	return 2
}

// BenchmarkE16CoalitionAnneal compares exact and annealed coalition
// formation.
func BenchmarkE16CoalitionAnneal(b *testing.B) {
	for _, n := range []int{8, 10} {
		net := trust.Random(n, 2, int64(n))
		b.Run(fmt.Sprintf("n=%d/exact", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coalition.Exact(net, trust.Min, coalition.WithMaxCoalitions(2))
			}
		})
		b.Run(fmt.Sprintf("n=%d/anneal", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coalition.Anneal(net, trust.Min,
					coalition.AnnealParams{Seed: int64(n)}, coalition.WithMaxCoalitions(2))
			}
		})
	}
	big := trust.Random(18, 3, 99)
	b.Run("n=18/anneal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coalition.Anneal(big, trust.Min,
				coalition.AnnealParams{Seed: 99, Steps: 4000}, coalition.WithMaxCoalitions(3))
		}
	})
}

// BenchmarkE17MultiObjective measures Pareto-frontier composition
// over the cost × reliability product semiring.
func BenchmarkE17MultiObjective(b *testing.B) {
	reg := soa.NewRegistry()
	for s := 0; s < 3; s++ {
		for j := 0; j < 5; j++ {
			cost := float64(2 + (s*5+j)%16)
			rel := 75 + cost
			doc := &soa.Document{
				Service:  fmt.Sprintf("stage%d", s),
				Provider: fmt.Sprintf("prov-%d-%d", s, j),
				Region:   fmt.Sprintf("region%d", (s+j)%2),
				Attributes: []soa.Attribute{
					{Name: "fee", Metric: soa.MetricCost, Base: cost, Resource: "load", MaxUnits: 2},
					{Name: "uptime", Metric: soa.MetricReliability, Base: rel, Resource: "load", MaxUnits: 2},
				},
			}
			if err := reg.Publish(doc); err != nil {
				b.Fatal(err)
			}
		}
	}
	comp := broker.NewComposer(reg, broker.LinkPenalty{Cost: 6, Factor: 0.92})
	req := broker.PipelineRequest{
		Client: "bench", Stages: []string{"stage0", "stage1", "stage2"}, Metric: soa.MetricCost,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frontier, err := comp.ComposeMultiObjective(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(frontier) == 0 {
			b.Fatal("empty frontier")
		}
	}
}
