package analysis

import (
	"strings"
	"testing"
)

func TestLockOrder(t *testing.T) {
	runCases(t, LockOrder, []analyzerCase{
		{
			name: "consistent order across functions is clean",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
var a, b sync.Mutex
func first() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}
func second() {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	defer b.Unlock()
}
`,
			want: nil,
		},
		{
			name: "direct AB/BA inversion",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
var a, b sync.Mutex
func ab() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}
func ba() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
`,
			want: []string{"[lockorder] lock order cycle"},
		},
		{
			name: "direct self re-acquisition",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
var mu sync.Mutex
func oops() {
	mu.Lock()
	mu.Lock()
}
`,
			want: []string{"broker.mu acquired while already held"},
		},
		{
			name: "release on the early-return branch is understood",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
var mu, other sync.Mutex
func branchy(cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	other.Lock()
	other.Unlock()
	mu.Unlock()
}
func reverse() {
	other.Lock()
	defer other.Unlock()
}
`,
			want: nil,
		},
		{
			name: "goroutines start with nothing held",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
var a, b sync.Mutex
func spawn() {
	a.Lock()
	defer a.Unlock()
	go func() {
		b.Lock()
		a.Lock()
		a.Unlock()
		b.Unlock()
	}()
}
`,
			// If the spawn site's held set leaked into the goroutine,
			// a→b would be fabricated and close a cycle against the
			// goroutine's own b→a. A goroutine holds nothing at birth.
			want: nil,
		},
	})
}

// TestLockOrderCycleAcrossFunctions is planted bug 2 of the detection
// matrix: each function takes one lock directly and the other through
// a callee, so neither function alone shows an inversion — only the
// call-graph-resolved acquisition graph closes the AB/BA cycle.
func TestLockOrderCycleAcrossFunctions(t *testing.T) {
	pkg := loadFixtureFile(t, fixImp, "softsoa/internal/broker", "abba.go", `package broker

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) left() {
	p.a.Lock()
	defer p.a.Unlock()
	p.lockB()
}

func (p *pair) lockB() {
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *pair) right() {
	p.b.Lock()
	defer p.b.Unlock()
	p.lockA()
}

func (p *pair) lockA() {
	p.a.Lock()
	defer p.a.Unlock()
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{LockOrder})
	if len(findings) != 1 {
		t.Fatalf("want exactly the cycle, got %v", findings)
	}
	f := findings[0]
	if f.Analyzer != "lockorder" || f.Pos.Filename != "abba.go" {
		t.Fatalf("unexpected attribution: %v", f)
	}
	// The cycle is reported at one of the two call sites that close it.
	if f.Pos.Line != 13 && f.Pos.Line != 25 {
		t.Errorf("cycle reported at line %d, want the lockB (13) or lockA (25) call site", f.Pos.Line)
	}
	for _, want := range []string{"broker.pair.a", "broker.pair.b", "via call to"} {
		if !strings.Contains(f.Message, want) {
			t.Errorf("message %q missing %q", f.Message, want)
		}
	}
}
