// Package analysis is softsoa's in-tree static-analysis suite,
// built entirely on the standard library's go/parser, go/ast and
// go/types (loading source through the compiler's source importer, so
// it works in module mode with zero dependencies). The analyzers
// encode invariants the reproduction depends on but the compiler
// cannot check; cmd/softsoa-lint drives them over the whole module
// and `make lint` keeps the tree at zero findings.
//
// The five analyzers and the properties they protect:
//
//   - determinism: the pure layers (semiring, core, solver, sccp,
//     integrity, coalition) compute the paper's worked examples —
//     Fig. 1 blevel values, Fig. 5 consistency, Examples 1-3 — and
//     must be bit-for-bit reproducible across runs. Wall-clock reads
//     (inject a clock.Clock), draws from the global math/rand source
//     (thread a seeded *rand.Rand) and output built in map iteration
//     order are all forbidden there.
//
//   - ctxfirst: the I/O layers (broker, soa) must stay cancellable
//     end to end, the property PR 1's failover and timeout machinery
//     is built on. context.Context comes first, nobody mints a root
//     context outside main/tests, and exported functions doing
//     network I/O accept a context (HTTP handlers inherit the
//     request's).
//
//   - lockcheck: Lock/Unlock pair in the same function, and fields
//     annotated `// guarded by <mu>` are only touched with that
//     mutex held — either locked in the function or documented as a
//     caller-holds-the-lock helper. Flow-insensitive by design; it
//     exists to catch the common regression of a new code path
//     reading SLA-session or circuit-breaker state lock-free.
//
//   - errcheck: no error return is silently discarded (a deliberate
//     discard carries a //lint:ignore errcheck <reason>), and
//     fmt.Errorf wrapping an underlying error uses %w so errors.Is
//     and errors.As keep seeing through broker and solver error
//     chains.
//
//   - gohygiene: goroutines launched in the broker recover panics
//     themselves or delegate to the recovery middleware; a bare
//     goroutine panic would kill the whole daemon, bypassing the
//     protection on the request path.
//
// Findings are suppressed inline with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above. The analyzer
// name may be "all"; the reason is mandatory, and a directive
// missing it is itself reported (analyzer "lint"). Test files are
// deliberately not loaded: tests may use wall clocks, global rand
// and context.Background freely.
package analysis
