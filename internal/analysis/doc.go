// Package analysis is softsoa's in-tree static-analysis suite,
// built entirely on the standard library's go/parser, go/ast and
// go/types (loading source through the compiler's source importer, so
// it works in module mode with zero dependencies). The analyzers
// encode invariants the reproduction depends on but the compiler
// cannot check; cmd/softsoa-lint drives them over the whole module
// and `make lint` keeps the tree at zero findings.
//
// The suite has two tiers. Six intraprocedural analyzers run once per
// package (Run); four interprocedural analyzers run once over the
// whole loaded module (RunModule) with a shared static call graph, so
// they can see bugs whose halves live in different functions — or
// different packages.
//
// The intraprocedural six and the properties they protect:
//
//   - determinism: the pure layers (semiring, core, solver, sccp,
//     integrity, coalition) compute the paper's worked examples —
//     Fig. 1 blevel values, Fig. 5 consistency, Examples 1-3 — and
//     must be bit-for-bit reproducible across runs. Wall-clock reads
//     (inject a clock.Clock), draws from the global math/rand source
//     (thread a seeded *rand.Rand) and output built in map iteration
//     order are all forbidden there.
//
//   - ctxfirst: the I/O layers (broker, soa) must stay cancellable
//     end to end, the property PR 1's failover and timeout machinery
//     is built on. context.Context comes first, nobody mints a root
//     context outside main/tests, and exported functions doing
//     network I/O accept a context (HTTP handlers inherit the
//     request's).
//
//   - lockcheck: Lock/Unlock pair in the same function, and fields
//     annotated `// guarded by <mu>` are only touched with that
//     mutex held — either locked in the function or documented as a
//     caller-holds-the-lock helper. Flow-insensitive by design; it
//     exists to catch the common regression of a new code path
//     reading SLA-session or circuit-breaker state lock-free.
//
//   - errcheck: no error return is silently discarded (a deliberate
//     discard carries a //lint:ignore errcheck <reason>), and
//     fmt.Errorf wrapping an underlying error uses %w so errors.Is
//     and errors.As keep seeing through broker and solver error
//     chains.
//
//   - gohygiene: goroutines launched in the broker recover panics
//     themselves or delegate to the recovery middleware; a bare
//     goroutine panic would kill the whole daemon, bypassing the
//     protection on the request path.
//
//   - writecheck: the WAL append path preserves the durability
//     contract the crash-recovery story depends on (fsync before
//     acknowledge, no buffered writes left unflushed).
//
// The interprocedural four, built on the module call graph in
// load.go (function identity is the types.Func FullName, mutex and
// field identity the declaration position — both stable across the
// independently type-checked packages of one load):
//
//   - atomiccheck: a field or package variable accessed through
//     sync/atomic anywhere must be accessed atomically everywhere,
//     and the typed atomics (atomic.Int64, atomic.Pointer[T], ...)
//     may only be touched through their methods. A plain read beside
//     an atomic write is a torn access — the exact bug class the
//     parallel solver's lock-free incumbent antichain risks.
//
//   - lockorder: the whole-module lock-acquisition graph (edge a→b
//     when b is locked while a is held, resolved through the call
//     graph with a branch-aware held-set walk) must be acyclic. The
//     broker's documented persistMu → s.mu → e.mu order is thereby
//     machine-checked, including AB/BA inversions split across
//     functions that lockcheck's flow-insensitive view cannot see.
//
//   - leakcheck: every goroutine launched outside func main needs a
//     provable quit path — a WaitGroup join, a ctx.Done() receive, a
//     return/break out of its loop, or (for range-over-channel
//     workers) a close of that channel somewhere in the module.
//     Goroutine bodies are resolved through one level of call
//     indirection, so `go s.worker()` is checked too.
//
//   - hotpath: functions annotated //softsoa:hotpath and their
//     same-package callees (transitively) must not allocate. The
//     directive sits in the doc comment of the function it covers:
//
//       //softsoa:hotpath
//       func (c *Constraint[T]) AtIndex(digits []int) T { ... }
//
//     Flagged: make, new, composite literals, append into slices the
//     function does not own, function literals (closure allocation),
//     any use of fmt or reflect, and interface boxing of concrete
//     arguments. Exempt: allocations inside a cap()/len() grow guard
//     and self-appends (`x = append(x, ...)`), both amortised-free,
//     plus composite literals fed directly into a self-append. The
//     annotation is a package-local contract — cross-package callees
//     carry their own annotations — and turns the solver's
//     AllocsPerRun == 0 benchmark assertion into a static proof that
//     names the offending line. Applied to the B&B inner loop
//     (bbSearch.run), the Combiner scratch paths, Constraint.AtIndex
//     and Evaluator.Eval/EvalAll.
//
// Findings are suppressed inline with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above. The analyzer
// name may be "all"; the reason is mandatory, and a directive
// missing it is itself reported (analyzer "lint"). Suppressions are
// tracked: RunWithSuppressions reports which directives actually
// fired, and `softsoa-lint -debt` turns that into the
// suppression-debt report (stale directives are deletion candidates).
// Test files are deliberately not loaded: tests may use wall clocks,
// global rand and context.Background freely.
package analysis
