package analysis

import "testing"

func TestErrCheck(t *testing.T) {
	runCases(t, ErrCheck, []analyzerCase{
		{
			name: "blank-discarded error flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "strconv"
func Atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
`,
			want: []string{"error discarded with _"},
		},
		{
			name: "direct blank assignment flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "os"
func Rm(p string) { _ = os.Remove(p) }
`,
			want: []string{"error discarded with _"},
		},
		{
			name: "comma-ok type assertion not flagged",
			path: "softsoa/internal/broker",
			src: `package broker
func Cast(v any) int {
	n, _ := v.(int)
	return n
}
`,
		},
		{
			name: "statement-position dropped error flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "os"
func Rm(p string) { os.Remove(p) }
`,
			want: []string{"call drops its error result"},
		},
		{
			name: "handled error is fine",
			path: "softsoa/internal/broker",
			src: `package broker
import "os"
func Rm(p string) error { return os.Remove(p) }
`,
		},
		{
			name: "fmt.Println to stdout exempt",
			path: "softsoa/internal/broker",
			src: `package broker
import "fmt"
func Say() { fmt.Println("hi") }
`,
		},
		{
			name: "Fprintln to stderr exempt",
			path: "softsoa/internal/broker",
			src: `package broker
import (
	"fmt"
	"os"
)
func Warn() { fmt.Fprintln(os.Stderr, "uh oh") }
`,
		},
		{
			name: "Fprintf to arbitrary writer flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import (
	"fmt"
	"io"
)
func Emit(w io.Writer) { fmt.Fprintf(w, "x") }
`,
			want: []string{"call drops its error result"},
		},
		{
			name: "in-memory builder writes exempt but Flush is not",
			path: "softsoa/internal/broker",
			src: `package broker
import (
	"bufio"
	"io"
	"strings"
)
func Build(w io.Writer) string {
	var b strings.Builder
	b.WriteString("ok")
	bw := bufio.NewWriter(w)
	bw.WriteString("buffered")
	bw.Flush()
	return b.String()
}
`,
			want: []string{"call drops its error result"},
		},
		{
			name: "Errorf with %v on an error flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "fmt"
func Wrap(err error) error { return fmt.Errorf("request failed: %v", err) }
`,
			want: []string{"wrap it with %w"},
		},
		{
			name: "Errorf with %w is fine",
			path: "softsoa/internal/broker",
			src: `package broker
import "fmt"
func Wrap(err error) error { return fmt.Errorf("request failed: %w", err) }
`,
		},
		{
			name: "Errorf with %s on a string is fine",
			path: "softsoa/internal/broker",
			src: `package broker
import "fmt"
func Tag(name string) error { return fmt.Errorf("no service %s", name) }
`,
		},
		{
			name: "suppressed discard with reason is fine",
			path: "softsoa/internal/broker",
			src: `package broker
import "os"
func Rm(p string) {
	//lint:ignore errcheck best-effort cleanup on the error path
	_ = os.Remove(p)
}
`,
		},
	})
}
