package analysis

import "testing"

func TestLeakCheck(t *testing.T) {
	runCases(t, LeakCheck, []analyzerCase{
		{
			name: "unconditional loop with no quit path",
			path: "softsoa/internal/broker",
			src: `package broker
func step() {}
func spin() {
	go func() {
		for {
			step()
		}
	}()
}
`,
			want: []string{"[leakcheck] goroutine runs an unconditional for loop with no quit path"},
		},
		{
			name: "ctx.Done select is a quit path",
			path: "softsoa/internal/broker",
			src: `package broker
import "context"
func poll(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}
`,
			want: nil,
		},
		{
			name: "waitgroup join accepts the worker",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
func fan(jobs chan int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				_ = job
			}
		}()
	}
	wg.Wait()
}
`,
			want: nil,
		},
		{
			name: "range over a channel the module closes",
			path: "softsoa/internal/broker",
			src: `package broker
type queue struct{ ch chan int }
func (q *queue) consume() {
	go func() {
		for v := range q.ch {
			_ = v
		}
	}()
}
func (q *queue) shutdown() {
	close(q.ch)
}
`,
			want: nil,
		},
		{
			name: "straight-line goroutine terminates by construction",
			path: "softsoa/internal/broker",
			src: `package broker
func notify(ch chan int, v int) {
	go func() {
		ch <- v
	}()
}
`,
			want: nil,
		},
		{
			name: "named worker checked through the call graph",
			path: "softsoa/internal/broker",
			src: `package broker
type srv struct{}
func (s *srv) worker() {
	for {
	}
}
func (s *srv) start() {
	go s.worker()
}
`,
			want: []string{"(*broker.srv).worker runs an unconditional for loop"},
		},
		{
			name: "func main may spawn fire-and-forget goroutines",
			path: "softsoa/cmd/brokerd",
			src: `package main
func main() {
	go func() {
		for {
		}
	}()
}
`,
			want: nil,
		},
		{
			name: "bounded loops need no quit path",
			path: "softsoa/internal/broker",
			src: `package broker
func sum(xs []int, out chan int) {
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		for s > 0 {
			s--
		}
		out <- s
	}()
}
`,
			want: nil,
		},
	})
}

// TestLeakCheckLeakedTicker is planted bug 3 of the detection matrix:
// a goroutine ranging over a time.Ticker channel. Ticker channels are
// never closed, so without another exit the goroutine outlives its
// spawner forever.
func TestLeakCheckLeakedTicker(t *testing.T) {
	pkg := loadFixtureFile(t, fixImp, "softsoa/internal/broker", "ticker.go", `package broker

import "time"

func watch(interval time.Duration) {
	t := time.NewTicker(interval)
	go func() {
		for range t.C {
			_ = interval
		}
	}()
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{LeakCheck})
	if len(findings) != 1 {
		t.Fatalf("want exactly the leaked ticker, got %v", findings)
	}
	mustFind(t, findings, "leakcheck", "ticker.go", 7, "ranges over a channel the module never closes")
}
