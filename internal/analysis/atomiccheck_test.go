package analysis

import (
	"go/types"
	"testing"
)

func TestAtomicCheck(t *testing.T) {
	runCases(t, AtomicCheck, []analyzerCase{
		{
			name: "mixed plain read of atomically-written field",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync/atomic"
type counter struct{ n int64 }
func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }
func (c *counter) read() int64 { return c.n }
`,
			want: []string{"[atomiccheck] n is accessed via sync/atomic at fixture.go:4"},
		},
		{
			name: "mixed plain write of atomically-read package var",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync/atomic"
var ops int64
func snapshot() int64 { return atomic.LoadInt64(&ops) }
func reset() { ops = 0 }
`,
			want: []string{"written plainly here (mixed atomic/plain access)"},
		},
		{
			name: "typed atomic copied out of its field",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync/atomic"
type box struct{ v atomic.Int64 }
func (b *box) get() int64 { return b.v.Load() }
func (b *box) bad() int64 { x := b.v; return x.Load() }
`,
			want: []string{"v has atomic type and must only be used through its methods"},
		},
		{
			name: "fully atomic discipline is clean",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync/atomic"
type counter struct{ n int64 }
func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }
func (c *counter) read() int64 { return atomic.LoadInt64(&c.n) }
var cur atomic.Pointer[counter]
func publish(c *counter) { cur.Store(c) }
func peek() *counter { return cur.Load() }
`,
			want: nil,
		},
		{
			name: "constructor may seed plainly before escape",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync/atomic"
type counter struct{ n int64 }
func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }
func newCounter(seed int64) *counter {
	c := &counter{}
	c.n = seed
	return c
}
`,
			want: nil,
		},
		{
			name: "passing a typed atomic by pointer is fine",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync/atomic"
type gauge struct{ v atomic.Int64 }
func bump(v *atomic.Int64) { v.Add(1) }
func (g *gauge) tick() { bump(&g.v) }
`,
			want: nil,
		},
	})
}

// TestAtomicCheckTornCounterAcrossPackages is planted bug 1 of the
// detection matrix: the counter is written atomically in one package
// and incremented plainly in another — invisible to any per-package
// pass, caught by the module pass.
func TestAtomicCheckTornCounterAcrossPackages(t *testing.T) {
	imp := fixtureImporter{pkgs: make(map[string]*types.Package)}
	a := loadFixtureFile(t, imp, "softsoa/internal/solver", "torn_a.go", `package solver

import "sync/atomic"

// Stats counts incumbent publications.
type Stats struct{ Hits int64 }

// Record bumps the counter atomically.
func (s *Stats) Record() { atomic.AddInt64(&s.Hits, 1) }
`)
	imp.pkgs[a.Path] = a.Types
	b := loadFixtureFile(t, imp, "softsoa/internal/broker", "torn_b.go", `package broker

import "softsoa/internal/solver"

// Torn increments the counter plainly — the planted bug.
func Torn(s *solver.Stats) {
	s.Hits++
}
`)
	findings := Run([]*Package{a, b}, []*Analyzer{AtomicCheck})
	if len(findings) != 1 {
		t.Fatalf("want exactly the torn access, got %v", findings)
	}
	mustFind(t, findings, "atomiccheck", "torn_b.go", 7, "mixed atomic/plain access")
}
