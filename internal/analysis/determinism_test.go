package analysis

import "testing"

func TestDeterminism(t *testing.T) {
	runCases(t, Determinism, []analyzerCase{
		{
			name: "wall clock read flagged",
			path: "softsoa/internal/solver",
			src: `package solver
import "time"
func Elapsed() time.Time { return time.Now() }
`,
			want: []string{"time.Now in pure package solver"},
		},
		{
			name: "time.Since and time.Sleep flagged",
			path: "softsoa/internal/core",
			src: `package core
import "time"
func Wait(t time.Time) time.Duration { time.Sleep(time.Millisecond); return time.Since(t) }
`,
			want: []string{"time.Sleep", "time.Since"},
		},
		{
			name: "time.Duration arithmetic is fine",
			path: "softsoa/internal/solver",
			src: `package solver
import "time"
func Budget(d time.Duration) time.Duration { return 2 * d }
`,
		},
		{
			name: "global rand draw flagged",
			path: "softsoa/internal/coalition",
			src: `package coalition
import "math/rand"
func Pick(n int) int { return rand.Intn(n) }
`,
			want: []string{"global rand.Intn"},
		},
		{
			name: "explicit seeded generator allowed",
			path: "softsoa/internal/coalition",
			src: `package coalition
import "math/rand"
func Pick(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
`,
		},
		{
			name: "append of values in map range flagged",
			path: "softsoa/internal/semiring",
			src: `package semiring
func Values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want: []string{"append inside range over map"},
		},
		{
			name: "collect-keys-then-sort idiom allowed",
			path: "softsoa/internal/semiring",
			src: `package semiring
import "sort"
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`,
		},
		{
			name: "string concat in map range flagged",
			path: "softsoa/internal/sccp",
			src: `package sccp
func Join(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}
`,
			want: []string{"string concatenation inside range over map"},
		},
		{
			name: "fmt inside map range flagged",
			path: "softsoa/internal/integrity",
			src: `package integrity
import "fmt"
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
			want: []string{"fmt.Println inside range over map"},
		},
		{
			name: "range over slice is fine",
			path: "softsoa/internal/solver",
			src: `package solver
func Sum(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
`,
		},
	})
}
