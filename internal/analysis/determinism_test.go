package analysis

import "testing"

func TestDeterminism(t *testing.T) {
	runCases(t, Determinism, []analyzerCase{
		{
			name: "wall clock read flagged",
			path: "softsoa/internal/solver",
			src: `package solver
import "time"
func Elapsed() time.Time { return time.Now() }
`,
			want: []string{"time.Now in pure package solver"},
		},
		{
			name: "time.Since and time.Sleep flagged",
			path: "softsoa/internal/core",
			src: `package core
import "time"
func Wait(t time.Time) time.Duration { time.Sleep(time.Millisecond); return time.Since(t) }
`,
			want: []string{"time.Sleep", "time.Since"},
		},
		{
			name: "time.Duration arithmetic is fine",
			path: "softsoa/internal/solver",
			src: `package solver
import "time"
func Budget(d time.Duration) time.Duration { return 2 * d }
`,
		},
		{
			name: "global rand draw flagged",
			path: "softsoa/internal/coalition",
			src: `package coalition
import "math/rand"
func Pick(n int) int { return rand.Intn(n) }
`,
			want: []string{"global rand.Intn"},
		},
		{
			name: "explicit seeded generator allowed",
			path: "softsoa/internal/coalition",
			src: `package coalition
import "math/rand"
func Pick(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
`,
		},
		{
			name: "append of values in map range flagged",
			path: "softsoa/internal/semiring",
			src: `package semiring
func Values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want: []string{"append inside range over map"},
		},
		{
			name: "collect-keys-then-sort idiom allowed",
			path: "softsoa/internal/semiring",
			src: `package semiring
import "sort"
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`,
		},
		{
			name: "string concat in map range flagged",
			path: "softsoa/internal/sccp",
			src: `package sccp
func Join(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}
`,
			want: []string{"string concatenation inside range over map"},
		},
		{
			name: "fmt inside map range flagged",
			path: "softsoa/internal/integrity",
			src: `package integrity
import "fmt"
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
			want: []string{"fmt.Println inside range over map"},
		},
		{
			name: "range over slice is fine",
			path: "softsoa/internal/solver",
			src: `package solver
func Sum(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
`,
		},
		{
			name: "worker pool with index-addressed merge allowed",
			path: "softsoa/internal/solver",
			src: `package solver
import (
	"sync"
	"sync/atomic"
)
func Fan(tasks []int) []int {
	results := make([]int, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1) - 1)
				if t >= len(tasks) {
					return
				}
				results[t] = tasks[t] * 2
			}
		}()
	}
	wg.Wait()
	return results
}
`,
		},
		{
			name: "goroutine appending to captured slice flagged",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync"
func Fan(tasks []int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			out = append(out, t*2)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}
`,
			want: []string{"goroutine appends to captured out"},
		},
		{
			name: "goroutine-local append allowed",
			path: "softsoa/internal/solver",
			src: `package solver
import "sync"
func Fan(tasks []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var local []int
		for _, t := range tasks {
			local = append(local, t*2)
		}
		_ = local
	}()
	wg.Wait()
}
`,
		},
		{
			name: "goroutine string concat into captured var flagged",
			path: "softsoa/internal/core",
			src: `package core
import "sync"
func Join(parts []string) string {
	s := ""
	var wg sync.WaitGroup
	for _, p := range parts {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			s += p
		}()
	}
	wg.Wait()
	return s
}
`,
			want: []string{"goroutine concatenates into captured s"},
		},
		{
			name: "append inside range over channel flagged",
			path: "softsoa/internal/solver",
			src: `package solver
func Collect(ch chan int) []int {
	var out []int
	for v := range ch {
		out = append(out, v)
	}
	return out
}
`,
			want: []string{"append inside range over channel"},
		},
		{
			name: "effectful softsoa import flagged",
			path: "softsoa/internal/semiring",
			src: `package semiring
import _ "softsoa/internal/faults"
`,
			want: []string{"imports effectful softsoa/internal/faults"},
		},
		{
			name: "pure, clock and obs imports allowed",
			path: "softsoa/internal/solver",
			src: `package solver
import (
	_ "softsoa/internal/clock"
	_ "softsoa/internal/obs"
	_ "softsoa/internal/semiring"
)
`,
		},
		{
			name: "journal recorder import allowed",
			path: "softsoa/internal/sccp",
			src: `package sccp
import _ "softsoa/internal/obs/journal"
`,
		},
		{
			name: "slog in pure layer flagged",
			path: "softsoa/internal/sccp",
			src: `package sccp
import "log/slog"
func Step() { slog.Info("stepped") }
`,
			want: []string{"imports log/slog"},
		},
		{
			name: "stdlib log in pure layer flagged",
			path: "softsoa/internal/core",
			src: `package core
import "log"
func Combine() { log.Print("combined") }
`,
			want: []string{"imports log"},
		},
	})
}
