package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LeakCheck demands a provable quit path for every goroutine launched
// outside func main: a WaitGroup join (Done in the body, Wait on the
// same WaitGroup somewhere in the module), a select/receive on
// ctx.Done(), a return or break that exits the loop, or — for
// range-over-channel workers — evidence that the module closes the
// channel being ranged. Goroutine bodies are resolved through one
// level of call indirection, so `go s.worker()` is checked against
// worker's declaration via the call graph. A straight-line body with
// no loop terminates by construction and passes. The classic leak this
// exists for: `for range ticker.C` — time.Ticker channels are never
// closed, so that loop can only be exited explicitly, and a goroutine
// without such an exit outlives its spawner forever.
var LeakCheck = &Analyzer{
	Name:      "leakcheck",
	Doc:       "goroutines outside main must have a provable quit path",
	RunModule: runLeakCheck,
}

func runLeakCheck(m *ModulePass) {
	waited := collectWaitGroupWaits(m)
	closed := collectClosedChans(m)
	for _, fi := range sortedFuncs(m.Graph) {
		if fi.Decl.Name.Name == "main" && fi.Pkg.Types.Name() == "main" {
			continue
		}
		pkg := fi.Pkg
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(m, pkg, gs)
			if body.block == nil {
				return true // unresolvable callee: may-miss by design
			}
			checkGoroutine(m, pkg, gs, body, waited, closed)
			return true
		})
	}
}

// sortedFuncs returns the call graph's functions in deterministic key
// order.
func sortedFuncs(g *CallGraph) []*FuncInfo {
	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*FuncInfo, len(keys))
	for i, k := range keys {
		out[i] = g.Funcs[k]
	}
	return out
}

// goBody pairs a goroutine body with the package whose type info
// resolves it (the callee's own package under one level of
// indirection).
type goBody struct {
	block *ast.BlockStmt
	pkg   *Package
	what  string
}

func goroutineBody(m *ModulePass, pkg *Package, gs *ast.GoStmt) goBody {
	if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return goBody{block: fl.Body, pkg: pkg, what: "goroutine"}
	}
	if key, ok := pkg.CalleeKey(gs.Call); ok {
		if fi := m.Graph.Funcs[key]; fi != nil {
			return goBody{block: fi.Decl.Body, pkg: fi.Pkg, what: shortFuncKey(key)}
		}
	}
	return goBody{}
}

// collectWaitGroupWaits gathers the module-wide set of WaitGroup
// objects (by declaration position) on which Wait is called.
func collectWaitGroupWaits(m *ModulePass) map[string]bool {
	out := make(map[string]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if obj := waitGroupMethodTarget(pkg, n, "Wait"); obj != "" {
					out[obj] = true
				}
				return true
			})
		}
	}
	return out
}

// waitGroupMethodTarget returns the posKey of the WaitGroup a call
// like wg.Wait()/wg.Done() operates on, or "".
func waitGroupMethodTarget(pkg *Package, n ast.Node, method string) string {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return ""
	}
	if path, name := namedTypePath(pkg.TypeOf(sel.X)); path != "sync" || name != "WaitGroup" {
		return ""
	}
	var id *ast.Ident
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	obj := pkg.ObjectOf(id)
	if obj == nil {
		return ""
	}
	return posKey(pkg.Fset, obj)
}

// collectClosedChans gathers the module-wide set of channel-bearing
// objects passed to the close builtin.
func collectClosedChans(m *ModulePass) map[string]bool {
	out := make(map[string]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "close" || len(call.Args) != 1 {
					return true
				}
				if obj := chanTarget(pkg, call.Args[0]); obj != "" {
					out[obj] = true
				}
				return true
			})
		}
	}
	return out
}

// chanTarget resolves a channel expression to the posKey of the
// variable or field naming it, or "".
func chanTarget(pkg *Package, e ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	obj := pkg.ObjectOf(id)
	if obj == nil {
		return ""
	}
	return posKey(pkg.Fset, obj)
}

func checkGoroutine(m *ModulePass, spawnPkg *Package, gs *ast.GoStmt, body goBody, waited, closed map[string]bool) {
	// Rule 1: WaitGroup join. Done in the body plus Wait on the same
	// WaitGroup anywhere in the module proves the spawner (or its
	// owner) blocks until this goroutine exits; accepted wholesale —
	// if the body then failed to terminate, Wait itself would hang
	// loudly rather than leak silently.
	joined := false
	ast.Inspect(body.block, func(n ast.Node) bool {
		if obj := waitGroupMethodTarget(body.pkg, n, "Done"); obj != "" && waited[obj] {
			joined = true
		}
		return !joined
	})
	if joined {
		return
	}

	// Rule 2: loop-free bodies terminate by construction.
	loops := topLevelLoops(body.block)
	if len(loops) == 0 {
		return
	}

	for _, loop := range loops {
		switch l := loop.(type) {
		case *ast.ForStmt:
			if l.Cond != nil {
				continue // bounded by its condition
			}
			if hasQuitEvidence(body.pkg, l.Body) {
				continue
			}
			m.Reportf(spawnPkg, gs.Pos(),
				"%s runs an unconditional for loop with no quit path (no return, break, or ctx.Done() receive)", body.what)
		case *ast.RangeStmt:
			if !isChanType(body.pkg.TypeOf(l.X)) {
				continue // collection ranges are bounded
			}
			if obj := chanTarget(body.pkg, l.X); obj != "" && closed[obj] {
				continue
			}
			if hasQuitEvidence(body.pkg, l.Body) {
				continue
			}
			m.Reportf(spawnPkg, gs.Pos(),
				"%s ranges over a channel the module never closes and has no other quit path", body.what)
		}
	}
}

// topLevelLoops returns the loops of the body reachable without
// entering nested function literals.
func topLevelLoops(b *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(b, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, n.(ast.Stmt))
			return false // nested loops judged with their parent's evidence
		}
		return true
	})
	return out
}

// hasQuitEvidence reports whether the loop body can provably exit: a
// return, a break, or a receive from ctx.Done().
func hasQuitEvidence(pkg *Package, b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCtxDoneCall(pkg, n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCtxDoneCall reports whether e is a call to the Done method of a
// context.Context (or anything context-shaped exposing Done()).
func isCtxDoneCall(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	path, name := namedTypePath(pkg.TypeOf(sel.X))
	return path == "context" && name == "Context"
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
