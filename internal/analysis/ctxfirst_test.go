package analysis

import "testing"

func TestCtxFirst(t *testing.T) {
	runCases(t, CtxFirst, []analyzerCase{
		{
			name: "context not first flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "context"
func Fetch(name string, ctx context.Context) error { _ = ctx; _ = name; return nil }
`,
			want: []string{"context.Context must be the first parameter"},
		},
		{
			name: "context first is fine",
			path: "softsoa/internal/broker",
			src: `package broker
import "context"
func Fetch(ctx context.Context, name string) error { _ = ctx; _ = name; return nil }
`,
		},
		{
			name: "context.Background flagged",
			path: "softsoa/internal/soa",
			src: `package soa
import "context"
func Run() { _ = context.Background() }
`,
			want: []string{"context.Background outside main/tests"},
		},
		{
			name: "context.TODO flagged",
			path: "softsoa/internal/soa",
			src: `package soa
import "context"
func Run() { _ = context.TODO() }
`,
			want: []string{"context.TODO outside main/tests"},
		},
		{
			name: "exported I/O without context flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "net/http"
func Ping(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
`,
			want: []string{"Ping calls http.Get but takes no context.Context"},
		},
		{
			name: "exported I/O with context is fine",
			path: "softsoa/internal/broker",
			src: `package broker
import (
	"context"
	"net/http"
)
func Ping(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
`,
		},
		{
			name: "http handler inherits request context",
			path: "softsoa/internal/broker",
			src: `package broker
import "net/http"
func Handle(w http.ResponseWriter, r *http.Request) {
	c := &http.Client{}
	resp, err := c.Do(r)
	if err != nil {
		return
	}
	_ = resp.Body.Close() //lint:ignore errcheck fixture
}
`,
		},
		{
			name: "unexported I/O without context not flagged by exported rule",
			path: "softsoa/internal/broker",
			src: `package broker
import "net"
func dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
`,
		},
		{
			name: "I/O layers only",
			path: "softsoa/internal/workload",
			src: `package workload
import "context"
func Run() { _ = context.Background() }
`,
		},
	})
}
