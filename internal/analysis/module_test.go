package analysis

import (
	"go/ast"
	"go/parser"
	"go/types"
	"strings"
	"testing"
)

// fixtureImporter serves previously-checked fixture packages by import
// path and defers to the shared source importer for everything else,
// letting one fixture package import another without touching disk.
type fixtureImporter struct{ pkgs map[string]*types.Package }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p := fi.pkgs[path]; p != nil {
		return p, nil
	}
	return fixImp.Import(path)
}

// loadFixtureFile is loadFixture with a caller-chosen filename and
// importer, for multi-package module fixtures. Distinct filenames keep
// declaration-position identities (and directive indexes) from
// colliding across the packages of one Run.
func loadFixtureFile(t *testing.T, imp types.Importer, path, filename, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fixFset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture %s: %v", filename, err)
	}
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(path, fixFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", filename, err)
	}
	return &Package{Path: path, Dir: ".", Fset: fixFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// mustFind asserts one finding with the given analyzer, position and
// message substring — the shape the planted-bug matrix (EXPERIMENTS
// E22) is built from.
func mustFind(t *testing.T, findings []Finding, analyzer, file string, line int, sub string) {
	t.Helper()
	for _, f := range findings {
		if f.Analyzer == analyzer && f.Pos.Line == line && f.Pos.Filename == file &&
			strings.Contains(f.Message, sub) {
			return
		}
	}
	t.Fatalf("no %s finding at %s:%d containing %q; got %v", analyzer, file, line, sub, findings)
}

// TestNewAnalyzersAcceptLiveTree loads the real solver, core and
// broker packages and runs the four interprocedural analyzers,
// asserting zero findings: the live tree is the negative fixture.
func TestNewAnalyzersAcceptLiveTree(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importing the live tree is slow")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./internal/core", "./internal/solver", "./internal/broker"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 3 {
		t.Fatalf("loaded %d packages, want at least 3", len(pkgs))
	}
	suite := []*Analyzer{AtomicCheck, LockOrder, LeakCheck, HotPath}
	if findings := Run(pkgs, suite); len(findings) != 0 {
		var b strings.Builder
		for _, f := range findings {
			b.WriteString("\n  " + f.String())
		}
		t.Fatalf("interprocedural analyzers must accept the live tree unchanged; got:%s", b.String())
	}
}
