package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// inspectWithStack walks the tree in depth-first order calling fn with
// each node and the stack of its ancestors (outermost first, node not
// included). fn returning false prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// posKey renders an object's declaration position as a module-wide
// identity string. Object identity itself does not hold across loaded
// packages (each package type-checks its imports through the source
// importer independently), but all packages share one FileSet, so the
// declaration's file:line:column does.
func posKey(fset *token.FileSet, obj types.Object) string {
	return fset.Position(obj.Pos()).String()
}

// isField reports whether obj is a struct field.
func isField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

// isPkgVar reports whether obj is a package-level variable.
func isPkgVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// namedTypePath returns the package path and name of e's named type,
// looking through one level of pointer, or ("", "") when the type is
// not named.
func namedTypePath(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// enclosingFuncName returns the name of the function declaration the
// stack is inside, or "".
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// ownerNames maps every struct field object of the package to a
// readable "Pkg.Type.field" label, for diagnostics that talk about
// fields away from their declaration.
func ownerNames(pkg *Package) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						out[obj] = pkg.Types.Name() + "." + ts.Name.Name + "." + name.Name
					}
				}
			}
			return true
		})
	}
	return out
}
