package analysis

import "testing"

func TestGoHygiene(t *testing.T) {
	runCases(t, GoHygiene, []analyzerCase{
		{
			name: "bare goroutine flagged",
			path: "softsoa/internal/broker",
			src: `package broker
func Spawn() {
	go func() {
		panic("boom")
	}()
}
`,
			want: []string{"goroutine without panic recovery"},
		},
		{
			name: "deferred recover in literal is fine",
			path: "softsoa/internal/broker",
			src: `package broker
func Spawn() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
	}()
}
`,
		},
		{
			name: "named function that recovers is fine",
			path: "softsoa/internal/broker",
			src: `package broker
func worker() {
	defer func() { recover() }() //lint:ignore errcheck fixture
}
func Spawn() { go worker() }
`,
		},
		{
			name: "named function without recovery flagged",
			path: "softsoa/internal/broker",
			src: `package broker
func worker() {}
func Spawn() { go worker() }
`,
			want: []string{"goroutine without panic recovery"},
		},
		{
			name: "recovery wrapper by name is fine",
			path: "softsoa/internal/broker",
			src: `package broker
func safeGo(f func()) {
	go func() {
		defer func() { _ = recover() }()
		f()
	}()
}
func Spawn(f func()) { safeGo(f) }
`,
		},
		{
			name: "goroutine delegating to recovery middleware is fine",
			path: "softsoa/internal/broker",
			src: `package broker
type mw struct{}
func (mw) RecoverAndServe() {}
func Spawn(m mw) { go m.RecoverAndServe() }
`,
		},
		{
			name: "broker only",
			path: "softsoa/internal/workload",
			src: `package workload
func Spawn() { go func() { panic("boom") }() }
`,
		},
	})
}
