package analysis

import (
	"go/ast"
	"strings"
)

// GoHygiene keeps goroutines launched inside the broker from taking
// the daemon down: a panic in a bare goroutine kills the whole
// process, bypassing the panic-recovery middleware that protects the
// request path. Every `go` statement in internal/broker must either
// recover itself (a deferred recover() inside the function literal),
// call a same-package function that does, or delegate to a recovery
// wrapper (a function whose name contains "recover" or "safe").
var GoHygiene = &Analyzer{
	Name:     "gohygiene",
	Doc:      "goroutines in the broker must recover panics or delegate to the recovery middleware",
	Packages: []string{"softsoa/internal/broker"},
	Run:      runGoHygiene,
}

func runGoHygiene(pass *Pass) {
	// Same-package named functions that visibly recover.
	recovers := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil && containsRecover(fd.Body) {
				recovers[fd.Name.Name] = true
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineRecovers(pass, gs.Call, recovers) {
				pass.Reportf(gs.Pos(), "goroutine without panic recovery: add defer recover() or launch via the recovery middleware")
			}
			return true
		})
	}
}

func goroutineRecovers(pass *Pass, call *ast.CallExpr, recovers map[string]bool) bool {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return containsRecover(fun.Body)
	case *ast.Ident:
		return recovers[fun.Name] || recoveryName(fun.Name)
	case *ast.SelectorExpr:
		return recoveryName(fun.Sel.Name)
	}
	return false
}

func recoveryName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "recover") || strings.Contains(lower, "safe")
}

// containsRecover reports whether the body calls recover(), directly
// or inside a deferred literal or a same-body helper call named like
// a recovery wrapper.
func containsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "recover" {
				found = true
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok && recoveryName(id.Name) {
				found = true
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && recoveryName(sel.Sel.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
