package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a whole-module lock-acquisition graph and flags
// cycles as potential deadlocks. A mutex is identified by the struct
// field or package variable holding it (by declaration position, so
// identity survives package boundaries); an edge a→b is recorded when
// b is acquired while a is held — directly, or inside any function
// reachable through the static call graph from a call made with a
// held. The broker's documented order (persistMu → s.mu → e.mu) thus
// becomes machine-checked: an AB/BA inversion split across two
// functions, invisible to the flow-insensitive lockcheck, closes a
// cycle here. The walk is branch-aware: held sets fork into if/switch
// arms and merge by intersection, defer Unlock pins a lock to the end
// of the function, and go statements start with nothing held.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "whole-module lock-acquisition graph must be acyclic (deadlock freedom)",
	RunModule: runLockOrder,
}

// loEdge is one observed acquisition ordering: to was locked while
// from was held.
type loEdge struct {
	from, to string
	pos      token.Position
	why      string // "directly" or "via call to F"
}

// loCall is a statically resolved call made with locks held.
type loCall struct {
	callee string
	held   []string
	pos    token.Position
}

// loFunc summarises one function's locking behaviour.
type loFunc struct {
	acquired map[string]bool
	calls    []loCall
	edges    []loEdge
}

func runLockOrder(m *ModulePass) {
	labels := make(map[string]string)
	fns := make(map[string]*loFunc, len(m.Graph.Funcs))
	keys := make([]string, 0, len(m.Graph.Funcs))
	for key := range m.Graph.Funcs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fi := m.Graph.Funcs[key]
		w := &loWalker{
			pkg:    fi.Pkg,
			fn:     &loFunc{acquired: make(map[string]bool)},
			labels: labels,
		}
		w.walkBody(fi.Decl.Body, make(map[string]bool))
		fns[key] = w.fn
	}

	// Fixpoint: lockSet(f) = locks acquired in f or anywhere reachable
	// from it through the module call graph.
	lockSet := make(map[string]map[string]bool, len(fns))
	for k, f := range fns {
		s := make(map[string]bool, len(f.acquired))
		for mk := range f.acquired {
			s[mk] = true
		}
		lockSet[k] = s
	}
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			for _, c := range fns[k].calls {
				for mk := range lockSet[c.callee] {
					if !lockSet[k][mk] {
						lockSet[k][mk] = true
						changed = true
					}
				}
			}
		}
	}

	// The mutex graph: direct edges plus edges induced by calls made
	// with locks held. Self-edges through calls are dropped — the
	// callee usually locks on paths the caller never takes while
	// holding, and lockcheck owns the double-lock story — but a direct
	// re-acquisition in one function body stays.
	first := make(map[[2]string]loEdge)
	addEdge := func(e loEdge) {
		k := [2]string{e.from, e.to}
		if _, ok := first[k]; !ok {
			first[k] = e
		}
	}
	for _, k := range keys {
		f := fns[k]
		for _, e := range f.edges {
			addEdge(e)
		}
		for _, c := range f.calls {
			targets := make([]string, 0, len(lockSet[c.callee]))
			for mk := range lockSet[c.callee] {
				targets = append(targets, mk)
			}
			sort.Strings(targets)
			for _, h := range c.held {
				for _, t := range targets {
					if t == h {
						continue
					}
					addEdge(loEdge{from: h, to: t, pos: c.pos,
						why: "via call to " + shortFuncKey(c.callee)})
				}
			}
		}
	}

	reportLockCycles(m, first, labels)
}

// shortFuncKey trims the module-path noise off a FuncKey for messages:
// "(*softsoa/internal/broker.Server).Flush" → "(*broker.Server).Flush".
func shortFuncKey(key string) string {
	start := 0
	for start < len(key) && (key[start] == '(' || key[start] == '*') {
		start++
	}
	if i := strings.LastIndex(key, "/"); i > start {
		return key[:start] + key[i+1:]
	}
	return key
}

func reportLockCycles(m *ModulePass, edges map[[2]string]loEdge, labels map[string]string) {
	succ := make(map[string][]string)
	nodes := make(map[string]bool)
	for k, e := range edges {
		nodes[k[0]], nodes[k[1]] = true, true
		if e.from != e.to {
			succ[e.from] = append(succ[e.from], e.to)
		}
	}
	for n := range succ {
		sort.Strings(succ[n])
	}

	// Direct self-edges: a lock re-acquired while already held.
	var selfKeys []string
	for k, e := range edges {
		if k[0] == k[1] {
			selfKeys = append(selfKeys, e.from)
		}
	}
	sort.Strings(selfKeys)
	for _, mk := range selfKeys {
		e := edges[[2]string{mk, mk}]
		m.report(Finding{
			Analyzer: m.Analyzer.Name,
			Pos:      e.pos,
			Message:  fmt.Sprintf("%s acquired while already held (non-reentrant mutex self-deadlock)", labels[mk]),
		})
	}

	// Tarjan SCC over the self-edge-free graph; any component with two
	// or more mutexes is an ordering cycle.
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, scc := range tarjanSCC(order, succ) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var parts []string
		var at token.Position
		for _, from := range scc {
			for _, to := range succ[from] {
				if !inSCC[to] {
					continue
				}
				e := edges[[2]string{from, to}]
				if !at.IsValid() {
					at = e.pos
				}
				parts = append(parts, fmt.Sprintf("%s → %s (%s at %s)", labels[from], labels[to], e.why, e.pos))
			}
		}
		m.report(Finding{
			Analyzer: m.Analyzer.Name,
			Pos:      at,
			Message:  "lock order cycle: " + strings.Join(parts, "; "),
		})
	}
}

// tarjanSCC returns the strongly connected components of the graph in
// a deterministic order given deterministic inputs.
func tarjanSCC(nodes []string, succ map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// loWalker performs the branch-aware held-set walk over one function
// body.
type loWalker struct {
	pkg    *Package
	fn     *loFunc
	labels map[string]string
}

func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func sortedKeys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// intersectInto replaces held with the intersection of the outcome
// states.
func intersectInto(held map[string]bool, outs []map[string]bool) {
	for k := range held {
		delete(held, k)
	}
	if len(outs) == 0 {
		return
	}
	for k := range outs[0] {
		all := true
		for _, o := range outs[1:] {
			if !o[k] {
				all = false
				break
			}
		}
		if all {
			held[k] = true
		}
	}
}

// lockOp classifies call as a Lock/RLock ("lock") or Unlock/RUnlock
// ("unlock") on a mutex stored in a struct field or package variable,
// returning the mutex's module-wide key.
func (w *loWalker) lockOp(e ast.Expr) (mk, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", false
	}
	if path, name := namedTypePath(w.pkg.TypeOf(sel.X)); path != "sync" || (name != "Mutex" && name != "RWMutex") {
		return "", "", false
	}
	var id *ast.Ident
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", "", false
	}
	obj := w.pkg.ObjectOf(id)
	if obj == nil || (!isField(obj) && !isPkgVar(obj)) {
		return "", "", false
	}
	mk = posKey(w.pkg.Fset, obj)
	if _, have := w.labels[mk]; !have {
		w.labels[mk] = w.mutexLabel(obj)
	}
	return mk, op, true
}

// mutexLabel renders a readable module-wide name for the mutex object.
func (w *loWalker) mutexLabel(obj types.Object) string {
	if isPkgVar(obj) {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	for o, label := range ownerNames(w.pkg) {
		if posKey(w.pkg.Fset, o) == posKey(w.pkg.Fset, obj) {
			return label
		}
	}
	return obj.Name()
}

func (w *loWalker) acquire(mk string, held map[string]bool, pos token.Pos) {
	for _, h := range sortedKeys(held) {
		w.fn.edges = append(w.fn.edges, loEdge{
			from: h, to: mk,
			pos: w.pkg.Fset.Position(pos),
			why: "directly",
		})
	}
	held[mk] = true
	w.fn.acquired[mk] = true
}

// scanExpr records statically resolved calls (with the current held
// snapshot) and walks function literals with an empty held set — their
// execution time is unknown, so assuming no locks held avoids
// fabricating orderings.
func (w *loWalker) scanExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkBody(n.Body, make(map[string]bool))
			return false
		case *ast.CallExpr:
			if key, ok := w.pkg.CalleeKey(n); ok {
				w.fn.calls = append(w.fn.calls, loCall{
					callee: key,
					held:   sortedKeys(held),
					pos:    w.pkg.Fset.Position(n.Pos()),
				})
			}
		}
		return true
	})
}

// walkBody walks a statement list; the returned bool reports whether
// flow terminates (every path returns, panics or branches away).
func (w *loWalker) walkBody(b *ast.BlockStmt, held map[string]bool) bool {
	if b == nil {
		return false
	}
	for _, s := range b.List {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *loWalker) walkStmt(s ast.Stmt, held map[string]bool) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkBody(s, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.ExprStmt:
		if mk, op, ok := w.lockOp(s.X); ok {
			if op == "lock" {
				w.acquire(mk, held, s.X.Pos())
			} else {
				delete(held, mk)
			}
			return false
		}
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && w.pkg.ObjectOf(id) == nil {
				w.scanExpr(s.X, held)
				return true
			}
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		if mk, op, ok := w.lockOp(s.Call); ok {
			// defer mu.Unlock(): held to the end of the function — the
			// lock simply stays in the set. defer mu.Lock() is nonsense
			// and ignored.
			_ = mk
			_ = op
			return false
		}
		// Deferred calls run last with whatever is then held — model
		// them with the current snapshot, which is conservative for the
		// common defer-right-after-acquire idiom.
		w.scanExpr(s.Call, held)
	case *ast.GoStmt:
		fresh := make(map[string]bool)
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkBody(fl.Body, fresh)
			for _, arg := range s.Call.Args {
				w.scanExpr(arg, fresh)
			}
		} else {
			w.scanExpr(s.Call, fresh)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this path; treating them as
		// terminating keeps the merge conservative.
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		thenHeld := copySet(held)
		thenTerm := w.walkBody(s.Body, thenHeld)
		var outs []map[string]bool
		if !thenTerm {
			outs = append(outs, thenHeld)
		}
		if s.Else != nil {
			elseHeld := copySet(held)
			if !w.walkStmt(s.Else, elseHeld) {
				outs = append(outs, elseHeld)
			}
		} else {
			outs = append(outs, copySet(held))
		}
		if len(outs) == 0 {
			return true
		}
		intersectInto(held, outs)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		body := copySet(held)
		w.walkBody(s.Body, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		// Loop bodies contribute events but, conservatively, no net
		// held-set change.
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		body := copySet(held)
		w.walkBody(s.Body, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Tag, held)
		w.walkCases(s.Body, held, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkStmt(s.Assign, held)
		w.walkCases(s.Body, held, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		w.walkCases(s.Body, held, true)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.scanExpr(r, held)
		}
		for _, l := range s.Lhs {
			w.scanExpr(l, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	}
	return false
}

func hasDefaultCase(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// walkCases walks each case/comm clause with its own copy of the held
// set and merges by intersection; when the switch has no default, the
// fallthrough-past state is one of the outcomes.
func (w *loWalker) walkCases(b *ast.BlockStmt, held map[string]bool, exhaustive bool) {
	var outs []map[string]bool
	for _, s := range b.List {
		var body []ast.Stmt
		switch c := s.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			caseHeld := copySet(held)
			if c.Comm != nil {
				w.walkStmt(c.Comm, caseHeld)
			}
			term := false
			for _, bs := range c.Body {
				if w.walkStmt(bs, caseHeld) {
					term = true
					break
				}
			}
			if !term {
				outs = append(outs, caseHeld)
			}
			continue
		default:
			continue
		}
		caseHeld := copySet(held)
		term := false
		for _, bs := range body {
			if w.walkStmt(bs, caseHeld) {
				term = true
				break
			}
		}
		if !term {
			outs = append(outs, caseHeld)
		}
	}
	if !exhaustive {
		outs = append(outs, copySet(held))
	}
	if len(outs) > 0 {
		intersectInto(held, outs)
	}
}
