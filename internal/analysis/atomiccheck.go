package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCheck enforces all-or-nothing atomicity on shared words: any
// struct field or package variable that is accessed through sync/atomic
// anywhere in the module must be accessed atomically everywhere, and
// fields of the typed atomic kinds (atomic.Int64, atomic.Pointer[T],
// ...) must only be touched through their methods. A mixed plain
// read/write is exactly the torn-access bug class the parallel
// solver's lock-free incumbent bound risks: one goroutine publishing
// through atomic.Pointer while another reads the word directly is a
// data race the type system cannot see. The check is module-wide —
// the atomic use and the plain use are usually in different functions,
// often in different packages.
var AtomicCheck = &Analyzer{
	Name:      "atomiccheck",
	Doc:       "fields and package vars accessed via sync/atomic anywhere must be accessed atomically everywhere",
	RunModule: runAtomicCheck,
}

// typedAtomicNames are the sync/atomic wrapper types whose values must
// only be used through method calls (or by address).
var typedAtomicNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// atomicSite records where an object was first seen used atomically.
type atomicSite struct {
	name string
	pos  token.Position
}

func isTypedAtomic(t types.Type) bool {
	path, name := namedTypePath(t)
	return path == "sync/atomic" && typedAtomicNames[name]
}

// atomicFuncCall reports whether call invokes a sync/atomic
// package-level function (atomic.AddInt64, atomic.LoadPointer, ...).
func atomicFuncCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// targetOf resolves the object an address-of operand names: &s.n
// yields the field n, &count the package var count.
func targetOf(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.ObjectOf(e)
	case *ast.SelectorExpr:
		return pkg.ObjectOf(e.Sel)
	}
	return nil
}

func runAtomicCheck(m *ModulePass) {
	// Pass 1: every field or package var whose address feeds a
	// sync/atomic function call, module-wide.
	atomicObjs := make(map[string]atomicSite)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !atomicFuncCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					obj := targetOf(pkg, ue.X)
					if obj == nil || (!isField(obj) && !isPkgVar(obj)) {
						continue
					}
					key := posKey(pkg.Fset, obj)
					if _, seen := atomicObjs[key]; !seen {
						atomicObjs[key] = atomicSite{
							name: obj.Name(),
							pos:  pkg.Fset.Position(call.Pos()),
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: every access to those objects — and to typed-atomic
	// fields/vars — must be an atomic one.
	for _, pkg := range m.Pkgs {
		checkAtomicAccesses(m, pkg, atomicObjs)
	}
}

// constructorName reports whether the enclosing function is a
// constructor or initializer, where plain stores to a value that has
// not escaped yet are the conventional way to seed atomics.
func constructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

func checkAtomicAccesses(m *ModulePass, pkg *Package, atomicObjs map[string]atomicSite) {
	for _, f := range pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || (!isField(obj) && !isPkgVar(obj)) {
				return true
			}
			typed := isTypedAtomic(obj.Type())
			site, viaFuncs := atomicObjs[posKey(pkg.Fset, obj)]
			if !typed && !viaFuncs {
				return true
			}

			// The access expression: the ident itself, or the selector
			// it terminates (s.n for field n).
			access := ast.Node(id)
			top := len(stack) - 1
			if sel, ok := stack[top].(*ast.SelectorExpr); ok && sel.Sel == id {
				access = sel
				top--
			}
			if top < 0 {
				return true
			}
			if atomicAccessOK(pkg, access, stack[:top+1], typed) {
				return true
			}
			if constructorName(enclosingFuncName(stack)) {
				return true
			}
			verb := "read or copied"
			switch ctx := stack[top].(type) {
			case *ast.AssignStmt:
				for _, lhs := range ctx.Lhs {
					if lhs == access {
						verb = "written"
					}
				}
			case *ast.IncDecStmt:
				verb = "written"
			case *ast.UnaryExpr:
				if ctx.Op == token.AND {
					verb = "address-taken"
				}
			}
			if typed {
				m.Reportf(pkg, access.Pos(),
					"%s has atomic type and must only be used through its methods, but is %s plainly here", obj.Name(), verb)
			} else {
				m.Reportf(pkg, access.Pos(),
					"%s is accessed via sync/atomic at %s but %s plainly here (mixed atomic/plain access)",
					obj.Name(), site.pos, verb)
			}
			return true
		})
	}
}

// atomicAccessOK reports whether the access node is used in one of the
// sanctioned shapes: as the receiver of a method call (typed atomics),
// as a composite-literal key, or — for function-style atomics — as the
// operand of & passed directly into a sync/atomic call. Typed atomics
// additionally allow plain address-of, since a pointer preserves
// atomicity while a copy does not.
func atomicAccessOK(pkg *Package, access ast.Node, stack []ast.Node, typed bool) bool {
	if len(stack) == 0 {
		return false
	}
	switch ctx := stack[len(stack)-1].(type) {
	case *ast.KeyValueExpr:
		if ctx.Key == access && len(stack) >= 2 {
			_, inLit := stack[len(stack)-2].(*ast.CompositeLit)
			return inLit
		}
	case *ast.SelectorExpr:
		if ctx.X == access {
			_, isMethod := pkg.ObjectOf(ctx.Sel).(*types.Func)
			return isMethod
		}
	case *ast.UnaryExpr:
		if ctx.Op != token.AND || ctx.X != access {
			return false
		}
		if typed {
			return true
		}
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && atomicFuncCall(pkg, call) {
				for _, arg := range call.Args {
					if ast.Unparen(arg) == ctx {
						return true
					}
				}
			}
		}
	}
	return false
}
