package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// purePackages are the layers whose outputs back the paper's worked
// examples (Fig. 1 blevel, Fig. 5 consistency, Examples 1-3) and must
// therefore be bit-for-bit reproducible across runs.
var purePackages = []string{
	"softsoa/internal/semiring",
	"softsoa/internal/core",
	"softsoa/internal/solver",
	"softsoa/internal/sccp",
	"softsoa/internal/integrity",
	"softsoa/internal/coalition",
	"softsoa/internal/trust",
}

// wallClockFuncs are the time functions that leak wall-clock state
// into otherwise pure computations. Types (time.Time, time.Duration)
// remain free to use; only the ambient sources are banned.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true,
	"NewTimer": true, "Sleep": true,
}

// randConstructors are the math/rand functions that build an explicit
// generator and are therefore allowed; every other package-level
// math/rand function draws from the implicitly seeded global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// importAllowlist names the softsoa packages a pure layer may import
// beyond the pure layers themselves: clock, because the time source
// is injected rather than ambient, obs, because its instruments
// are write-only from the pure layer's perspective — counter adds
// commute, so recording them cannot change a computed result — and
// obs/journal for the same reason: a machine or solver streams
// transition and search records into an injected recorder but never
// reads them back — and cache, because it is a content-addressed memo
// sink: keys are canonical hashes of the inputs and values are the
// bit-exact results of the computation they memoise, so a cache read
// can only skip recomputation, never change a computed result.
var importAllowlist = map[string]bool{
	"softsoa/internal/clock":       true,
	"softsoa/internal/obs":         true,
	"softsoa/internal/obs/journal": true,
	"softsoa/internal/cache":       true,
}

// Determinism forbids ambient nondeterminism in the pure layers:
// wall-clock reads (inject a clock.Clock), global math/rand draws
// (thread a *rand.Rand seeded from configuration), loops whose output
// order depends on map iteration order, and concurrency whose output
// order depends on scheduling. Worker-pool goroutines and sync/atomic
// incumbents are explicitly allowed — the parallel solver relies on
// them — iff each goroutine publishes into its own index-addressed
// slot (results[i] = …) and the merge happens after the pool drains;
// goroutines that append to (or concatenate into) captured variables,
// and collectors that append while ranging over a channel, publish in
// completion order and are flagged.
var Determinism = &Analyzer{
	Name:     "determinism",
	Doc:      "forbid wall clocks, global randomness, and map-order- or scheduling-order-dependent output in the pure layers",
	Packages: purePackages,
	Run:      runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		checkPureImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj, ok := pass.ObjectOf(n).(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if wallClockFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "time.%s in pure package %s: inject a clock.Clock instead", obj.Name(), pass.Pkg.Types.Name())
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[obj.Name()] && obj.Type().(*types.Signature).Recv() == nil {
						pass.Reportf(n.Pos(), "global rand.%s in pure package %s: thread a seeded *rand.Rand instead", obj.Name(), pass.Pkg.Types.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
				checkChanRange(pass, n)
			case *ast.GoStmt:
				checkGoroutineMerge(pass, n)
			}
			return true
		})
	}
}

// checkPureImports keeps the pure layers' softsoa import graph closed
// over {pure layers} ∪ importAllowlist, so effectful packages (soa,
// broker, faults, …) cannot leak ambient state into them through a
// transitive dependency.
func checkPureImports(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		// Logging is an ambient effect: a pure layer that wants to
		// narrate its execution streams records into an injected
		// journal recorder; the caller decides what (if anything)
		// gets logged.
		if path == "log" || path == "log/slog" {
			pass.Reportf(imp.Pos(), "pure package %s imports %s: stream events through an injected journal recorder instead of logging", pass.Pkg.Types.Name(), path)
			continue
		}
		if !strings.HasPrefix(path, "softsoa/") {
			continue
		}
		if importAllowlist[path] {
			continue
		}
		pure := false
		for _, p := range purePackages {
			if path == p {
				pure = true
				break
			}
		}
		if !pure {
			pass.Reportf(imp.Pos(), "pure package %s imports effectful %s: only the pure layers, clock and obs are allowed", pass.Pkg.Types.Name(), path)
		}
	}
}

// checkGoroutineMerge enforces the deterministic-merge contract for
// goroutines in the pure layers. A worker that writes results[i] into
// a slot indexed by a claimed task (or only touches sync/atomic
// state) passes: the merge order is fixed by the index, not the
// scheduler. A worker that appends to a variable captured from the
// enclosing function — even under a mutex — publishes results in
// completion order, which varies run to run, and is flagged; so is
// string concatenation into a captured variable.
func checkGoroutineMerge(pass *Pass, gs *ast.GoStmt) {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	capturedByLit := func(id *ast.Ident) bool {
		obj := pass.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		an, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range an.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fid, ok := call.Fun.(*ast.Ident)
			if !ok || fid.Name != "append" || len(call.Args) < 2 {
				continue
			}
			if _, isBuiltin := pass.ObjectOf(fid).(*types.Builtin); !isBuiltin {
				continue
			}
			if id, ok := call.Args[0].(*ast.Ident); ok && capturedByLit(id) {
				pass.Reportf(call.Pos(), "goroutine appends to captured %s: results land in completion order; write an index-addressed slot (results[i] = …) and merge after the pool drains", id.Name)
			}
		}
		if an.Tok == token.ADD_ASSIGN && len(an.Lhs) == 1 {
			if id, ok := an.Lhs[0].(*ast.Ident); ok && capturedByLit(id) {
				if bt, ok := pass.TypeOf(id).(*types.Basic); ok && bt.Info()&types.IsString != 0 {
					pass.Reportf(an.Pos(), "goroutine concatenates into captured %s: output depends on scheduling order", id.Name)
				}
			}
		}
		return true
	})
}

// checkChanRange flags collectors that append while ranging over a
// channel: values arrive in the senders' completion order, so the
// collected slice ordering depends on scheduling even when every
// element is eventually received.
func checkChanRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		an, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range an.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fid, ok := call.Fun.(*ast.Ident)
			if !ok || fid.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.ObjectOf(fid).(*types.Builtin); !isBuiltin {
				continue
			}
			pass.Reportf(call.Pos(), "append inside range over channel: results arrive in completion order; collect per-task results in index-addressed slots and merge in task order")
		}
		return true
	})
}

// checkMapRange flags range-over-map loops that build ordered output
// (slice appends, string concatenation, formatted printing): their
// result depends on Go's randomised map iteration order. Collecting
// just the keys for later sorting is the sanctioned idiom and is not
// flagged.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeVarObj(pass, rs.Key)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
					continue
				}
				if appendsOnlyKey(pass, call, keyObj) {
					continue
				}
				pass.Reportf(call.Pos(), "append inside range over map: output order depends on map iteration; collect keys and sort first")
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if bt, ok := pass.TypeOf(n.Lhs[0]).(*types.Basic); ok && bt.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(), "string concatenation inside range over map: output depends on map iteration order")
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok && obj.Pkg() != nil &&
					obj.Pkg().Path() == "fmt" && obj.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(n.Pos(), "fmt.%s inside range over map: output order depends on map iteration; sort keys first", obj.Name())
				}
			}
		}
		return true
	})
}

func rangeVarObj(pass *Pass, key ast.Expr) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}

// appendsOnlyKey reports whether every appended element is exactly
// the range key variable (the collect-keys-then-sort idiom).
func appendsOnlyKey(pass *Pass, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, a := range call.Args[1:] {
		id, ok := a.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != keyObj {
			return false
		}
	}
	return true
}
