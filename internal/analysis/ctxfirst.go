package analysis

import (
	"go/ast"
	"go/types"
)

// ioPackages are the layers that talk to the network; their call
// graphs must be cancellable end to end, which is what PR 1's context
// plumbing established and this analyzer keeps established.
var ioPackages = []string{
	"softsoa/internal/broker",
	"softsoa/internal/soa",
}

// CtxFirst enforces the context conventions of the I/O layers: a
// context.Context parameter comes first, nobody mints a fresh root
// context with context.Background/TODO (only main and tests may), and
// exported functions that perform network I/O accept a context at
// all. HTTP handlers are exempt from the last rule: they inherit the
// request's context.
var CtxFirst = &Analyzer{
	Name:     "ctxfirst",
	Doc:      "context.Context first, no context.Background outside main/tests, ctx on exported I/O",
	Packages: ioPackages,
	Run:      runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok {
				checkCtxPosition(pass, fd)
				checkExportedIO(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if pass.IsFunc(id, "context", "Background") || pass.IsFunc(id, "context", "TODO") {
				pass.Reportf(id.Pos(), "context.%s outside main/tests: accept a context.Context from the caller", id.Name)
			}
			return true
		})
	}
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// paramTypes flattens the parameter list into one type per declared
// name (or one per anonymous field).
func paramTypes(pass *Pass, fd *ast.FuncDecl) []types.Type {
	var out []types.Type
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	params := paramTypes(pass, fd)
	for i, t := range params {
		if t != nil && isContextType(t) && i != 0 {
			pass.Reportf(fd.Name.Pos(), "%s: context.Context must be the first parameter", fd.Name.Name)
			return
		}
	}
}

// netIOCall reports whether the call performs network I/O directly:
// an http.Client round trip, a request construction, or a raw dial.
func netIOCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "net/http":
		switch obj.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "NewRequest":
			return "http." + obj.Name(), true
		}
	case "net":
		switch obj.Name() {
		case "Dial", "DialTimeout", "Listen", "ListenPacket":
			return "net." + obj.Name(), true
		}
	}
	return "", false
}

func checkExportedIO(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !fd.Name.IsExported() {
		return
	}
	params := paramTypes(pass, fd)
	for _, t := range params {
		if t == nil {
			continue
		}
		if isContextType(t) {
			return // has a context
		}
		// http.Handler-shaped functions inherit the request context.
		if p, ok := t.(*types.Pointer); ok {
			if n, ok := p.Elem().(*types.Named); ok && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == "Request" {
				return
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // goroutines/callbacks judged at their call sites
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, isIO := netIOCall(pass, call); isIO {
			pass.Reportf(call.Pos(), "%s calls %s but takes no context.Context: thread one through (use NewRequestWithContext for requests)", fd.Name.Name, name)
		}
		return true
	})
}
