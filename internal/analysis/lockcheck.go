package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the locking discipline PR 1 introduced around
// per-session SLA state: every mu.Lock() has a matching Unlock in the
// same function, and struct fields annotated "// guarded by <mu>" are
// only touched by functions that lock a mutex of that name (or are
// documented "<mu> held" helpers called under the lock). The check is
// flow-insensitive and name-based by design: it cannot prove critical
// sections correct, but it catches the common regression of a new
// code path reading guarded state lock-free.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "match Lock/Unlock pairs and keep `// guarded by <mu>` fields behind their mutex",
	Run:  runLockCheck,
}

var guardedRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// lockCall classifies a call as <path>.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the receiver path rendered
// as source text (e.g. "s.mu") plus the mutex field name.
func lockCall(pass *Pass, call *ast.CallExpr) (path, mu, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	obj, isFn := pass.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	recv := types.ExprString(sel.X)
	muName := recv
	if i := strings.LastIndex(recv, "."); i >= 0 {
		muName = recv[i+1:]
	}
	return recv, muName, obj.Name(), true
}

func runLockCheck(pass *Pass) {
	guarded := collectGuardedFields(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFuncLocks(pass, fd, guarded)
			}
		}
	}
}

// collectGuardedFields maps each field object annotated
// "// guarded by <mu>" to its mutex name.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// heldRe recognises the two doc-comment shapes that mark a function
// as running under a caller's lock: "... mu held" and "... holds
// e.mu" (with any receiver prefix).
var heldRe = regexp.MustCompile(`(?i)holds?\s+(?:\w+\.)*(\w+)|(\w+)\s+held`)

func checkFuncLocks(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	type lockSite struct {
		path, method string
		call         *ast.CallExpr
	}
	var locks []lockSite
	unlocked := make(map[string]bool) // path+"."+method
	heldMus := make(map[string]bool)  // mutex names locked anywhere in fd

	// Helpers documented as running under a caller's lock (a doc
	// comment saying e.g. "called with mu held") are exempt from the
	// guarded-field check for that mutex.
	if fd.Doc != nil {
		for _, m := range heldRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			for _, name := range m[1:] {
				if name != "" {
					heldMus[name] = true
				}
			}
		}
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, mu, method, ok := lockCall(pass, call)
		if !ok {
			return true
		}
		switch method {
		case "Lock", "RLock":
			locks = append(locks, lockSite{path, method, call})
			heldMus[mu] = true
		case "Unlock", "RUnlock":
			unlocked[path+"."+method] = true
		}
		return true
	})

	for _, l := range locks {
		want := "Unlock"
		if l.method == "RLock" {
			want = "RUnlock"
		}
		if !unlocked[l.path+"."+want] {
			pass.Reportf(l.call.Pos(), "%s.%s has no matching %s.%s in %s", l.path, l.method, l.path, want, fd.Name.Name)
		}
	}

	// Constructors are exempt: the value under construction has not
	// escaped yet, so its fields cannot be contended.
	if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new") {
		return
	}

	for _, sel := range guardedSelections(pass, fd, guarded) {
		mu := guarded[pass.Pkg.Info.Selections[sel].Obj()]
		if !heldMus[mu] {
			pass.Reportf(sel.Sel.Pos(), "%s accesses %s (guarded by %s) without locking %s",
				fd.Name.Name, sel.Sel.Name, mu, mu)
		}
	}
}

func guardedSelections(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) []*ast.SelectorExpr {
	var out []*ast.SelectorExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Pkg.Info.Selections[sel]
		if s == nil {
			return true
		}
		if _, isGuarded := guarded[s.Obj()]; isGuarded {
			out = append(out, sel)
		}
		return true
	})
	return out
}
