package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Analyzers are pure: they
// read type-checked packages and report findings, never mutating
// shared state, so a driver may run them in any order. An analyzer is
// either intraprocedural (Run, invoked once per package) or
// interprocedural (RunModule, invoked once with every loaded package
// and the module-wide call graph); exactly one of the two is set.
type Analyzer struct {
	// Name labels findings and is the key used by enable/disable
	// flags and //lint:ignore directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// equals an entry or is under an entry ending in "/...". Empty
	// means every package.
	Packages []string
	// Run inspects one package and reports findings via the pass.
	Run func(*Pass)
	// RunModule inspects the whole loaded module at once. Module
	// analyzers see every package regardless of Packages and restrict
	// themselves; they are handed the shared call graph so invariants
	// can be resolved through function calls.
	RunModule func(*ModulePass)
}

func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if pkgPath == rest || strings.HasPrefix(pkgPath, rest+"/") {
				return true
			}
		} else if pkgPath == p {
			return true
		}
	}
	return false
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Finding)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves an identifier to the object it uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// IsFunc reports whether id resolves to the function pkgPath.name
// (package-level functions only, e.g. time.Now or context.Background).
func (p *Pass) IsFunc(id *ast.Ident, pkgPath, name string) bool {
	obj, ok := p.ObjectOf(id).(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ModulePass carries one interprocedural analyzer's view of the whole
// loaded module: every package plus the shared call graph.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph
	report   func(Finding)
}

// Reportf records a finding at pos, which must belong to pkg's file
// set (all loaded packages share one).
func (m *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	m.report(Finding{
		Analyzer: m.Analyzer.Name,
		Pos:      pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the registered analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		CtxFirst,
		LockCheck,
		ErrCheck,
		GoHygiene,
		WriteCheck,
		AtomicCheck,
		LockOrder,
		LeakCheck,
		HotPath,
	}
}

// ignoreRe matches suppression directives. The analyzer name "all"
// silences every analyzer on the target line; the reason is
// mandatory — an unexplained suppression is itself a finding.
var ignoreRe = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(.+?))?\s*$`)

type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool // a finding was suppressed by this directive
}

// directivesFor collects //lint:ignore comments: a flat list in
// source order plus a per-file index keyed by the line each directive
// applies to — the comment's own line (trailing comments) and the
// following line (standalone comments above the flagged code). The
// index shares *directive values with the list so suppression usage
// is observable afterwards.
func directivesFor(pkg *Package, byFile map[string]map[int][]*directive) ([]*directive, []Finding) {
	var all []*directive
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				pos := pkg.Fset.Position(c.Pos())
				if m == nil || m[1] == "" || m[2] == "" {
					malformed = append(malformed, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				d := &directive{analyzer: m[1], reason: m[2], pos: pos}
				all = append(all, d)
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return all, malformed
}

// suppressor returns the directive silencing f, if any.
func suppressor(dirs map[string]map[int][]*directive, f Finding) *directive {
	for _, d := range dirs[f.Pos.Filename][f.Pos.Line] {
		if d.analyzer == f.Analyzer || d.analyzer == "all" {
			return d
		}
	}
	return nil
}

// Run applies each applicable analyzer to each package — and each
// module-level analyzer to the whole set at once — filters suppressed
// findings, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := run(pkgs, analyzers)
	return findings
}

// Suppression is one //lint:ignore directive observed during a run,
// and whether it earned its keep: Used is false when no finding of its
// analyzer landed on its line, which makes the directive stale — dead
// weight that silently licenses a future regression. Staleness is
// relative to the analyzers actually run.
type Suppression struct {
	Analyzer string         `json:"analyzer"`
	Reason   string         `json:"reason"`
	Pos      token.Position `json:"pos"`
	Used     bool           `json:"used"`
}

// RunWithSuppressions is Run plus the directive inventory, sorted by
// position — the raw material of the suppression-debt report.
func RunWithSuppressions(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Suppression) {
	findings, dirs := run(pkgs, analyzers)
	sups := make([]Suppression, len(dirs))
	for i, d := range dirs {
		sups[i] = Suppression{Analyzer: d.analyzer, Reason: d.reason, Pos: d.pos, Used: d.used}
	}
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return findings, sups
}

func run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []*directive) {
	// Directives are merged across packages so module-level findings
	// (attributed by position, not package) filter identically.
	dirs := make(map[string]map[int][]*directive)
	var all []*directive
	var out []Finding
	for _, pkg := range pkgs {
		ds, malformed := directivesFor(pkg, dirs)
		all = append(all, ds...)
		out = append(out, malformed...)
	}
	report := func(f Finding) {
		if d := suppressor(dirs, f); d != nil {
			d.used = true
			return
		}
		out = append(out, f)
	}
	var module []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			module = append(module, a)
			continue
		}
		for _, pkg := range pkgs {
			if !a.applies(pkg.Path) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, report: report})
		}
	}
	if len(module) > 0 {
		graph := BuildCallGraph(pkgs)
		for _, a := range module {
			a.RunModule(&ModulePass{Analyzer: a, Pkgs: pkgs, Graph: graph, report: report})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, all
}
