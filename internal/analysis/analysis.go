package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Analyzers are pure: they
// read a type-checked package and report findings, never mutating
// shared state, so a driver may run them in any order.
type Analyzer struct {
	// Name labels findings and is the key used by enable/disable
	// flags and //lint:ignore directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// equals an entry or is under an entry ending in "/...". Empty
	// means every package.
	Packages []string
	// Run inspects one package and reports findings via the pass.
	Run func(*Pass)
}

func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			if pkgPath == rest || strings.HasPrefix(pkgPath, rest+"/") {
				return true
			}
		} else if pkgPath == p {
			return true
		}
	}
	return false
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Finding)
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves an identifier to the object it uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// IsFunc reports whether id resolves to the function pkgPath.name
// (package-level functions only, e.g. time.Now or context.Background).
func (p *Pass) IsFunc(id *ast.Ident, pkgPath, name string) bool {
	obj, ok := p.ObjectOf(id).(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// All returns the registered analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		CtxFirst,
		LockCheck,
		ErrCheck,
		GoHygiene,
		WriteCheck,
	}
}

// ignoreRe matches suppression directives. The analyzer name "all"
// silences every analyzer on the target line; the reason is
// mandatory — an unexplained suppression is itself a finding.
var ignoreRe = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(.+?))?\s*$`)

type directive struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// directives collects //lint:ignore comments per file, keyed by the
// line they apply to: the comment's own line (trailing comments) and
// the following line (standalone comments above the flagged code).
func directivesFor(pkg *Package) (map[string]map[int][]directive, []Finding) {
	byFile := make(map[string]map[int][]directive)
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				pos := pkg.Fset.Position(c.Pos())
				if m == nil || m[1] == "" || m[2] == "" {
					malformed = append(malformed, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				d := directive{analyzer: m[1], reason: m[2], pos: c.Pos()}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return byFile, malformed
}

func suppressed(dirs map[string]map[int][]directive, f Finding) bool {
	for _, d := range dirs[f.Pos.Filename][f.Pos.Line] {
		if d.analyzer == f.Analyzer || d.analyzer == "all" {
			return true
		}
	}
	return false
}

// Run applies each applicable analyzer to each package, filters
// suppressed findings, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		dirs, malformed := directivesFor(pkg)
		out = append(out, malformed...)
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report: func(f Finding) {
					if !suppressed(dirs, f) {
						out = append(out, f)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
