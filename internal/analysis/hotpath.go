package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// hotpathDirective marks a function as an allocation-free zone.
const hotpathDirective = "//softsoa:hotpath"

// HotPath turns the solver's AllocsPerRun == 0 runtime assertion into
// a static proof that names the offending line. A function annotated
// //softsoa:hotpath — and every same-package function statically
// reachable from it — must not allocate: make, new and composite
// literals are flagged (unless sitting inside a cap/len grow-guard,
// the amortised free-list idiom), append must feed back into its own
// operand, function literals (closure allocation), any use of fmt or
// reflect, and interface boxing of concrete arguments are all
// findings. Cross-package callees are out of scope: the annotation is
// a package-local contract, and the packages a hot loop leans on
// (core semiring ops) carry their own annotations.
var HotPath = &Analyzer{
	Name:      "hotpath",
	Doc:       "//softsoa:hotpath functions and same-package callees must not allocate",
	RunModule: runHotPath,
}

// hasHotpathDirective reports whether the declaration's doc comment
// carries the //softsoa:hotpath pragma.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

func runHotPath(m *ModulePass) {
	keys := make([]string, 0, len(m.Graph.Funcs))
	for k := range m.Graph.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Scope: each annotated root plus its same-package callees,
	// transitively. scope maps the function to the root whose contract
	// pulled it in (first in key order wins — diagnostics only).
	scope := make(map[string]string)
	for _, k := range keys {
		fi := m.Graph.Funcs[k]
		if !hasHotpathDirective(fi.Decl) {
			continue
		}
		root := shortFuncKey(k)
		queue := []string{k}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if _, seen := scope[cur]; seen {
				continue
			}
			scope[cur] = root
			for _, callee := range m.Graph.Funcs[cur].Calls {
				cf := m.Graph.Funcs[callee]
				if cf != nil && cf.Pkg.Path == fi.Pkg.Path {
					queue = append(queue, callee)
				}
			}
		}
	}

	for _, k := range keys {
		if root, ok := scope[k]; ok {
			checkHotFunc(m, m.Graph.Funcs[k], root)
		}
	}
}

func checkHotFunc(m *ModulePass, fi *FuncInfo, root string) {
	pkg := fi.Pkg
	flag := func(n ast.Node, what string) {
		m.Reportf(pkg, n.Pos(), "%s in hot path (reached from %s %s)", what, hotpathDirective, root)
	}
	inspectWithStack(fi.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			flag(n, "function literal allocates its closure")
			return false
		case *ast.CompositeLit:
			if !growGuarded(pkg, stack) && !elementOfSelfAppend(pkg, stack) {
				flag(n, "composite literal allocates")
			}
			return false
		case *ast.CallExpr:
			checkHotCall(m, pkg, n, stack, flag)
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				if pn, ok := pkg.ObjectOf(id).(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "fmt", "reflect":
						flag(n, "use of "+pn.Imported().Path())
						return false
					}
				}
			}
		}
		return true
	})
}

func checkHotCall(m *ModulePass, pkg *Package, call *ast.CallExpr, stack []ast.Node, flag func(ast.Node, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				if !growGuarded(pkg, stack) {
					flag(call, id.Name+" allocates")
				}
			case "append":
				if !selfAppend(call, stack) {
					flag(call, "append grows a slice it does not own (result not reassigned to its operand)")
				}
			}
			return
		}
	}
	// Interface boxing: a concrete argument passed where the callee
	// takes an interface forces a heap-allocated box.
	sig, ok := pkg.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && !call.Ellipsis.IsValid():
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		// Type parameters satisfy IsInterface (their underlying is the
		// constraint) but generic calls compile to shape instantiations,
		// not boxing — and whether a type-param argument boxes depends
		// on the instantiation, which a static pass cannot see.
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		at := pkg.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if _, isTP := at.(*types.TypeParam); isTP {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		flag(arg, "interface boxing of concrete value")
	}
}

// elementOfSelfAppend reports whether the node is an argument of an
// exempt self-append — `x = append(x, T{...})` copies the literal into
// backing memory the function already owns, so it inherits the
// append's amortised-free status.
func elementOfSelfAppend(pkg *Package, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pkg.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	return selfAppend(call, stack[:len(stack)-1])
}

// growGuarded reports whether the allocation sits inside an if block
// whose condition consults cap() or len() — the amortised grow-guard
// idiom (`if cap(s) < n { s = make(...) }`), which is allocation-free
// in steady state and therefore exempt.
func growGuarded(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				if _, isBuiltin := pkg.ObjectOf(id).(*types.Builtin); isBuiltin {
					guarded = true
					return false
				}
			}
			return true
		})
		if guarded {
			return true
		}
	}
	return false
}

// selfAppend reports whether the append call feeds its result back
// into (a reslice of) its own first operand — `x = append(x, ...)` or
// `x = append(x[:0], ...)` — which only grows memory the function
// already owns and is amortised allocation-free.
func selfAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	asg, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || ast.Unparen(asg.Rhs[0]) != call {
		return false
	}
	src := rootIdentName(call.Args[0])
	if src == "" {
		return false
	}
	for _, lhs := range asg.Lhs {
		if rootIdentName(lhs) == src {
			return true
		}
	}
	return false
}

// rootIdentName descends through reslices and selectors to the
// left-most identifier path of an expression: `s.buf[:0]` → "s.buf".
func rootIdentName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SliceExpr:
		return rootIdentName(e.X)
	case *ast.IndexExpr:
		return rootIdentName(e.X)
	case *ast.SelectorExpr:
		if base := rootIdentName(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}
