package analysis

import (
	"strings"
	"testing"
)

func TestHotPath(t *testing.T) {
	runCases(t, HotPath, []analyzerCase{
		{
			name: "closure allocation",
			path: "softsoa/internal/solver",
			src: `package solver
//softsoa:hotpath
func run(xs []int) {
	f := func() {}
	f()
	_ = xs
}
`,
			want: []string{"[hotpath] function literal allocates its closure"},
		},
		{
			name: "composite literal",
			path: "softsoa/internal/solver",
			src: `package solver
//softsoa:hotpath
func mk() []int {
	return []int{1, 2}
}
`,
			want: []string{"composite literal allocates"},
		},
		{
			name: "append into a slice the function does not own",
			path: "softsoa/internal/solver",
			src: `package solver
//softsoa:hotpath
func collect(sink []int, v int) []int {
	out := append(sink, v)
	return out
}
`,
			want: []string{"append grows a slice it does not own"},
		},
		{
			name: "grow guard and self-append are amortised-free",
			path: "softsoa/internal/solver",
			src: `package solver
//softsoa:hotpath
func fill(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, 0, n)
	}
	buf = append(buf[:0], 0)
	for i := 1; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}
`,
			want: nil,
		},
		{
			name: "fmt use and the boxing it causes",
			path: "softsoa/internal/solver",
			src: `package solver
import "fmt"
//softsoa:hotpath
func trace(v int) string {
	return fmt.Sprint(v)
}
`,
			want: []string{"use of fmt", "interface boxing of concrete value"},
		},
		{
			name: "interface boxing at a call boundary",
			path: "softsoa/internal/solver",
			src: `package solver
//softsoa:hotpath
func box(v int) any { return toAny(v) }
func toAny(x any) any { return x }
`,
			want: []string{"interface boxing of concrete value"},
		},
		{
			name: "unannotated functions may allocate freely",
			path: "softsoa/internal/solver",
			src: `package solver
func colder(n int) []int {
	out := make([]int, n)
	return append(out, n)
}
`,
			want: nil,
		},
	})
}

// TestHotPathAllocInCallee is planted bug 4 of the detection matrix:
// the annotated function is itself clean, but a same-package callee
// allocates — the contract propagates through the call graph and the
// finding names both the offending line and the root that imposed it.
func TestHotPathAllocInCallee(t *testing.T) {
	pkg := loadFixtureFile(t, fixImp, "softsoa/internal/solver", "hotcallee.go", `package solver

//softsoa:hotpath
func inner(xs []int) int {
	s := 0
	for _, x := range xs {
		s += helper(x)
	}
	return s
}

func helper(x int) int {
	buf := make([]int, 1)
	buf[0] = x
	return buf[0]
}
`)
	findings := Run([]*Package{pkg}, []*Analyzer{HotPath})
	if len(findings) != 1 {
		t.Fatalf("want exactly the callee allocation, got %v", findings)
	}
	mustFind(t, findings, "hotpath", "hotcallee.go", 13, "make allocates")
	if !strings.Contains(findings[0].Message, "inner") {
		t.Errorf("message %q should name the root that imposed the contract", findings[0].Message)
	}
}
