package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the import path (e.g. softsoa/internal/broker).
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution tables.
	Info *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// Load discovers, parses and type-checks every package of the module
// rooted at root whose directory matches one of the patterns.
// Patterns follow the go tool's shape relative to the module root:
// "./..." (everything), "./dir/..." (a subtree) or "./dir" (one
// package). Test files are not loaded — the invariants the suite
// checks are production-code invariants, and tests are free to use
// wall clocks, context.Background and global randomness.
func Load(root string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := matchDirs(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// The stdlib "source" importer type-checks dependencies (both
	// stdlib and module-internal) from source via go/build, keeping
	// the tool free of golang.org/x/tools.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		bp, err := build.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		if len(bp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		conf := types.Config{Importer: imp}
		info := newInfo()
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// matchDirs expands the patterns into the sorted set of candidate
// package directories under root.
func matchDirs(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	set := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(root, strings.TrimSuffix(rest, "/"))
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				set[p] = true
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			set[filepath.Join(root, pat)] = true
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
