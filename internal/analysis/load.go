package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the import path (e.g. softsoa/internal/broker).
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution tables.
	Info *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ObjectOf resolves an identifier to the object it uses or defines.
func (p *Package) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// TypeOf returns the static type of e, or nil.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// FuncKey is the module-wide identity of a function or method: the
// declared (generic-origin) *types.Func rendered by FullName, e.g.
// "softsoa/internal/solver.newPlan" or
// "(*softsoa/internal/broker.Server).Flush". Keys are strings rather
// than objects because each loaded package type-checks its imports
// through the source importer independently, so the same function is
// represented by distinct objects in different packages; its FullName
// is identical everywhere.
func FuncKey(obj *types.Func) string {
	if o := obj.Origin(); o != nil {
		obj = o
	}
	return obj.FullName()
}

// CalleeKey resolves a call expression to the FuncKey of its static
// callee — a package-level function, a method on a concrete receiver,
// or an interface method (useful for naming, though interface methods
// never appear as call-graph nodes). It reports false for calls it
// cannot resolve statically: function values, builtins, conversions.
func (p *Package) CalleeKey(call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj, ok := p.ObjectOf(id).(*types.Func)
	if !ok {
		return "", false
	}
	return FuncKey(obj), true
}

// FuncInfo is one declared function of the module in the call graph.
type FuncInfo struct {
	// Key is the function's FuncKey.
	Key string
	// Decl is the declaration, body included.
	Decl *ast.FuncDecl
	// Pkg is the package declaring the function.
	Pkg *Package
	// Calls holds the FuncKeys of every statically resolved call in
	// the body, in source order, duplicates kept. Keys of functions
	// outside the loaded module (stdlib, interface methods) appear
	// here but have no FuncInfo of their own.
	Calls []string
}

// CallGraph is the module-wide static call graph: every declared
// function and method of the loaded packages, with edges for calls
// whose callee resolves statically. Interface dispatch and function
// values are not resolved — analyzers built on the graph are
// deliberately may-miss rather than may-misreport.
type CallGraph struct {
	// Funcs maps FuncKey to the declared function.
	Funcs map[string]*FuncInfo
}

// BuildCallGraph constructs the call graph over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: make(map[string]*FuncInfo)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Key: FuncKey(obj), Decl: fd, Pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if key, ok := pkg.CalleeKey(call); ok {
							fi.Calls = append(fi.Calls, key)
						}
					}
					return true
				})
				g.Funcs[fi.Key] = fi
			}
		}
	}
	return g
}

// ModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// Load discovers, parses and type-checks every package of the module
// rooted at root whose directory matches one of the patterns.
// Patterns follow the go tool's shape relative to the module root:
// "./..." (everything), "./dir/..." (a subtree) or "./dir" (one
// package). Test files are not loaded — the invariants the suite
// checks are production-code invariants, and tests are free to use
// wall clocks, context.Background and global randomness.
func Load(root string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := matchDirs(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// The stdlib "source" importer type-checks dependencies (both
	// stdlib and module-internal) from source via go/build, keeping
	// the tool free of golang.org/x/tools.
	imp := importer.ForCompiler(fset, "source", nil)

	// Discovery and parsing fan out across the packages (token.FileSet
	// is safe for concurrent AddFile); type-checking stays serial in
	// sorted directory order because the shared source importer caches
	// dependency packages without locking.
	parsed := make([]parsedDir, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, dir := range dirs {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			parsed[i] = parseDir(fset, dir)
		}()
	}
	wg.Wait()

	var pkgs []*Package
	for i, dir := range dirs {
		p := parsed[i]
		if p.err != nil {
			return nil, p.err
		}
		if len(p.files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		conf := types.Config{Importer: imp}
		info := newInfo()
		tpkg, err := conf.Check(path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   dir,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// parsedDir is one candidate directory's parse result.
type parsedDir struct {
	files []*ast.File
	err   error
}

// parseDir discovers and parses the non-test sources of one directory;
// a directory without Go files yields no files and no error.
func parseDir(fset *token.FileSet, dir string) parsedDir {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return parsedDir{}
		}
		return parsedDir{err: fmt.Errorf("analysis: %s: %w", dir, err)}
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return parsedDir{err: err}
		}
		files = append(files, f)
	}
	return parsedDir{files: files}
}

// matchDirs expands the patterns into the sorted set of candidate
// package directories under root.
func matchDirs(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	set := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(root, strings.TrimSuffix(rest, "/"))
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				set[p] = true
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			set[filepath.Join(root, pat)] = true
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}
