package analysis

import "testing"

func TestWriteCheck(t *testing.T) {
	runCases(t, WriteCheck, []analyzerCase{
		{
			name: "bare WriteFile flagged",
			path: "softsoa/internal/broker/store",
			src: `package store
import "os"
func save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`,
			want: []string{"os.WriteFile outside atomicWriteFile"},
		},
		{
			name: "bare Rename flagged",
			path: "softsoa/internal/broker/store",
			src: `package store
import "os"
func swap(old, new string) error {
	return os.Rename(old, new)
}
`,
			want: []string{"os.Rename outside atomicWriteFile"},
		},
		{
			name: "bare Create and CreateTemp flagged",
			path: "softsoa/internal/broker/store",
			src: `package store
import "os"
func open(dir string) error {
	if _, err := os.Create(dir + "/state"); err != nil {
		return err
	}
	_, err := os.CreateTemp(dir, "tmp-*")
	return err
}
`,
			want: []string{
				"os.Create outside atomicWriteFile",
				"os.CreateTemp outside atomicWriteFile",
			},
		},
		{
			name: "the atomic helper itself is allowed",
			path: "softsoa/internal/broker/store",
			src: `package store
import "os"
func atomicWriteFile(path string, data []byte) error {
	f, err := os.CreateTemp(".", "tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}
`,
		},
		{
			name: "append-mode OpenFile and Truncate are allowed",
			path: "softsoa/internal/broker/store",
			src: `package store
import "os"
func appendTo(path string, n int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Truncate(path, n)
}
`,
		},
		{
			name: "store package only",
			path: "softsoa/internal/workload",
			src: `package workload
import "os"
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`,
		},
	})
}
