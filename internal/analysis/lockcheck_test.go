package analysis

import "testing"

func TestLockCheck(t *testing.T) {
	runCases(t, LockCheck, []analyzerCase{
		{
			name: "lock without unlock flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct{ mu sync.Mutex }
func (s *S) Leak() { s.mu.Lock() }
`,
			want: []string{"s.mu.Lock has no matching s.mu.Unlock in Leak"},
		},
		{
			name: "deferred unlock pairs",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct{ mu sync.Mutex; n int }
func (s *S) Inc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}
`,
		},
		{
			name: "rlock needs runlock not unlock",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct{ mu sync.RWMutex }
func (s *S) Peek() {
	s.mu.RLock()
	s.mu.Unlock()
}
`,
			want: []string{"s.mu.RLock has no matching s.mu.RUnlock in Peek"},
		},
		{
			name: "guarded field access without lock flagged",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
func (s *S) Read() int { return s.n }
`,
			want: []string{"Read accesses n (guarded by mu) without locking mu"},
		},
		{
			name: "guarded field access under lock is fine",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
func (s *S) Read() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
`,
		},
		{
			name: "documented under-lock helper is exempt",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
// bump increments the counter. Callers hold s.mu.
func (s *S) bump() { s.n++ }
`,
		},
		{
			name: "constructor is exempt",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}
func NewS() *S { return &S{n: 1} }
`,
		},
		{
			name: "unguarded field is free",
			path: "softsoa/internal/broker",
			src: `package broker
import "sync"
type S struct {
	mu sync.Mutex
	n  int
}
func (s *S) Read() int { return s.n }
`,
		},
	})
}
