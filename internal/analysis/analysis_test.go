package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// Shared across fixtures so stdlib packages (context, sync, net/http)
// are source-type-checked once per test process.
var (
	fixFset = token.NewFileSet()
	fixImp  = importer.ForCompiler(fixFset, "source", nil)
)

// loadFixture type-checks one in-memory file as a package with the
// given import path (the path determines which analyzers apply).
func loadFixture(t *testing.T, path, src string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fixFset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	conf := types.Config{Importer: fixImp}
	info := newInfo()
	tpkg, err := conf.Check(path, fixFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{Path: path, Dir: ".", Fset: fixFset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// analyzerCase is one table entry: a fixture plus the findings it
// must produce, matched by substring. An empty want list asserts the
// fixture is clean.
type analyzerCase struct {
	name string
	path string // import path for the fixture package
	src  string
	want []string
}

func runCases(t *testing.T, a *Analyzer, cases []analyzerCase) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.path, tc.src)
			findings := Run([]*Package{pkg}, []*Analyzer{a})
			var got []string
			for _, f := range findings {
				got = append(got, f.String())
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d finding(s), want %d:\n%s", len(got), len(tc.want), strings.Join(got, "\n"))
			}
			for i, w := range tc.want {
				if !strings.Contains(got[i], w) {
					t.Errorf("finding %d = %q, want substring %q", i, got[i], w)
				}
			}
		})
	}
}

func TestSuppressionDirectives(t *testing.T) {
	src := `package solver
import "time"
// A standalone directive above the line suppresses the finding.
//lint:ignore determinism timing is telemetry only here
var now = time.Now

var later = time.Now //lint:ignore determinism trailing directive

var naked = time.Now
`
	pkg := loadFixture(t, "softsoa/internal/solver", src)
	findings := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if len(findings) != 1 {
		t.Fatalf("want exactly the unsuppressed finding, got %v", findings)
	}
	if findings[0].Pos.Line != 9 {
		t.Errorf("finding at line %d, want 9 (the naked use)", findings[0].Pos.Line)
	}
}

func TestMalformedDirectiveIsAFinding(t *testing.T) {
	src := `package solver
//lint:ignore determinism
var x = 1
`
	pkg := loadFixture(t, "softsoa/internal/solver", src)
	findings := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "malformed") {
		t.Fatalf("want a malformed-directive finding, got %v", findings)
	}
	if findings[0].Analyzer != "lint" {
		t.Errorf("malformed directive attributed to %q, want \"lint\"", findings[0].Analyzer)
	}
}

func TestIgnoreAllSuppressesEveryAnalyzer(t *testing.T) {
	src := `package solver
import "time"
var now = time.Now //lint:ignore all fixture exercising the wildcard
`
	pkg := loadFixture(t, "softsoa/internal/solver", src)
	if findings := Run([]*Package{pkg}, []*Analyzer{Determinism}); len(findings) != 0 {
		t.Fatalf("want no findings, got %v", findings)
	}
}

func TestPackageFiltering(t *testing.T) {
	// The same wall-clock use is a finding in a pure package and
	// silently fine in an unlisted one.
	src := `package x
import "time"
var now = time.Now
`
	pure := loadFixture(t, "softsoa/internal/solver", src)
	impure := loadFixture(t, "softsoa/internal/workload", src)
	if findings := Run([]*Package{pure}, []*Analyzer{Determinism}); len(findings) != 1 {
		t.Fatalf("pure package: want 1 finding, got %v", findings)
	}
	if findings := Run([]*Package{impure}, []*Analyzer{Determinism}); len(findings) != 0 {
		t.Fatalf("unlisted package: want no findings, got %v", findings)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	src := `package solver
import "time"
var b = time.Now
var a = time.Now
`
	pkg := loadFixture(t, "softsoa/internal/solver", src)
	findings := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if len(findings) != 2 || findings[0].Pos.Line > findings[1].Pos.Line {
		t.Fatalf("findings not position-sorted: %v", findings)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "determinism", Message: "m"}
	f.Pos = token.Position{Filename: "x.go", Line: 3, Column: 7}
	if got, want := f.String(), "x.go:3:7: [determinism] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAnalyzerAppliesPrefixes(t *testing.T) {
	a := &Analyzer{Packages: []string{"softsoa/internal/broker", "softsoa/internal/x/..."}}
	for path, want := range map[string]bool{
		"softsoa/internal/broker":     true,
		"softsoa/internal/brokerette": false,
		"softsoa/internal/x":          true,
		"softsoa/internal/x/y":        true,
		"softsoa/internal/xy":         false,
	} {
		if got := a.applies(path); got != want {
			t.Errorf("applies(%q) = %v, want %v", path, got, want)
		}
	}
	if all := (&Analyzer{}); !all.applies("anything") {
		t.Error("empty Packages must apply everywhere")
	}
}

func ExampleFinding_String() {
	f := Finding{Analyzer: "errcheck", Message: "error discarded"}
	f.Pos = token.Position{Filename: "a.go", Line: 1, Column: 1}
	fmt.Println(f)
	// Output: a.go:1:1: [errcheck] error discarded
}
