package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrCheck enforces the error discipline the dependability layer
// depends on: no error return is silently discarded (a deliberate
// discard needs a //lint:ignore errcheck <reason>), and fmt.Errorf
// that carries an underlying error wraps it with %w so errors.Is/As
// keep seeing through broker and solver error chains.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "no silently discarded errors; fmt.Errorf wraps underlying errors with %w",
	Run:  runErrCheck,
}

func errorType() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType())
}

func runErrCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkDiscards(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call)
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call)
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// checkDiscards flags assignments of an error value to the blank
// identifier, in both the one-to-one form (`_ = f()`, `a, _ := g()`)
// and the tuple form (`v, _ := f()` with f returning (T, error)).
func checkDiscards(pass *Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(as.Rhs) == len(as.Lhs):
			t = pass.TypeOf(as.Rhs[i])
		case len(as.Rhs) == 1:
			// Only calls count: `v, _ := x.(T)` and friends discard a
			// comma-ok value, not an error return.
			if _, isCall := as.Rhs[0].(*ast.CallExpr); !isCall {
				continue
			}
			tup, ok := pass.TypeOf(as.Rhs[0]).(*types.Tuple)
			if !ok || i >= tup.Len() {
				continue
			}
			t = tup.At(i).Type()
		}
		if isErrorType(t) {
			pass.Reportf(id.Pos(), "error discarded with _: handle it or add //lint:ignore errcheck <reason>")
		}
	}
}

// droppedCallExempt lists calls whose error return is ignored by
// near-universal Go convention: printing to the process's own
// stdout/stderr, writes to in-memory buffers (infallible), and writes
// to a *bufio.Writer, whose error is sticky and surfaces at Flush —
// a dropped Flush error is still flagged.
func droppedCallExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if obj.Pkg().Path() == "fmt" && sig.Recv() == nil {
		name := obj.Name()
		if strings.HasPrefix(name, "Print") {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return stdStream(pass, call.Args[0]) || inMemoryWriter(pass.TypeOf(call.Args[0]))
		}
	}
	if obj.Name() == "Flush" {
		return false // Flush surfaces the sticky error; never drop it
	}
	if recv := sig.Recv(); recv != nil && inMemoryWriter(recv.Type()) {
		return true
	}
	return false
}

func stdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

func inMemoryWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer", "tabwriter.Writer":
		return true
	}
	return false
}

// checkDroppedCall flags statement-position calls that return an
// error nobody looks at.
func checkDroppedCall(pass *Pass, call *ast.CallExpr) {
	t := pass.TypeOf(call)
	if t == nil {
		return
	}
	returnsError := false
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				returnsError = true
			}
		}
	default:
		returnsError = isErrorType(t)
	}
	if !returnsError || droppedCallExempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "call drops its error result: handle it or add //lint:ignore errcheck <reason>")
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument with %v or %s instead of wrapping it with %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !pass.IsFunc(sel.Sel, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if !isErrorType(pass.TypeOf(arg)) {
			continue
		}
		if v := verbs[i]; v == 'v' || v == 's' {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats an error with %%%c: wrap it with %%w so errors.Is/As can unwrap", v)
		}
	}
}

// formatVerbs extracts the verb letters of a Printf-style format in
// argument order, skipping %% and flag/width/precision characters.
// Explicit argument indexes (%[1]s) are rare here and unsupported;
// formats using them are skipped entirely.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i < len(format) {
			if format[i] == '[' {
				return nil
			}
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
