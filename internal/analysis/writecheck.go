package analysis

import "go/ast"

// WriteCheck enforces the durable-store write discipline: inside
// softsoa/internal/broker/store, state files may only be created or
// replaced through the atomic write helper (temp file in the same
// directory, fsync, rename, directory fsync). A bare os.WriteFile or
// os.Rename anywhere else in the package can leave a half-written
// snapshot or WAL visible after a crash, which is exactly the failure
// class the store exists to rule out. Append-mode os.OpenFile handles
// and os.Truncate (tail repair in place) remain allowed: neither
// creates a file another process could observe half-written under the
// store's recovery protocol.
var WriteCheck = &Analyzer{
	Name:     "writecheck",
	Doc:      "broker/store creates and replaces state files only via the atomic write helper",
	Packages: []string{"softsoa/internal/broker/store"},
	Run:      runWriteCheck,
}

// atomicHelper is the one function allowed to call the raw
// file-creation and rename primitives.
const atomicHelper = "atomicWriteFile"

// rawWriteFuncs are the os functions that create or replace a file
// non-atomically with respect to a crash.
var rawWriteFuncs = []string{"WriteFile", "Rename", "Create", "CreateTemp"}

func runWriteCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == atomicHelper {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				for _, name := range rawWriteFuncs {
					if pass.IsFunc(sel.Sel, "os", name) {
						pass.Reportf(call.Pos(),
							"%s: os.%s outside %s: write state files via the atomic helper (temp + fsync + rename)",
							fd.Name.Name, name, atomicHelper)
						return true
					}
				}
				return true
			})
		}
	}
}
