package workload

// BenchParams returns the graded random-SCSP instance grid that
// cmd/softsoa-bench solves to measure search throughput and parallel
// speedup: instances vary variables, domain size and density, with
// fixed seeds so every run (and every machine) solves the same
// problems. short selects the subset small enough for CI.
func BenchParams(short bool) []SCSPParams {
	grid := []SCSPParams{
		{Vars: 8, DomainSize: 3, Density: 0.4, Tightness: 0.7, Seed: 101},
		{Vars: 10, DomainSize: 3, Density: 0.4, Tightness: 0.7, Seed: 102},
	}
	if !short {
		grid = append(grid,
			SCSPParams{Vars: 12, DomainSize: 3, Density: 0.3, Tightness: 0.8, Seed: 103},
			SCSPParams{Vars: 10, DomainSize: 4, Density: 0.5, Tightness: 0.8, Seed: 104},
			SCSPParams{Vars: 12, DomainSize: 4, Density: 0.5, Tightness: 0.9, Seed: 105},
		)
	}
	return grid
}
