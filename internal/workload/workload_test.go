package workload

import (
	"testing"

	"softsoa/internal/soa"
)

func TestCostCatalog(t *testing.T) {
	reg := soa.NewRegistry()
	p := CatalogParams{Stages: 3, ProvidersPerStage: 4, Regions: 2, Seed: 1}
	if err := CostCatalog(reg, p); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 12 {
		t.Fatalf("registrations = %d, want 12", reg.Len())
	}
	for _, stage := range p.StageNames() {
		docs := reg.Discover(stage)
		if len(docs) != 4 {
			t.Fatalf("stage %s has %d providers", stage, len(docs))
		}
		for _, d := range docs {
			attr, ok := d.Attr(soa.MetricCost)
			if !ok {
				t.Fatalf("provider %s lacks cost attribute", d.Provider)
			}
			if attr.Base < 1 || attr.Base >= 20 {
				t.Errorf("base fee %v outside [1,20)", attr.Base)
			}
			if d.Region == "" {
				t.Errorf("provider %s has no region", d.Provider)
			}
		}
	}
}

func TestReliabilityCatalog(t *testing.T) {
	reg := soa.NewRegistry()
	p := CatalogParams{Stages: 2, ProvidersPerStage: 3, Regions: 3, Seed: 2}
	if err := ReliabilityCatalog(reg, p); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 6 {
		t.Fatalf("registrations = %d, want 6", reg.Len())
	}
	for _, d := range reg.Discover("stage0") {
		attr, ok := d.Attr(soa.MetricReliability)
		if !ok {
			t.Fatalf("provider %s lacks reliability attribute", d.Provider)
		}
		if attr.Base < 70 || attr.Base >= 95 {
			t.Errorf("base reliability %v outside [70,95)", attr.Base)
		}
	}
}

func TestCatalogDeterminism(t *testing.T) {
	p := CatalogParams{Stages: 2, ProvidersPerStage: 2, Regions: 2, Seed: 9}
	r1, r2 := soa.NewRegistry(), soa.NewRegistry()
	if err := CostCatalog(r1, p); err != nil {
		t.Fatal(err)
	}
	if err := CostCatalog(r2, p); err != nil {
		t.Fatal(err)
	}
	d1 := r1.Discover("stage0")
	d2 := r2.Discover("stage0")
	for i := range d1 {
		if d1[i].Attributes[0].Base != d2[i].Attributes[0].Base || d1[i].Region != d2[i].Region {
			t.Fatal("same seed must generate the same catalogue")
		}
	}
}

func TestCatalogValidation(t *testing.T) {
	reg := soa.NewRegistry()
	for name, p := range map[string]CatalogParams{
		"no stages":    {Stages: 0, ProvidersPerStage: 1, Regions: 1},
		"no providers": {Stages: 1, ProvidersPerStage: 0, Regions: 1},
		"no regions":   {Stages: 1, ProvidersPerStage: 1, Regions: 0},
	} {
		if err := CostCatalog(reg, p); err == nil {
			t.Errorf("%s: expected error", name)
		}
		if err := ReliabilityCatalog(reg, p); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
