package workload

import (
	"fmt"
	"math/rand"

	"softsoa/internal/soa"
)

// CatalogParams controls random QoS catalogue generation for the
// composition benchmarks (E11).
type CatalogParams struct {
	// Stages is the number of abstract pipeline services.
	Stages int
	// ProvidersPerStage is the number of providers registered per
	// service.
	ProvidersPerStage int
	// Regions is the number of deployment regions providers are
	// spread over.
	Regions int
	// Seed drives all randomness.
	Seed int64
}

func (p CatalogParams) validate() error {
	if p.Stages <= 0 || p.ProvidersPerStage <= 0 {
		return fmt.Errorf("workload: need positive Stages and ProvidersPerStage, got %d/%d",
			p.Stages, p.ProvidersPerStage)
	}
	if p.Regions <= 0 {
		return fmt.Errorf("workload: need at least one region, got %d", p.Regions)
	}
	return nil
}

// StageNames returns the abstract service names of the catalogue.
func (p CatalogParams) StageNames() []string {
	out := make([]string, p.Stages)
	for i := range out {
		out[i] = fmt.Sprintf("stage%d", i)
	}
	return out
}

// CostCatalog populates the registry with cost-metric providers:
// base fees in [1,20), per-unit fees in [0,3), resource "load" with
// up to 5 units.
func CostCatalog(reg *soa.Registry, p CatalogParams) error {
	if err := p.validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for s, stage := range p.StageNames() {
		for j := 0; j < p.ProvidersPerStage; j++ {
			doc := &soa.Document{
				Service:  stage,
				Provider: fmt.Sprintf("prov-%d-%d", s, j),
				Region:   fmt.Sprintf("region%d", rng.Intn(p.Regions)),
				Attributes: []soa.Attribute{{
					Name:     "fee",
					Metric:   soa.MetricCost,
					Base:     1 + 19*rng.Float64(),
					PerUnit:  3 * rng.Float64(),
					Resource: "load",
					MaxUnits: 5,
				}},
			}
			if err := reg.Publish(doc); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReliabilityCatalog populates the registry with reliability-metric
// providers: base reliability in [70,95)%, +0–5% per extra processor.
func ReliabilityCatalog(reg *soa.Registry, p CatalogParams) error {
	if err := p.validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for s, stage := range p.StageNames() {
		for j := 0; j < p.ProvidersPerStage; j++ {
			doc := &soa.Document{
				Service:  stage,
				Provider: fmt.Sprintf("prov-%d-%d", s, j),
				Region:   fmt.Sprintf("region%d", rng.Intn(p.Regions)),
				Attributes: []soa.Attribute{{
					Name:     "uptime",
					Metric:   soa.MetricReliability,
					Base:     70 + 25*rng.Float64(),
					PerUnit:  5 * rng.Float64(),
					Resource: "processors",
					MaxUnits: 4,
				}},
			}
			if err := reg.Publish(doc); err != nil {
				return err
			}
		}
	}
	return nil
}
