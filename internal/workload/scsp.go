// Package workload generates deterministic, seeded synthetic
// workloads for the test and benchmark harnesses: random SCSPs with
// controlled size/density/tightness, QoS provider catalogues, and
// negotiation scenarios. The paper evaluates on hand-worked examples
// only; these generators provide the scaling workloads behind
// experiments E10–E12 of EXPERIMENTS.md.
package workload

import (
	"fmt"
	"math/rand"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// SCSPParams controls random SCSP generation.
type SCSPParams struct {
	// Vars is the number of variables.
	Vars int
	// DomainSize is the size of every variable's domain.
	DomainSize int
	// Density is the fraction of variable pairs carrying a binary
	// constraint, in [0,1].
	Density float64
	// Tightness is the fraction of tuples receiving a non-One value,
	// in [0,1]. Higher is more constrained.
	Tightness float64
	// Seed drives all randomness; equal params yield equal problems.
	Seed int64
}

func (p SCSPParams) validate() error {
	if p.Vars <= 0 || p.DomainSize <= 0 {
		return fmt.Errorf("workload: need positive Vars and DomainSize, got %d/%d", p.Vars, p.DomainSize)
	}
	if p.Density < 0 || p.Density > 1 || p.Tightness < 0 || p.Tightness > 1 {
		return fmt.Errorf("workload: Density/Tightness must be in [0,1], got %v/%v", p.Density, p.Tightness)
	}
	return nil
}

// RandomFuzzySCSP generates a random fuzzy SCSP: every variable gets
// a unary preference constraint, and each pair carries a binary
// constraint with probability Density. Tight tuples get a random
// preference in [0,1); the rest get 1. The first variable is the
// variable of interest.
func RandomFuzzySCSP(p SCSPParams) (*core.Problem[float64], error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	gen := func() float64 { return float64(rng.Intn(100)) / 100 }
	return randomSCSP[float64](p, rng, semiring.Fuzzy{}, gen)
}

// RandomWeightedSCSP generates a random weighted SCSP with integer
// costs in [1,20] on tight tuples and 0 elsewhere.
func RandomWeightedSCSP(p SCSPParams) (*core.Problem[float64], error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	gen := func() float64 { return float64(1 + rng.Intn(20)) }
	return randomSCSP[float64](p, rng, semiring.Weighted{}, gen)
}

// RandomSCSP generates a random SCSP over an arbitrary semiring:
// every variable gets a unary constraint, each variable pair carries
// a binary constraint with probability Density, and tight tuples draw
// their value from tightValue (the rest get One). It is the generic
// constructor behind RandomFuzzySCSP/RandomWeightedSCSP, exported so
// property suites can sweep every shipped semiring with one
// generator. The first variable is the variable of interest.
func RandomSCSP[T any](
	p SCSPParams,
	sr semiring.Semiring[T],
	tightValue func(rng *rand.Rand) T,
) (*core.Problem[T], error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	return randomSCSP[T](p, rng, sr, func() T { return tightValue(rng) })
}

func randomSCSP[T any](
	p SCSPParams,
	rng *rand.Rand,
	sr semiring.Semiring[T],
	tightValue func() T,
) (*core.Problem[T], error) {
	s := core.NewSpace[T](sr)
	vars := make([]core.Variable, p.Vars)
	for i := range vars {
		vars[i] = s.AddVariable(core.Variable(fmt.Sprintf("v%d", i)), core.IntDomain(0, p.DomainSize-1))
	}
	prob := core.NewProblem(s, vars[0])
	for _, v := range vars {
		v := v
		prob.Add(core.NewConstraint(s, []core.Variable{v}, func(core.Assignment) T {
			if rng.Float64() < p.Tightness {
				return tightValue()
			}
			return sr.One()
		}))
	}
	for i := 0; i < p.Vars; i++ {
		for j := i + 1; j < p.Vars; j++ {
			if rng.Float64() >= p.Density {
				continue
			}
			x, y := vars[i], vars[j]
			prob.Add(core.NewConstraint(s, []core.Variable{x, y}, func(core.Assignment) T {
				if rng.Float64() < p.Tightness {
					return tightValue()
				}
				return sr.One()
			}))
		}
	}
	return prob, nil
}

// ChainWeightedSCSP generates a path-structured weighted SCSP
// (v0—v1—…—vn), whose induced width is 1: the showcase for variable
// elimination in experiment E10.
func ChainWeightedSCSP(vars, domainSize int, seed int64) (*core.Problem[float64], error) {
	if vars <= 0 || domainSize <= 0 {
		return nil, fmt.Errorf("workload: need positive vars/domainSize, got %d/%d", vars, domainSize)
	}
	rng := rand.New(rand.NewSource(seed))
	sr := semiring.Weighted{}
	s := core.NewSpace[float64](sr)
	names := make([]core.Variable, vars)
	for i := range names {
		names[i] = s.AddVariable(core.Variable(fmt.Sprintf("v%d", i)), core.IntDomain(0, domainSize-1))
	}
	prob := core.NewProblem(s, names[0])
	for i := 0; i+1 < vars; i++ {
		x, y := names[i], names[i+1]
		prob.Add(core.NewConstraint(s, []core.Variable{x, y}, func(core.Assignment) float64 {
			return float64(rng.Intn(10))
		}))
	}
	return prob, nil
}
