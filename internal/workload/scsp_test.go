package workload

import (
	"testing"

	"softsoa/internal/core"
)

func TestRandomFuzzyStructure(t *testing.T) {
	p, err := RandomFuzzySCSP(SCSPParams{
		Vars: 5, DomainSize: 3, Density: 1, Tightness: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Space().NumVariables(); got != 5 {
		t.Errorf("vars = %d", got)
	}
	// Full density: 5 unary + C(5,2)=10 binary constraints.
	if got := len(p.Constraints()); got != 15 {
		t.Errorf("constraints = %d, want 15", got)
	}
	for _, v := range p.Space().Variables() {
		if got := len(p.Space().Domain(v)); got != 3 {
			t.Errorf("domain of %s = %d", v, got)
		}
	}
	if con := p.Con(); len(con) != 1 || con[0] != "v0" {
		t.Errorf("con = %v", con)
	}
}

func TestZeroDensityHasOnlyUnaries(t *testing.T) {
	p, err := RandomWeightedSCSP(SCSPParams{
		Vars: 4, DomainSize: 2, Density: 0, Tightness: 0.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Constraints()); got != 4 {
		t.Errorf("constraints = %d, want 4 unaries", got)
	}
}

func TestZeroTightnessIsFree(t *testing.T) {
	p, err := RandomWeightedSCSP(SCSPParams{
		Vars: 4, DomainSize: 3, Density: 1, Tightness: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple gets the One: the whole problem costs 0.
	if got := p.Blevel(); got != 0 {
		t.Errorf("blevel = %v, want 0", got)
	}
}

func TestWeightedValuesInRange(t *testing.T) {
	p, err := RandomWeightedSCSP(SCSPParams{
		Vars: 3, DomainSize: 3, Density: 1, Tightness: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Constraints() {
		c.ForEach(func(_ core.Assignment, v float64) {
			if v < 1 || v > 20 {
				t.Errorf("cost %v outside [1,20]", v)
			}
		})
	}
}

func TestFuzzyValuesInRange(t *testing.T) {
	p, err := RandomFuzzySCSP(SCSPParams{
		Vars: 3, DomainSize: 3, Density: 1, Tightness: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Constraints() {
		c.ForEach(func(_ core.Assignment, v float64) {
			if v < 0 || v >= 1 {
				t.Errorf("preference %v outside [0,1)", v)
			}
		})
	}
}

func TestChainStructure(t *testing.T) {
	p, err := ChainWeightedSCSP(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cs := p.Constraints()
	if len(cs) != 5 {
		t.Fatalf("chain constraints = %d, want 5", len(cs))
	}
	for i, c := range cs {
		sc := c.Scope()
		if len(sc) != 2 {
			t.Fatalf("constraint %d arity %d", i, len(sc))
		}
	}
}

func TestSCSPValidationErrors(t *testing.T) {
	bad := []SCSPParams{
		{Vars: 0, DomainSize: 2},
		{Vars: 2, DomainSize: 0},
		{Vars: 2, DomainSize: 2, Density: -0.1},
		{Vars: 2, DomainSize: 2, Tightness: 1.1},
	}
	for i, p := range bad {
		if _, err := RandomFuzzySCSP(p); err == nil {
			t.Errorf("case %d: fuzzy accepted invalid params", i)
		}
		if _, err := RandomWeightedSCSP(p); err == nil {
			t.Errorf("case %d: weighted accepted invalid params", i)
		}
	}
	if _, err := ChainWeightedSCSP(3, 0, 1); err == nil {
		t.Error("chain accepted zero domain")
	}
}

func TestSCSPDeterminism(t *testing.T) {
	params := SCSPParams{Vars: 4, DomainSize: 3, Density: 0.6, Tightness: 0.7, Seed: 9}
	a, _ := RandomWeightedSCSP(params)
	b, _ := RandomWeightedSCSP(params)
	// The problems live in distinct spaces; compare their combined
	// tables by matching tuples through the second problem's table.
	ca, cb := a.Combined(), b.Combined()
	if ca.Size() != cb.Size() {
		t.Fatalf("table sizes differ: %d vs %d", ca.Size(), cb.Size())
	}
	ca.ForEach(func(asst core.Assignment, v float64) {
		labels := make([]string, 0, len(asst))
		for _, name := range cb.Scope() {
			labels = append(labels, asst.Label(name))
		}
		if got := cb.AtLabels(labels...); got != v {
			t.Fatalf("tuple %v: %v vs %v", labels, v, got)
		}
	})
}
