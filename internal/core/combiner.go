package core

import "sort"

// Combiner performs repeated ⊗ and ⇓ operations while reusing
// internal scratch buffers (odometers, aligned stride rows, scope
// membership marks), so algorithms that materialise many tables in a
// loop — bucket elimination, propagation — do not re-allocate the
// same bookkeeping per table. Output constraints are freshly
// allocated and immutable as usual; only the scratch is recycled.
// A Combiner is not safe for concurrent use.
type Combiner[T any] struct {
	space  *Space[T]
	digits []int   // shared odometer, grown on demand
	rows   [][]int // aligned stride rows, one per input constraint
	mark   []bool  // space-sized scope membership scratch
	union  []int   // union-scope scratch
	kept   []int   // projection kept-scope scratch
}

// NewCombiner returns a Combiner over space s.
func NewCombiner[T any](s *Space[T]) *Combiner[T] {
	return &Combiner[T]{space: s}
}

// scratchDigits hands out the reusable digit vector, grown amortised.
//
//softsoa:hotpath
func (cb *Combiner[T]) scratchDigits(n int) []int {
	if cap(cb.digits) < n {
		cb.digits = make([]int, n)
	}
	d := cb.digits[:n]
	for i := range d {
		d[i] = 0
	}
	return d
}

// row hands out the i-th reusable stride row, grown amortised.
//
//softsoa:hotpath
func (cb *Combiner[T]) row(i, n int) []int {
	for len(cb.rows) <= i {
		cb.rows = append(cb.rows, nil)
	}
	if cap(cb.rows[i]) < n {
		cb.rows[i] = make([]int, n)
	}
	cb.rows[i] = cb.rows[i][:n]
	return cb.rows[i]
}

// marks hands out the reusable per-variable mark vector.
//
//softsoa:hotpath
func (cb *Combiner[T]) marks() []bool {
	if n := len(cb.space.names); len(cb.mark) < n {
		cb.mark = make([]bool, n)
	}
	return cb.mark
}

// unionScopes computes the sorted union of the inputs' scopes into the
// reusable union scratch slice.
//
//softsoa:hotpath
func (cb *Combiner[T]) unionScopes(cs []*Constraint[T]) []int {
	mark := cb.marks()
	cb.union = cb.union[:0]
	for _, c := range cs {
		for _, vi := range c.scope {
			if !mark[vi] {
				mark[vi] = true
				cb.union = append(cb.union, vi)
			}
		}
	}
	for _, vi := range cb.union {
		mark[vi] = false
	}
	sort.Ints(cb.union)
	return cb.union
}

// CombineAll is the multi-way ⊗: a single pass over the output table
// with one aligned stride row per input, never materialising the k-1
// intermediate tables a pairwise fold would build. Values are folded
// left to right, matching the pairwise fold pointwise (so results are
// bit-identical even for non-associative floating-point carriers).
func (cb *Combiner[T]) CombineAll(cs ...*Constraint[T]) *Constraint[T] {
	s := cb.space
	if len(cs) == 0 {
		return Top(s)
	}
	for _, c := range cs {
		if c.space != s {
			panic("core: combiner constraint from different space")
		}
	}
	if len(cs) == 1 {
		out := newEmptyByIdx(s, cs[0].scope)
		copy(out.table, cs[0].table)
		return out
	}
	union := cb.unionScopes(cs)
	out := newEmptyByIdx(s, union)
	sr := s.sr
	for j, c := range cs {
		alignStridesInto(cb.row(j, len(out.scope)), s, out.scope, c.scope)
	}
	digits := cb.scratchDigits(len(out.scope))
	for i := range out.table {
		r0 := cb.rows[0]
		i0 := 0
		for k, d := range digits {
			i0 += d * r0[k]
		}
		acc := cs[0].table[i0]
		for j := 1; j < len(cs); j++ {
			rj := cb.rows[j]
			ij := 0
			for k, d := range digits {
				ij += d * rj[k]
			}
			acc = sr.Times(acc, cs[j].table[ij])
		}
		out.table[i] = acc
		out.incr(digits)
	}
	return out
}

// ProjectOut is ops.ProjectOut with scratch reuse: it eliminates the
// given variables from c's support.
func (cb *Combiner[T]) ProjectOut(c *Constraint[T], elim ...Variable) *Constraint[T] {
	s := cb.space
	if c.space != s {
		panic("core: combiner constraint from different space")
	}
	mark := cb.marks()
	for _, v := range elim {
		mark[s.varIndex(v)] = true
	}
	cb.kept = cb.kept[:0]
	for _, vi := range c.scope {
		if !mark[vi] {
			cb.kept = append(cb.kept, vi)
		}
	}
	for _, v := range elim {
		mark[s.varIndex(v)] = false
	}
	return cb.projectOnto(c, cb.kept)
}

// ProjectTo is ops.ProjectTo with scratch reuse: it keeps only the
// given variables in c's support.
func (cb *Combiner[T]) ProjectTo(c *Constraint[T], keep ...Variable) *Constraint[T] {
	s := cb.space
	if c.space != s {
		panic("core: combiner constraint from different space")
	}
	mark := cb.marks()
	for _, v := range keep {
		mark[s.varIndex(v)] = true
	}
	cb.kept = cb.kept[:0]
	for _, vi := range c.scope {
		if mark[vi] {
			cb.kept = append(cb.kept, vi)
		}
	}
	for _, v := range keep {
		mark[s.varIndex(v)] = false
	}
	return cb.projectOnto(c, cb.kept)
}

func (cb *Combiner[T]) projectOnto(c *Constraint[T], kept []int) *Constraint[T] {
	s := cb.space
	out := newEmptyByIdx(s, kept)
	zero := s.sr.Zero()
	for i := range out.table {
		out.table[i] = zero
	}
	strOut := cb.row(0, len(c.scope))
	alignStridesInto(strOut, s, c.scope, out.scope)
	digits := cb.scratchDigits(len(c.scope))
	for i := range c.table {
		oi := 0
		for k, d := range digits {
			oi += d * strOut[k]
		}
		out.table[oi] = s.sr.Plus(out.table[oi], c.table[i])
		c.incr(digits)
	}
	return out
}
