package core

import (
	"testing"

	"softsoa/internal/semiring"
)

func TestEvaluatorAgainstAt(t *testing.T) {
	s, cs := fig1Space()
	ev := NewEvaluator(s, cs)
	if ev.NumConstraints() != 3 {
		t.Fatalf("constraints = %d", ev.NumConstraints())
	}
	sizes := ev.DomainSizes()
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
	labels := []string{"a", "b"}
	comb := CombineAll(s, cs...)
	digits := make([]int, 2)
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			digits[0], digits[1] = x, y
			want := comb.AtLabels(labels[x], labels[y])
			if got := ev.EvalAll(digits); got != want {
				t.Errorf("EvalAll(%d,%d) = %v, want %v", x, y, got, want)
			}
			for k, c := range cs {
				wantK := c.At(ev.Assignment(digits))
				if got := ev.Eval(k, digits); got != wantK {
					t.Errorf("Eval(%d; %d,%d) = %v, want %v", k, x, y, got, wantK)
				}
			}
		}
	}
}

func TestEvaluatorMaxScopeVar(t *testing.T) {
	s, cs := fig1Space()
	constant := Constant(s, 3.0)
	ev := NewEvaluator(s, append(cs, constant))
	// c1 is unary on X (index 0), c2 binary on X,Y (max index 1),
	// c3 unary on Y (index 1), the constant has no scope.
	want := []int{0, 1, 1, -1}
	for k, w := range want {
		if got := ev.MaxScopeVar(k); got != w {
			t.Errorf("MaxScopeVar(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestEvaluatorAssignment(t *testing.T) {
	s, cs := fig1Space()
	ev := NewEvaluator(s, cs)
	a := ev.Assignment([]int{1, 0})
	if a.Label("X") != "b" || a.Label("Y") != "a" {
		t.Errorf("assignment = %v", a)
	}
}

func TestEvaluatorCrossSpacePanics(t *testing.T) {
	s1 := NewSpace[float64](semiring.Weighted{})
	s1.AddVariable("x", IntDomain(0, 1))
	s2 := NewSpace[float64](semiring.Weighted{})
	s2.AddVariable("x", IntDomain(0, 1))
	c := Top(s2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for cross-space evaluator")
		}
	}()
	NewEvaluator(s1, []*Constraint[float64]{c})
}

func TestConstraintSpaceAccessor(t *testing.T) {
	s, cs := fig1Space()
	if cs[0].Space() != s {
		t.Error("Space() should return the owning space")
	}
}
