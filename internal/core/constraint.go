package core

import (
	"fmt"
	"sort"
	"strings"
)

// maxTableSize bounds the materialised table of any constraint. The
// product of the domain sizes over a constraint's support must stay
// under this limit; exceeding it indicates the problem should be
// decomposed (e.g. solved with variable elimination on a tree
// decomposition) rather than joined into one table.
const maxTableSize = 1 << 26

// Constraint is a soft constraint: a function assigning a semiring
// value to every tuple of domain values for the variables in its
// support (scope). The function is materialised as a flat table in
// mixed-radix order — the first support variable is the most
// significant digit. Constraints are immutable once built.
type Constraint[T any] struct {
	space *Space[T]
	scope []int // sorted variable indices into space
	// stride[j] is the table stride of the j-th scope variable: the
	// product of the domain sizes of the scope variables after it.
	// Precomputed at construction so AtIndex is pure integer
	// multiply-adds with no per-call allocation.
	stride []int
	table  []T
}

// NewConstraint builds a constraint over the given scope, calling fn
// once per tuple to obtain its semiring value. fn receives an
// Assignment covering exactly the scope variables. The scope may be
// empty, yielding a constant constraint. Panics on unknown or
// duplicate scope variables.
func NewConstraint[T any](s *Space[T], scope []Variable, fn func(Assignment) T) *Constraint[T] {
	c := newEmpty(s, scope)
	asst := make(Assignment, len(c.scope))
	digits := make([]int, len(c.scope))
	for i := range c.table {
		for j, vi := range c.scope {
			asst[s.names[vi]] = s.domains[vi][digits[j]]
		}
		c.table[i] = fn(asst)
		c.incr(digits)
	}
	return c
}

// Constant returns the constraint with empty support that maps every
// assignment to v. The paper writes ā for these; 0̄ and 1̄ are
// Constant(s, Zero) and Constant(s, One).
func Constant[T any](s *Space[T], v T) *Constraint[T] {
	c := newEmpty(s, nil)
	c.table[0] = v
	return c
}

// Top returns the constraint 1̄ (always One): the empty store.
func Top[T any](s *Space[T]) *Constraint[T] { return Constant(s, s.sr.One()) }

// Bottom returns the constraint 0̄ (always Zero).
func Bottom[T any](s *Space[T]) *Constraint[T] { return Constant(s, s.sr.Zero()) }

// Diagonal returns the diagonal constraint d_xy used to model
// parameter passing: One where x and y take equal labels, Zero
// elsewhere. Panics if the variables' domains have different lengths
// or labels, since equality would then be ill-defined.
func Diagonal[T any](s *Space[T], x, y Variable) *Constraint[T] {
	if x == y {
		return Top(s)
	}
	dx, dy := s.domains[s.varIndex(x)], s.domains[s.varIndex(y)]
	if len(dx) != len(dy) {
		panic(fmt.Sprintf("core: diagonal over mismatched domains %q/%q", x, y))
	}
	return NewConstraint(s, []Variable{x, y}, func(a Assignment) T {
		if a.Label(x) == a.Label(y) {
			return s.sr.One()
		}
		return s.sr.Zero()
	})
}

// Unary builds a unary constraint from an explicit label→value table.
// Labels absent from the table get the semiring One (no preference).
func Unary[T any](s *Space[T], v Variable, prefs map[string]T) *Constraint[T] {
	return NewConstraint(s, []Variable{v}, func(a Assignment) T {
		if val, ok := prefs[a.Label(v)]; ok {
			return val
		}
		return s.sr.One()
	})
}

// Binary builds a binary constraint from an explicit table keyed by
// the two labels. Pairs absent from the table get the semiring One.
func Binary[T any](s *Space[T], x, y Variable, prefs map[[2]string]T) *Constraint[T] {
	return NewConstraint(s, []Variable{x, y}, func(a Assignment) T {
		if val, ok := prefs[[2]string{a.Label(x), a.Label(y)}]; ok {
			return val
		}
		return s.sr.One()
	})
}

func newEmpty[T any](s *Space[T], scope []Variable) *Constraint[T] {
	idx := make([]int, 0, len(scope))
	seen := make(map[int]bool, len(scope))
	for _, v := range scope {
		i := s.varIndex(v)
		if seen[i] {
			panic(fmt.Sprintf("core: duplicate scope variable %q", v))
		}
		seen[i] = true
		idx = append(idx, i)
	}
	sort.Ints(idx)
	size := 1
	for _, i := range idx {
		size *= s.domainSize(i)
		if size > maxTableSize {
			panic(fmt.Sprintf("core: constraint table over %v exceeds %d entries", scope, maxTableSize))
		}
	}
	c := &Constraint[T]{space: s, scope: idx, table: make([]T, size)}
	c.computeStride()
	return c
}

// computeStride fills c.stride for the (sorted) scope: mixed-radix
// positional strides, first scope variable most significant.
func (c *Constraint[T]) computeStride() {
	c.stride = make([]int, len(c.scope))
	acc := 1
	for j := len(c.scope) - 1; j >= 0; j-- {
		c.stride[j] = acc
		acc *= c.space.domainSize(c.scope[j])
	}
}

// AtIndex returns the value under a space-wide digit vector: digits[i]
// is the chosen domain index for the i-th declared variable. Only the
// digits of the scope variables are read, so the vector may describe a
// partial assignment as long as the scope is covered. This is the
// allocation-free fast path used by search solvers; At remains the
// label-checked Assignment path.
//
//softsoa:hotpath
func (c *Constraint[T]) AtIndex(digits []int) T {
	idx := 0
	for j, vi := range c.scope {
		idx += digits[vi] * c.stride[j]
	}
	return c.table[idx]
}

// incr advances digits as a mixed-radix odometer over the scope.
func (c *Constraint[T]) incr(digits []int) {
	for j := len(digits) - 1; j >= 0; j-- {
		digits[j]++
		if digits[j] < c.space.domainSize(c.scope[j]) {
			return
		}
		digits[j] = 0
	}
}

// Space returns the space the constraint belongs to.
func (c *Constraint[T]) Space() *Space[T] { return c.space }

// Scope returns the constraint's support variables in index order.
func (c *Constraint[T]) Scope() []Variable {
	out := make([]Variable, len(c.scope))
	for i, vi := range c.scope {
		out[i] = c.space.names[vi]
	}
	return out
}

// Size returns the number of tuples in the materialised table.
func (c *Constraint[T]) Size() int { return len(c.table) }

// HasVar reports whether v is in the constraint's support, without
// materialising the scope the way Scope() does.
func (c *Constraint[T]) HasVar(v Variable) bool {
	for _, vi := range c.scope {
		if c.space.names[vi] == v {
			return true
		}
	}
	return false
}

// At returns the semiring value for the given assignment, which must
// cover the constraint's scope; extra variables are ignored (a
// constraint depends only on its support). Panics if a scope variable
// is unassigned or assigned a label outside its domain.
func (c *Constraint[T]) At(a Assignment) T {
	idx := 0
	for j, vi := range c.scope {
		name := c.space.names[vi]
		dv, ok := a[name]
		if !ok {
			panic(fmt.Sprintf("core: assignment missing scope variable %q", name))
		}
		pos := -1
		for k, d := range c.space.domains[vi] {
			if d.Label == dv.Label {
				pos = k
				break
			}
		}
		if pos < 0 {
			panic(fmt.Sprintf("core: label %q not in domain of %q", dv.Label, name))
		}
		_ = j
		idx = idx*c.space.domainSize(vi) + pos
	}
	return c.table[idx]
}

// AtLabels is At with labels given positionally in scope order.
func (c *Constraint[T]) AtLabels(labels ...string) T {
	if len(labels) != len(c.scope) {
		panic(fmt.Sprintf("core: AtLabels got %d labels for scope of %d", len(labels), len(c.scope)))
	}
	a := make(Assignment, len(labels))
	for j, vi := range c.scope {
		name := c.space.names[vi]
		found := false
		for _, d := range c.space.domains[vi] {
			if d.Label == labels[j] {
				a[name] = d
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("core: label %q not in domain of %q", labels[j], name))
		}
	}
	return c.At(a)
}

// ForEach calls fn for every tuple with its assignment and value.
// The assignment is reused between calls; fn must not retain it.
func (c *Constraint[T]) ForEach(fn func(Assignment, T)) {
	asst := make(Assignment, len(c.scope))
	digits := make([]int, len(c.scope))
	for i := range c.table {
		for j, vi := range c.scope {
			asst[c.space.names[vi]] = c.space.domains[vi][digits[j]]
		}
		fn(asst, c.table[i])
		c.incr(digits)
	}
}

// Values appends the table's values to dst in mixed-radix order and
// returns the extended slice. It is the bulk form of ForEach for
// content hashing and serialisation: no per-tuple assignments are
// materialised, and the order is the same canonical one String
// renders.
func (c *Constraint[T]) Values(dst []T) []T {
	return append(dst, c.table...)
}

// String renders the constraint as a readable table, tuples in
// mixed-radix order.
func (c *Constraint[T]) String() string {
	var b strings.Builder
	names := c.Scope()
	fmt.Fprintf(&b, "c(")
	for i, n := range names {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(string(n))
	}
	b.WriteString("){")
	first := true
	c.ForEach(func(a Assignment, v T) {
		if !first {
			b.WriteString(" ")
		}
		first = false
		b.WriteString("⟨")
		for i, n := range names {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(a.Label(n))
		}
		fmt.Fprintf(&b, "⟩→%s", c.space.sr.Format(v))
	})
	b.WriteString("}")
	return b.String()
}

func (c *Constraint[T]) sameSpace(d *Constraint[T]) {
	if c.space != d.space {
		panic("core: constraints from different spaces")
	}
}
