package core

// Evaluator provides fast evaluation of a fixed set of constraints
// against complete assignments represented as digit vectors: digits[i]
// is the index into the domain of the i-th declared variable. It
// precomputes per-constraint strides so evaluation is a handful of
// integer multiply-adds, which is what search solvers need in their
// inner loop.
type Evaluator[T any] struct {
	space       *Space[T]
	constraints []*Constraint[T]
	// scopeVars[k][j] is the space-wide variable index of the j-th
	// scope variable of constraint k; strides[k][j] its table stride.
	scopeVars [][]int
	strides   [][]int
	// tables[k] is constraint k's flat value table. Shared with the
	// constraint by default; Localize rebuilds them in a private,
	// contiguous arena.
	tables [][]T
}

// NewEvaluator builds an evaluator for the given constraints, which
// must all belong to space s.
func NewEvaluator[T any](s *Space[T], cs []*Constraint[T]) *Evaluator[T] {
	e := &Evaluator[T]{
		space:       s,
		constraints: append([]*Constraint[T](nil), cs...),
		scopeVars:   make([][]int, len(cs)),
		strides:     make([][]int, len(cs)),
		tables:      make([][]T, len(cs)),
	}
	for k, c := range cs {
		if c.space != s {
			panic("core: evaluator constraint from different space")
		}
		// Constraints precompute their strides at construction; share
		// them (both sides treat scope, stride and table as immutable).
		e.scopeVars[k] = c.scope
		e.strides[k] = c.stride
		e.tables[k] = c.table
	}
	return e
}

// localizeLineElems pads each localized table start to a multiple of
// this many elements: 8 carrier values span one 64-byte cache line for
// the ubiquitous float64/int64 carriers, so two tables never share a
// line in a localized arena.
const localizeLineElems = 8

// Localize returns an evaluator over the same space, constraints and
// strides whose value tables are copied into one private, contiguous
// arena with each table start padded to a cache-line boundary. The
// parallel solver gives every worker its own localized evaluator so
// the inner-loop table reads hit worker-local memory laid out in scan
// order, instead of constraint tables scattered across the heap and
// shared between cores. Values are copies of immutable tables, so
// evaluation results are bit-identical to the original's.
func (e *Evaluator[T]) Localize() *Evaluator[T] {
	pad := func(n int) int {
		return (n + localizeLineElems - 1) / localizeLineElems * localizeLineElems
	}
	total := 0
	for _, t := range e.tables {
		total += pad(len(t))
	}
	clone := &Evaluator[T]{
		space:       e.space,
		constraints: e.constraints,
		scopeVars:   e.scopeVars,
		strides:     e.strides,
		tables:      make([][]T, len(e.tables)),
	}
	arena := make([]T, total)
	off := 0
	for k, t := range e.tables {
		copy(arena[off:], t)
		clone.tables[k] = arena[off : off+len(t) : off+len(t)]
		off += pad(len(t))
	}
	return clone
}

// NumConstraints returns the number of constraints evaluated.
func (e *Evaluator[T]) NumConstraints() int { return len(e.constraints) }

// MaxScopeVar returns, for constraint k, the largest space-wide
// variable index in its scope (-1 for constant constraints). A
// constraint is fully decided once variables 0..MaxScopeVar(k) are
// assigned, which branch-and-bound uses to fold values in as early as
// possible.
func (e *Evaluator[T]) MaxScopeVar(k int) int {
	vars := e.scopeVars[k]
	if len(vars) == 0 {
		return -1
	}
	return vars[len(vars)-1]
}

// Eval returns the value of constraint k under the digit vector,
// which must cover at least the constraint's scope variables.
//
//softsoa:hotpath
func (e *Evaluator[T]) Eval(k int, digits []int) T {
	idx := 0
	for j, vi := range e.scopeVars[k] {
		idx += digits[vi] * e.strides[k][j]
	}
	return e.tables[k][idx]
}

// EvalAll returns the semiring product of all constraint values under
// the complete digit vector.
//
//softsoa:hotpath
func (e *Evaluator[T]) EvalAll(digits []int) T {
	acc := e.space.sr.One()
	for k := range e.constraints {
		acc = e.space.sr.Times(acc, e.Eval(k, digits))
	}
	return acc
}

// DomainSizes returns the domain size of each declared variable, in
// declaration order.
func (e *Evaluator[T]) DomainSizes() []int {
	out := make([]int, len(e.space.names))
	for i := range out {
		out[i] = e.space.domainSize(i)
	}
	return out
}

// Assignment converts a digit vector into an Assignment over all
// declared variables.
func (e *Evaluator[T]) Assignment(digits []int) Assignment {
	a := make(Assignment, len(digits))
	for i, d := range digits {
		a[e.space.names[i]] = e.space.domains[i][d]
	}
	return a
}
