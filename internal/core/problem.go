package core

import "fmt"

// Problem is a Soft Constraint Satisfaction Problem P = ⟨C, con⟩: a
// set of constraints C over a Space and the set con of variables of
// interest. Its solution Sol(P) = (⊗C)⇓con and its best level of
// consistency blevel(P) = Sol(P)⇓∅.
type Problem[T any] struct {
	space       *Space[T]
	constraints []*Constraint[T]
	con         []Variable
}

// NewProblem returns an SCSP over the given space with the variables
// of interest con. Panics if any con variable is undeclared.
func NewProblem[T any](s *Space[T], con ...Variable) *Problem[T] {
	for _, v := range con {
		s.varIndex(v) // panics on unknown
	}
	return &Problem[T]{space: s, con: append([]Variable(nil), con...)}
}

// Space returns the problem's space.
func (p *Problem[T]) Space() *Space[T] { return p.space }

// Con returns the variables of interest.
func (p *Problem[T]) Con() []Variable { return append([]Variable(nil), p.con...) }

// Add appends constraints to the problem. Constraints may involve
// variables outside con.
func (p *Problem[T]) Add(cs ...*Constraint[T]) *Problem[T] {
	for _, c := range cs {
		if c.space != p.space {
			panic("core: constraint from different space added to problem")
		}
	}
	p.constraints = append(p.constraints, cs...)
	return p
}

// Constraints returns the problem's constraints.
func (p *Problem[T]) Constraints() []*Constraint[T] {
	return append([]*Constraint[T](nil), p.constraints...)
}

// Combined returns ⊗C, the combination of all constraints.
func (p *Problem[T]) Combined() *Constraint[T] {
	return CombineAll(p.space, p.constraints...)
}

// Sol returns Sol(P) = (⊗C)⇓con.
func (p *Problem[T]) Sol() *Constraint[T] {
	return ProjectTo(p.Combined(), p.con...)
}

// Blevel returns the best level of consistency blevel(P) = Sol(P)⇓∅.
func (p *Problem[T]) Blevel() T {
	return Blevel(p.Combined())
}

// AlphaConsistent reports whether P is α-consistent: blevel(P) = α.
func (p *Problem[T]) AlphaConsistent(alpha T) bool {
	return p.space.sr.Eq(p.Blevel(), alpha)
}

// Consistent reports whether P is consistent: blevel(P) > 0.
func (p *Problem[T]) Consistent() bool {
	sr := p.space.sr
	b := p.Blevel()
	return !sr.Eq(b, sr.Zero())
}

// String summarises the problem.
func (p *Problem[T]) String() string {
	return fmt.Sprintf("SCSP{%s, %d vars, %d constraints, con=%v}",
		p.space.sr.Name(), p.space.NumVariables(), len(p.constraints), p.con)
}
