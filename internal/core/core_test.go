package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"softsoa/internal/semiring"
)

// fig1Space builds the weighted CSP of Fig. 1 of the paper: variables
// X, Y over {a,b}; c1 unary on X (a→1, b→9); c3 unary on Y (a→5,
// b→5); c2 binary (⟨a,a⟩→5, ⟨a,b⟩→1, ⟨b,a⟩→2, ⟨b,b⟩→2).
func fig1Space() (*Space[float64], []*Constraint[float64]) {
	s := NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", LabelDomain("a", "b"))
	y := s.AddVariable("Y", LabelDomain("a", "b"))
	c1 := Unary(s, x, map[string]float64{"a": 1, "b": 9})
	c3 := Unary(s, y, map[string]float64{"a": 5, "b": 5})
	c2 := Binary(s, x, y, map[[2]string]float64{
		{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
	})
	return s, []*Constraint[float64]{c1, c2, c3}
}

func TestFig1CombinedTuples(t *testing.T) {
	s, cs := fig1Space()
	comb := CombineAll(s, cs...)
	want := map[[2]string]float64{
		{"a", "a"}: 11, {"a", "b"}: 7, {"b", "a"}: 16, {"b", "b"}: 16,
	}
	for tuple, w := range want {
		if got := comb.AtLabels(tuple[0], tuple[1]); got != w {
			t.Errorf("combined⟨%s,%s⟩ = %v, want %v", tuple[0], tuple[1], got, w)
		}
	}
}

func TestFig1SolutionAndBlevel(t *testing.T) {
	s, cs := fig1Space()
	p := NewProblem(s, "X").Add(cs...)
	sol := p.Sol()
	if got := sol.AtLabels("a"); got != 7 {
		t.Errorf("Sol(P)⟨a⟩ = %v, want 7", got)
	}
	if got := sol.AtLabels("b"); got != 16 {
		t.Errorf("Sol(P)⟨b⟩ = %v, want 16", got)
	}
	if got := p.Blevel(); got != 7 {
		t.Errorf("blevel(P) = %v, want 7", got)
	}
	if !p.AlphaConsistent(7) {
		t.Error("P should be 7-consistent")
	}
	if p.AlphaConsistent(6) {
		t.Error("P should not be 6-consistent")
	}
	if !p.Consistent() {
		t.Error("P should be consistent")
	}
}

func TestInconsistentProblem(t *testing.T) {
	s := NewSpace[bool](semiring.Classical{})
	x := s.AddVariable("x", LabelDomain("0", "1"))
	p := NewProblem(s, x)
	p.Add(Unary(s, x, map[string]bool{"0": false, "1": false}))
	if p.Consistent() {
		t.Error("all-false problem should be inconsistent")
	}
}

func TestProjectionDefinition(t *testing.T) {
	// Projection associates with each remaining tuple the semiring sum
	// over all extensions; verify against a hand computation.
	s, cs := fig1Space()
	comb := CombineAll(s, cs...)
	proj := ProjectTo(comb, "Y")
	// Y=a: min(11,16)=11; Y=b: min(7,16)=7.
	if got := proj.AtLabels("a"); got != 11 {
		t.Errorf("⇓Y ⟨a⟩ = %v, want 11", got)
	}
	if got := proj.AtLabels("b"); got != 7 {
		t.Errorf("⇓Y ⟨b⟩ = %v, want 7", got)
	}
}

func TestProjectionStaged(t *testing.T) {
	// c ⇓ ∅ computed directly equals projecting variables one by one.
	s, cs := fig1Space()
	comb := CombineAll(s, cs...)
	direct := Blevel(comb)
	staged := Blevel(ProjectOut(ProjectOut(comb, "X"), "Y"))
	if direct != staged {
		t.Errorf("staged projection %v != direct %v", staged, direct)
	}
	if got := len(ProjectTo(comb).Scope()); got != 0 {
		t.Errorf("ProjectTo() should have empty scope, got %d vars", got)
	}
}

func TestExistsIsProjection(t *testing.T) {
	s, cs := fig1Space()
	comb := CombineAll(s, cs...)
	if !Eq(Exists(comb, "Y"), ProjectOut(comb, "Y")) {
		t.Error("∃Y c should equal c ⇓ scope\\{Y}")
	}
}

func TestDiagonalParameterPassing(t *testing.T) {
	// Diagonal constraints model parameter passing: combining d_xy
	// with a constraint on x and projecting out x transfers the
	// constraint to y.
	s := NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", IntDomain(0, 3))
	y := s.AddVariable("y", IntDomain(0, 3))
	cx := NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return 2 * a.Num(x) })
	d := Diagonal(s, x, y)
	moved := ProjectOut(Combine(cx, d), x)
	for v := 0; v <= 3; v++ {
		want := 2 * float64(v)
		if got := moved.AtLabels(itoa(v)); got != want {
			t.Errorf("moved(y=%d) = %v, want %v", v, got, want)
		}
	}
	if !Eq(Diagonal(s, x, x), Top(s)) {
		t.Error("d_xx should be 1̄")
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestCombineIdentityAndAnnihilator(t *testing.T) {
	s, cs := fig1Space()
	c := cs[1]
	if !Eq(Combine(c, Top(s)), c) {
		t.Error("c ⊗ 1̄ should equal c")
	}
	if !Eq(Combine(c, Bottom(s)), Bottom(s)) {
		t.Error("c ⊗ 0̄ should equal 0̄")
	}
	if !Eq(Combine(cs[0], cs[2]), Combine(cs[2], cs[0])) {
		t.Error("⊗ should be commutative")
	}
}

func TestDivideUndoesCombine(t *testing.T) {
	// For the weighted semiring (invertible by residuation),
	// (c1 ⊗ c2) ÷ c2 = c1 pointwise whenever values are finite.
	_, cs := fig1Space()
	comb := Combine(cs[0], cs[1])
	back := Divide(comb, cs[1])
	if !Eq(back, cs[0]) {
		t.Errorf("(c1⊗c2)÷c2 = %v, want c1 = %v", back, cs[0])
	}
}

func TestLeqEntailment(t *testing.T) {
	s, cs := fig1Space()
	comb := CombineAll(s, cs...)
	// The combination is ⊑ every member (× is intensive).
	for i, c := range cs {
		if !Leq(comb, c) {
			t.Errorf("⊗C ⊑ c%d should hold", i+1)
		}
	}
	if !Entails(s, cs, cs[0]) {
		t.Error("C ⊢ c1 should hold")
	}
	// A strictly better constraint is entailed, a worse one is not.
	weaker := Unary(s, "X", map[string]float64{"a": 0.5, "b": 8})
	if !Leq(cs[0], weaker) {
		t.Error("c1 ⊑ weaker should hold")
	}
	if Leq(weaker, cs[0]) {
		t.Error("weaker ⊑ c1 should not hold")
	}
	if !Lt(cs[0], weaker) || Lt(cs[0], cs[0]) {
		t.Error("strict constraint order wrong")
	}
}

func TestStoreTellRetract(t *testing.T) {
	// Store algebra of Example 2: σ = c4 ⊗ c3 = 3x+5; retracting
	// c1 = x+3 leaves 2x+2.
	s := NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", IntDomain(0, 10))
	c4 := NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return a.Num(x) + 5 })
	c3 := NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return 2 * a.Num(x) })
	c1 := NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return a.Num(x) + 3 })

	st := NewStore(s)
	if got := st.Blevel(); got != 0 {
		t.Fatalf("empty store blevel = %v, want 0 (the One of weighted)", got)
	}
	st.Tell(c4)
	st.Tell(c3)
	if got := st.Blevel(); got != 5 {
		t.Fatalf("store blevel after tells = %v, want 5", got)
	}
	if !st.Entails(c1) {
		t.Fatal("σ = 3x+5 should entail c1 = x+3")
	}
	if !st.Retract(c1) {
		t.Fatal("retract c1 should succeed")
	}
	for v := 0; v <= 10; v++ {
		want := 2*float64(v) + 2
		if got := st.Constraint().AtLabels(itoa(v)); got != want {
			t.Errorf("σ(x=%d) = %v, want %v", v, got, want)
		}
	}
	if got := st.Blevel(); got != 2 {
		t.Errorf("store blevel after retract = %v, want 2", got)
	}
}

func TestStoreRetractRefusesUnentailed(t *testing.T) {
	s := NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", IntDomain(0, 5))
	weak := NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return a.Num(x) })
	strong := NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return 10 * a.Num(x) })
	st := NewStore(s)
	st.Tell(weak)
	if st.Retract(strong) {
		t.Error("retracting a constraint not entailed by σ must fail")
	}
	if !Eq(st.Constraint(), weak) {
		t.Error("failed retract must leave the store unchanged")
	}
}

func TestStoreUpdate(t *testing.T) {
	// Example 3: tell(c1) with c1 = x+3 then update_{x}(c2) with
	// c2 = y+1 leaves the store 3 ⊗ (y+1) = y+4.
	s := NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", IntDomain(0, 10))
	y := s.AddVariable("y", IntDomain(0, 10))
	c1 := NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return a.Num(x) + 3 })
	c2 := NewConstraint(s, []Variable{y}, func(a Assignment) float64 { return a.Num(y) + 1 })
	st := NewStore(s)
	st.Tell(c1)
	st.Update([]Variable{x}, c2)
	got := ProjectTo(st.Constraint(), y)
	for v := 0; v <= 10; v++ {
		want := float64(v) + 4
		if g := got.AtLabels(itoa(v)); g != want {
			t.Errorf("σ(y=%d) = %v, want %v", v, g, want)
		}
	}
	if b := st.Blevel(); b != 4 {
		t.Errorf("blevel after update = %v, want 4", b)
	}
}

func TestStoreSnapshotRestore(t *testing.T) {
	s := NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", IntDomain(0, 3))
	st := NewStore(s)
	st.Tell(NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return a.Num(x) }))
	snap := st.Snapshot()
	st.Tell(NewConstraint(s, []Variable{x}, func(a Assignment) float64 { return 100 }))
	if st.Blevel() != 100 {
		t.Fatalf("blevel = %v, want 100", st.Blevel())
	}
	st.Restore(snap)
	if st.Blevel() != 0 {
		t.Fatalf("restored blevel = %v, want 0", st.Blevel())
	}
}

func TestFuzzyStoreAgreement(t *testing.T) {
	// Fig. 5: provider and client fuzzy constraints crossing at 0.5.
	// cp rises with the resource, cc falls; the combined consistency
	// is min(cp,cc) and its blevel (max over x) is 0.5 where they
	// cross.
	s := NewSpace[float64](semiring.Fuzzy{})
	x := s.AddVariable("x", IntDomain(1, 9))
	cp := NewConstraint(s, []Variable{x}, func(a Assignment) float64 {
		return clamp01((a.Num(x) - 1) / 8)
	})
	cc := NewConstraint(s, []Variable{x}, func(a Assignment) float64 {
		return clamp01((9 - a.Num(x)) / 8)
	})
	st := NewStore(s)
	st.Tell(cp)
	st.Tell(cc)
	if got := st.Blevel(); got != 0.5 {
		t.Errorf("fuzzy agreement blevel = %v, want 0.5", got)
	}
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}

func TestAtPanicsOnMissingVariable(t *testing.T) {
	s, cs := fig1Space()
	_ = s
	defer func() {
		if recover() == nil {
			t.Error("At with missing scope variable should panic")
		}
	}()
	cs[1].At(Assignment{"X": DVal{Label: "a"}})
}

func TestConstructorPanics(t *testing.T) {
	s := NewSpace[float64](semiring.Weighted{})
	s.AddVariable("x", IntDomain(0, 1))
	cases := []struct {
		name string
		f    func()
	}{
		{"nil semiring", func() { NewSpace[float64](nil) }},
		{"duplicate variable", func() { s.AddVariable("x", IntDomain(0, 1)) }},
		{"empty domain", func() { s.AddVariable("y", nil) }},
		{"unknown scope var", func() { NewConstraint(s, []Variable{"zz"}, func(Assignment) float64 { return 0 }) }},
		{"duplicate scope var", func() {
			NewConstraint(s, []Variable{"x", "x"}, func(Assignment) float64 { return 0 })
		}},
		{"empty int domain", func() { IntDomain(3, 2) }},
		{"unknown con var", func() { NewProblem(s, "zz") }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestCrossSpacePanics(t *testing.T) {
	s1 := NewSpace[float64](semiring.Weighted{})
	s2 := NewSpace[float64](semiring.Weighted{})
	s1.AddVariable("x", IntDomain(0, 1))
	s2.AddVariable("x", IntDomain(0, 1))
	c1 := Top(s1)
	c2 := Top(s2)
	defer func() {
		if recover() == nil {
			t.Error("combining constraints from different spaces should panic")
		}
	}()
	Combine(c1, c2)
}

func TestQuickCombineMonotone(t *testing.T) {
	// Randomised property: blevel(⊗C) is monotonically non-improving
	// as constraints are added, and projection never improves past
	// the blevel.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace[float64](semiring.Fuzzy{})
		vars := make([]Variable, 3)
		for i := range vars {
			vars[i] = s.AddVariable(Variable(string(rune('p'+i))), IntDomain(0, 2))
		}
		sr := s.Semiring()
		acc := Top(s)
		prev := Blevel(acc)
		for k := 0; k < 4; k++ {
			v1 := vars[r.Intn(len(vars))]
			v2 := vars[r.Intn(len(vars))]
			scope := []Variable{v1}
			if v2 != v1 {
				scope = append(scope, v2)
			}
			c := NewConstraint(s, scope, func(Assignment) float64 {
				return float64(r.Intn(11)) / 10
			})
			acc = Combine(acc, c)
			b := Blevel(acc)
			if !sr.Leq(b, prev) {
				return false
			}
			prev = b
			// Projection of the combination to any subset has the
			// same blevel as the combination itself.
			proj := ProjectTo(acc, vars[0])
			if !sr.Eq(Blevel(proj), b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickDivideResidualOnConstraints(t *testing.T) {
	// (σ ÷ c) ⊗ c ⊒ ... soundness: ((σ÷c)⊗c) ⊑ σ never fails to hold
	// pointwise... the residual property lifted pointwise:
	// c ⊗ (σ ÷ c) ⊑ σ.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace[float64](semiring.Weighted{})
		x := s.AddVariable("x", IntDomain(0, 3))
		y := s.AddVariable("y", IntDomain(0, 3))
		mk := func() *Constraint[float64] {
			return NewConstraint(s, []Variable{x, y}, func(Assignment) float64 {
				return float64(r.Intn(20))
			})
		}
		sigma, c := mk(), mk()
		div := Divide(sigma, c)
		return Leq(Combine(c, div), sigma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScopeAndSize(t *testing.T) {
	s, cs := fig1Space()
	_ = s
	sc := cs[1].Scope()
	if len(sc) != 2 || sc[0] != "X" || sc[1] != "Y" {
		t.Errorf("scope = %v", sc)
	}
	if cs[1].Size() != 4 {
		t.Errorf("size = %d, want 4", cs[1].Size())
	}
	if got := cs[1].String(); got == "" {
		t.Error("String should be non-empty")
	}
}

func TestFreshVariable(t *testing.T) {
	s := NewSpace[float64](semiring.Weighted{})
	s.AddVariable("x", IntDomain(0, 1))
	f1 := s.FreshVariable("x", IntDomain(0, 1))
	f2 := s.FreshVariable("x", IntDomain(0, 1))
	if f1 == f2 || f1 == "x" || f2 == "x" {
		t.Errorf("fresh variables not distinct: %q %q", f1, f2)
	}
	if !s.HasVariable(f1) || !s.HasVariable(f2) {
		t.Error("fresh variables should be declared")
	}
}

func TestProductSemiringConstraints(t *testing.T) {
	// Multi-criteria: cost × reliability on one constraint system.
	type pv = semiring.Pair[float64, float64]
	sr := semiring.NewProduct[float64, float64](semiring.Weighted{}, semiring.Probabilistic{})
	s := NewSpace[pv](sr)
	x := s.AddVariable("x", IntDomain(0, 2))
	c := NewConstraint(s, []Variable{x}, func(a Assignment) pv {
		// More resources: higher cost, higher reliability.
		return semiring.P(a.Num(x)*2, 0.5+a.Num(x)*0.25)
	})
	b := Blevel(c)
	// lub over {(0,0.5),(2,0.75),(4,1)} is componentwise best:
	// (min cost 0, max reliability 1) — an infeasible ideal point,
	// as expected for Pareto orders.
	if b.First != 0 || b.Second != 1 {
		t.Errorf("product blevel = %v, want (0,1)", b)
	}
}

func TestQuickCombineAssociativeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace[float64](semiring.Weighted{})
		x := s.AddVariable("x", IntDomain(0, 2))
		y := s.AddVariable("y", IntDomain(0, 2))
		z := s.AddVariable("z", IntDomain(0, 2))
		mk := func(scope []Variable) *Constraint[float64] {
			return NewConstraint(s, scope, func(Assignment) float64 {
				return float64(r.Intn(10))
			})
		}
		c1 := mk([]Variable{x, y})
		c2 := mk([]Variable{y, z})
		c3 := mk([]Variable{x, z})
		if !Eq(Combine(Combine(c1, c2), c3), Combine(c1, Combine(c2, c3))) {
			return false
		}
		return Eq(Combine(c1, c2), Combine(c2, c1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace[float64](semiring.Fuzzy{})
		x := s.AddVariable("x", IntDomain(0, 2))
		y := s.AddVariable("y", IntDomain(0, 2))
		z := s.AddVariable("z", IntDomain(0, 2))
		c := NewConstraint(s, []Variable{x, y, z}, func(Assignment) float64 {
			return float64(r.Intn(11)) / 10
		})
		// Eliminating x then y equals eliminating y then x, and both
		// equal projecting straight onto {z}.
		a := ProjectOut(ProjectOut(c, x), y)
		b := ProjectOut(ProjectOut(c, y), x)
		d := ProjectTo(c, z)
		return Eq(a, b) && Eq(a, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickProjectionAbsorbsCombine(t *testing.T) {
	// (c1 ⊗ c2) ⇓ scope(c1) ⊑ c1: projecting a combination onto one
	// operand's scope can only be below that operand (× intensive,
	// + is lub of extensions).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace[float64](semiring.Fuzzy{})
		x := s.AddVariable("x", IntDomain(0, 2))
		y := s.AddVariable("y", IntDomain(0, 2))
		mk := func(scope []Variable) *Constraint[float64] {
			return NewConstraint(s, scope, func(Assignment) float64 {
				return float64(r.Intn(11)) / 10
			})
		}
		c1 := mk([]Variable{x})
		c2 := mk([]Variable{x, y})
		proj := ProjectTo(Combine(c1, c2), x)
		return Leq(proj, c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
