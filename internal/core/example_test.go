package core_test

import (
	"fmt"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// The paper's Fig. 1 problem end to end: declare a space, state the
// constraints, combine, project, and read the best level.
func ExampleProblem() {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))
	p := core.NewProblem(s, x).Add(
		core.Unary(s, x, map[string]float64{"a": 1, "b": 9}),
		core.Binary(s, x, y, map[[2]string]float64{
			{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
		}),
		core.Unary(s, y, map[string]float64{"a": 5, "b": 5}),
	)
	sol := p.Sol()
	fmt.Println("Sol⟨a⟩ =", sol.AtLabels("a"))
	fmt.Println("Sol⟨b⟩ =", sol.AtLabels("b"))
	fmt.Println("blevel =", p.Blevel())
	// Output:
	// Sol⟨a⟩ = 7
	// Sol⟨b⟩ = 16
	// blevel = 7
}

// The nonmonotonic store supports tell (⊗), retract (÷) and
// update — the operations behind SLA negotiation. This is the store
// algebra of the paper's Example 2.
func ExampleStore() {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 10))
	poly := func(m, b float64) *core.Constraint[float64] {
		return core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
			return m*a.Num(x) + b
		})
	}
	st := core.NewStore(s)
	st.Tell(poly(1, 5)) // provider policy x+5
	st.Tell(poly(2, 0)) // client policy 2x
	fmt.Println("merged consistency:", st.Blevel())
	st.Retract(poly(1, 3)) // relax by x+3: store becomes 2x+2
	fmt.Println("after retract:", st.Blevel())
	fmt.Println("σ(x=3) =", core.ProjectTo(st.Constraint(), x).AtLabels("3"))
	// Output:
	// merged consistency: 5
	// after retract: 2
	// σ(x=3) = 8
}

// Projection hides internal variables: the paper uses it to expose a
// service's interface and to check refinement.
func ExampleProjectTo() {
	s := core.NewSpace[bool](semiring.Classical{})
	in := s.AddVariable("in", core.IntDomain(0, 2))
	mid := s.AddVariable("mid", core.IntDomain(0, 2))
	out := s.AddVariable("out", core.IntDomain(0, 2))
	leq := func(a, b core.Variable) *core.Constraint[bool] {
		return core.NewConstraint(s, []core.Variable{a, b}, func(asst core.Assignment) bool {
			return asst.Num(a) <= asst.Num(b)
		})
	}
	imp := core.Combine(leq(mid, in), leq(out, mid)) // pipeline policies
	iface := core.ProjectTo(imp, in, out)            // hide mid
	requirement := leq(out, in)
	fmt.Println("interface refines requirement:", core.Leq(iface, requirement))
	// Output:
	// interface refines requirement: true
}
