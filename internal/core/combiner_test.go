package core

import (
	"math/rand"
	"testing"

	"softsoa/internal/semiring"
)

// randomConstraints builds nc random weighted constraints with scopes
// of 1-3 variables over an nv-variable space with domain size dom.
func randomConstraints(rng *rand.Rand, nv, dom, nc int) (*Space[float64], []*Constraint[float64]) {
	s := NewSpace[float64](semiring.Weighted{})
	vars := make([]Variable, nv)
	for i := range vars {
		vars[i] = s.AddVariable(Variable(string(rune('A'+i))), IntDomain(0, dom-1))
	}
	cs := make([]*Constraint[float64], nc)
	for k := range cs {
		arity := 1 + rng.Intn(3)
		perm := rng.Perm(nv)
		scope := make([]Variable, 0, arity)
		for _, vi := range perm[:arity] {
			scope = append(scope, vars[vi])
		}
		cs[k] = NewConstraint(s, scope, func(Assignment) float64 {
			return float64(rng.Intn(10))
		})
	}
	return s, cs
}

// TestAtIndexAgreesWithAt checks the dense stride-addressed path
// against the label-checked Assignment path on every tuple.
func TestAtIndexAgreesWithAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, cs := randomConstraints(rng, 5, 3, 8)
	digits := make([]int, 5)
	sizes := make([]int, 5)
	for i := range sizes {
		sizes[i] = s.domainSize(i)
	}
	for {
		a := make(Assignment, len(digits))
		for i, d := range digits {
			a[s.names[i]] = s.domains[i][d]
		}
		for k, c := range cs {
			if got, want := c.AtIndex(digits), c.At(a); got != want {
				t.Fatalf("constraint %d: AtIndex(%v) = %v, At = %v", k, digits, got, want)
			}
		}
		j := len(digits) - 1
		for ; j >= 0; j-- {
			digits[j]++
			if digits[j] < sizes[j] {
				break
			}
			digits[j] = 0
		}
		if j < 0 {
			return
		}
	}
}

// TestCombinerAgreesWithPairwise checks that the multi-way single-pass
// CombineAll and the scratch-reusing projections are pointwise equal
// to a pairwise Combine fold and the allocating projections.
func TestCombinerAgreesWithPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		s, cs := randomConstraints(rng, 4, 3, 1+rng.Intn(5))
		pairwise := Top(s)
		for _, c := range cs {
			pairwise = Combine(pairwise, c)
		}
		cb := NewCombiner(s)
		multi := cb.CombineAll(cs...)
		if !Eq(pairwise, multi) {
			t.Fatalf("trial %d: multi-way CombineAll differs from pairwise fold", trial)
		}
		// Reuse the same Combiner across trials' projections to
		// exercise scratch recycling.
		for _, v := range multi.Scope() {
			if !Eq(ProjectOut(multi, v), cb.ProjectOut(multi, v)) {
				t.Fatalf("trial %d: Combiner.ProjectOut(%s) differs", trial, v)
			}
			if !Eq(ProjectTo(multi, v), cb.ProjectTo(multi, v)) {
				t.Fatalf("trial %d: Combiner.ProjectTo(%s) differs", trial, v)
			}
		}
	}
}

// TestCombinerSingleInputCopies ensures the arity-1 shortcut returns
// an independent table, like Combine(Top, c) used to.
func TestCombinerSingleInputCopies(t *testing.T) {
	s := NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", IntDomain(0, 2))
	c := Unary(s, x, map[string]float64{"0": 1, "1": 2, "2": 3})
	out := CombineAll(s, c)
	if out == c {
		t.Fatal("CombineAll with one input must not alias its argument")
	}
	if !Eq(out, c) {
		t.Fatal("CombineAll with one input must be pointwise equal to it")
	}
}
