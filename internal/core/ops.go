package core

import "sort"

// Combine is the ⊗ operator: the pointwise × of the two constraints
// over the union of their supports. Combining means building a new
// constraint whose support involves all variables of the originals.
func Combine[T any](c1, c2 *Constraint[T]) *Constraint[T] {
	c1.sameSpace(c2)
	sr := c1.space.sr
	return join(c1, c2, sr.Times)
}

// CombineAll is the multi-way ⊗ over the given constraints; the empty
// combination is 1̄ (the top constraint). Unlike a pairwise fold it
// materialises a single output table, indexing each input through
// aligned strides, so no intermediate joins are built.
func CombineAll[T any](s *Space[T], cs ...*Constraint[T]) *Constraint[T] {
	return NewCombiner(s).CombineAll(cs...)
}

// Divide is the ÷ operator: the pointwise residual of the two
// constraints, used to retract c2 from c1 (Bistarelli & Gadducci,
// ECAI 2006). The support of the result is the union of the supports.
func Divide[T any](c1, c2 *Constraint[T]) *Constraint[T] {
	c1.sameSpace(c2)
	sr := c1.space.sr
	return join(c1, c2, sr.Div)
}

// join builds the pointwise op of two constraints over the union of
// their scopes using mixed-radix strides.
func join[T any](c1, c2 *Constraint[T], op func(a, b T) T) *Constraint[T] {
	s := c1.space
	union := unionScope(c1.scope, c2.scope)
	out := newEmptyByIdx(s, union)
	str1 := alignStrides(s, union, c1.scope)
	str2 := alignStrides(s, union, c2.scope)
	digits := make([]int, len(union))
	for i := range out.table {
		i1, i2 := 0, 0
		for k, d := range digits {
			i1 += d * str1[k]
			i2 += d * str2[k]
		}
		out.table[i] = op(c1.table[i1], c2.table[i2])
		out.incr(digits)
	}
	return out
}

// ProjectTo is the ⇓ operator: it eliminates from c every support
// variable not in keep, associating with each remaining tuple the sum
// (semiring +) of the values of all its extensions. The result's
// support is the intersection of c's support with keep.
func ProjectTo[T any](c *Constraint[T], keep ...Variable) *Constraint[T] {
	s := c.space
	keepSet := make(map[int]bool, len(keep))
	for _, v := range keep {
		keepSet[s.varIndex(v)] = true
	}
	kept := make([]int, 0, len(c.scope))
	for _, vi := range c.scope {
		if keepSet[vi] {
			kept = append(kept, vi)
		}
	}
	return projectOnto(c, kept)
}

// ProjectOut eliminates the given variables from c's support; it is
// the cylindrification ∃x when called with a single variable.
func ProjectOut[T any](c *Constraint[T], elim ...Variable) *Constraint[T] {
	s := c.space
	elimSet := make(map[int]bool, len(elim))
	for _, v := range elim {
		elimSet[s.varIndex(v)] = true
	}
	kept := make([]int, 0, len(c.scope))
	for _, vi := range c.scope {
		if !elimSet[vi] {
			kept = append(kept, vi)
		}
	}
	return projectOnto(c, kept)
}

// Exists is the hiding operator ∃x of the cylindric constraint
// system: (∃x c)η = Σ_{d∈D} c η[x:=d].
func Exists[T any](c *Constraint[T], x Variable) *Constraint[T] {
	return ProjectOut(c, x)
}

func projectOnto[T any](c *Constraint[T], kept []int) *Constraint[T] {
	s := c.space
	out := newEmptyByIdx(s, kept)
	zero := s.sr.Zero()
	for i := range out.table {
		out.table[i] = zero
	}
	strOut := alignStrides(s, c.scope, kept)
	digits := make([]int, len(c.scope))
	for i := range c.table {
		oi := 0
		for k, d := range digits {
			oi += d * strOut[k]
		}
		out.table[oi] = s.sr.Plus(out.table[oi], c.table[i])
		c.incr(digits)
	}
	return out
}

// Blevel returns c ⇓ ∅: the least upper bound of all tuple values.
// For a combined problem this is the best level of consistency.
func Blevel[T any](c *Constraint[T]) T {
	acc := c.space.sr.Zero()
	for _, v := range c.table {
		acc = c.space.sr.Plus(acc, v)
	}
	return acc
}

// Leq reports c1 ⊑ c2: c1η ≤ c2η for every assignment η of the union
// of the supports. This is the ordering used by entailment.
func Leq[T any](c1, c2 *Constraint[T]) bool {
	c1.sameSpace(c2)
	s := c1.space
	union := unionScope(c1.scope, c2.scope)
	str1 := alignStrides(s, union, c1.scope)
	str2 := alignStrides(s, union, c2.scope)
	return forAllJoint(s, union, func(digits []int) bool {
		i1, i2 := 0, 0
		for k, d := range digits {
			i1 += d * str1[k]
			i2 += d * str2[k]
		}
		return s.sr.Leq(c1.table[i1], c2.table[i2])
	})
}

// Eq reports pointwise equality of the two constraints over the union
// of their supports.
func Eq[T any](c1, c2 *Constraint[T]) bool {
	return Leq(c1, c2) && Leq(c2, c1)
}

// Lt reports c1 ⊏ c2: c1 ⊑ c2 and not pointwise equal.
func Lt[T any](c1, c2 *Constraint[T]) bool {
	return Leq(c1, c2) && !Leq(c2, c1)
}

// Entails reports whether the set of constraints cs entails c:
// ⊗cs ⊑ c. It is the relation ⊢ used by ask/nask agents.
func Entails[T any](s *Space[T], cs []*Constraint[T], c *Constraint[T]) bool {
	return Leq(CombineAll(s, cs...), c)
}

func unionScope(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	for _, vi := range b {
		found := false
		for _, u := range a {
			if u == vi {
				found = true
				break
			}
		}
		if !found {
			out = append(out, vi)
		}
	}
	sort.Ints(out)
	return out
}

// alignStrides returns, for each position of the outer scope, the
// stride that the outer digit contributes to the inner constraint's
// index (0 when the outer variable is not in the inner scope). The
// inner scope must be a subset of the outer scope.
func alignStrides[T any](s *Space[T], outer, inner []int) []int {
	out := make([]int, len(outer))
	alignStridesInto(out, s, outer, inner)
	return out
}

// alignStridesInto is alignStrides writing into a caller-owned buffer
// of len(outer), allocating nothing.
func alignStridesInto[T any](dst []int, s *Space[T], outer, inner []int) {
	for k := range dst {
		dst[k] = 0
	}
	// stride of inner position j = product of domain sizes after j.
	acc := 1
	for j := len(inner) - 1; j >= 0; j-- {
		for k, vi := range outer {
			if vi == inner[j] {
				dst[k] = acc
				break
			}
		}
		acc *= s.domainSize(inner[j])
	}
}

func forAllJoint[T any](s *Space[T], scope []int, pred func(digits []int) bool) bool {
	size := 1
	for _, vi := range scope {
		size *= s.domainSize(vi)
	}
	digits := make([]int, len(scope))
	for i := 0; i < size; i++ {
		if !pred(digits) {
			return false
		}
		for j := len(digits) - 1; j >= 0; j-- {
			digits[j]++
			if digits[j] < s.domainSize(scope[j]) {
				break
			}
			digits[j] = 0
		}
	}
	return true
}

func newEmptyByIdx[T any](s *Space[T], scope []int) *Constraint[T] {
	sorted := append([]int(nil), scope...)
	sort.Ints(sorted)
	size := 1
	for _, i := range sorted {
		size *= s.domainSize(i)
		if size > maxTableSize {
			panic("core: joined constraint table exceeds size limit")
		}
	}
	c := &Constraint[T]{space: s, scope: sorted, table: make([]T, size)}
	c.computeStride()
	return c
}
