package core

// Store is the shared constraint store σ of a (nonmonotonic) soft
// concurrent constraint computation. It holds a single constraint —
// the combination of everything told so far, minus what has been
// retracted — materialised over its current support. The zero store
// is not usable; construct with NewStore, which yields the empty
// store 1̄ (no information, full consistency).
//
// Store methods implement exactly the store transformations of the
// nmsccp transition rules (Fig. 4 of the paper): Tell is σ ⊗ c,
// Retract is σ ÷ c (guarded by σ ⊑ c), Update_X is (σ⇓_{V\X}) ⊗ c,
// and Entails is the ⊢ relation used by ask/nask.
//
// A Store is not safe for concurrent use; the nmsccp interpreter
// serialises access through its interleaving scheduler, mirroring the
// paper's small-step semantics in which each transition is atomic.
type Store[T any] struct {
	space *Space[T]
	sigma *Constraint[T]
}

// NewStore returns the empty store (σ = 1̄) over the space.
func NewStore[T any](s *Space[T]) *Store[T] {
	return &Store[T]{space: s, sigma: Top(s)}
}

// Space returns the store's space.
func (st *Store[T]) Space() *Space[T] { return st.space }

// Constraint returns the current store constraint σ.
func (st *Store[T]) Constraint() *Constraint[T] { return st.sigma }

// Snapshot returns a copy of the store that evolves independently.
func (st *Store[T]) Snapshot() *Store[T] {
	return &Store[T]{space: st.space, sigma: st.sigma}
}

// Restore resets the store to a previously taken snapshot.
func (st *Store[T]) Restore(snap *Store[T]) {
	if snap.space != st.space {
		panic("core: Restore from store over a different space")
	}
	st.sigma = snap.sigma
}

// Tell combines c into the store: σ' = σ ⊗ c.
func (st *Store[T]) Tell(c *Constraint[T]) {
	st.sigma = Combine(st.sigma, c)
}

// Retract divides c out of the store: σ' = σ ÷ c. Following rule R7
// it requires σ ⊑ c (the store entails c); it reports whether the
// retraction was applied. Retracting a constraint that was never told
// is legal whenever the store is strong enough to entail it — this is
// how Example 2 of the paper relaxes a merged policy.
func (st *Store[T]) Retract(c *Constraint[T]) bool {
	if !Leq(st.sigma, c) {
		return false
	}
	st.sigma = Divide(st.sigma, c)
	return true
}

// Update implements update_X(c): it removes the influence of every
// constraint on the variables in X by projecting the store onto
// V \ X, then tells c. The removals and the addition are
// transactional — they happen as one store transformation.
func (st *Store[T]) Update(x []Variable, c *Constraint[T]) {
	st.sigma = Combine(ProjectOut(st.sigma, x...), c)
}

// Entails reports σ ⊢ c, i.e. σ ⊑ c.
func (st *Store[T]) Entails(c *Constraint[T]) bool {
	return Leq(st.sigma, c)
}

// Blevel returns σ ⇓ ∅, the consistency level of the store.
func (st *Store[T]) Blevel() T { return Blevel(st.sigma) }

// Consistent reports whether the store's blevel is above Zero.
func (st *Store[T]) Consistent() bool {
	sr := st.space.sr
	return !sr.Eq(st.Blevel(), sr.Zero())
}
