// Package core implements semiring-based soft constraints — the
// primary contribution of Bistarelli & Santini (DSN 2008). A soft
// constraint is a function from assignments of a finite set of
// variables to values of a c-semiring; constraints are combined with
// ⊗ (pointwise ×), removed with ÷ (pointwise residual), and hidden
// with the projection operator ⇓ (summation with + over eliminated
// variables). On top of these, the package defines Soft Constraint
// Satisfaction Problems (SCSPs) with their best level of consistency,
// the entailment relation used by ask agents, diagonal constraints
// for parameter passing, and the mutable nonmonotonic Store on which
// the nmsccp language operates.
package core

import (
	"fmt"
	"math"
	"strconv"

	"softsoa/internal/semiring"
)

// Variable is the name of a decision variable.
type Variable string

// DVal is a single domain value: a label, plus a numeric reading used
// by arithmetic constraint functions (NaN when the label is not
// numeric).
type DVal struct {
	Label string
	Num   float64
}

// IntDomain returns the domain {lo, lo+1, ..., hi} with numeric
// readings. It panics when hi < lo, which would denote an empty
// domain (finite-domain SCSPs require non-empty domains).
func IntDomain(lo, hi int) []DVal {
	if hi < lo {
		panic(fmt.Sprintf("core: empty IntDomain [%d,%d]", lo, hi))
	}
	out := make([]DVal, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, DVal{Label: strconv.Itoa(v), Num: float64(v)})
	}
	return out
}

// LabelDomain returns a purely symbolic domain from labels.
func LabelDomain(labels ...string) []DVal {
	out := make([]DVal, 0, len(labels))
	for _, l := range labels {
		n := math.NaN()
		if f, err := strconv.ParseFloat(l, 64); err == nil {
			n = f
		}
		out = append(out, DVal{Label: l, Num: n})
	}
	return out
}

// NumDomain returns a numeric domain from explicit values.
func NumDomain(values ...float64) []DVal {
	out := make([]DVal, 0, len(values))
	for _, v := range values {
		out = append(out, DVal{Label: strconv.FormatFloat(v, 'g', -1, 64), Num: v})
	}
	return out
}

// Space is a soft constraint system: a c-semiring S, an ordered set
// of variables V and their finite domains D. All constraints of a
// problem share one Space; combining constraints from different
// spaces is a programming error and panics.
type Space[T any] struct {
	sr      semiring.Semiring[T]
	names   []Variable
	domains [][]DVal
	index   map[Variable]int
}

// NewSpace returns an empty Space over the given semiring. It panics
// on a nil semiring.
func NewSpace[T any](sr semiring.Semiring[T]) *Space[T] {
	if sr == nil {
		panic("core: NewSpace with nil semiring")
	}
	return &Space[T]{sr: sr, index: make(map[Variable]int)}
}

// Semiring returns the space's c-semiring.
func (s *Space[T]) Semiring() semiring.Semiring[T] { return s.sr }

// AddVariable declares a variable with the given domain and returns
// its name for convenience. It panics on duplicate names or empty
// domains: both would silently corrupt every table built afterwards.
func (s *Space[T]) AddVariable(name Variable, domain []DVal) Variable {
	if _, dup := s.index[name]; dup {
		panic(fmt.Sprintf("core: duplicate variable %q", name))
	}
	if len(domain) == 0 {
		panic(fmt.Sprintf("core: empty domain for variable %q", name))
	}
	s.index[name] = len(s.names)
	s.names = append(s.names, name)
	s.domains = append(s.domains, append([]DVal(nil), domain...))
	return name
}

// Variables returns the declared variables in declaration order.
func (s *Space[T]) Variables() []Variable {
	return append([]Variable(nil), s.names...)
}

// Domain returns the domain of a declared variable. It panics on an
// unknown variable.
func (s *Space[T]) Domain(name Variable) []DVal {
	return append([]DVal(nil), s.domains[s.varIndex(name)]...)
}

// HasVariable reports whether name has been declared.
func (s *Space[T]) HasVariable(name Variable) bool {
	_, ok := s.index[name]
	return ok
}

// NumVariables returns the number of declared variables.
func (s *Space[T]) NumVariables() int { return len(s.names) }

func (s *Space[T]) varIndex(name Variable) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("core: unknown variable %q", name))
	}
	return i
}

func (s *Space[T]) domainSize(i int) int { return len(s.domains[i]) }

// FreshVariable declares a new variable, with a name derived from
// prefix that does not collide with any declared variable, sharing
// the given domain. It is used by the ∃x (hiding) rule of nmsccp,
// whose semantics requires a fresh variable per activation.
func (s *Space[T]) FreshVariable(prefix Variable, domain []DVal) Variable {
	for i := 0; ; i++ {
		name := Variable(fmt.Sprintf("%s#%d", prefix, i))
		if !s.HasVariable(name) {
			return s.AddVariable(name, domain)
		}
	}
}

// Assignment maps variables to chosen domain values.
type Assignment map[Variable]DVal

// Get returns the value assigned to v, or a zero DVal if unassigned.
func (a Assignment) Get(v Variable) DVal { return a[v] }

// Num returns the numeric reading of the value assigned to v.
func (a Assignment) Num(v Variable) float64 { return a[v].Num }

// Label returns the label of the value assigned to v.
func (a Assignment) Label(v Variable) string { return a[v].Label }
