package solver

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
	"softsoa/internal/workload"
)

// assertSameResult fails unless the two results carry the same blevel
// and the same frontier, element for element, in the same order.
// Nodes/Prunes are deliberately not compared: under WithParallel they
// depend on bound visibility timing (identical modulo scheduling).
func assertSameResult[T any](t *testing.T, sr semiring.Semiring[T], label string, want, got Result[T]) {
	t.Helper()
	if !sr.Eq(want.Blevel, got.Blevel) {
		t.Fatalf("%s: blevel %s, want %s", label, sr.Format(got.Blevel), sr.Format(want.Blevel))
	}
	if len(want.Best) != len(got.Best) {
		t.Fatalf("%s: frontier size %d, want %d", label, len(got.Best), len(want.Best))
	}
	for i := range want.Best {
		if !sr.Eq(want.Best[i].Value, got.Best[i].Value) {
			t.Fatalf("%s: frontier[%d] value %s, want %s",
				label, i, sr.Format(got.Best[i].Value), sr.Format(want.Best[i].Value))
		}
		wa, ga := want.Best[i].Assignment, got.Best[i].Assignment
		if len(wa) != len(ga) {
			t.Fatalf("%s: frontier[%d] assignment size %d, want %d", label, i, len(ga), len(wa))
		}
		for v, dv := range wa {
			if ga[v].Label != dv.Label {
				t.Fatalf("%s: frontier[%d] %s=%s, want %s", label, i, v, ga[v].Label, dv.Label)
			}
		}
	}
}

// seqParCase runs sequential and parallel branch and bound on the
// same problem under several worker counts and option sets, asserting
// identical results each time.
func seqParCase[T any](t *testing.T, sr semiring.Semiring[T], name string, p *core.Problem[T], extra ...Option) {
	t.Helper()
	optSets := [][]Option{
		nil,
		{WithLookahead(), WithDegreeOrdering()},
	}
	for oi, opts := range optSets {
		opts = append(append([]Option(nil), opts...), extra...)
		seq := BranchAndBound(p, append([]Option{WithParallel(1)}, opts...)...)
		for _, workers := range []int{2, 3, 8} {
			par := BranchAndBound(p, append([]Option{WithParallel(workers)}, opts...)...)
			assertSameResult(t, sr, fmt.Sprintf("%s/opts%d/workers=%d", name, oi, workers), seq, par)
		}
	}
}

// TestParallelEquivalenceAllSemirings is the sequential-vs-parallel
// property suite: random workload instances over every shipped
// semiring must produce identical Blevel and frontier under any
// worker count. The partially ordered instances (set, product) use a
// MaxBest far above any reachable frontier width so the cap never
// binds — the boundary of the byte-identical guarantee documented on
// WithParallel.
func TestParallelEquivalenceAllSemirings(t *testing.T) {
	base := workload.SCSPParams{Vars: 6, DomainSize: 3, Density: 0.5, Tightness: 0.7}
	for seed := int64(1); seed <= 4; seed++ {
		p := base
		p.Seed = seed

		wp, err := workload.RandomSCSP(p, semiring.Weighted{}, func(rng *rand.Rand) float64 {
			return float64(1 + rng.Intn(20))
		})
		if err != nil {
			t.Fatal(err)
		}
		seqParCase[float64](t, semiring.Weighted{}, fmt.Sprintf("weighted/seed=%d", seed), wp)

		bsr := semiring.NewBoundedWeighted(50)
		bp, err := workload.RandomSCSP(p, bsr, func(rng *rand.Rand) float64 {
			return float64(1 + rng.Intn(20))
		})
		if err != nil {
			t.Fatal(err)
		}
		seqParCase[float64](t, bsr, fmt.Sprintf("bounded/seed=%d", seed), bp)

		fp, err := workload.RandomSCSP(p, semiring.Fuzzy{}, func(rng *rand.Rand) float64 {
			return float64(rng.Intn(100)) / 100
		})
		if err != nil {
			t.Fatal(err)
		}
		seqParCase[float64](t, semiring.Fuzzy{}, fmt.Sprintf("fuzzy/seed=%d", seed), fp)

		pp, err := workload.RandomSCSP(p, semiring.Probabilistic{}, func(rng *rand.Rand) float64 {
			return 0.5 + float64(rng.Intn(50))/100
		})
		if err != nil {
			t.Fatal(err)
		}
		seqParCase[float64](t, semiring.Probabilistic{}, fmt.Sprintf("probabilistic/seed=%d", seed), pp)

		cp, err := workload.RandomSCSP(p, semiring.Classical{}, func(rng *rand.Rand) bool {
			return false
		})
		if err != nil {
			t.Fatal(err)
		}
		seqParCase[bool](t, semiring.Classical{}, fmt.Sprintf("classical/seed=%d", seed), cp)

		ssr := semiring.NewSet("read", "write", "admin")
		sp, err := workload.RandomSCSP[semiring.Bitset](p, ssr, func(rng *rand.Rand) semiring.Bitset {
			return semiring.Bitset(rng.Intn(8))
		})
		if err != nil {
			t.Fatal(err)
		}
		seqParCase[semiring.Bitset](t, ssr, fmt.Sprintf("set/seed=%d", seed), sp, WithMaxBest(1<<20))

		psr := semiring.NewProduct[float64, float64](semiring.Weighted{}, semiring.Fuzzy{})
		prodp, err := workload.RandomSCSP[semiring.Pair[float64, float64]](p, psr,
			func(rng *rand.Rand) semiring.Pair[float64, float64] {
				return semiring.P(float64(rng.Intn(10)), float64(rng.Intn(100))/100)
			})
		if err != nil {
			t.Fatal(err)
		}
		seqParCase[semiring.Pair[float64, float64]](t, psr, fmt.Sprintf("product/seed=%d", seed), prodp, WithMaxBest(1<<20))
	}
}

// TestParallelEquivalenceEdgeShapes covers the degenerate shapes the
// fan-out must not mishandle: no variables, one variable, and more
// workers than subtree tasks.
func TestParallelEquivalenceEdgeShapes(t *testing.T) {
	sr := semiring.Weighted{}

	s0 := core.NewSpace[float64](sr)
	p0 := core.NewProblem(s0)
	p0.Add(core.Constant(s0, 3))
	assertSameResult(t, sr, "no-vars", BranchAndBound(p0), BranchAndBound(p0, WithParallel(4)))

	s1 := core.NewSpace[float64](sr)
	x := s1.AddVariable("x", core.IntDomain(0, 4))
	p1 := core.NewProblem(s1, x)
	p1.Add(core.Unary(s1, x, map[string]float64{"0": 2, "1": 1, "2": 7, "3": 1, "4": 9}))
	assertSameResult(t, sr, "one-var", BranchAndBound(p1), BranchAndBound(p1, WithParallel(16)))
}

// TestParallelRaceStress hammers the shared incumbent bound: many
// workers over a problem whose subtrees finish at wildly different
// times, repeated to vary interleavings. Run under -race this is the
// shared bound's data-race test; the result must still equal the
// sequential one every iteration.
func TestParallelRaceStress(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 9, DomainSize: 3, Density: 0.5, Tightness: 0.9, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := BranchAndBound(p)
	for i := 0; i < 8; i++ {
		par := BranchAndBound(p, WithParallel(8))
		assertSameResult[float64](t, semiring.Weighted{}, fmt.Sprintf("iter=%d", i), seq, par)
	}
}

// TestWithPropagationMatchesPlain checks that propagation-seeded
// search returns the same result as plain search on carriers whose
// Plus/Times/Div are floating-point exact (integer-valued weighted
// costs; fuzzy min/max), sequential and parallel alike.
func TestWithPropagationMatchesPlain(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		params := workload.SCSPParams{Vars: 7, DomainSize: 3, Density: 0.5, Tightness: 0.8, Seed: seed}
		wp, err := workload.RandomWeightedSCSP(params)
		if err != nil {
			t.Fatal(err)
		}
		plain := BranchAndBound(wp)
		for _, opts := range [][]Option{
			{WithPropagation(0)},
			{WithPropagation(0), WithLookahead()},
			{WithPropagation(0), WithParallel(4)},
		} {
			prop := BranchAndBound(wp, opts...)
			assertSameResult[float64](t, semiring.Weighted{}, fmt.Sprintf("weighted/seed=%d", seed), plain, prop)
		}

		fp, err := workload.RandomFuzzySCSP(params)
		if err != nil {
			t.Fatal(err)
		}
		plainF := BranchAndBound(fp)
		propF := BranchAndBound(fp, WithPropagation(0), WithLookahead())
		assertSameResult[float64](t, semiring.Fuzzy{}, fmt.Sprintf("fuzzy/seed=%d", seed), plainF, propF)
	}
}

// TestPropagateDeterministicOrder guards the fix for the map-ordered
// unary sweep: repeated runs must produce bit-identical c∅ and the
// same rebuilt constraint sequence (fractional fuzzy values make any
// fold-order change visible in the floats).
func TestPropagateDeterministicOrder(t *testing.T) {
	p, err := workload.RandomFuzzySCSP(workload.SCSPParams{
		Vars: 8, DomainSize: 3, Density: 0.6, Tightness: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, refCzero, _ := Propagate(p, 0)
	refCs := ref.Constraints()
	for i := 0; i < 10; i++ {
		out, czero, _ := Propagate(p, 0)
		if czero != refCzero {
			t.Fatalf("run %d: c∅ = %v, want %v", i, czero, refCzero)
		}
		cs := out.Constraints()
		if len(cs) != len(refCs) {
			t.Fatalf("run %d: %d constraints, want %d", i, len(cs), len(refCs))
		}
		for k := range cs {
			if !core.Eq(cs[k], refCs[k]) {
				t.Fatalf("run %d: constraint %d differs from reference", i, k)
			}
		}
	}
}

// TestBranchAndBoundInnerLoopAllocFree is the indexed-evaluation
// acceptance check: once the frontier cap is saturated, re-running
// the full search on an extensional problem performs zero heap
// allocations — every node works on the in-place digit vector through
// stride-indexed tables.
func TestBranchAndBoundInnerLoopAllocFree(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 8, DomainSize: 3, Density: 0.5, Tightness: 0.9, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	pl := newPlan(p, &cfg)
	s := newSearch(pl, newDigitFrontier[float64](pl.sr, cfg.maxBest))
	run := func() {
		s.blevel = pl.sr.Zero()
		for i := range s.digits {
			s.digits[i] = 0
		}
		s.run(0, pl.rootBound)
	}
	// Warm until the frontier holds its full complement of co-optimal
	// snapshots; afterwards every offer is either dominated or blocked
	// by the cap, and displaced-buffer recycling covers the rest.
	for i := 0; i < 32; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("inner B&B loop allocates %v per run, want 0", avg)
	}
}

// TestEliminateAllocsBounded asserts the Combiner-based elimination
// stays within a small allocation budget: two materialised tables per
// round plus constant bookkeeping, instead of the pairwise fold's
// per-pair intermediates and per-table odometer/stride slices.
func TestEliminateAllocsBounded(t *testing.T) {
	p, err := workload.ChainWeightedSCSP(12, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := Eliminate(p)
	avg := testing.AllocsPerRun(10, func() {
		got := Eliminate(p)
		if got.Blevel != want.Blevel {
			t.Fatalf("blevel drifted: %v != %v", got.Blevel, want.Blevel)
		}
	})
	// Measured ~265 allocs for 11 elimination rounds on this chain
	// (table+scope+stride per materialised table, min-degree scope
	// walks, problem/result bookkeeping); the pairwise-fold seed
	// implementation measured ~1108. Assert with headroom so the
	// bound flags regressions, not noise.
	const limit = 400
	if avg > limit {
		t.Fatalf("Eliminate allocates %v per run, want ≤ %d", avg, limit)
	}
}

// TestWithWorkersSequentialPath: a worker count of 1 — through either
// spelling — must take the plain sequential path: no scheduling
// machinery, so Nodes and Prunes are exactly the deterministic
// sequential counts and every scheduler counter stays zero.
func TestWithWorkersSequentialPath(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 8, DomainSize: 3, Density: 0.5, Tightness: 0.8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := BranchAndBound(p)
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"WithWorkers(1)", WithWorkers(1)},
		{"WithParallel(1)", WithParallel(1)},
		{"WithParallel(0)", WithParallel(0)},
	} {
		got := BranchAndBound(p, tc.opt)
		assertSameResult[float64](t, semiring.Weighted{}, tc.name, plain, got)
		if got.Stats.Nodes != plain.Stats.Nodes || got.Stats.Prunes != plain.Stats.Prunes {
			t.Errorf("%s: nodes/prunes %d/%d, want sequential %d/%d",
				tc.name, got.Stats.Nodes, got.Stats.Prunes, plain.Stats.Nodes, plain.Stats.Prunes)
		}
		if got.Stats.Workers != 1 || got.Stats.Tasks != 0 || got.Stats.Steals != 0 || got.Stats.Splits != 0 {
			t.Errorf("%s: scheduler counters leaked: workers=%d tasks=%d steals=%d splits=%d",
				tc.name, got.Stats.Workers, got.Stats.Tasks, got.Stats.Steals, got.Stats.Splits)
		}
	}
}

// TestWithWorkersResolvesGOMAXPROCS: the canonical zero value must
// resolve to runtime.GOMAXPROCS(0) — reported in Stats.Workers — and
// still return the sequential result. Negative counts clamp to the
// same resolution.
func TestWithWorkersResolvesGOMAXPROCS(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 8, DomainSize: 3, Density: 0.5, Tightness: 0.8, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.GOMAXPROCS(0)
	plain := BranchAndBound(p)
	for _, n := range []int{0, -3} {
		got := BranchAndBound(p, WithWorkers(n))
		assertSameResult[float64](t, semiring.Weighted{}, fmt.Sprintf("WithWorkers(%d)", n), plain, got)
		if got.Stats.Workers != want {
			t.Errorf("WithWorkers(%d): Stats.Workers = %d, want GOMAXPROCS %d", n, got.Stats.Workers, want)
		}
	}
}

// TestWorkStealingSkewedTreeStress drives the adaptive splitter hard:
// the root variable's unary makes all but one of its values
// prohibitively expensive, so the top-level split is worthless — all
// real work hides under one child — and hungry workers must keep
// re-stealing progressively deeper sibling ranges. Every iteration
// must reproduce the sequential result exactly, and across the
// iterations the scheduler must actually have split and stolen
// subtrees (the instance runs long enough that steal demand arises
// even on a single-CPU runner, via preemption).
func TestWorkStealingSkewedTreeStress(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 13, DomainSize: 3, Density: 0.5, Tightness: 0.9, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Space()
	p.Add(core.Unary(s, s.Variables()[0], map[string]float64{"0": 0, "1": 8, "2": 8}))
	seq := BranchAndBound(p)
	var steals, splits int64
	for i := 0; i < 4; i++ {
		par := BranchAndBound(p, WithWorkers(8))
		assertSameResult[float64](t, semiring.Weighted{}, fmt.Sprintf("iter=%d", i), seq, par)
		if par.Stats.Workers != 8 {
			t.Fatalf("iter=%d: Stats.Workers = %d, want 8", i, par.Stats.Workers)
		}
		steals += par.Stats.Steals
		splits += par.Stats.Splits
	}
	if splits == 0 || steals == 0 {
		t.Errorf("no work was redistributed over 4 runs: steals=%d splits=%d", steals, splits)
	}
}

// TestHuntParkWakeup pins the scheduler into the workers >> cores
// regime the parking rework targets: 16 workers on a single
// GOMAXPROCS slot, where the pre-park hunt loop Gosched-spun through
// every hungry worker's time slice. Each iteration must terminate
// (parked workers are woken by every spill and by the final task's
// completion — a missed wake-up deadlocks the solve and fails the
// test by timeout) and must still reproduce the sequential result
// bit for bit.
func TestHuntParkWakeup(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 10, DomainSize: 3, Density: 0.5, Tightness: 0.8, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := BranchAndBound(p)
	for i := 0; i < 8; i++ {
		par := BranchAndBound(p, WithWorkers(16))
		assertSameResult[float64](t, semiring.Weighted{}, fmt.Sprintf("iter=%d", i), seq, par)
	}
}
