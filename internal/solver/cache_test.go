package solver

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"softsoa/internal/cache"
	"softsoa/internal/core"
	"softsoa/internal/obs/journal"
	"softsoa/internal/semiring"
	"softsoa/internal/workload"
)

// assertSameSolve is assertSameResult plus the deterministic search
// statistics: a memo hit must return the cold run's Nodes, Prunes and
// Tasks bitwise, not fresh ones.
func assertSameSolve[T any](t *testing.T, sr semiring.Semiring[T], label string, want, got Result[T]) {
	t.Helper()
	assertSameResult(t, sr, label, want, got)
	if got.Stats.Nodes != want.Stats.Nodes || got.Stats.Prunes != want.Stats.Prunes ||
		got.Stats.Tasks != want.Stats.Tasks {
		t.Fatalf("%s: stats nodes/prunes/tasks %d/%d/%d, want %d/%d/%d",
			label, got.Stats.Nodes, got.Stats.Prunes, got.Stats.Tasks,
			want.Stats.Nodes, want.Stats.Prunes, want.Stats.Tasks)
	}
}

// cachedCase solves cold, then twice through one cache (miss then
// hit), asserting all three results identical — including the
// deterministic statistics — and that the hit actually came from the
// memo.
func cachedCase[T any](t *testing.T, sr semiring.Semiring[T], name string, p *core.Problem[T], extra ...Option) {
	t.Helper()
	cold := BranchAndBound(p, extra...)
	c := cache.New(256)
	withCache := append([]Option{WithSolveCache(c)}, extra...)
	miss := BranchAndBound(p, withCache...)
	assertSameSolve(t, sr, name+"/miss", cold, miss)
	before := c.TierStats(cache.TierSearch).Hits
	hit := BranchAndBound(p, withCache...)
	assertSameSolve(t, sr, name+"/hit", cold, hit)
	if c.TierStats(cache.TierSearch).Hits != before+1 {
		t.Fatalf("%s: repeat solve did not hit the exact memo", name)
	}
	// The cached entry must not alias the returned result: mutating a
	// hit's assignment cannot poison later hits.
	if len(hit.Best) > 0 {
		for k := range hit.Best[0].Assignment {
			hit.Best[0].Assignment[k] = core.DVal{Label: "poison"}
		}
		again := BranchAndBound(p, withCache...)
		assertSameSolve(t, sr, name+"/after-poison", cold, again)
	}
}

// TestCachedSolveBitwiseIdenticalAllSemirings is the cached-vs-cold
// property suite over every shipped semiring: a memo hit must be
// bitwise the cold solve — Blevel, frontier (values and assignments)
// and the deterministic statistics. The partially ordered instances
// (set, product) use a MaxBest far above any reachable frontier width,
// the same boundary the parallel suite documents.
func TestCachedSolveBitwiseIdenticalAllSemirings(t *testing.T) {
	base := workload.SCSPParams{Vars: 6, DomainSize: 3, Density: 0.5, Tightness: 0.7}
	for seed := int64(1); seed <= 4; seed++ {
		p := base
		p.Seed = seed

		wp, err := workload.RandomSCSP(p, semiring.Weighted{}, func(rng *rand.Rand) float64 {
			return float64(1 + rng.Intn(20))
		})
		if err != nil {
			t.Fatal(err)
		}
		cachedCase[float64](t, semiring.Weighted{}, fmt.Sprintf("weighted/seed=%d", seed), wp)
		// Propagation through the fixpoint tier must not change the
		// cached-vs-cold identity (weighted ÷ is exact).
		cachedCase[float64](t, semiring.Weighted{}, fmt.Sprintf("weighted-prop/seed=%d", seed), wp, WithPropagation(0))

		bsr := semiring.NewBoundedWeighted(50)
		bp, err := workload.RandomSCSP(p, bsr, func(rng *rand.Rand) float64 {
			return float64(1 + rng.Intn(20))
		})
		if err != nil {
			t.Fatal(err)
		}
		cachedCase[float64](t, bsr, fmt.Sprintf("bounded/seed=%d", seed), bp)

		fp, err := workload.RandomSCSP(p, semiring.Fuzzy{}, func(rng *rand.Rand) float64 {
			return float64(rng.Intn(100)) / 100
		})
		if err != nil {
			t.Fatal(err)
		}
		cachedCase[float64](t, semiring.Fuzzy{}, fmt.Sprintf("fuzzy/seed=%d", seed), fp)

		pp, err := workload.RandomSCSP(p, semiring.Probabilistic{}, func(rng *rand.Rand) float64 {
			return 0.5 + float64(rng.Intn(50))/100
		})
		if err != nil {
			t.Fatal(err)
		}
		cachedCase[float64](t, semiring.Probabilistic{}, fmt.Sprintf("probabilistic/seed=%d", seed), pp)

		cp, err := workload.RandomSCSP(p, semiring.Classical{}, func(rng *rand.Rand) bool {
			return false
		})
		if err != nil {
			t.Fatal(err)
		}
		cachedCase[bool](t, semiring.Classical{}, fmt.Sprintf("classical/seed=%d", seed), cp)

		ssr := semiring.NewSet("read", "write", "admin")
		sp, err := workload.RandomSCSP[semiring.Bitset](p, ssr, func(rng *rand.Rand) semiring.Bitset {
			return semiring.Bitset(rng.Intn(8))
		})
		if err != nil {
			t.Fatal(err)
		}
		cachedCase[semiring.Bitset](t, ssr, fmt.Sprintf("set/seed=%d", seed), sp, WithMaxBest(1<<20))

		psr := semiring.NewProduct[float64, float64](semiring.Weighted{}, semiring.Fuzzy{})
		prodp, err := workload.RandomSCSP[semiring.Pair[float64, float64]](p, psr,
			func(rng *rand.Rand) semiring.Pair[float64, float64] {
				return semiring.P(float64(rng.Intn(10)), float64(rng.Intn(100))/100)
			})
		if err != nil {
			t.Fatal(err)
		}
		cachedCase[semiring.Pair[float64, float64]](t, psr, fmt.Sprintf("product/seed=%d", seed), prodp, WithMaxBest(1<<20))
	}
}

// perturbedPair builds a base weighted problem and a single-variable
// perturbation of it: the same constraints plus one extra unary on v0,
// the renegotiation shape warm starts exploit.
func perturbedPair(t *testing.T, seed int64) (*core.Problem[float64], *core.Problem[float64]) {
	t.Helper()
	params := workload.SCSPParams{Vars: 8, DomainSize: 3, Density: 0.6, Tightness: 0.8, Seed: seed}
	base, err := workload.RandomWeightedSCSP(params)
	if err != nil {
		t.Fatal(err)
	}
	pert, err := workload.RandomWeightedSCSP(params)
	if err != nil {
		t.Fatal(err)
	}
	s := pert.Space()
	pert.Add(core.Unary(s, "v0", map[string]float64{"0": 4, "1": 0, "2": 2}))
	return base, pert
}

// TestWarmStartEquivalence checks the warm-started re-solve: after a
// base solve fills the slot, the perturbed solve seeded from it must
// return exactly the cold perturbed result (Blevel and frontier; the
// node/prune counts legitimately differ), and the applied warm start
// must be counted.
func TestWarmStartEquivalence(t *testing.T) {
	sr := semiring.Weighted{}
	slot := cache.NewHasher("test-warm-slot").Sum()
	for seed := int64(1); seed <= 4; seed++ {
		base, pert := perturbedPair(t, seed)
		cold := BranchAndBound(pert)
		c := cache.New(256)
		BranchAndBound(base, WithSolveCache(c), WithWarmStart(slot))
		warm := BranchAndBound(pert, WithSolveCache(c), WithWarmStart(slot))
		assertSameResult(t, sr, fmt.Sprintf("warm/seed=%d", seed), cold, warm)
		applied, _ := c.WarmStats()
		if applied < 1 {
			t.Fatalf("seed %d: warm start not applied", seed)
		}
		if cold.Stats.Nodes < warm.Stats.Nodes {
			t.Fatalf("seed %d: warm solve expanded more nodes (%d) than cold (%d)",
				seed, warm.Stats.Nodes, cold.Stats.Nodes)
		}
	}
}

// TestWarmStartFallback: a slot filled from an unrelated space (no
// shared variables) must fall back to a cold solve — counted as a
// fallback — and still return the exact cold result.
func TestWarmStartFallback(t *testing.T) {
	sr := semiring.Weighted{}
	slot := cache.NewHasher("test-fallback-slot").Sum()
	other := core.NewSpace[float64](sr)
	x := other.AddVariable("unrelated", core.IntDomain(0, 1))
	op := core.NewProblem(other, x)
	op.Add(core.Unary(other, x, map[string]float64{"0": 1, "1": 2}))

	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 5, DomainSize: 3, Density: 0.5, Tightness: 0.7, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := BranchAndBound(p)
	c := cache.New(64)
	BranchAndBound(op, WithSolveCache(c), WithWarmStart(slot))
	warm := BranchAndBound(p, WithSolveCache(c), WithWarmStart(slot))
	assertSameResult(t, sr, "fallback", cold, warm)
	if _, fallback := c.WarmStats(); fallback < 1 {
		t.Fatal("incompatible slot not counted as fallback")
	}
}

// TestWarmStartParallelEquivalence: seeds must compose with the
// parallel driver — warm-started parallel solves still equal the
// sequential cold reference.
func TestWarmStartParallelEquivalence(t *testing.T) {
	sr := semiring.Weighted{}
	slot := cache.NewHasher("test-warm-par").Sum()
	base, pert := perturbedPair(t, 3)
	cold := BranchAndBound(pert)
	c := cache.New(256)
	BranchAndBound(base, WithSolveCache(c), WithWarmStart(slot))
	warm := BranchAndBound(pert, WithSolveCache(c), WithWarmStart(slot), WithParallel(4))
	assertSameResult(t, sr, "warm-parallel", cold, warm)
}

// TestPropagateCachedSharedFixpoint: the second fixpoint of identical
// content must come from the cache, bit-equal in c∅ and in the solve
// over the rewritten problem.
func TestPropagateCachedSharedFixpoint(t *testing.T) {
	sr := semiring.Weighted{}
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 6, DomainSize: 3, Density: 0.5, Tightness: 0.7, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	coldProb, coldZ, coldStats := Propagate(p, 0)
	c := cache.New(64)
	p1, z1, s1 := PropagateCached(c, p, 0)
	p2, z2, s2 := PropagateCached(c, p, 0)
	if !sr.Eq(coldZ, z1) || !sr.Eq(z1, z2) {
		t.Fatalf("c∅ drift: cold %v, miss %v, hit %v", coldZ, z1, z2)
	}
	if s1 != coldStats || s2 != s1 {
		t.Fatalf("stats drift: cold %+v, miss %+v, hit %+v", coldStats, s1, s2)
	}
	if p2 != p1 {
		t.Fatal("fixpoint hit rebuilt the problem instead of sharing it")
	}
	st := c.TierStats(cache.TierFixpoint)
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("fixpoint tier stats %+v, want 1 miss / 1 hit", st)
	}
	assertSameResult(t, sr, "propagated-solve", BranchAndBound(coldProb), BranchAndBound(p1))
}

type countingRecorder struct{ n int }

func (r *countingRecorder) RecordSearch(journal.SearchRecord) { r.n++ }

// TestTelemetryBypassesExactMemo: a run carrying a telemetry recorder
// must search for real every time — the memo would silently swallow
// the events — while still producing the same result.
func TestTelemetryBypassesExactMemo(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 6, DomainSize: 3, Density: 0.5, Tightness: 0.7, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(64)
	cold := BranchAndBound(p)
	r1 := &countingRecorder{}
	first := BranchAndBound(p, WithSolveCache(c), WithTelemetry(r1, 1))
	r2 := &countingRecorder{}
	second := BranchAndBound(p, WithSolveCache(c), WithTelemetry(r2, 1))
	assertSameResult(t, semiring.Weighted{}, "telemetry/first", cold, first)
	assertSameResult(t, semiring.Weighted{}, "telemetry/second", cold, second)
	if r1.n == 0 || r2.n != r1.n {
		t.Fatalf("telemetry events %d then %d: the repeat run must re-search and re-emit", r1.n, r2.n)
	}
	if st := c.TierStats(cache.TierSearch); st.Hits != 0 {
		t.Fatalf("telemetry run served from the exact memo (%d hits)", st.Hits)
	}
}

// TestCachedSolveRaceStress hammers one cache from concurrent solves
// of several problems; under -race this is the solver-side cache
// concurrency witness. Every result must equal its cold reference.
func TestCachedSolveRaceStress(t *testing.T) {
	sr := semiring.Weighted{}
	type tc struct {
		p    *core.Problem[float64]
		cold Result[float64]
	}
	var cases []tc
	for seed := int64(1); seed <= 4; seed++ {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: 6, DomainSize: 3, Density: 0.5, Tightness: 0.8, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{p: p, cold: BranchAndBound(p)})
	}
	c := cache.New(8) // small: force concurrent eviction too
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			slot := cache.NewHasher(fmt.Sprintf("race-slot-%d", g%2)).Sum()
			for i := 0; i < 30; i++ {
				k := cases[(g+i)%len(cases)]
				got := BranchAndBound(k.p, WithSolveCache(c), WithWarmStart(slot))
				if !sr.Eq(got.Blevel, k.cold.Blevel) || len(got.Best) != len(k.cold.Best) {
					t.Errorf("goroutine %d iter %d: cached solve diverged", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCachedWorkStealingInterplay pins down how the solve cache and
// the work-stealing pool compose. A parallel solve's memo entry
// replays bitwise — including the scheduling-dependent Steals/Splits
// it happened to record — and, because the worker count is resolved
// to GOMAXPROCS before the key is built, WithWorkers(0) and the
// explicit WithWorkers(GOMAXPROCS) spellings share one memo slot
// while a different explicit count occupies its own.
func TestCachedWorkStealingInterplay(t *testing.T) {
	sr := semiring.Weighted{}
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 9, DomainSize: 3, Density: 0.5, Tightness: 0.8, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := BranchAndBound(p)

	c := cache.New(256)
	miss := BranchAndBound(p, WithSolveCache(c), WithWorkers(2))
	assertSameResult(t, sr, "ws/miss", seq, miss)
	hit := BranchAndBound(p, WithSolveCache(c), WithWorkers(2))
	assertSameSolve(t, sr, "ws/hit", miss, hit)
	if hit.Stats.Steals != miss.Stats.Steals || hit.Stats.Splits != miss.Stats.Splits ||
		hit.Stats.Workers != miss.Stats.Workers {
		t.Fatalf("memo hit re-ran the scheduler: steals %d/%d splits %d/%d workers %d/%d",
			hit.Stats.Steals, miss.Stats.Steals, hit.Stats.Splits, miss.Stats.Splits,
			hit.Stats.Workers, miss.Stats.Workers)
	}

	nprocs := runtime.GOMAXPROCS(0)
	before := c.TierStats(cache.TierSearch).Hits
	BranchAndBound(p, WithSolveCache(c), WithWorkers(0))
	explicit := BranchAndBound(p, WithSolveCache(c), WithWorkers(nprocs))
	if got := c.TierStats(cache.TierSearch).Hits; got != before+1 {
		t.Fatalf("WithWorkers(0) and WithWorkers(%d) did not share a memo slot: hits %d, want %d",
			nprocs, got, before+1)
	}
	assertSameResult(t, sr, "ws/gomaxprocs", seq, explicit)
	// nprocs+2 is a count no earlier solve used (2 and nprocs are
	// taken), so it must occupy a fresh slot.
	before = c.TierStats(cache.TierSearch).Misses
	BranchAndBound(p, WithSolveCache(c), WithWorkers(nprocs+2))
	if got := c.TierStats(cache.TierSearch).Misses; got != before+1 {
		t.Fatalf("distinct worker count shared a memo slot: misses %d, want %d", got, before+1)
	}

	// Warm-started work-stealing re-solve: the seeded parallel search
	// of a perturbed problem must still equal its cold sequential
	// solve.
	slot := cache.NewHasher("test-warm-ws").Sum()
	base, pert := perturbedPair(t, 7)
	cold := BranchAndBound(pert)
	wc := cache.New(256)
	BranchAndBound(base, WithSolveCache(wc), WithWarmStart(slot))
	warm := BranchAndBound(pert, WithSolveCache(wc), WithWarmStart(slot), WithWorkers(4))
	assertSameResult(t, sr, "warm-ws", cold, warm)
	if applied, _ := wc.WarmStats(); applied < 1 {
		t.Fatal("warm start not applied to the work-stealing solve")
	}
}
