package solver

import (
	"sort"
	"sync"
	"sync/atomic"

	"softsoa/internal/core"
	"softsoa/internal/obs/journal"
	"softsoa/internal/semiring"
)

// maxIncumbents caps the shared bound's antichain. Dropping an
// incomparable value only weakens pruning — never soundness, since a
// prune requires strict dominance by a member — and keeps the
// copy-on-write snapshots small.
const maxIncumbents = 64

// boundRefreshNodes is the incumbent broadcast period: a worker
// re-reads the shared antichain snapshot every this many expanded
// nodes (and immediately after publishing an incumbent of its own),
// instead of taking the atomic load on every node. Pruning against a
// stale snapshot is sound — every member is a real leaf value — so
// the period trades a little pruning lag for keeping the shared
// cache line out of the per-node path.
const boundRefreshNodes = 64

// wsTask is one unexplored region of the search tree: the subtrees
// rooted at values [from, domainSize) of the variable at depth
// len(path), under the prefix assignment path (digit choices for
// perm[0..len(path)-1], in depth order). bound is the partial product
// entering the prefix node, folded along the same constraint schedule
// as the sequential recursion, so every leaf value computed under the
// task is bit-identical to the sequential solver's.
type wsTask[T any] struct {
	path  []int
	from  int
	bound T
}

// wsSched is the shared state of one work-stealing solve.
type wsSched[T any] struct {
	pl      *plan[T]
	shared  *sharedBound[T]
	workers []*wsWorker[T]
	// hungry counts workers currently hunting for work; a nonzero
	// value is the signal that makes busy workers spill subtrees.
	hungry atomic.Int64
	// pending counts tasks that exist but have not finished (queued
	// or executing). When it reaches zero the search is complete.
	pending atomic.Int64
	// parkMu guards wakeSeq and backs parkCond: a hungry worker whose
	// steal sweep came up empty parks on the condition variable
	// instead of burning its time slice in a Gosched spin — the win is
	// workers >> cores, where spinners used to crowd the runnable
	// queue. wakeSeq is bumped (under parkMu, so a parking worker
	// cannot miss it) on every spill and on the final task's
	// completion; parked workers re-run their steal sweep on each
	// wake-up.
	parkMu   sync.Mutex
	parkCond *sync.Cond
	wakeSeq  uint64 // guarded by parkMu
}

// wake bumps the wake sequence and releases every parked worker. It
// runs per spill and per task completion that drains the search —
// demand-bounded events, never the per-node path.
func (s *wsSched[T]) wake() {
	s.parkMu.Lock()
	s.wakeSeq++
	s.parkMu.Unlock()
	s.parkCond.Broadcast()
}

// wsWorker is one work-stealing searcher: its own deque, digit
// vector, localized constraint tables, uncapped frontier and counters.
// Nothing here is shared — cross-worker traffic goes through the
// deques, the hungry/pending counters and the shared incumbent bound.
type wsWorker[T any] struct {
	id    int
	sched *wsSched[T]
	deque *wsDeque[wsTask[T]]
	// ev is this worker's localized evaluator: the constraint tables
	// copied into a private cache-line-padded arena (Localize), so the
	// inner loop reads worker-local memory.
	ev     *core.Evaluator[T]
	digits []int
	fr     *digitFrontier[T]
	// snap is the cached shared-bound snapshot, refreshed every
	// boundRefreshNodes nodes; snapAge is the node count at refresh.
	snap    []T
	snapAge int64
	blevel  T
	nodes   int64
	prunes  int64
	tasks   int64
	steals  int64
	splits  int64
}

// solveParallel runs the search over a work-stealing pool: worker 0
// seeds its deque with the root task, every other worker starts out
// hungry and steals, and busy workers adaptively split — spilling the
// unexplored sibling ranges along their depth-first spine into their
// deque — whenever some worker is hungry. There is no fixed fan-out
// frontier: task granularity follows demand, so skewed trees keep all
// cores busy until the last subtree drains.
//
// Determinism: leaf bounds are folded along the same constraint
// schedule as the sequential solver, so leaf values are bit-identical;
// Blevel is a Plus-fold of leaf values and Plus is an exact lattice
// join (min/max/or/union — no rounding), so any fold order gives the
// same result, with pruned leaves covered by absorption (each is
// strictly dominated by an incumbent that is folded in). The frontier
// is rebuilt by sorting the workers' UNCAPPED local frontier entries
// into leaf order — each entry carries its full digit vector, whose
// order under the variable permutation is exactly the sequential
// visit order — and replaying them through the same capped filter the
// sequential solver uses, which replays the sequential offer stream;
// see WithWorkers for the partial-order cap caveat. Nodes, Prunes,
// Tasks, Steals and Splits depend on scheduling.
func solveParallel[T any](pl *plan[T], workers int) Result[T] {
	sched := &wsSched[T]{pl: pl, shared: newSharedBound[T](pl.sr)}
	sched.parkCond = sync.NewCond(&sched.parkMu)
	sched.workers = make([]*wsWorker[T], workers)
	for i := range sched.workers {
		sched.workers[i] = &wsWorker[T]{
			id:     i,
			sched:  sched,
			deque:  newWSDeque[wsTask[T]](),
			ev:     pl.ev.Localize(),
			digits: make([]int, pl.n),
			fr:     newDigitFrontier[T](pl.sr, 0),
			blevel: pl.sr.Zero(),
		}
	}
	sched.pending.Store(1)
	sched.workers[0].deque.push(&wsTask[T]{bound: pl.rootBound})

	var wg sync.WaitGroup
	for _, w := range sched.workers {
		wg.Add(1)
		go func(w *wsWorker[T]) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	wg.Wait()

	res := Result[T]{Blevel: pl.sr.Zero()}
	res.Stats.Workers = workers
	var entries []digitSol[T]
	for _, w := range sched.workers {
		res.Stats.Nodes += w.nodes
		res.Stats.Prunes += w.prunes
		res.Stats.Tasks += w.tasks
		res.Stats.Steals += w.steals
		res.Stats.Splits += w.splits
		res.Blevel = pl.sr.Plus(res.Blevel, w.blevel)
		entries = append(entries, w.fr.sol...)
	}
	// Sort surviving leaves into the sequential visit order (the digit
	// vectors compared along the variable permutation) and replay them
	// through the capped frontier: the same offer stream the
	// sequential solver produced, minus leaves it would have displaced.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].digits, entries[j].digits
		for _, vi := range pl.perm {
			if a[vi] != b[vi] {
				return a[vi] < b[vi]
			}
		}
		return false
	})
	fr := newDigitFrontier[T](pl.sr, pl.maxBest)
	for _, e := range entries {
		fr.offer(e.digits, e.value)
	}
	res.Best = fr.solutions(pl.ev)
	return res
}

// loop is one worker's scheduling loop: drain the own deque, then
// steal; exit when no task exists anywhere.
func (w *wsWorker[T]) loop() {
	for {
		t, ok := w.deque.pop()
		if !ok {
			t, ok = w.hunt()
			if !ok {
				return
			}
		}
		w.exec(t)
		if w.sched.pending.Add(-1) == 0 {
			// The search just drained: release every parked worker so
			// they observe pending == 0 and exit.
			w.sched.wake()
		}
	}
}

// hunt looks for a task on the other workers' deques, advertising its
// hunger so busy workers start spilling. Between sweeps the worker
// parks on the scheduler's condition variable — woken by the next
// spill or by the search draining — rather than spinning through
// Gosched, so a hungry worker costs nothing while no work exists for
// it (the workers >> cores regime). It returns false only when every
// task in the system has finished.
func (w *wsWorker[T]) hunt() (*wsTask[T], bool) {
	sched := w.sched
	sched.hungry.Add(1)
	defer sched.hungry.Add(-1)
	for {
		// Read the wake sequence before sweeping: a spill that lands
		// during the sweep bumps it, and the park re-check below then
		// refuses to sleep, so the sweep/park pair cannot miss a task.
		sched.parkMu.Lock()
		seq := sched.wakeSeq
		sched.parkMu.Unlock()
		if sched.pending.Load() == 0 {
			return nil, false
		}
		for i := 1; i < len(sched.workers); i++ {
			victim := sched.workers[(w.id+i)%len(sched.workers)]
			if t, ok := victim.deque.steal(); ok {
				w.steals++
				return t, true
			}
		}
		// Re-check the own deque: a spill of ours may have landed
		// since the failed pop that brought us here.
		if t, ok := w.deque.pop(); ok {
			return t, true
		}
		sched.parkMu.Lock()
		for sched.wakeSeq == seq && sched.pending.Load() != 0 {
			sched.parkCond.Wait()
		}
		sched.parkMu.Unlock()
	}
}

// exec runs one task: install its prefix assignment and walk its
// value range.
func (w *wsWorker[T]) exec(t *wsTask[T]) {
	w.tasks++
	pl := w.sched.pl
	for d, v := range t.path {
		w.digits[pl.perm[d]] = v
	}
	w.descend(len(t.path), t.from, t.bound)
}

// descend walks values [from, size) of the variable at depth,
// recursing into run for each child — the loop body of the sequential
// recursion, plus the spill check: when some worker is hungry and the
// own deque is empty, the unexplored sibling range is packaged as a
// task and pushed onto the own deque for a thief to take, and the
// walk continues with only the current child. The emptiness condition
// throttles the spill rate to the steal rate — one offered task per
// outstanding demand, not one per node — and spilling along the
// active path hands a thief the highest (largest) unexplored subtree
// first, since thieves steal the oldest spill.
//
//softsoa:hotpath
func (w *wsWorker[T]) descend(depth, from int, bound T) {
	pl := w.sched.pl
	vi := pl.perm[depth]
	size := pl.sizes[vi]
	for d := from; d < size; d++ {
		if d+1 < size && w.sched.hungry.Load() > 0 && w.deque.empty() {
			w.spill(depth, d+1, bound)
			size = d + 1 // the rest of the range now belongs to the spilled task
		}
		w.digits[vi] = d
		b := bound
		for _, k := range pl.byDepth[depth+1] {
			b = pl.sr.Times(b, w.ev.Eval(k, w.digits))
		}
		w.run(depth+1, b)
	}
}

// spill donates the sibling range [from, size) at depth to the deque.
// It runs only when a worker is hungry, so its allocations are paid
// per steal-demand event, never per node.
func (w *wsWorker[T]) spill(depth, from int, bound T) {
	pl := w.sched.pl
	//lint:ignore hotpath spill allocates one task per steal-demand event, not per node
	path := make([]int, depth)
	for i := range path {
		path[i] = w.digits[pl.perm[i]]
	}
	w.sched.pending.Add(1)
	//lint:ignore hotpath spill allocates one task per steal-demand event, not per node
	w.deque.push(&wsTask[T]{path: path, from: from, bound: bound})
	w.splits++
	// Wake parked thieves: the spill exists because someone is hungry,
	// and a hungry worker that exhausted its steal sweep is asleep.
	w.sched.wake()
}

// run explores the subtree rooted at depth under the given sound
// upper bound: the work-stealing twin of bbSearch.run, identical fold
// schedule and frontier discipline, with the shared incumbent
// snapshot refreshed periodically instead of loaded per node. The
// steady-state path allocates nothing.
//
//softsoa:hotpath
func (w *wsWorker[T]) run(depth int, bound T) {
	pl := w.sched.pl
	w.nodes++
	if pl.tel != nil && w.nodes%pl.telStride == 0 {
		//lint:ignore hotpath nil-guarded telemetry record, sampled every telStride nodes
		pl.tel.RecordSearch(journal.SearchRecord{
			Kind: "expand", Node: w.nodes, Depth: depth, Value: pl.sr.Format(bound),
		})
	}
	if pl.prune {
		ub := bound
		if pl.lookahead {
			ub = pl.sr.Times(bound, pl.optimisticRest[depth])
		}
		if w.dominated(ub) {
			w.prunes++
			if pl.tel != nil && w.prunes%pl.telStride == 0 {
				reason := "bound"
				if pl.lookahead {
					reason = "lookahead-bound"
				}
				//lint:ignore hotpath nil-guarded telemetry record, sampled every telStride prunes
				pl.tel.RecordSearch(journal.SearchRecord{
					Kind: "prune", Node: w.nodes, Depth: depth,
					Value: pl.sr.Format(ub), Reason: reason,
				})
			}
			return
		}
	}
	if depth == pl.n {
		w.blevel = pl.sr.Plus(w.blevel, bound)
		if w.fr.offer(w.digits, bound) {
			if pl.tel != nil {
				//lint:ignore hotpath nil-guarded telemetry on the rare incumbent-improvement path
				pl.tel.RecordSearch(journal.SearchRecord{
					Kind: "incumbent", Node: w.nodes, Depth: depth, Value: pl.sr.Format(bound),
				})
			}
			w.sched.shared.offer(bound)
			w.refreshSnap()
		}
		return
	}
	w.descend(depth, 0, bound)
}

// dominated prunes against the warm-start seeds, then against the
// cached snapshot of the shared incumbent antichain. The snapshot is
// refreshed every boundRefreshNodes nodes (periodic incumbent
// broadcast); staleness is sound because every member is an attained
// leaf value. Allocates nothing.
//
//softsoa:hotpath
func (w *wsWorker[T]) dominated(v T) bool {
	pl := w.sched.pl
	for _, s := range pl.seeds {
		if semiring.Gt(pl.sr, s, v) {
			return true
		}
	}
	if w.nodes-w.snapAge >= boundRefreshNodes {
		w.refreshSnap()
	}
	for _, b := range w.snap {
		if semiring.Gt(pl.sr, b, v) {
			return true
		}
	}
	return false
}

// refreshSnap re-reads the shared antichain: one atomic pointer load,
// no copying — the snapshot slice is immutable once published.
//
//softsoa:hotpath
func (w *wsWorker[T]) refreshSnap() {
	w.snap = *w.sched.shared.cur.Load()
	w.snapAge = w.nodes
}

// sharedBound is the cross-worker incumbent set: a copy-on-write
// antichain of admitted leaf values published through an atomic
// pointer. Readers prune against a consistent snapshot without locks;
// writers CAS-install a merged copy and retry on contention. Every
// member is a real leaf value, so pruning against it is exactly the
// sequential incumbent argument.
type sharedBound[T any] struct {
	sr  semiring.Semiring[T]
	cur atomic.Pointer[[]T]
}

func newSharedBound[T any](sr semiring.Semiring[T]) *sharedBound[T] {
	b := &sharedBound[T]{sr: sr}
	empty := make([]T, 0)
	b.cur.Store(&empty)
	return b
}

// offer merges a locally admitted leaf value into the shared set.
func (b *sharedBound[T]) offer(v T) {
	for {
		old := b.cur.Load()
		vals := *old
		//lint:ignore hotpath CAS copy runs only on incumbent improvement, bounded by antichain growth
		merged := make([]T, 0, len(vals)+1)
		for _, w := range vals {
			if semiring.Gt(b.sr, w, v) || b.sr.Eq(w, v) {
				return // nothing new to learn
			}
			if !semiring.Gt(b.sr, v, w) {
				merged = append(merged, w)
			}
		}
		if len(merged) >= maxIncumbents {
			return // incomparable to a full set; skip (pruning-only loss)
		}
		merged = append(merged, v)
		if b.cur.CompareAndSwap(old, &merged) {
			return
		}
	}
}
