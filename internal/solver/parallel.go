package solver

import (
	"sync"
	"sync/atomic"

	"softsoa/internal/semiring"
)

// maxIncumbents caps the shared bound's antichain. Dropping an
// incomparable value only weakens pruning — never soundness, since a
// prune requires strict dominance by a member — and keeps the
// copy-on-write snapshots small.
const maxIncumbents = 64

// tasksPerWorker is the target task surplus: enough subtree tasks per
// worker that the pool stays busy despite uneven subtree sizes.
const tasksPerWorker = 4

// maxTasks bounds the frontier fan-out so the per-task bookkeeping
// stays negligible next to the subtrees themselves.
const maxTasks = 1 << 14

// taskResult collects one subtree task's outputs. Workers write only
// their claimed task's slot (index-addressed, no shared append), and
// the driver merges slots in task order after the pool drains, so the
// merged result is independent of scheduling.
type taskResult[T any] struct {
	sol    []digitSol[T]
	blevel T
	nodes  int64
	prunes int64
}

// solveParallel fans the depth-first search out at a fixed frontier
// depth: the first frontierDepth variables of the ordering are
// enumerated into lexicographically numbered subtree tasks, claimed
// by workers from an atomic counter and solved with per-worker search
// state against a shared incumbent bound.
//
// Determinism: leaf bounds are folded along the same constraint
// schedule as the sequential solver, so leaf values are bit-identical;
// Blevel is a Plus-fold of leaf values and Plus is an exact lattice
// join (min/max/or/union — no rounding), so any fold order gives the
// same result, with pruned leaves covered by absorption (each is
// strictly dominated by an incumbent that is folded in). The frontier
// is rebuilt by replaying the UNCAPPED per-task frontiers in task
// order through the same capped filter the sequential solver uses,
// which replays the sequential offer stream; see WithParallel for the
// partial-order cap caveat. Nodes/Prunes depend on bound visibility
// and are deterministic only modulo scheduling.
func solveParallel[T any](pl *plan[T], workers int) Result[T] {
	frontierDepth, tasks := 0, 1
	for frontierDepth < pl.n && tasks < tasksPerWorker*workers {
		size := pl.sizes[pl.perm[frontierDepth]]
		if tasks*size > maxTasks {
			break
		}
		tasks *= size
		frontierDepth++
	}
	if frontierDepth == 0 {
		return solveSequential(pl)
	}

	results := make([]taskResult[T], tasks)
	shared := newSharedBound[T](pl.sr)
	var nextTask atomic.Int64
	var wg sync.WaitGroup
	nw := workers
	if nw > tasks {
		nw = tasks
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newSearch(pl, newDigitFrontier[T](pl.sr, 0), shared)
			for {
				t := int(nextTask.Add(1) - 1)
				if t >= tasks {
					return
				}
				results[t] = s.runTask(t, frontierDepth)
			}
		}()
	}
	wg.Wait()

	res := Result[T]{Blevel: pl.sr.Zero()}
	res.Stats.Tasks = int64(tasks)
	fr := newDigitFrontier[T](pl.sr, pl.maxBest)
	for t := range results {
		r := &results[t]
		res.Stats.Nodes += r.nodes
		res.Stats.Prunes += r.prunes
		res.Blevel = pl.sr.Plus(res.Blevel, r.blevel)
		for _, ds := range r.sol {
			fr.offer(ds.digits, ds.value)
		}
	}
	// Account for the internal nodes above the task frontier, which
	// the fan-out enumerates instead of the search.
	width := int64(1)
	for d := 0; d < frontierDepth; d++ {
		res.Stats.Nodes += width
		width *= int64(pl.sizes[pl.perm[d]])
	}
	res.Best = fr.solutions(pl.ev)
	return res
}

// runTask solves subtree task t: the t-th prefix, in lexicographic
// order of the variable ordering, of the first frontierDepth
// variables. The search state is reset so one worker can run many
// tasks without reallocating its digit vector or frontier scratch.
func (s *bbSearch[T]) runTask(t, frontierDepth int) taskResult[T] {
	pl := s.pl
	s.blevel = pl.sr.Zero()
	s.nodes, s.prunes = 0, 0
	rem := t
	for d := frontierDepth - 1; d >= 0; d-- {
		vi := pl.perm[d]
		s.digits[vi] = rem % pl.sizes[vi]
		rem /= pl.sizes[vi]
	}
	// Fold the constraints decided by the prefix in the same schedule
	// (and therefore the same floating-point order) as the sequential
	// recursion, so the bound entering the subtree is bit-identical.
	bound := pl.rootBound
	for d := 1; d <= frontierDepth; d++ {
		for _, k := range pl.byDepth[d] {
			bound = pl.sr.Times(bound, pl.ev.Eval(k, s.digits))
		}
	}
	s.run(frontierDepth, bound)
	return taskResult[T]{sol: s.fr.take(), blevel: s.blevel, nodes: s.nodes, prunes: s.prunes}
}

// sharedBound is the cross-worker incumbent set: a copy-on-write
// antichain of admitted leaf values published through an atomic
// pointer. Readers prune against a consistent snapshot without locks;
// writers CAS-install a merged copy and retry on contention. Every
// member is a real leaf value, so pruning against it is exactly the
// sequential incumbent argument.
type sharedBound[T any] struct {
	sr  semiring.Semiring[T]
	cur atomic.Pointer[[]T]
}

func newSharedBound[T any](sr semiring.Semiring[T]) *sharedBound[T] {
	b := &sharedBound[T]{sr: sr}
	empty := make([]T, 0)
	b.cur.Store(&empty)
	return b
}

// dominates reports whether some shared incumbent strictly dominates v.
func (b *sharedBound[T]) dominates(v T) bool {
	for _, w := range *b.cur.Load() {
		if semiring.Gt(b.sr, w, v) {
			return true
		}
	}
	return false
}

// offer merges a locally admitted leaf value into the shared set.
func (b *sharedBound[T]) offer(v T) {
	for {
		old := b.cur.Load()
		vals := *old
		//lint:ignore hotpath CAS copy runs only on incumbent improvement, bounded by antichain growth
		merged := make([]T, 0, len(vals)+1)
		for _, w := range vals {
			if semiring.Gt(b.sr, w, v) || b.sr.Eq(w, v) {
				return // nothing new to learn
			}
			if !semiring.Gt(b.sr, v, w) {
				merged = append(merged, w)
			}
		}
		if len(merged) >= maxIncumbents {
			return // incomparable to a full set; skip (pruning-only loss)
		}
		merged = append(merged, v)
		if b.cur.CompareAndSwap(old, &merged) {
			return
		}
	}
}
