package solver

import (
	"softsoa/internal/core"
)

// defaultPropRounds caps propagation sweeps when the caller passes
// maxRounds <= 0. The fixpoint cache key normalises rounds through
// the same constant, so Propagate(p, 0) and Propagate(p, 16) share
// one entry.
const defaultPropRounds = 16

// PropagationStats records the work of a Propagate run.
type PropagationStats struct {
	// Rounds is the number of sweeps until fixpoint (or the cap).
	Rounds int
	// Shifts counts individual cost moves (arc → unary → zero-arity).
	Shifts int64
}

// Propagate enforces soft node and arc consistency on the unary and
// binary constraints of the problem, in the style of cost-shifting
// soft-AC algorithms: for every binary constraint and every value of
// one of its variables, the best (lub) level reachable on the other
// side is divided out of the binary table (the ÷ residual) and
// multiplied into the variable's unary level; unary levels in turn
// shift their lub into a zero-arity level c∅. For invertible
// semirings — all the classical instances — the transformation is
// equivalence-preserving: c∅ ⊗ (⊗C') = ⊗C pointwise.
//
// The returned problem has the same space and variables of interest;
// c∅ is returned separately and is a sound bound on the blevel
// (blevel ≤ c∅): the "necessary cost" every complete assignment pays.
// Constraints of arity other than 1 or 2 pass through untouched.
func Propagate[T any](p *core.Problem[T], maxRounds int) (*core.Problem[T], T, PropagationStats) {
	s := p.Space()
	sr := s.Semiring()
	stats := PropagationStats{}

	type unary struct {
		v      core.Variable
		dom    []core.DVal
		levels []T
	}
	type binary struct {
		x, y   core.Variable
		dx, dy []core.DVal
		m      [][]T // m[i][j] over dx[i], dy[j]
	}

	// unaryOrder mirrors the map in first-creation order (a function
	// of the deterministic constraint order): all sweeps and the
	// output rebuild iterate the slice, never the map, so the c∅
	// accumulation order — and with it every floating-point fold —
	// is identical across runs.
	unaries := map[core.Variable]*unary{}
	var unaryOrder []*unary
	getUnary := func(v core.Variable) *unary {
		if u, ok := unaries[v]; ok {
			return u
		}
		dom := s.Domain(v)
		levels := make([]T, len(dom))
		for i := range levels {
			levels[i] = sr.One()
		}
		u := &unary{v: v, dom: dom, levels: levels}
		unaries[v] = u
		unaryOrder = append(unaryOrder, u)
		return u
	}

	var binaries []*binary
	var passthrough []*core.Constraint[T]
	czero := sr.One()

	for _, c := range p.Constraints() {
		scope := c.Scope()
		switch len(scope) {
		case 0:
			czero = sr.Times(czero, c.AtLabels())
		case 1:
			u := getUnary(scope[0])
			for i, d := range u.dom {
				u.levels[i] = sr.Times(u.levels[i], c.AtLabels(d.Label))
			}
		case 2:
			x, y := scope[0], scope[1]
			dx, dy := s.Domain(x), s.Domain(y)
			m := make([][]T, len(dx))
			for i, dvx := range dx {
				m[i] = make([]T, len(dy))
				for j, dvy := range dy {
					m[i][j] = c.AtLabels(dvx.Label, dvy.Label)
				}
			}
			binaries = append(binaries, &binary{x: x, y: y, dx: dx, dy: dy, m: m})
			getUnary(x)
			getUnary(y)
		default:
			passthrough = append(passthrough, c)
		}
	}

	if maxRounds <= 0 {
		maxRounds = defaultPropRounds
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		// Arc consistency: shift row/column lubs into unary levels.
		for _, b := range binaries {
			ux, uy := unaries[b.x], unaries[b.y]
			for i := range b.dx {
				alpha := sr.Zero()
				for j := range b.dy {
					alpha = sr.Plus(alpha, b.m[i][j])
				}
				if !sr.Eq(alpha, sr.One()) {
					changed = true
					stats.Shifts++
					ux.levels[i] = sr.Times(ux.levels[i], alpha)
					for j := range b.dy {
						b.m[i][j] = sr.Div(b.m[i][j], alpha)
					}
				}
			}
			for j := range b.dy {
				alpha := sr.Zero()
				for i := range b.dx {
					alpha = sr.Plus(alpha, b.m[i][j])
				}
				if !sr.Eq(alpha, sr.One()) {
					changed = true
					stats.Shifts++
					uy.levels[j] = sr.Times(uy.levels[j], alpha)
					for i := range b.dx {
						b.m[i][j] = sr.Div(b.m[i][j], alpha)
					}
				}
			}
		}
		// Node consistency: shift unary lubs into the zero-arity level.
		for _, u := range unaryOrder {
			beta := sr.Zero()
			for _, lv := range u.levels {
				beta = sr.Plus(beta, lv)
			}
			if !sr.Eq(beta, sr.One()) {
				changed = true
				stats.Shifts++
				czero = sr.Times(czero, beta)
				for i := range u.levels {
					u.levels[i] = sr.Div(u.levels[i], beta)
				}
			}
		}
		stats.Rounds = round + 1
		if !changed {
			break
		}
	}

	out := core.NewProblem(s, p.Con()...)
	out.Add(core.Constant(s, czero))
	for _, u := range unaryOrder {
		u := u
		allOne := true
		for _, lv := range u.levels {
			if !sr.Eq(lv, sr.One()) {
				allOne = false
				break
			}
		}
		if allOne {
			continue
		}
		idx := map[string]int{}
		for i, d := range u.dom {
			idx[d.Label] = i
		}
		out.Add(core.NewConstraint(s, []core.Variable{u.v}, func(a core.Assignment) T {
			return u.levels[idx[a.Label(u.v)]]
		}))
	}
	for _, b := range binaries {
		b := b
		ix := map[string]int{}
		for i, d := range b.dx {
			ix[d.Label] = i
		}
		iy := map[string]int{}
		for j, d := range b.dy {
			iy[d.Label] = j
		}
		out.Add(core.NewConstraint(s, []core.Variable{b.x, b.y}, func(a core.Assignment) T {
			return b.m[ix[a.Label(b.x)]][iy[a.Label(b.y)]]
		}))
	}
	out.Add(passthrough...)
	return out, czero, stats
}
