// Package solver implements complete and heuristic solvers for Soft
// Constraint Satisfaction Problems: an exhaustive reference solver, a
// depth-first branch and bound with semiring upper-bound pruning
// (sequential or spread over a work-stealing worker pool), a bucket
// (variable) elimination solver, and a random-restart local search
// for problems too large for complete methods. The broker of Sec. 4
// of the paper hosts such a solver to negotiate QoS; these are the
// engines behind it.
//
// # Solvers
//
//   - Exhaustive:     enumerate every complete assignment (reference)
//   - BranchAndBound: depth-first search with semiring bound pruning;
//     the production solver, sequential or parallel
//   - Eliminate:      bucket (variable) elimination
//   - LocalSearch:    random-restart hill climbing (incomplete)
//
// # Options
//
// All solvers take the same variadic Option type and ignore options
// that do not apply to them. The knobs group as follows.
//
// Search shaping (BranchAndBound):
//
//   - WithoutPruning:     disable the bound test (exhaustive DFS; ablation)
//   - WithDegreeOrdering: assign most-constrained variables first
//   - WithLookahead:      strengthen the bound with optimistic completion
//   - WithMaxBest:        cap retained co-optimal solutions (default 16)
//
// Parallel execution (BranchAndBound):
//
//   - WithWorkers:  canonical worker-count knob — n work-stealing
//     workers, 0 = runtime.GOMAXPROCS(0), 1 = the sequential path
//     with zero scheduling machinery
//   - WithParallel: deprecated alias for WithWorkers (n < 1 clamps to
//     sequential instead of resolving to GOMAXPROCS)
//
// Blevel and the solution frontier are identical under any worker
// count — bit-identical for totally ordered semirings, and for
// partially ordered ones whenever the WithMaxBest cap does not bind;
// only the Stats counters depend on scheduling. See WithWorkers.
//
// Preprocessing (BranchAndBound):
//
//   - WithPropagation: seed the search with soft arc/node-consistency
//     (c∅ root bound + tightened unary tables)
//
// Local search (LocalSearch):
//
//   - WithRestarts: number of random restarts (default 8)
//   - WithSteps:    hill-climbing step budget per restart (default 400)
//   - WithSeed:     seed for the restart randomness (deterministic per seed)
//
// Instrumentation (all solvers):
//
//   - WithClock:     inject the time source behind Stats.Elapsed
//   - WithTelemetry: stream sampled search events into a recorder
//
// Caching (BranchAndBound; see internal/cache):
//
//   - WithSolveCache: exact memo + propagation fixpoint tiers
//   - WithWarmStart:  seed pruning from a prior frontier slot
//
// Options are applied in order, later options overriding earlier
// ones; the zero configuration (sequential, pruning on, MaxBest 16)
// is always valid.
package solver
