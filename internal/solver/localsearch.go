package solver

import (
	"math/rand"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// LocalSearch runs random-restart hill climbing: from a random
// complete assignment it repeatedly applies the best single-variable
// change until no change improves the combined value, then restarts.
// It is incomplete — the returned blevel is a lower bound on the true
// one — but it scales to problems far beyond complete search. Runs
// are deterministic given WithSeed.
func LocalSearch[T any](p *core.Problem[T], opts ...Option) Result[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	start := cfg.clock.Now()
	s := p.Space()
	sr := s.Semiring()
	ev := core.NewEvaluator(s, p.Constraints())
	sizes := ev.DomainSizes()
	n := len(sizes)
	rng := rand.New(rand.NewSource(cfg.seed))

	res := Result[T]{Blevel: sr.Zero()}
	fr := newDigitFrontier[T](sr, cfg.maxBest)
	digits := make([]int, n)

	for restart := 0; restart < cfg.restarts; restart++ {
		for i := range digits {
			digits[i] = rng.Intn(sizes[i])
		}
		cur := ev.EvalAll(digits)
		res.Stats.Nodes++
		for step := 0; step < cfg.steps; step++ {
			improved := false
			// Best-improvement move over all single-variable changes,
			// scanned in a random variable order to break ties
			// differently across restarts.
			for _, i := range rng.Perm(n) {
				orig := digits[i]
				bestD, bestV := orig, cur
				for d := 0; d < sizes[i]; d++ {
					if d == orig {
						continue
					}
					digits[i] = d
					v := ev.EvalAll(digits)
					res.Stats.Nodes++
					if semiring.Gt(sr, v, bestV) {
						bestD, bestV = d, v
					}
				}
				digits[i] = bestD
				if bestD != orig {
					cur = bestV
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		res.Blevel = sr.Plus(res.Blevel, cur)
		fr.offer(digits, cur)
	}
	res.Best = fr.solutions(ev)
	res.Stats.Elapsed = cfg.clock.Since(start)
	return res
}
