package solver

import (
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
	"softsoa/internal/workload"
)

// TestPropagateEquivalence: for invertible semirings, propagation is
// an equivalence-preserving reformulation: c∅ ⊗ (⊗C') = ⊗C pointwise.
func TestPropagateEquivalence(t *testing.T) {
	cases := []struct {
		name string
		make func(seed int64) (*core.Problem[float64], error)
	}{
		{"weighted", func(seed int64) (*core.Problem[float64], error) {
			return workload.RandomWeightedSCSP(workload.SCSPParams{
				Vars: 5, DomainSize: 3, Density: 0.7, Tightness: 0.9, Seed: seed,
			})
		}},
		{"fuzzy", func(seed int64) (*core.Problem[float64], error) {
			return workload.RandomFuzzySCSP(workload.SCSPParams{
				Vars: 5, DomainSize: 3, Density: 0.7, Tightness: 0.8, Seed: seed,
			})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				p, err := tc.make(seed)
				if err != nil {
					t.Fatal(err)
				}
				q, czero, stats := Propagate(p, 0)
				// The rebuilt problem already contains Constant(czero), so
				// the combined tables must be pointwise equal.
				if !core.Eq(p.Combined(), q.Combined()) {
					t.Fatalf("seed %d: propagation changed the combined constraint", seed)
				}
				sr := p.Space().Semiring()
				if !sr.Leq(p.Blevel(), czero) {
					t.Errorf("seed %d: c∅ = %v is not an upper bound on blevel %v",
						seed, czero, p.Blevel())
				}
				if stats.Rounds == 0 {
					t.Errorf("seed %d: no rounds recorded", seed)
				}
			}
		})
	}
}

func TestPropagateReachesFixpoint(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 5, DomainSize: 4, Density: 0.8, Tightness: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, czero1, stats1 := Propagate(p, 0)
	if stats1.Shifts == 0 {
		t.Fatal("expected shifts on a tight problem")
	}
	// Propagating the already-propagated problem must be a no-op
	// beyond re-deriving the same c∅ (the constant constraint carries
	// it; unary/binary tables are already consistent).
	_, czero2, stats2 := Propagate(q, 0)
	if czero2 != czero1 {
		t.Errorf("second propagation changed c∅: %v -> %v", czero1, czero2)
	}
	if stats2.Shifts != 0 {
		t.Errorf("second propagation still shifted %d times", stats2.Shifts)
	}
}

func TestPropagateSolversAgree(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: 6, DomainSize: 3, Density: 0.6, Tightness: 0.9, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		q, _, _ := Propagate(p, 0)
		orig := BranchAndBound(p)
		prop := BranchAndBound(q)
		if orig.Blevel != prop.Blevel {
			t.Errorf("seed %d: propagation changed the optimum: %v vs %v",
				seed, orig.Blevel, prop.Blevel)
		}
	}
}

func TestPropagateImprovesPruning(t *testing.T) {
	// With c∅ folded in at the root and unary tables sharpened, plain
	// B&B prunes at least as well on the propagated problem for these
	// seeds.
	improvedSomewhere := false
	for seed := int64(1); seed <= 8; seed++ {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: 7, DomainSize: 3, Density: 0.7, Tightness: 1, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		q, _, _ := Propagate(p, 0)
		orig := BranchAndBound(p)
		prop := BranchAndBound(q)
		if prop.Stats.Nodes < orig.Stats.Nodes {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("propagation never reduced B&B nodes across 8 seeds")
	}
}

func TestPropagatePassesThroughHigherArity(t *testing.T) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 1))
	y := s.AddVariable("y", core.IntDomain(0, 1))
	z := s.AddVariable("z", core.IntDomain(0, 1))
	p := core.NewProblem(s, x)
	ternary := core.NewConstraint(s, []core.Variable{x, y, z}, func(a core.Assignment) float64 {
		return a.Num(x) + a.Num(y) + a.Num(z)
	})
	p.Add(ternary)
	p.Add(core.Unary(s, x, map[string]float64{"0": 2, "1": 3}))
	q, czero, _ := Propagate(p, 0)
	if !core.Eq(p.Combined(), q.Combined()) {
		t.Fatal("equivalence broken with ternary passthrough")
	}
	// The unary's lub (2) must have moved into c∅.
	if czero != 2 {
		t.Errorf("c∅ = %v, want 2", czero)
	}
}

func TestPropagateEmptyProblem(t *testing.T) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 1))
	p := core.NewProblem(s, x)
	q, czero, _ := Propagate(p, 0)
	if czero != 0 {
		t.Errorf("c∅ = %v, want 0 (the One)", czero)
	}
	if got := q.Blevel(); got != 0 {
		t.Errorf("blevel = %v", got)
	}
}
