package solver

import "sync/atomic"

// wsDeque is a lock-free Chase-Lev work-stealing deque of subtree
// tasks. The owning worker pushes and pops at the bottom (LIFO, so it
// keeps depth-first locality: the most recently spilled — deepest,
// smallest — subtree is retaken first); thieves steal from the top
// (FIFO, so a steal takes the oldest spill, which sits highest in the
// tree and carries the most work). All coordination is through the
// top/bottom counters and per-slot atomic pointers — no mutex is ever
// taken, so a worker deep in its search never blocks a thief and vice
// versa.
//
// The implementation is the classic Chase-Lev algorithm under Go's
// sequentially consistent atomics: the only contended transition is
// claiming the top element, decided by a single CompareAndSwap on
// top, which also serialises the owner taking its last element
// against concurrent thieves. The ring grows by copying into a
// doubled buffer installed with an atomic store; a thief holding the
// old ring either reads an entry the copy preserved or loses the CAS
// on top, so a stale ring can never yield a stale task.
type wsDeque[T any] struct {
	bottom atomic.Int64
	top    atomic.Int64
	ring   atomic.Pointer[wsRing[T]]
}

// wsRing is one power-of-two circular buffer generation of a wsDeque.
type wsRing[T any] struct {
	mask  int64
	slots []atomic.Pointer[T]
}

func newWSRing[T any](capacity int64) *wsRing[T] {
	return &wsRing[T]{mask: capacity - 1, slots: make([]atomic.Pointer[T], capacity)}
}

func (r *wsRing[T]) get(i int64) *T    { return r.slots[i&r.mask].Load() }
func (r *wsRing[T]) put(i int64, t *T) { r.slots[i&r.mask].Store(t) }

func newWSDeque[T any]() *wsDeque[T] {
	d := &wsDeque[T]{}
	d.ring.Store(newWSRing[T](64))
	return d
}

// empty reports whether the deque held no tasks at the racy instant
// of the check; used only as a heuristic by the spill policy.
func (d *wsDeque[T]) empty() bool {
	return d.bottom.Load()-d.top.Load() <= 0
}

// push appends a task at the bottom. Owner-only.
func (d *wsDeque[T]) push(task *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t > r.mask {
		// Full: copy live entries into a doubled ring. Thieves racing
		// this keep reading the old ring, whose entries the copy
		// preserved verbatim.
		grown := newWSRing[T]((r.mask + 1) * 2)
		for i := t; i < b; i++ {
			grown.put(i, r.get(i))
		}
		d.ring.Store(grown)
		r = grown
	}
	r.put(b, task)
	d.bottom.Store(b + 1)
}

// pop removes the newest task. Owner-only. The only contended case is
// the last remaining element, which owner and thieves race for with a
// CAS on top.
func (d *wsDeque[T]) pop() (*T, bool) {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Already empty; undo the reservation.
		d.bottom.Store(b + 1)
		return nil, false
	}
	task := r.get(b)
	if t == b {
		// Last element: win it against thieves or concede it.
		if !d.top.CompareAndSwap(t, t+1) {
			task = nil
		}
		d.bottom.Store(b + 1)
		if task == nil {
			return nil, false
		}
	}
	return task, true
}

// steal takes the oldest task. Safe from any goroutine; fails rather
// than waits when it loses the race for the element.
func (d *wsDeque[T]) steal() (*T, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	task := d.ring.Load().get(t)
	if task == nil || !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return task, true
}
