package solver

import (
	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// Eliminate solves the problem by bucket (variable) elimination: it
// repeatedly picks a variable outside con, combines exactly the
// constraints mentioning it, projects the variable out, and puts the
// result back. The time and space cost is exponential only in the
// induced width of the elimination order (min-degree heuristic here),
// not in the total number of variables, so it dominates search on
// low-width problems. It returns the exact blevel and the frontier of
// Sol(P) = (⊗C)⇓con read off the final table.
func Eliminate[T any](p *core.Problem[T], opts ...Option) Result[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	start := cfg.clock.Now()
	s := p.Space()
	sr := s.Semiring()
	res := Result[T]{}

	conSet := make(map[core.Variable]bool)
	for _, v := range p.Con() {
		conSet[v] = true
	}
	pool := p.Constraints()
	if len(pool) == 0 {
		pool = []*core.Constraint[T]{core.Top(s)}
	}

	// Collect the variables to eliminate: those appearing in some
	// scope but not in con.
	elimSet := make(map[core.Variable]bool)
	for _, c := range pool {
		for _, v := range c.Scope() {
			if !conSet[v] {
				elimSet[v] = true
			}
		}
	}

	// One Combiner and one bucket slice for the whole run: each round
	// materialises exactly two tables (the multi-way bucket join and
	// its projection) and reuses the odometer/stride scratch instead
	// of reallocating it per table.
	cb := core.NewCombiner(s)
	bucket := make([]*core.Constraint[T], 0, len(pool))
	neighbours := make(map[core.Variable]bool, len(elimSet))
	for len(elimSet) > 0 {
		v := pickMinDegree(pool, elimSet, neighbours)
		bucket = bucket[:0]
		rest := pool[:0]
		for _, c := range pool {
			if c.HasVar(v) {
				bucket = append(bucket, c)
			} else {
				rest = append(rest, c)
			}
		}
		joined := cb.CombineAll(bucket...)
		reduced := cb.ProjectOut(joined, v)
		res.Stats.TablesBuilt += 2
		pool = append(rest, reduced)
		delete(elimSet, v)
	}

	sol := cb.CombineAll(pool...)
	sol = cb.ProjectTo(sol, p.Con()...)
	res.Blevel = core.Blevel(sol)

	fr := newFrontier[T](sr, cfg.maxBest)
	sol.ForEach(func(a core.Assignment, val T) {
		res.Stats.Nodes++
		if fr.dominates(val) {
			return
		}
		fr.offerAssignment(cloneAssignment(a), val)
	})
	res.Best = fr.solutions()
	res.Stats.Elapsed = cfg.clock.Since(start)
	return res
}

// frontier is the Assignment-keyed analogue of digitFrontier, used by
// the table-reading elimination solver where tuples arrive as
// Assignments rather than digit vectors.
type frontier[T any] struct {
	sr  semiring.Semiring[T]
	max int
	sol []Solution[T]
}

func newFrontier[T any](sr semiring.Semiring[T], max int) *frontier[T] {
	return &frontier[T]{sr: sr, max: max}
}

// dominates reports whether some incumbent strictly dominates v.
func (f *frontier[T]) dominates(v T) bool {
	for _, s := range f.sol {
		if semiring.Gt(f.sr, s.Value, v) {
			return true
		}
	}
	return false
}

func (f *frontier[T]) solutions() []Solution[T] {
	return append([]Solution[T](nil), f.sol...)
}

// offerAssignment inserts a pre-built assignment into the frontier,
// applying the same dominance filtering as offer.
func (f *frontier[T]) offerAssignment(a core.Assignment, v T) {
	if f.sr.Eq(v, f.sr.Zero()) {
		return
	}
	keep := f.sol[:0]
	for _, s := range f.sol {
		if semiring.Gt(f.sr, s.Value, v) {
			return
		}
		if !semiring.Gt(f.sr, v, s.Value) {
			keep = append(keep, s)
		}
	}
	f.sol = keep
	if len(f.sol) < f.max {
		f.sol = append(f.sol, Solution[T]{Assignment: a, Value: v})
	}
}

func cloneAssignment(a core.Assignment) core.Assignment {
	out := make(core.Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// pickMinDegree returns the eliminable variable whose bucket join
// would touch the fewest distinct other variables — the classic
// min-degree elimination heuristic. neighbours is caller-owned
// scratch, cleared per candidate. The result is order-independent
// (strict comparisons with a name tie-break), so iterating the elim
// map is deterministic.
func pickMinDegree[T any](pool []*core.Constraint[T], elim, neighbours map[core.Variable]bool) core.Variable {
	var best core.Variable
	bestDeg := -1
	for v := range elim {
		clear(neighbours)
		for _, c := range pool {
			if !c.HasVar(v) {
				continue
			}
			for _, u := range c.Scope() {
				if u != v {
					neighbours[u] = true
				}
			}
		}
		if bestDeg == -1 || len(neighbours) < bestDeg ||
			(len(neighbours) == bestDeg && v < best) {
			best, bestDeg = v, len(neighbours)
		}
	}
	return best
}
