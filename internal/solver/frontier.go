package solver

import (
	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// digitFrontier maintains the non-dominated complete assignments seen
// so far, as digit-vector snapshots rather than materialised
// Assignments, so the search inner loop never allocates: displaced
// snapshots park their buffers on a free list for later admissions.
// max ≤ 0 means unbounded, used for the parallel solver's per-task
// local frontiers (the WithMaxBest cap is applied once, at the
// deterministic merge, so parallel results replay sequential ones).
type digitFrontier[T any] struct {
	sr   semiring.Semiring[T]
	max  int
	sol  []digitSol[T]
	free [][]int
}

// digitSol is one frontier entry: a digit-vector snapshot + value.
type digitSol[T any] struct {
	digits []int
	value  T
}

func newDigitFrontier[T any](sr semiring.Semiring[T], max int) *digitFrontier[T] {
	return &digitFrontier[T]{sr: sr, max: max}
}

// dominates reports whether some incumbent strictly dominates v, in
// which case any completion of a node with bound v is itself
// dominated (× is intensive) and can be pruned.
func (f *digitFrontier[T]) dominates(v T) bool {
	for _, s := range f.sol {
		if semiring.Gt(f.sr, s.value, v) {
			return true
		}
	}
	return false
}

// offer inserts a snapshot of digits with value v unless v is
// dominated by (or the frontier is full of) incumbents, displacing
// any incumbents v strictly dominates. It reports whether the offer
// was admitted. The early return on a dominating incumbent is safe
// mid-scan: by transitivity of strict dominance, a dominating
// incumbent cannot coexist with one v displaces, so the in-place keep
// prefix equals the original prefix.
func (f *digitFrontier[T]) offer(digits []int, v T) bool {
	if f.sr.Eq(v, f.sr.Zero()) {
		return false
	}
	keep := f.sol[:0]
	for _, s := range f.sol {
		if semiring.Gt(f.sr, s.value, v) {
			return false // dominated by an incumbent; frontier unchanged
		}
		if semiring.Gt(f.sr, v, s.value) {
			f.free = append(f.free, s.digits) // displaced; recycle buffer
		} else {
			keep = append(keep, s)
		}
	}
	f.sol = keep
	if f.max > 0 && len(f.sol) >= f.max {
		return false
	}
	var buf []int
	if n := len(f.free); n > 0 {
		buf = f.free[n-1][:len(digits)]
		f.free = f.free[:n-1]
	} else {
		//lint:ignore hotpath free-list miss: steady state recycles displaced snapshot buffers
		buf = make([]int, len(digits))
	}
	copy(buf, digits)
	f.sol = append(f.sol, digitSol[T]{digits: buf, value: v})
	return true
}

// solutions materialises the frontier as Assignments in admission
// order (first-found order for the sequential solvers).
func (f *digitFrontier[T]) solutions(ev *core.Evaluator[T]) []Solution[T] {
	out := make([]Solution[T], len(f.sol))
	for i, s := range f.sol {
		out[i] = Solution[T]{Assignment: ev.Assignment(s.digits), Value: s.value}
	}
	return out
}

// take hands the accumulated entries to the caller and resets the
// frontier for the next task; free-list buffers are retained but
// handed-off snapshots are not recycled.
func (f *digitFrontier[T]) take() []digitSol[T] {
	out := f.sol
	f.sol = nil
	return out
}
