// Package solver implements complete and heuristic solvers for Soft
// Constraint Satisfaction Problems: an exhaustive reference solver, a
// depth-first branch and bound with semiring upper-bound pruning, a
// bucket (variable) elimination solver, and a random-restart local
// search for problems too large for complete methods. The broker of
// Sec. 4 of the paper hosts such a solver to negotiate QoS; these are
// the engines behind it.
package solver

import (
	"sort"
	"time"

	"softsoa/internal/clock"
	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// Stats records the work a solver performed.
type Stats struct {
	// Nodes is the number of search nodes expanded (assignments tried
	// for exhaustive/local search; partial assignments for B&B).
	Nodes int64
	// Prunes is the number of subtrees cut by the bound (B&B only).
	Prunes int64
	// TablesBuilt is the number of intermediate constraint tables
	// materialised (variable elimination only).
	TablesBuilt int64
	// Elapsed is the wall-clock solving time.
	Elapsed time.Duration
}

// Solution is one complete assignment with its combined value.
type Solution[T any] struct {
	Assignment core.Assignment
	Value      T
}

// Result is the outcome of a solve.
type Result[T any] struct {
	// Blevel is the best level of consistency: the least upper bound
	// of the combined value over all complete assignments. For
	// totally ordered semirings it is attained by Best; for partial
	// (product) orders it may be an unattained ideal point.
	Blevel T
	// Best holds the non-dominated solutions found. Complete solvers
	// return the full frontier (all optimal assignments for total
	// orders); local search returns the best incumbents seen.
	Best []Solution[T]
	// Stats records the solver's work.
	Stats Stats
}

// Option configures a solver run.
type Option func(*config)

type config struct {
	prune     bool
	lookahead bool
	degree    bool
	maxBest   int
	restarts  int
	steps     int
	seed      int64
	clock     clock.Clock
}

func defaultConfig() config {
	return config{prune: true, maxBest: 16, restarts: 8, steps: 400, seed: 1, clock: clock.Wall}
}

// WithoutPruning disables the branch-and-bound upper bound test; the
// search degenerates to exhaustive depth-first enumeration. Used by
// the pruning ablation (experiment E10).
func WithoutPruning() Option { return func(c *config) { c.prune = false } }

// WithDegreeOrdering makes branch and bound assign the most
// constrained variables first: variables are statically ordered by
// descending constraint degree (ties by smaller domain, then
// declaration order). Constraints then become fully assigned — and
// start pruning — as early as possible.
func WithDegreeOrdering() Option { return func(c *config) { c.degree = true } }

// WithLookahead strengthens the branch-and-bound bound with a static
// optimistic completion: at each depth the partial product is
// multiplied by the precomputed least upper bound of every constraint
// not yet fully assigned. Since each constraint's eventual value is
// ≤ its lub and × is monotone, the product remains a sound upper
// bound, so pruning stays exact while firing earlier.
func WithLookahead() Option { return func(c *config) { c.lookahead = true } }

// WithMaxBest caps how many co-optimal solutions are retained
// (default 16). The blevel is exact regardless.
func WithMaxBest(n int) Option { return func(c *config) { c.maxBest = n } }

// WithRestarts sets the number of random restarts for local search.
func WithRestarts(n int) Option { return func(c *config) { c.restarts = n } }

// WithSteps sets the hill-climbing step budget per restart.
func WithSteps(n int) Option { return func(c *config) { c.steps = n } }

// WithSeed seeds local search's randomness; runs are deterministic
// given a seed.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithClock injects the time source behind Stats.Elapsed (default the
// wall clock). Solvers read no other clock: given the same seed the
// search itself is deterministic, and with a nil Clock the timing is
// a strict no-op.
func WithClock(c clock.Clock) Option { return func(cf *config) { cf.clock = c } }

// Exhaustive enumerates every complete assignment and returns the
// exact blevel and the frontier of non-dominated solutions. It is the
// reference against which the other solvers are tested.
func Exhaustive[T any](p *core.Problem[T], opts ...Option) Result[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	start := cfg.clock.Now()
	s := p.Space()
	sr := s.Semiring()
	ev := core.NewEvaluator(s, p.Constraints())
	sizes := ev.DomainSizes()
	digits := make([]int, len(sizes))
	res := Result[T]{Blevel: sr.Zero()}
	fr := newFrontier[T](sr, cfg.maxBest)
	for done := false; !done; {
		res.Stats.Nodes++
		v := ev.EvalAll(digits)
		res.Blevel = sr.Plus(res.Blevel, v)
		fr.offer(digits, v, ev)
		done = !next(digits, sizes)
	}
	res.Best = fr.solutions()
	res.Stats.Elapsed = cfg.clock.Since(start)
	return res
}

// BranchAndBound performs depth-first search over the variables in
// declaration order, folding in each constraint's value as soon as
// its scope is fully assigned. Because × is intensive (combining can
// only worsen), the partial product is a sound upper bound: when it
// is dominated by an incumbent the subtree is pruned. With partially
// ordered semirings a node is pruned only when some incumbent
// strictly dominates its bound, which remains sound for the frontier.
func BranchAndBound[T any](p *core.Problem[T], opts ...Option) Result[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	start := cfg.clock.Now()
	s := p.Space()
	sr := s.Semiring()
	cs := p.Constraints()
	ev := core.NewEvaluator(s, cs)
	sizes := ev.DomainSizes()
	n := len(sizes)

	// perm[d] is the space variable assigned at depth d. The default
	// is declaration order; WithDegreeOrdering sorts by descending
	// constraint degree (ties by smaller domain, then declaration).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if cfg.degree {
		degree := make([]int, n)
		for _, c := range cs {
			for _, v := range c.Scope() {
				for i, name := range s.Variables() {
					if name == v {
						degree[i]++
					}
				}
			}
		}
		sort.SliceStable(perm, func(a, b int) bool {
			va, vb := perm[a], perm[b]
			if degree[va] != degree[vb] {
				return degree[va] > degree[vb]
			}
			return sizes[va] < sizes[vb]
		})
	}
	posOf := make([]int, n)
	for d, vi := range perm {
		posOf[vi] = d
	}

	// byDepth[d] lists the constraints that become fully assigned
	// when the variable at depth d-1 of the ordering gets a value.
	byDepth := make([][]int, n+1)
	for k := 0; k < ev.NumConstraints(); k++ {
		last := -1
		for _, v := range cs[k].Scope() {
			for i, name := range s.Variables() {
				if name == v && posOf[i] > last {
					last = posOf[i]
				}
			}
		}
		if last < 0 {
			byDepth[0] = append(byDepth[0], k) // constants fold at the root
		} else {
			byDepth[last+1] = append(byDepth[last+1], k)
		}
	}

	// optimisticRest[d] is the product of the least upper bounds of
	// every constraint that only becomes fully assigned at depth > d:
	// an optimistic completion factor for the lookahead bound.
	optimisticRest := make([]T, n+1)
	optimisticRest[n] = sr.One()
	if cfg.lookahead {
		lubs := make([]T, ev.NumConstraints())
		for k := range lubs {
			lub := sr.Zero()
			cs[k].ForEach(func(_ core.Assignment, v T) { lub = sr.Plus(lub, v) })
			lubs[k] = lub
		}
		for d := n - 1; d >= 0; d-- {
			acc := optimisticRest[d+1]
			for _, k := range byDepth[d+1] {
				acc = sr.Times(acc, lubs[k])
			}
			optimisticRest[d] = acc
		}
	}

	res := Result[T]{Blevel: sr.Zero()}
	fr := newFrontier[T](sr, cfg.maxBest)
	digits := make([]int, n)

	var rec func(depth int, bound T)
	rec = func(depth int, bound T) {
		res.Stats.Nodes++
		if cfg.prune {
			ub := bound
			if cfg.lookahead {
				ub = sr.Times(bound, optimisticRest[depth])
			}
			if fr.dominates(ub) {
				res.Stats.Prunes++
				return
			}
		}
		if depth == n {
			res.Blevel = sr.Plus(res.Blevel, bound)
			fr.offer(digits, bound, ev)
			return
		}
		vi := perm[depth]
		for d := 0; d < sizes[vi]; d++ {
			digits[vi] = d
			b := bound
			for _, k := range byDepth[depth+1] {
				b = sr.Times(b, ev.Eval(k, digits))
			}
			rec(depth+1, b)
		}
	}
	rootBound := sr.One()
	for _, k := range byDepth[0] {
		rootBound = sr.Times(rootBound, ev.Eval(k, digits))
	}
	if n == 0 {
		res.Blevel = rootBound
		fr.offer(digits, rootBound, ev)
	} else {
		rec(0, rootBound)
	}
	res.Best = fr.solutions()
	res.Stats.Elapsed = cfg.clock.Since(start)
	return res
}

// next advances digits as a mixed-radix odometer; it reports false
// when the odometer wraps (enumeration complete).
func next(digits, sizes []int) bool {
	for i := len(digits) - 1; i >= 0; i-- {
		digits[i]++
		if digits[i] < sizes[i] {
			return true
		}
		digits[i] = 0
	}
	return false
}

// frontier maintains the non-dominated solutions seen so far.
type frontier[T any] struct {
	sr  semiring.Semiring[T]
	max int
	sol []Solution[T]
}

func newFrontier[T any](sr semiring.Semiring[T], max int) *frontier[T] {
	return &frontier[T]{sr: sr, max: max}
}

// dominates reports whether some incumbent strictly dominates v, in
// which case any completion of a node with bound v is itself
// dominated (× is intensive) and can be pruned.
func (f *frontier[T]) dominates(v T) bool {
	for _, s := range f.sol {
		if semiring.Gt(f.sr, s.Value, v) {
			return true
		}
	}
	return false
}

func (f *frontier[T]) offer(digits []int, v T, ev *core.Evaluator[T]) {
	if f.sr.Eq(v, f.sr.Zero()) {
		return
	}
	keep := f.sol[:0]
	for _, s := range f.sol {
		if semiring.Gt(f.sr, s.Value, v) {
			return // dominated by an incumbent; frontier unchanged
		}
		if !semiring.Gt(f.sr, v, s.Value) {
			keep = append(keep, s) // not displaced
		}
	}
	f.sol = keep
	if len(f.sol) < f.max {
		f.sol = append(f.sol, Solution[T]{Assignment: ev.Assignment(digits), Value: v})
	}
}

func (f *frontier[T]) solutions() []Solution[T] {
	return append([]Solution[T](nil), f.sol...)
}
