package solver

import (
	"runtime"
	"sort"
	"time"

	"softsoa/internal/cache"
	"softsoa/internal/clock"
	"softsoa/internal/core"
	"softsoa/internal/obs/journal"
	"softsoa/internal/semiring"
)

// Stats records the work a solver performed.
type Stats struct {
	// Nodes is the number of search nodes expanded (assignments tried
	// for exhaustive/local search; partial assignments for B&B). With
	// WithWorkers the count depends on which bounds each worker saw
	// when, so it is comparable to sequential only modulo scheduling.
	Nodes int64
	// Prunes is the number of subtrees cut by the bound (B&B only;
	// modulo scheduling under WithWorkers, like Nodes).
	Prunes int64
	// Tasks is the number of subtree tasks the work-stealing scheduler
	// executed (0 for sequential solves). Adaptive splitting creates
	// tasks on steal demand, so the count depends on scheduling, like
	// Nodes and Prunes; the solved result does not.
	Tasks int64
	// Workers is the resolved worker count the solve ran with (1 for
	// the sequential path). Deterministic.
	Workers int
	// Steals is the number of tasks workers took from another
	// worker's deque (scheduling-dependent; 0 for sequential solves).
	Steals int64
	// Splits is the number of spill events: a busy worker packaging
	// its unexplored sibling range into a stealable task because some
	// worker was hungry (scheduling-dependent; 0 for sequential).
	Splits int64
	// TablesBuilt is the number of intermediate constraint tables
	// materialised (variable elimination only).
	TablesBuilt int64
	// Elapsed is the wall-clock solving time.
	Elapsed time.Duration
}

// Solution is one complete assignment with its combined value.
type Solution[T any] struct {
	Assignment core.Assignment
	Value      T
}

// Result is the outcome of a solve.
type Result[T any] struct {
	// Blevel is the best level of consistency: the least upper bound
	// of the combined value over all complete assignments. For
	// totally ordered semirings it is attained by Best; for partial
	// (product) orders it may be an unattained ideal point.
	Blevel T
	// Best holds the non-dominated solutions found. Complete solvers
	// return the full frontier (all optimal assignments for total
	// orders); local search returns the best incumbents seen.
	Best []Solution[T]
	// Stats records the solver's work.
	Stats Stats
}

// Option configures a solver run.
type Option func(*config)

type config struct {
	prune      bool
	lookahead  bool
	degree     bool
	maxBest    int
	workers    int
	propagate  bool
	propRounds int
	restarts   int
	steps      int
	seed       int64
	clock      clock.Clock
	tel        journal.SearchRecorder
	telStride  int64
	cache      *cache.Cache
	warm       bool
	warmKey    cache.Key
}

func defaultConfig() config {
	return config{prune: true, maxBest: 16, workers: 1, restarts: 8, steps: 400, seed: 1, clock: clock.Wall}
}

// WithoutPruning disables the branch-and-bound upper bound test; the
// search degenerates to exhaustive depth-first enumeration. Used by
// the pruning ablation (experiment E10).
func WithoutPruning() Option { return func(c *config) { c.prune = false } }

// WithDegreeOrdering makes branch and bound assign the most
// constrained variables first: variables are statically ordered by
// descending constraint degree (ties by smaller domain, then
// declaration order). Constraints then become fully assigned — and
// start pruning — as early as possible.
func WithDegreeOrdering() Option { return func(c *config) { c.degree = true } }

// WithLookahead strengthens the branch-and-bound bound with a static
// optimistic completion: at each depth the partial product is
// multiplied by the precomputed least upper bound of every constraint
// not yet fully assigned. Since each constraint's eventual value is
// ≤ its lub and × is monotone, the product remains a sound upper
// bound, so pruning stays exact while firing earlier.
func WithLookahead() Option { return func(c *config) { c.lookahead = true } }

// WithMaxBest caps how many co-optimal solutions are retained
// (default 16). The blevel is exact regardless.
func WithMaxBest(n int) Option { return func(c *config) { c.maxBest = n } }

// WithWorkers runs branch and bound on n work-stealing workers; 0
// resolves to runtime.GOMAXPROCS(0) at solve time, and n == 1 is the
// sequential reference path with zero scheduling machinery (other
// solvers ignore the option). Each worker owns a lock-free deque of
// subtree tasks and a localized copy of the constraint tables; busy
// workers adaptively split — spilling unexplored sibling ranges for
// thieves — whenever another worker runs dry, and all workers prune
// against a shared lock-free incumbent antichain re-read periodically
// (speculative bound sharing). Blevel and Best are identical to the
// sequential solver — bit-identical for totally ordered semirings,
// and for partially ordered ones whenever the WithMaxBest cap does
// not bind (an antichain wider than the cap can resolve ties
// differently). Nodes, Prunes, Tasks, Steals and Splits depend on
// scheduling.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.workers = n
	}
}

// WithParallel fans branch and bound out across n workers (n ≤ 1 is
// the sequential reference path).
//
// Deprecated: use WithWorkers, the canonical worker-count knob (note
// the one semantic difference: WithParallel clamps n < 1 to the
// sequential path, while WithWorkers(0) resolves to GOMAXPROCS).
func WithParallel(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.workers = n
	}
}

// WithPropagation runs Propagate for up to maxRounds sweeps (0 means
// the default cap) before branch and bound: the zero-arity c∅ bound
// folds into the root and the tightened unary tables fold in at their
// variable's depth, seeding pruning before the first incumbent is
// found. For invertible semirings the rewrite is equivalence-
// preserving, so results are unchanged; with floating-point carriers
// whose × rounds (e.g. probabilistic) the propagated leaf values can
// drift from the originals by ulps — callers needing bit-exact scores
// should leave it off. Weighted and fuzzy carriers are exact: their
// Plus/Times/Div are min/max or integer-valued sums in practice.
func WithPropagation(maxRounds int) Option {
	return func(c *config) {
		c.propagate = true
		c.propRounds = maxRounds
	}
}

// WithRestarts sets the number of random restarts for local search.
func WithRestarts(n int) Option { return func(c *config) { c.restarts = n } }

// WithSteps sets the hill-climbing step budget per restart.
func WithSteps(n int) Option { return func(c *config) { c.steps = n } }

// WithSeed seeds local search's randomness; runs are deterministic
// given a seed.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithClock injects the time source behind Stats.Elapsed (default the
// wall clock). Solvers read no other clock: given the same seed the
// search itself is deterministic, and with a nil Clock the timing is
// a strict no-op.
func WithClock(c clock.Clock) Option { return func(cf *config) { cf.clock = c } }

// WithTelemetry streams sampled branch-and-bound search events into
// rec: every stride-th node expansion and prune (stride < 1 is
// clamped to 1), and every incumbent improvement. With a nil recorder
// — the default — the inner loop performs only nil checks and keeps
// its zero-allocation guarantee. Under WithWorkers each worker
// carries its own node/prune counters, so sampled node numbers
// restart per subtree task and event order follows scheduling; the
// search result itself stays deterministic either way.
func WithTelemetry(rec journal.SearchRecorder, stride int) Option {
	return func(c *config) {
		c.tel = rec
		if stride < 1 {
			stride = 1
		}
		c.telStride = int64(stride)
	}
}

// Exhaustive enumerates every complete assignment and returns the
// exact blevel and the frontier of non-dominated solutions. It is the
// reference against which the other solvers are tested.
func Exhaustive[T any](p *core.Problem[T], opts ...Option) Result[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	start := cfg.clock.Now()
	s := p.Space()
	sr := s.Semiring()
	ev := core.NewEvaluator(s, p.Constraints())
	sizes := ev.DomainSizes()
	digits := make([]int, len(sizes))
	res := Result[T]{Blevel: sr.Zero()}
	fr := newDigitFrontier[T](sr, cfg.maxBest)
	for done := false; !done; {
		res.Stats.Nodes++
		v := ev.EvalAll(digits)
		res.Blevel = sr.Plus(res.Blevel, v)
		fr.offer(digits, v)
		done = !next(digits, sizes)
	}
	res.Best = fr.solutions(ev)
	res.Stats.Elapsed = cfg.clock.Since(start)
	return res
}

// BranchAndBound performs depth-first search over the variables in
// declaration order, folding in each constraint's value as soon as
// its scope is fully assigned. Because × is intensive (combining can
// only worsen), the partial product is a sound upper bound: when it
// is dominated by an incumbent the subtree is pruned. With partially
// ordered semirings a node is pruned only when some incumbent
// strictly dominates its bound, which remains sound for the frontier.
// The inner loop works on digit vectors through the evaluator's
// stride-indexed tables and allocates nothing per node.
func BranchAndBound[T any](p *core.Problem[T], opts ...Option) Result[T] {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	// Resolve the worker count before the memo key is built, so a
	// WithWorkers(0) solve hits the same memo slot as an explicit
	// WithWorkers(GOMAXPROCS) one.
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	start := cfg.clock.Now()
	// Tier 3, exact memo: a repeat solve of byte-identical content
	// under the same configuration returns a deep copy of the cold
	// run's result. Telemetry runs bypass the memo — a silent hit
	// would swallow the search events the recorder was attached for.
	var memoKey cache.Key
	memo := cfg.cache != nil && cfg.tel == nil
	if memo {
		memoKey = solveKey(p, &cfg)
		if v, ok := cfg.cache.Get(cache.TierSearch, memoKey); ok {
			if hit, ok := v.(*Result[T]); ok {
				res := cloneResult(hit)
				if cfg.warm {
					// Keep the warm slot fresh so the next perturbed
					// solve seeds from this result's incumbents.
					cfg.cache.Put(cache.TierSearch, cfg.warmKey, warmAssignments(hit.Best))
				}
				res.Stats.Elapsed = cfg.clock.Since(start)
				return res
			}
		}
	}
	prob := p
	if cfg.propagate {
		prob, _, _ = PropagateCached(cfg.cache, p, cfg.propRounds)
	}
	pl := newPlan(prob, &cfg)
	if cfg.warm && cfg.cache != nil {
		// Tier 3, warm start: prior incumbents re-evaluated against
		// this problem become initial pruning bounds (see
		// WithWarmStart for the soundness argument).
		pl.seeds = warmSeeds(cfg.cache, cfg.warmKey, prob, pl)
		cfg.cache.NoteWarmStart(len(pl.seeds) > 0)
	}
	var res Result[T]
	if cfg.workers > 1 && pl.n > 0 {
		res = solveParallel(pl, cfg.workers)
	} else {
		res = solveSequential(pl)
	}
	if memo {
		stored := cloneResult(&res)
		cfg.cache.Put(cache.TierSearch, memoKey, &stored)
	}
	if cfg.warm && cfg.cache != nil {
		cfg.cache.Put(cache.TierSearch, cfg.warmKey, warmAssignments(res.Best))
	}
	res.Stats.Elapsed = cfg.clock.Since(start)
	return res
}

// plan holds the static artifacts of a branch-and-bound run — the
// variable ordering, the constraint folding schedule, the lookahead
// products and the root bound — shared read-only by every worker.
type plan[T any] struct {
	sr    semiring.Semiring[T]
	ev    *core.Evaluator[T]
	sizes []int
	n     int
	// perm[d] is the space variable assigned at depth d; the default
	// is declaration order, WithDegreeOrdering sorts by descending
	// constraint degree (ties by smaller domain, then declaration).
	perm []int
	// byDepth[d] lists the constraints that become fully assigned
	// when the variable at depth d-1 of the ordering gets a value;
	// byDepth[0] holds the constants, folded into the root bound.
	byDepth [][]int
	// optimisticRest[d] is the product of the least upper bounds of
	// every constraint that only becomes fully assigned at depth > d:
	// an optimistic completion factor for the lookahead bound.
	optimisticRest []T
	rootBound      T
	prune          bool
	lookahead      bool
	maxBest        int
	// tel/telStride sample search telemetry; a nil tel keeps the
	// inner loop allocation-free.
	tel       journal.SearchRecorder
	telStride int64
	// seeds are warm-start incumbent values: prior solutions
	// re-evaluated against this problem (so each is an attained leaf
	// value of this search), pruned against exactly like frontier
	// incumbents. Empty outside warm-started runs.
	seeds []T
}

func newPlan[T any](p *core.Problem[T], cfg *config) *plan[T] {
	s := p.Space()
	sr := s.Semiring()
	cs := p.Constraints()
	ev := core.NewEvaluator(s, cs)
	sizes := ev.DomainSizes()
	n := len(sizes)
	pl := &plan[T]{
		sr: sr, ev: ev, sizes: sizes, n: n,
		prune: cfg.prune, lookahead: cfg.lookahead, maxBest: cfg.maxBest,
		tel: cfg.tel, telStride: cfg.telStride,
	}

	pl.perm = make([]int, n)
	for i := range pl.perm {
		pl.perm[i] = i
	}
	if cfg.degree {
		degree := make([]int, n)
		for _, c := range cs {
			for _, v := range c.Scope() {
				for i, name := range s.Variables() {
					if name == v {
						degree[i]++
					}
				}
			}
		}
		sort.SliceStable(pl.perm, func(a, b int) bool {
			va, vb := pl.perm[a], pl.perm[b]
			if degree[va] != degree[vb] {
				return degree[va] > degree[vb]
			}
			return sizes[va] < sizes[vb]
		})
	}
	posOf := make([]int, n)
	for d, vi := range pl.perm {
		posOf[vi] = d
	}

	pl.byDepth = make([][]int, n+1)
	for k := 0; k < ev.NumConstraints(); k++ {
		last := -1
		for _, v := range cs[k].Scope() {
			for i, name := range s.Variables() {
				if name == v && posOf[i] > last {
					last = posOf[i]
				}
			}
		}
		if last < 0 {
			pl.byDepth[0] = append(pl.byDepth[0], k) // constants fold at the root
		} else {
			pl.byDepth[last+1] = append(pl.byDepth[last+1], k)
		}
	}

	pl.optimisticRest = make([]T, n+1)
	pl.optimisticRest[n] = sr.One()
	if cfg.lookahead {
		lubs := make([]T, ev.NumConstraints())
		for k := range lubs {
			lub := sr.Zero()
			cs[k].ForEach(func(_ core.Assignment, v T) { lub = sr.Plus(lub, v) })
			lubs[k] = lub
		}
		for d := n - 1; d >= 0; d-- {
			acc := pl.optimisticRest[d+1]
			for _, k := range pl.byDepth[d+1] {
				acc = sr.Times(acc, lubs[k])
			}
			pl.optimisticRest[d] = acc
		}
	}

	pl.rootBound = sr.One()
	for _, k := range pl.byDepth[0] {
		pl.rootBound = sr.Times(pl.rootBound, ev.Eval(k, nil))
	}
	return pl
}

// bbSearch is the sequential depth-first searcher: its digit vector,
// capped frontier and counters. The work-stealing workers carry their
// own twin state (see wsWorker in parallel.go).
type bbSearch[T any] struct {
	pl     *plan[T]
	digits []int
	fr     *digitFrontier[T]
	blevel T
	nodes  int64
	prunes int64
}

func newSearch[T any](pl *plan[T], fr *digitFrontier[T]) *bbSearch[T] {
	return &bbSearch[T]{pl: pl, digits: make([]int, pl.n), fr: fr, blevel: pl.sr.Zero()}
}

// run explores the subtree rooted at depth under the given sound
// upper bound. The steady-state path allocates nothing: the digit
// vector is in place, constraint values come from stride-indexed
// tables, and the frontier recycles displaced snapshot buffers.
//
//softsoa:hotpath
func (s *bbSearch[T]) run(depth int, bound T) {
	pl := s.pl
	s.nodes++
	if pl.tel != nil && s.nodes%pl.telStride == 0 {
		//lint:ignore hotpath nil-guarded telemetry record, sampled every telStride nodes
		pl.tel.RecordSearch(journal.SearchRecord{
			Kind: "expand", Node: s.nodes, Depth: depth, Value: pl.sr.Format(bound),
		})
	}
	if pl.prune {
		ub := bound
		if pl.lookahead {
			ub = pl.sr.Times(bound, pl.optimisticRest[depth])
		}
		if s.dominated(ub) {
			s.prunes++
			if pl.tel != nil && s.prunes%pl.telStride == 0 {
				reason := "bound"
				if pl.lookahead {
					reason = "lookahead-bound"
				}
				//lint:ignore hotpath nil-guarded telemetry record, sampled every telStride prunes
				pl.tel.RecordSearch(journal.SearchRecord{
					Kind: "prune", Node: s.nodes, Depth: depth,
					Value: pl.sr.Format(ub), Reason: reason,
				})
			}
			return
		}
	}
	if depth == pl.n {
		s.blevel = pl.sr.Plus(s.blevel, bound)
		if s.fr.offer(s.digits, bound) {
			if pl.tel != nil {
				//lint:ignore hotpath nil-guarded telemetry on the rare incumbent-improvement path
				pl.tel.RecordSearch(journal.SearchRecord{
					Kind: "incumbent", Node: s.nodes, Depth: depth, Value: pl.sr.Format(bound),
				})
			}
		}
		return
	}
	vi := pl.perm[depth]
	for d := 0; d < pl.sizes[vi]; d++ {
		s.digits[vi] = d
		b := bound
		for _, k := range pl.byDepth[depth+1] {
			b = pl.sr.Times(b, pl.ev.Eval(k, s.digits))
		}
		s.run(depth+1, b)
	}
}

// dominated prunes against the warm-start seeds first — attained leaf
// values of this very problem, so strictly-dominated subtrees are cut
// before the search has found any incumbent of its own — then against
// the local frontier. The seed scan allocates nothing, keeping run's
// hotpath guarantee.
func (s *bbSearch[T]) dominated(v T) bool {
	for _, w := range s.pl.seeds {
		if semiring.Gt(s.pl.sr, w, v) {
			return true
		}
	}
	return s.fr.dominates(v)
}

func solveSequential[T any](pl *plan[T]) Result[T] {
	res := Result[T]{Blevel: pl.sr.Zero()}
	res.Stats.Workers = 1
	fr := newDigitFrontier[T](pl.sr, pl.maxBest)
	if pl.n == 0 {
		res.Blevel = pl.rootBound
		fr.offer(nil, pl.rootBound)
		res.Best = fr.solutions(pl.ev)
		return res
	}
	s := newSearch(pl, fr)
	s.run(0, pl.rootBound)
	res.Blevel = s.blevel
	res.Stats.Nodes = s.nodes
	res.Stats.Prunes = s.prunes
	res.Best = fr.solutions(pl.ev)
	return res
}

// next advances digits as a mixed-radix odometer; it reports false
// when the odometer wraps (enumeration complete).
func next(digits, sizes []int) bool {
	for i := len(digits) - 1; i >= 0; i-- {
		digits[i]++
		if digits[i] < sizes[i] {
			return true
		}
		digits[i] = 0
	}
	return false
}
