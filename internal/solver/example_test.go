package solver_test

import (
	"fmt"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
	"softsoa/internal/solver"
)

// Solving an SCSP with branch and bound: the Fig. 1 problem solves to
// blevel 7 at X=a, Y=b.
func ExampleBranchAndBound() {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))
	p := core.NewProblem(s, x).Add(
		core.Unary(s, x, map[string]float64{"a": 1, "b": 9}),
		core.Binary(s, x, y, map[[2]string]float64{
			{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
		}),
		core.Unary(s, y, map[string]float64{"a": 5, "b": 5}),
	)
	res := solver.BranchAndBound(p)
	best := res.Best[0]
	fmt.Printf("blevel %v at X=%s Y=%s\n", res.Blevel,
		best.Assignment.Label(x), best.Assignment.Label(y))
	// Output:
	// blevel 7 at X=a Y=b
}

// Propagation shifts necessary costs into a zero-arity bound c∅
// without changing the problem; on Fig. 1 it derives the optimum
// outright.
func ExamplePropagate() {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))
	p := core.NewProblem(s, x).Add(
		core.Unary(s, x, map[string]float64{"a": 1, "b": 9}),
		core.Binary(s, x, y, map[[2]string]float64{
			{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
		}),
		core.Unary(s, y, map[string]float64{"a": 5, "b": 5}),
	)
	q, czero, _ := solver.Propagate(p, 0)
	fmt.Println("c∅ =", czero)
	fmt.Println("equivalent:", core.Eq(p.Combined(), q.Combined()))
	// Output:
	// c∅ = 7
	// equivalent: true
}
