package solver

import (
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
	"softsoa/internal/workload"
)

// fig1 builds the Fig. 1 weighted SCSP from the paper.
func fig1() *core.Problem[float64] {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("X", core.LabelDomain("a", "b"))
	y := s.AddVariable("Y", core.LabelDomain("a", "b"))
	p := core.NewProblem(s, x)
	p.Add(
		core.Unary(s, x, map[string]float64{"a": 1, "b": 9}),
		core.Binary(s, x, y, map[[2]string]float64{
			{"a", "a"}: 5, {"a", "b"}: 1, {"b", "a"}: 2, {"b", "b"}: 2,
		}),
		core.Unary(s, y, map[string]float64{"a": 5, "b": 5}),
	)
	return p
}

func TestExhaustiveFig1(t *testing.T) {
	res := Exhaustive(fig1())
	if res.Blevel != 7 {
		t.Fatalf("blevel = %v, want 7", res.Blevel)
	}
	if len(res.Best) != 1 {
		t.Fatalf("expected a single optimum, got %d", len(res.Best))
	}
	best := res.Best[0]
	if best.Value != 7 || best.Assignment.Label("X") != "a" || best.Assignment.Label("Y") != "b" {
		t.Fatalf("best = %v at %v, want 7 at X=a,Y=b", best.Value, best.Assignment)
	}
	if res.Stats.Nodes != 4 {
		t.Errorf("nodes = %d, want 4", res.Stats.Nodes)
	}
}

func TestBranchAndBoundFig1(t *testing.T) {
	res := BranchAndBound(fig1())
	if res.Blevel != 7 {
		t.Fatalf("blevel = %v, want 7", res.Blevel)
	}
	if len(res.Best) != 1 || res.Best[0].Assignment.Label("Y") != "b" {
		t.Fatalf("best = %+v", res.Best)
	}
}

func TestEliminateFig1(t *testing.T) {
	res := Eliminate(fig1())
	if res.Blevel != 7 {
		t.Fatalf("blevel = %v, want 7", res.Blevel)
	}
	// The frontier is over con = {X}: the single best is X=a at 7.
	if len(res.Best) != 1 || res.Best[0].Assignment.Label("X") != "a" || res.Best[0].Value != 7 {
		t.Fatalf("best = %+v", res.Best)
	}
	if res.Stats.TablesBuilt == 0 {
		t.Error("elimination should build tables")
	}
}

func TestLocalSearchFig1(t *testing.T) {
	res := LocalSearch(fig1(), WithSeed(3), WithRestarts(4))
	if res.Blevel != 7 {
		t.Fatalf("blevel = %v, want 7 (tiny problem must be solved exactly)", res.Blevel)
	}
}

func TestSolversAgreeOnRandomFuzzy(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p, err := workload.RandomFuzzySCSP(workload.SCSPParams{
			Vars: 5, DomainSize: 3, Density: 0.6, Tightness: 0.7, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ex := Exhaustive(p)
		bb := BranchAndBound(p)
		ve := Eliminate(p)
		if ex.Blevel != bb.Blevel {
			t.Errorf("seed %d: B&B blevel %v != exhaustive %v", seed, bb.Blevel, ex.Blevel)
		}
		if ex.Blevel != ve.Blevel {
			t.Errorf("seed %d: VE blevel %v != exhaustive %v", seed, ve.Blevel, ex.Blevel)
		}
		if p.Blevel() != ex.Blevel {
			t.Errorf("seed %d: problem blevel %v != exhaustive %v", seed, p.Blevel(), ex.Blevel)
		}
		ls := LocalSearch(p, WithSeed(seed))
		sr := p.Space().Semiring()
		if !sr.Leq(ls.Blevel, ex.Blevel) {
			t.Errorf("seed %d: local search blevel %v exceeds exact %v", seed, ls.Blevel, ex.Blevel)
		}
	}
}

func TestSolversAgreeOnRandomWeighted(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: 4, DomainSize: 4, Density: 0.5, Tightness: 0.9, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ex := Exhaustive(p)
		bb := BranchAndBound(p)
		ve := Eliminate(p)
		noPrune := BranchAndBound(p, WithoutPruning())
		if ex.Blevel != bb.Blevel || ex.Blevel != ve.Blevel || ex.Blevel != noPrune.Blevel {
			t.Errorf("seed %d: blevels diverge: ex=%v bb=%v ve=%v nop=%v",
				seed, ex.Blevel, bb.Blevel, ve.Blevel, noPrune.Blevel)
		}
		if bb.Stats.Nodes > noPrune.Stats.Nodes {
			t.Errorf("seed %d: pruning expanded more nodes (%d) than brute force (%d)",
				seed, bb.Stats.Nodes, noPrune.Stats.Nodes)
		}
	}
}

func TestBranchAndBoundPrunes(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 6, DomainSize: 4, Density: 0.8, Tightness: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned := BranchAndBound(p)
	brute := BranchAndBound(p, WithoutPruning())
	if pruned.Stats.Prunes == 0 {
		t.Error("expected pruning on a tight weighted problem")
	}
	if pruned.Stats.Nodes >= brute.Stats.Nodes {
		t.Errorf("pruned nodes %d should be < brute nodes %d", pruned.Stats.Nodes, brute.Stats.Nodes)
	}
	if pruned.Blevel != brute.Blevel {
		t.Errorf("pruning changed the blevel: %v vs %v", pruned.Blevel, brute.Blevel)
	}
}

func TestEliminateChainScalesPastSearchLimits(t *testing.T) {
	// A 14-variable chain with domain 4 has 4^14 ≈ 2.7e8 assignments —
	// hopeless for enumeration, trivial for elimination (width 1).
	p, err := workload.ChainWeightedSCSP(14, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	res := Eliminate(p)
	if res.Blevel < 0 || len(res.Best) == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	// Cross-check on a chain small enough to enumerate.
	small, err := workload.ChainWeightedSCSP(6, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Eliminate(small).Blevel, Exhaustive(small).Blevel; got != want {
		t.Errorf("chain blevel: VE %v != exhaustive %v", got, want)
	}
}

func TestMultipleOptima(t *testing.T) {
	s := core.NewSpace[float64](semiring.Fuzzy{})
	x := s.AddVariable("x", core.LabelDomain("a", "b", "c"))
	p := core.NewProblem(s, x)
	p.Add(core.Unary(s, x, map[string]float64{"a": 0.9, "b": 0.9, "c": 0.1}))
	for _, res := range []Result[float64]{Exhaustive(p), BranchAndBound(p), Eliminate(p)} {
		if res.Blevel != 0.9 {
			t.Fatalf("blevel = %v, want 0.9", res.Blevel)
		}
		if len(res.Best) != 2 {
			t.Fatalf("expected both optima, got %d: %+v", len(res.Best), res.Best)
		}
	}
}

func TestMaxBestCap(t *testing.T) {
	s := core.NewSpace[float64](semiring.Fuzzy{})
	x := s.AddVariable("x", core.IntDomain(0, 9))
	p := core.NewProblem(s, x)
	p.Add(core.Unary(s, x, map[string]float64{})) // all One: 10 optima
	res := Exhaustive(p, WithMaxBest(3))
	if len(res.Best) != 3 {
		t.Fatalf("got %d solutions, want capped 3", len(res.Best))
	}
	if res.Blevel != 1 {
		t.Fatalf("blevel = %v, want 1", res.Blevel)
	}
}

func TestParetoFrontierOnProductSemiring(t *testing.T) {
	type pv = semiring.Pair[float64, float64]
	sr := semiring.NewProduct[float64, float64](semiring.Weighted{}, semiring.Probabilistic{})
	s := core.NewSpace[pv](sr)
	x := s.AddVariable("x", core.IntDomain(0, 2))
	p := core.NewProblem(s, x)
	// x=0: cost 0, reliability 0.5; x=1: cost 2, rel 0.75; x=2: cost 4, rel 1.
	p.Add(core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) pv {
		return semiring.P(a.Num(x)*2, 0.5+a.Num(x)*0.25)
	}))
	for _, res := range []Result[pv]{Exhaustive(p), BranchAndBound(p)} {
		if len(res.Best) != 3 {
			t.Fatalf("Pareto frontier should hold all 3 incomparable points, got %d", len(res.Best))
		}
		if res.Blevel.First != 0 || res.Blevel.Second != 1 {
			t.Fatalf("blevel = %v, want ideal point (0,1)", res.Blevel)
		}
	}
}

func TestDominatedPointExcludedFromFrontier(t *testing.T) {
	type pv = semiring.Pair[float64, float64]
	sr := semiring.NewProduct[float64, float64](semiring.Weighted{}, semiring.Probabilistic{})
	s := core.NewSpace[pv](sr)
	x := s.AddVariable("x", core.IntDomain(0, 2))
	p := core.NewProblem(s, x)
	// x=1 (cost 5, rel 0.4) is dominated by x=0 (cost 1, rel 0.9).
	points := []pv{semiring.P(1.0, 0.9), semiring.P(5.0, 0.4), semiring.P(9.0, 0.95)}
	p.Add(core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) pv {
		return points[int(a.Num(x))]
	}))
	res := Exhaustive(p)
	if len(res.Best) != 2 {
		t.Fatalf("frontier size = %d, want 2 (dominated point excluded): %+v", len(res.Best), res.Best)
	}
	for _, sol := range res.Best {
		if sol.Assignment.Label("x") == "1" {
			t.Error("dominated assignment x=1 must not be on the frontier")
		}
	}
}

func TestInconsistentProblemYieldsEmptyFrontier(t *testing.T) {
	s := core.NewSpace[bool](semiring.Classical{})
	x := s.AddVariable("x", core.IntDomain(0, 1))
	p := core.NewProblem(s, x)
	p.Add(core.Unary(s, x, map[string]bool{"0": false, "1": false}))
	for _, res := range []Result[bool]{Exhaustive(p), BranchAndBound(p), Eliminate(p)} {
		if res.Blevel {
			t.Fatal("blevel should be false")
		}
		if len(res.Best) != 0 {
			t.Fatalf("inconsistent problem should have empty frontier, got %+v", res.Best)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := workload.RandomFuzzySCSP(workload.SCSPParams{Vars: 0, DomainSize: 2}); err == nil {
		t.Error("expected error for zero vars")
	}
	if _, err := workload.RandomWeightedSCSP(workload.SCSPParams{Vars: 2, DomainSize: 2, Density: 1.5}); err == nil {
		t.Error("expected error for bad density")
	}
	if _, err := workload.ChainWeightedSCSP(0, 2, 1); err == nil {
		t.Error("expected error for zero-length chain")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	params := workload.SCSPParams{Vars: 4, DomainSize: 3, Density: 0.5, Tightness: 0.5, Seed: 42}
	p1, _ := workload.RandomFuzzySCSP(params)
	p2, _ := workload.RandomFuzzySCSP(params)
	if Exhaustive(p1).Blevel != Exhaustive(p2).Blevel {
		t.Error("same seed must generate the same problem")
	}
	params.Seed = 43
	p3, _ := workload.RandomFuzzySCSP(params)
	// Not a hard guarantee, but with 5 vars the chance of equal
	// blevels across seeds is small; treat equality as suspicious
	// only if the whole solution sets match too.
	_ = p3
}

func TestLookaheadSoundAndTighter(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: 7, DomainSize: 3, Density: 0.6, Tightness: 0.9, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		plain := BranchAndBound(p)
		look := BranchAndBound(p, WithLookahead())
		if plain.Blevel != look.Blevel {
			t.Errorf("seed %d: lookahead changed blevel: %v vs %v",
				seed, look.Blevel, plain.Blevel)
		}
		if look.Stats.Nodes > plain.Stats.Nodes {
			t.Errorf("seed %d: lookahead expanded more nodes (%d > %d)",
				seed, look.Stats.Nodes, plain.Stats.Nodes)
		}
		// Same optimal frontier values.
		if len(plain.Best) > 0 && len(look.Best) > 0 &&
			plain.Best[0].Value != look.Best[0].Value {
			t.Errorf("seed %d: best values differ", seed)
		}
	}
}

func TestLookaheadOnFuzzy(t *testing.T) {
	p, err := workload.RandomFuzzySCSP(workload.SCSPParams{
		Vars: 6, DomainSize: 3, Density: 0.7, Tightness: 0.8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := BranchAndBound(p, WithLookahead()).Blevel, Exhaustive(p).Blevel; got != want {
		t.Errorf("lookahead fuzzy blevel %v != exact %v", got, want)
	}
}

func TestDegreeOrderingSoundAndEffective(t *testing.T) {
	improved := 0
	for seed := int64(1); seed <= 10; seed++ {
		p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
			Vars: 8, DomainSize: 3, Density: 0.4, Tightness: 0.95, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		plain := BranchAndBound(p)
		ordered := BranchAndBound(p, WithDegreeOrdering())
		if plain.Blevel != ordered.Blevel {
			t.Errorf("seed %d: ordering changed the blevel: %v vs %v",
				seed, ordered.Blevel, plain.Blevel)
		}
		if len(plain.Best) > 0 && len(ordered.Best) > 0 &&
			plain.Best[0].Value != ordered.Best[0].Value {
			t.Errorf("seed %d: best values differ", seed)
		}
		if ordered.Stats.Nodes < plain.Stats.Nodes {
			improved++
		}
	}
	if improved == 0 {
		t.Error("degree ordering never reduced nodes across 10 seeds")
	}
}

func TestDegreeOrderingComposesWithLookahead(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 7, DomainSize: 3, Density: 0.5, Tightness: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Exhaustive(p).Blevel
	got := BranchAndBound(p, WithDegreeOrdering(), WithLookahead())
	if got.Blevel != want {
		t.Errorf("combined options blevel %v != exact %v", got.Blevel, want)
	}
}
