package solver

import (
	"testing"

	"softsoa/internal/obs/journal"
	"softsoa/internal/workload"
)

// searchSink collects solver telemetry for assertions.
type searchSink struct{ recs []journal.SearchRecord }

func (s *searchSink) RecordSearch(r journal.SearchRecord) { s.recs = append(s.recs, r) }

func (s *searchSink) count(kind string) int {
	n := 0
	for _, r := range s.recs {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// TestTelemetryStride: with stride 1 every node expansion is
// recorded; with stride k exactly every k-th one is, and incumbent
// improvements are never sampled away.
func TestTelemetryStride(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 6, DomainSize: 3, Density: 0.5, Tightness: 0.8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	full := &searchSink{}
	res := BranchAndBound(p, WithTelemetry(full, 1))
	if got := int64(full.count("expand")); got != res.Stats.Nodes {
		t.Errorf("stride 1 recorded %d expansions, search visited %d nodes", got, res.Stats.Nodes)
	}
	if full.count("incumbent") == 0 {
		t.Error("no incumbent improvements recorded")
	}

	sampled := &searchSink{}
	res4 := BranchAndBound(p, WithTelemetry(sampled, 4))
	if got, want := int64(sampled.count("expand")), res4.Stats.Nodes/4; got != want {
		t.Errorf("stride 4 recorded %d expansions, want %d", got, want)
	}
	if got, want := sampled.count("incumbent"), full.count("incumbent"); got != want {
		t.Errorf("stride 4 recorded %d incumbents, stride 1 recorded %d — improvements must not be sampled", got, want)
	}
}

// TestTelemetryDoesNotChangeSearch: recording is observational — the
// result with telemetry on equals the result with it off.
func TestTelemetryDoesNotChangeSearch(t *testing.T) {
	p, err := workload.RandomWeightedSCSP(workload.SCSPParams{
		Vars: 7, DomainSize: 3, Density: 0.6, Tightness: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := BranchAndBound(p)
	sink := &searchSink{}
	got := BranchAndBound(p, WithTelemetry(sink, 2))
	assertSameResult(t, p.Space().Semiring(), "telemetry", want, got)
	if got.Stats.Nodes != want.Stats.Nodes || got.Stats.Prunes != want.Stats.Prunes {
		t.Errorf("telemetry changed the search: nodes %d/%d prunes %d/%d",
			got.Stats.Nodes, want.Stats.Nodes, got.Stats.Prunes, want.Stats.Prunes)
	}
	if len(sink.recs) == 0 {
		t.Error("telemetry recorded nothing")
	}
}

// TestTelemetryClampsStride: a stride below 1 behaves as 1 instead of
// dividing by zero.
func TestTelemetryClampsStride(t *testing.T) {
	p, err := workload.ChainWeightedSCSP(5, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sink := &searchSink{}
	res := BranchAndBound(p, WithTelemetry(sink, 0))
	if got := int64(sink.count("expand")); got != res.Stats.Nodes {
		t.Errorf("clamped stride recorded %d expansions, want %d", got, res.Stats.Nodes)
	}
}
