package solver

import (
	"fmt"
	"strconv"

	"softsoa/internal/cache"
	"softsoa/internal/core"
)

// This file wires the content-addressed solve cache into the solver:
// tier 2 (memoised propagation fixpoints, PropagateCached) and tier 3
// (exact branch-and-bound memos plus warm-started search,
// WithSolveCache / WithWarmStart). Correctness rests on two facts:
// exact memo values are deep-copied both into and out of the cache,
// so no caller can mutate a cached result; and warm-start seeds are
// re-evaluated against the *current* problem before they prune, so a
// seed is always an attained leaf value of the search it bounds —
// pruning against it is exactly as sound as pruning against an
// incumbent the search found itself.

// WithSolveCache attaches a content-addressed cache to the run.
// Branch and bound then serves repeat solves from an exact memo —
// keyed by the problem's canonical content hash plus the search
// configuration — and WithPropagation reads its fixpoint through
// PropagateCached. A memo hit returns a deep copy of the cold run's
// result: Blevel, Best and the Nodes/Prunes/Tasks counters are
// bitwise those of the original solve; only Stats.Elapsed is fresh.
// Runs carrying a telemetry recorder (WithTelemetry) bypass the exact
// memo — a silent hit would swallow the search events the caller
// asked for — but still use the fixpoint tier and warm starts. A nil
// cache leaves behaviour unchanged.
func WithSolveCache(c *cache.Cache) Option { return func(cf *config) { cf.cache = c } }

// WithWarmStart names a warm-start slot in the cache (requires
// WithSolveCache). After solving, the run stores its optimal
// assignments under the key; a later run with the same key —
// typically the same request shape after a renegotiation perturbed a
// domain or a table — re-evaluates those assignments against its own
// problem and seeds branch-and-bound pruning with every value that is
// still attainable, entering the search with the prior incumbent as
// the initial bound. Assignments the perturbation invalidated
// (missing variables, vanished domain values, Zero scores) are
// dropped; when none survive the solve runs cold (the fallback is
// counted, see Cache.WarmStats). Because every surviving seed is an
// attained leaf value of the *current* problem, Blevel and Best are
// identical to the cold solve — bit-identical for totally ordered
// semirings, and for partially ordered ones whenever the WithMaxBest
// cap does not bind (the same boundary WithParallel documents). Only
// Nodes/Prunes change: the search prunes earlier.
func WithWarmStart(key cache.Key) Option {
	return func(cf *config) {
		cf.warm = true
		cf.warmKey = key
	}
}

// PropagateCached is Propagate behind the cache's fixpoint tier: the
// (problem content, round cap) key memoises the rewritten problem,
// the c∅ bound and the run stats, so the negotiator's precheck and
// WithPropagation seeding share one fixpoint per distinct store
// instead of recomputing it per request. The returned problem is
// shared on a hit and must be treated as read-only — every in-tree
// caller only builds evaluators over it. A nil cache falls through to
// Propagate.
func PropagateCached[T any](c *cache.Cache, p *core.Problem[T], maxRounds int) (*core.Problem[T], T, PropagationStats) {
	if c == nil {
		return Propagate(p, maxRounds)
	}
	rounds := maxRounds
	if rounds <= 0 {
		rounds = defaultPropRounds
	}
	key := cache.ProblemKey(p, "fixpoint", strconv.Itoa(rounds))
	if v, ok := c.Get(cache.TierFixpoint, key); ok {
		if fp, ok := v.(*fixpoint[T]); ok {
			return fp.prob, fp.czero, fp.stats
		}
	}
	prob, czero, stats := Propagate(p, rounds)
	c.Put(cache.TierFixpoint, key, &fixpoint[T]{prob: prob, czero: czero, stats: stats})
	return prob, czero, stats
}

// fixpoint is the fixpoint tier's cached value.
type fixpoint[T any] struct {
	prob  *core.Problem[T]
	czero T
	stats PropagationStats
}

// solveKey is the exact-memo key: the problem's canonical content
// hash plus every configuration knob that can change the result or
// its deterministic statistics.
func solveKey[T any](p *core.Problem[T], cfg *config) cache.Key {
	rounds := 0
	if cfg.propagate {
		rounds = cfg.propRounds
		if rounds <= 0 {
			rounds = defaultPropRounds
		}
	}
	return cache.ProblemKey(p, "bnb", fmt.Sprintf(
		"prune=%t lookahead=%t degree=%t maxBest=%d propagate=%t rounds=%d workers=%d",
		cfg.prune, cfg.lookahead, cfg.degree, cfg.maxBest, cfg.propagate, rounds, cfg.workers))
}

// cloneResult deep-copies a result so cached and returned values
// never alias: assignments are fresh maps, values are semiring
// carriers (immutable by construction).
func cloneResult[T any](r *Result[T]) Result[T] {
	out := Result[T]{Blevel: r.Blevel, Stats: r.Stats}
	if r.Best != nil {
		out.Best = make([]Solution[T], len(r.Best))
		for i, s := range r.Best {
			a := make(core.Assignment, len(s.Assignment))
			for k, v := range s.Assignment {
				a[k] = v
			}
			out.Best[i] = Solution[T]{Assignment: a, Value: s.Value}
		}
	}
	return out
}

// warmAssignments extracts the frontier's assignments for a warm-start
// slot (deep-copied; the stored value is plain []core.Assignment, so
// callers outside the solver — benches, the composer — can seed slots
// from any prior Result).
func warmAssignments[T any](best []Solution[T]) []core.Assignment {
	out := make([]core.Assignment, 0, len(best))
	for _, s := range best {
		a := make(core.Assignment, len(s.Assignment))
		for k, v := range s.Assignment {
			a[k] = v
		}
		out = append(out, a)
	}
	return out
}

// warmSeeds resolves a warm-start slot against the problem about to
// be searched: each stored assignment is translated to the current
// space (dropped when a variable or domain value no longer exists)
// and re-evaluated through the plan's evaluator. The returned values
// are attained leaf values of this exact search, safe to prune
// against. prob must be the problem the plan was built from (the
// propagated one when propagation ran), so seed values come from the
// same tables the search folds.
func warmSeeds[T any](c *cache.Cache, key cache.Key, prob *core.Problem[T], pl *plan[T]) []T {
	v, ok := c.Get(cache.TierSearch, key)
	if !ok {
		return nil
	}
	assts, ok := v.([]core.Assignment)
	if !ok || len(assts) == 0 || pl.n == 0 {
		return nil
	}
	s := prob.Space()
	vars := s.Variables()
	digits := make([]int, len(vars))
	var seeds []T
	for _, a := range assts {
		usable := true
		for i, name := range vars {
			dv, has := a[name]
			if !has {
				usable = false
				break
			}
			di := -1
			for j, d := range s.Domain(name) {
				if d.Label == dv.Label {
					di = j
					break
				}
			}
			if di < 0 {
				usable = false
				break
			}
			digits[i] = di
		}
		if !usable {
			continue
		}
		val := pl.ev.EvalAll(digits)
		if pl.sr.Eq(val, pl.sr.Zero()) {
			continue
		}
		seeds = append(seeds, val)
	}
	return seeds
}
