package integrity

import (
	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// This file builds the paper's running scenario (Fig. 8): a federated
// digital photo-editing service. The client-side COMPF module
// compresses; the provider-side REDF (red filter) and BWF
// (black-and-white filter) modules transform the image in a pipeline
// outcomp → bwbyte → redbyte → incomp, where the four variables are
// image sizes in KB at the successive stages. The client's high-level
// requirement Memory is that the returned image is no larger than the
// original.

// PhotoSizesKB is the domain of image sizes used by the scenario.
var PhotoSizesKB = []float64{512, 1024, 2048, 4096}

// PhotoVars names the four pipeline size variables.
var PhotoVars = struct {
	Outcomp, Bwbyte, Redbyte, Incomp core.Variable
}{"outcomp", "bwbyte", "redbyte", "incomp"}

// NewCrispPhotoSpace returns a Classical-semiring space with the four
// size variables declared.
func NewCrispPhotoSpace() *core.Space[bool] {
	s := core.NewSpace[bool](semiring.Classical{})
	addPhotoVars(s)
	return s
}

// NewQuantPhotoSpace returns a Probabilistic-semiring space with the
// four size variables declared.
func NewQuantPhotoSpace() *core.Space[float64] {
	s := core.NewSpace[float64](semiring.Probabilistic{})
	addPhotoVars(s)
	return s
}

func addPhotoVars[T any](s *core.Space[T]) {
	for _, v := range []core.Variable{
		PhotoVars.Outcomp, PhotoVars.Bwbyte, PhotoVars.Redbyte, PhotoVars.Incomp,
	} {
		s.AddVariable(v, core.NumDomain(PhotoSizesKB...))
	}
}

// CrispPhotoSystem builds the paper's Imp1: the three module policies
// BWFilter ≡ bwbyte ≤ outcomp, REDFilter ≡ redbyte ≤ bwbyte and
// Compression ≡ incomp ≤ redbyte, each claiming its stage does not
// grow the image.
func CrispPhotoSystem(s *core.Space[bool]) *System[bool] {
	sys := NewSystem(s)
	mustAdd(sys, "BWF", leq(s, PhotoVars.Bwbyte, PhotoVars.Outcomp))
	mustAdd(sys, "REDF", leq(s, PhotoVars.Redbyte, PhotoVars.Bwbyte))
	mustAdd(sys, "COMPF", leq(s, PhotoVars.Incomp, PhotoVars.Redbyte))
	return sys
}

// CrispMemoryRequirement is the client requirement Memory ≡
// incomp ≤ outcomp.
func CrispMemoryRequirement(s *core.Space[bool]) *core.Constraint[bool] {
	return leq(s, PhotoVars.Incomp, PhotoVars.Outcomp)
}

func leq(s *core.Space[bool], a, b core.Variable) *core.Constraint[bool] {
	return core.NewConstraint(s, []core.Variable{a, b}, func(asst core.Assignment) bool {
		return asst.Num(a) <= asst.Num(b)
	})
}

func mustAdd[T any](sys *System[T], name string, c *core.Constraint[T]) {
	if err := sys.AddModule(name, c); err != nil {
		panic(err) // unreachable for the fixed scenario names
	}
}

// BWFReliability is the paper's probabilistic constraint c1 linking
// the black-and-white stage's reliability to the input and output
// sizes: fully reliable up to 1 MB inputs, inoperative above 4 MB,
// and otherwise 1 − outcomp/(100·bwbyte) — the more the stage shrinks
// the image, the likelier an error. c1(4096, 1024) = 0.96.
func BWFReliability(s *core.Space[float64]) *core.Constraint[float64] {
	o, b := PhotoVars.Outcomp, PhotoVars.Bwbyte
	return core.NewConstraint(s, []core.Variable{o, b}, func(a core.Assignment) float64 {
		switch {
		case a.Num(o) <= 1024:
			return 1
		case a.Num(o) > 4096:
			return 0
		default:
			return 1 - a.Num(o)/(100*a.Num(b))
		}
	})
}

// REDFReliability is c2: the red filter never grows the image
// (reliability 0 otherwise) and degrades gently with the shrink
// ratio: 1 − bwbyte/(200·redbyte).
func REDFReliability(s *core.Space[float64]) *core.Constraint[float64] {
	b, r := PhotoVars.Bwbyte, PhotoVars.Redbyte
	return core.NewConstraint(s, []core.Variable{b, r}, func(a core.Assignment) float64 {
		if a.Num(r) > a.Num(b) {
			return 0
		}
		return 1 - a.Num(b)/(200*a.Num(r))
	})
}

// COMPFReliability is c3: client-side compression never grows the
// image and degrades as 1 − redbyte/(150·incomp).
func COMPFReliability(s *core.Space[float64]) *core.Constraint[float64] {
	r, i := PhotoVars.Redbyte, PhotoVars.Incomp
	return core.NewConstraint(s, []core.Variable{r, i}, func(a core.Assignment) float64 {
		if a.Num(i) > a.Num(r) {
			return 0
		}
		return 1 - a.Num(r)/(150*a.Num(i))
	})
}

// QuantPhotoSystem builds Imp3 = c1 ⊗ c2 ⊗ c3: the global reliability
// of the composed photo-editing service.
func QuantPhotoSystem(s *core.Space[float64]) *System[float64] {
	sys := NewSystem(s)
	mustAdd(sys, "BWF", BWFReliability(s))
	mustAdd(sys, "REDF", REDFReliability(s))
	mustAdd(sys, "COMPF", COMPFReliability(s))
	return sys
}

// MemoryProbRequirement is the client's minimum-reliability
// constraint: on memory-safe tuples (incomp ≤ outcomp) the service
// must be at least minLevel reliable; other tuples are unconstrained
// (requirement 0).
func MemoryProbRequirement(s *core.Space[float64], minLevel float64) *core.Constraint[float64] {
	o, i := PhotoVars.Outcomp, PhotoVars.Incomp
	return core.NewConstraint(s, []core.Variable{o, i}, func(a core.Assignment) float64 {
		if a.Num(i) <= a.Num(o) {
			return minLevel
		}
		return 0
	})
}
