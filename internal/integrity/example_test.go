package integrity_test

import (
	"fmt"

	"softsoa/internal/integrity"
)

// The Fig. 8 analysis: the module policies uphold the client's
// Memory requirement until the red filter becomes unreliable.
func ExampleSystem_Upholds() {
	s := integrity.NewCrispPhotoSpace()
	sys := integrity.CrispPhotoSystem(s)
	mem := integrity.CrispMemoryRequirement(s)
	fmt.Println("Imp1 upholds Memory:",
		sys.Upholds(mem, integrity.PhotoVars.Incomp, integrity.PhotoVars.Outcomp))
	broken := sys.Clone()
	if err := broken.FailModule("REDF"); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("Imp2 upholds Memory:",
		broken.Upholds(mem, integrity.PhotoVars.Incomp, integrity.PhotoVars.Outcomp))
	// Output:
	// Imp1 upholds Memory: true
	// Imp2 upholds Memory: false
}

// The quantitative variant: the paper's c1 reliability value and the
// minimum-reliability check.
func ExampleSystem_MeetsMin() {
	s := integrity.NewQuantPhotoSpace()
	sys := integrity.QuantPhotoSystem(s)
	c1 := integrity.BWFReliability(s)
	fmt.Printf("c1(4096,1024) = %.2f\n", c1.AtLabels("4096", "1024"))
	req := integrity.MemoryProbRequirement(s, 0.5)
	fmt.Println("meets 0.5 minimum:",
		sys.MeetsMin(req, integrity.PhotoVars.Outcomp, integrity.PhotoVars.Incomp))
	// Output:
	// c1(4096,1024) = 0.96
	// meets 0.5 minimum: true
}
