// Package integrity implements the quantitative dependability
// analysis of Sec. 5 of the paper: module policies are soft
// constraints, a system implementation is their combination ⊗, the
// service interface is the projection ⇓ onto the externally visible
// variables, and integrity holds when the implementation locally
// refines the high-level requirement through that interface
// (Definitions 1 and 2, after Bistarelli & Foley, SAFECOMP 2003).
//
// With the Classical semiring the analysis is the paper's crisp one
// (the federated photo-editing pipeline of Fig. 8); with the
// Probabilistic semiring it becomes quantitative, measuring the
// reliability of the composed service and selecting the best
// implementation via the best level of consistency.
package integrity

import (
	"fmt"
	"sort"

	"softsoa/internal/core"
)

// Module is one component of a federated system: a named policy
// constraint describing its (claimed) behaviour.
type Module[T any] struct {
	// Name identifies the module (e.g. "REDF", "BWF", "COMPF").
	Name string
	// Policy is the soft constraint compiled from the module's policy
	// document.
	Policy *core.Constraint[T]
}

// System is a federated system: components within different
// administrative entities cooperating to provide a service, each
// contributing a policy.
type System[T any] struct {
	space   *core.Space[T]
	modules []Module[T]
	index   map[string]int
}

// NewSystem returns an empty federated system over the space.
func NewSystem[T any](space *core.Space[T]) *System[T] {
	return &System[T]{space: space, index: make(map[string]int)}
}

// Space returns the system's constraint space.
func (s *System[T]) Space() *core.Space[T] { return s.space }

// AddModule registers a module policy. It fails on duplicate names
// or nil policies.
func (s *System[T]) AddModule(name string, policy *core.Constraint[T]) error {
	if policy == nil {
		return fmt.Errorf("integrity: nil policy for module %q", name)
	}
	if _, dup := s.index[name]; dup {
		return fmt.Errorf("integrity: duplicate module %q", name)
	}
	s.index[name] = len(s.modules)
	s.modules = append(s.modules, Module[T]{Name: name, Policy: policy})
	return nil
}

// Modules returns the registered modules in registration order.
func (s *System[T]) Modules() []Module[T] {
	return append([]Module[T](nil), s.modules...)
}

// ReplaceModule swaps a module's policy, e.g. after a re-negotiation.
func (s *System[T]) ReplaceModule(name string, policy *core.Constraint[T]) error {
	i, ok := s.index[name]
	if !ok {
		return fmt.Errorf("integrity: unknown module %q", name)
	}
	if policy == nil {
		return fmt.Errorf("integrity: nil policy for module %q", name)
	}
	s.modules[i].Policy = policy
	return nil
}

// FailModule models an unreliable module by replacing its policy with
// the vacuous constraint true (1̄): the module "could take on any
// behaviour", as the paper does for REDF. The more realistic system
// that results is exactly the paper's Imp2.
func (s *System[T]) FailModule(name string) error {
	return s.ReplaceModule(name, core.Top(s.space))
}

// Clone returns an independent copy of the system, so failure
// injection can be explored without disturbing the original.
func (s *System[T]) Clone() *System[T] {
	out := NewSystem(s.space)
	for _, m := range s.modules {
		// Policies are immutable; sharing them is safe.
		if err := out.AddModule(m.Name, m.Policy); err != nil {
			panic(err) // unreachable: the source system was valid
		}
	}
	return out
}

// Implementation returns Imp = ⊗ of all module policies.
func (s *System[T]) Implementation() *core.Constraint[T] {
	cs := make([]*core.Constraint[T], len(s.modules))
	for i, m := range s.modules {
		cs[i] = m.Policy
	}
	return core.CombineAll(s.space, cs...)
}

// Interface returns the service interface Imp ⇓ vars: the external
// view of the system — "what is visible to the other software
// components" — hiding the internal variables.
func (s *System[T]) Interface(vars ...core.Variable) *core.Constraint[T] {
	return core.ProjectTo(s.Implementation(), vars...)
}

// Refines implements Definition 1: S locally refines R through the
// interface described by vars iff S⇓vars ⊑ R⇓vars.
func Refines[T any](s, r *core.Constraint[T], vars ...core.Variable) bool {
	return core.Leq(core.ProjectTo(s, vars...), core.ProjectTo(r, vars...))
}

// Upholds reports whether the system's implementation is as
// dependably safe as requirement req at the interface vars
// (Definition 2): Imp⇓vars ⊑ req⇓vars.
func (s *System[T]) Upholds(req *core.Constraint[T], vars ...core.Variable) bool {
	return Refines(s.Implementation(), req, vars...)
}

// Meets is the quantitative reading used for reliability: the
// implementation meets a minimum requirement when req ⊑ imp at the
// interface — every tuple is at least as reliable as demanded
// (Sec. 5, "MemoryProb ⊑ Imp3").
func Meets[T any](imp, minReq *core.Constraint[T], vars ...core.Variable) bool {
	return core.Leq(core.ProjectTo(minReq, vars...), core.ProjectTo(imp, vars...))
}

// MeetsMin reports whether the system's implementation meets the
// minimum reliability requirement at the interface vars.
func (s *System[T]) MeetsMin(minReq *core.Constraint[T], vars ...core.Variable) bool {
	return Meets(s.Implementation(), minReq, vars...)
}

// Reliability returns the best level of consistency of the
// implementation: the reliability of the best possible run of the
// composed service.
func (s *System[T]) Reliability() T {
	return core.Blevel(s.Implementation())
}

// Alternative is a candidate policy for one module.
type Alternative[T any] struct {
	// Module is the module whose policy the candidate replaces.
	Module string
	// Name labels the candidate implementation.
	Name string
	// Policy is the candidate policy.
	Policy *core.Constraint[T]
}

// Choice records one selected candidate per module.
type Choice struct {
	Module string
	Name   string
}

// BestImplementation exhaustively tries every combination of the
// given per-module alternatives (modules without alternatives keep
// their current policy), keeps those whose implementation meets
// minReq at the interface vars, and returns the choice with the best
// blevel — "the most reliable implementation among those possible".
// The boolean result reports whether any combination met the
// requirement.
func (s *System[T]) BestImplementation(
	alts []Alternative[T],
	minReq *core.Constraint[T],
	vars ...core.Variable,
) ([]Choice, T, bool) {
	sr := s.space.Semiring()
	byModule := make(map[string][]Alternative[T])
	var moduleOrder []string
	for _, a := range alts {
		if _, known := s.index[a.Module]; !known {
			return nil, sr.Zero(), false
		}
		if _, seen := byModule[a.Module]; !seen {
			moduleOrder = append(moduleOrder, a.Module)
		}
		byModule[a.Module] = append(byModule[a.Module], a)
	}
	sort.Strings(moduleOrder)

	bestVal := sr.Zero()
	var bestChoice []Choice
	found := false

	work := s.Clone()
	var rec func(i int, picked []Choice)
	rec = func(i int, picked []Choice) {
		if i == len(moduleOrder) {
			if !work.MeetsMin(minReq, vars...) {
				return
			}
			b := work.Reliability()
			if !found || (sr.Leq(bestVal, b) && !sr.Eq(bestVal, b)) {
				found = true
				bestVal = b
				bestChoice = append([]Choice(nil), picked...)
			}
			return
		}
		mod := moduleOrder[i]
		for _, cand := range byModule[mod] {
			if err := work.ReplaceModule(mod, cand.Policy); err != nil {
				continue
			}
			rec(i+1, append(picked, Choice{Module: mod, Name: cand.Name}))
		}
	}
	rec(0, nil)
	return bestChoice, bestVal, found
}
