package integrity

import (
	"math"
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// TestFig8CrispIntegrityHolds reproduces the paper's first Fig. 8
// result: Imp1 = RedFilter ⊗ BWFilter ⊗ Compression ensures the
// high-level requirement Memory through the interface
// {incomp, outcomp}.
func TestFig8CrispIntegrityHolds(t *testing.T) {
	s := NewCrispPhotoSpace()
	sys := CrispPhotoSystem(s)
	mem := CrispMemoryRequirement(s)
	if !sys.Upholds(mem, PhotoVars.Incomp, PhotoVars.Outcomp) {
		t.Fatal("Imp1 ⇓{incomp,outcomp} ⊑ Memory should hold")
	}
}

// TestFig8CrispIntegrityFailsWithUnreliableREDF reproduces the second
// Fig. 8 result: when REDF may take on any behaviour (policy true),
// the implementation Imp2 is no longer sufficiently robust:
// Imp2 ⇓{incomp,outcomp} ⋢ Memory.
func TestFig8CrispIntegrityFailsWithUnreliableREDF(t *testing.T) {
	s := NewCrispPhotoSpace()
	sys := CrispPhotoSystem(s)
	if err := sys.FailModule("REDF"); err != nil {
		t.Fatal(err)
	}
	mem := CrispMemoryRequirement(s)
	if sys.Upholds(mem, PhotoVars.Incomp, PhotoVars.Outcomp) {
		t.Fatal("Imp2 must NOT refine Memory after REDF failure injection")
	}
}

func TestFailureInjectionIsLocalised(t *testing.T) {
	s := NewCrispPhotoSpace()
	orig := CrispPhotoSystem(s)
	failed := orig.Clone()
	if err := failed.FailModule("BWF"); err != nil {
		t.Fatal(err)
	}
	mem := CrispMemoryRequirement(s)
	if !orig.Upholds(mem, PhotoVars.Incomp, PhotoVars.Outcomp) {
		t.Fatal("clone failure injection must not affect the original")
	}
	// BWF only bounds bwbyte ≤ outcomp; the chain incomp ≤ redbyte ≤
	// bwbyte survives, but bwbyte is now unconstrained above outcomp,
	// so incomp can exceed outcomp: integrity is lost.
	if failed.Upholds(mem, PhotoVars.Incomp, PhotoVars.Outcomp) {
		t.Fatal("BWF failure should break integrity")
	}
}

// TestFig8QuantC1Value pins the paper's worked number: a 4096 KB
// input compressed to 1024 KB has reliability 0.96 in c1.
func TestFig8QuantC1Value(t *testing.T) {
	s := NewQuantPhotoSpace()
	c1 := BWFReliability(s)
	got := c1.AtLabels("4096", "1024")
	if math.Abs(got-0.96) > 1e-12 {
		t.Fatalf("c1(4096,1024) = %v, want 0.96", got)
	}
	if got := c1.AtLabels("1024", "512"); got != 1 {
		t.Fatalf("c1(1024,512) = %v, want 1 (≤1MB inputs fully reliable)", got)
	}
}

func TestFig8QuantMeetsMinimumReliability(t *testing.T) {
	s := NewQuantPhotoSpace()
	sys := QuantPhotoSystem(s)
	okReq := MemoryProbRequirement(s, 0.5)
	if !sys.MeetsMin(okReq, PhotoVars.Outcomp, PhotoVars.Incomp) {
		t.Fatal("Imp3 should meet the 0.5 minimum reliability requirement")
	}
	hardReq := MemoryProbRequirement(s, 0.999)
	if sys.MeetsMin(hardReq, PhotoVars.Outcomp, PhotoVars.Incomp) {
		t.Fatal("Imp3 should not meet a 0.999 requirement")
	}
}

func TestQuantReliabilityBlevel(t *testing.T) {
	s := NewQuantPhotoSpace()
	sys := QuantPhotoSystem(s)
	rel := sys.Reliability()
	if rel <= 0.9 || rel > 1 {
		t.Fatalf("best-case composed reliability = %v, want in (0.9, 1]", rel)
	}
	// The best run keeps the image at its smallest flow: verify the
	// blevel is attained by some concrete tuple.
	imp := sys.Implementation()
	attained := false
	imp.ForEach(func(_ core.Assignment, v float64) {
		if v == rel {
			attained = true
		}
	})
	if !attained {
		t.Fatal("blevel should be attained (total order)")
	}
}

func TestBestImplementationSelection(t *testing.T) {
	s := NewQuantPhotoSpace()
	sys := QuantPhotoSystem(s)

	// A cheaper but flakier red filter vs the standard one.
	flaky := core.NewConstraint(s,
		[]core.Variable{PhotoVars.Bwbyte, PhotoVars.Redbyte},
		func(a core.Assignment) float64 {
			if a.Num(PhotoVars.Redbyte) > a.Num(PhotoVars.Bwbyte) {
				return 0
			}
			return 0.5
		})
	alts := []Alternative[float64]{
		{Module: "REDF", Name: "standard", Policy: REDFReliability(s)},
		{Module: "REDF", Name: "flaky", Policy: flaky},
	}
	choice, val, ok := sys.BestImplementation(alts,
		MemoryProbRequirement(s, 0.4), PhotoVars.Outcomp, PhotoVars.Incomp)
	if !ok {
		t.Fatal("expected a feasible implementation")
	}
	if len(choice) != 1 || choice[0].Name != "standard" {
		t.Fatalf("choice = %+v, want the standard red filter", choice)
	}
	if val <= 0.9 {
		t.Fatalf("best reliability = %v, want > 0.9", val)
	}
}

func TestBestImplementationInfeasible(t *testing.T) {
	s := NewQuantPhotoSpace()
	sys := QuantPhotoSystem(s)
	alts := []Alternative[float64]{
		{Module: "REDF", Name: "standard", Policy: REDFReliability(s)},
	}
	_, _, ok := sys.BestImplementation(alts,
		MemoryProbRequirement(s, 0.9999), PhotoVars.Outcomp, PhotoVars.Incomp)
	if ok {
		t.Fatal("no implementation should meet a 0.9999 requirement")
	}
}

func TestBestImplementationUnknownModule(t *testing.T) {
	s := NewQuantPhotoSpace()
	sys := QuantPhotoSystem(s)
	_, _, ok := sys.BestImplementation(
		[]Alternative[float64]{{Module: "NOPE", Name: "x", Policy: core.Top(s)}},
		MemoryProbRequirement(s, 0.1), PhotoVars.Outcomp)
	if ok {
		t.Fatal("unknown module must not succeed")
	}
}

func TestSystemErrors(t *testing.T) {
	s := NewCrispPhotoSpace()
	sys := NewSystem(s)
	if err := sys.AddModule("A", core.Top(s)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddModule("A", core.Top(s)); err == nil {
		t.Error("duplicate module should fail")
	}
	if err := sys.AddModule("B", nil); err == nil {
		t.Error("nil policy should fail")
	}
	if err := sys.ReplaceModule("missing", core.Top(s)); err == nil {
		t.Error("replacing unknown module should fail")
	}
	if err := sys.ReplaceModule("A", nil); err == nil {
		t.Error("replacing with nil policy should fail")
	}
	if err := sys.FailModule("missing"); err == nil {
		t.Error("failing unknown module should fail")
	}
	if got := len(sys.Modules()); got != 1 {
		t.Errorf("modules = %d, want 1", got)
	}
}

func TestRefinesIsReflexiveAndAntitone(t *testing.T) {
	s := NewCrispPhotoSpace()
	sys := CrispPhotoSystem(s)
	imp := sys.Implementation()
	if !Refines(imp, imp, PhotoVars.Incomp, PhotoVars.Outcomp) {
		t.Fatal("refinement must be reflexive")
	}
	// Adding constraints only strengthens the implementation: still a
	// refinement of the weaker requirement.
	stronger := core.Combine(imp, CrispMemoryRequirement(s))
	if !Refines(stronger, imp, PhotoVars.Incomp, PhotoVars.Outcomp) {
		t.Fatal("a strengthened implementation must still refine")
	}
}

func TestInterfaceHidesInternals(t *testing.T) {
	s := NewCrispPhotoSpace()
	sys := CrispPhotoSystem(s)
	iface := sys.Interface(PhotoVars.Incomp, PhotoVars.Outcomp)
	sc := iface.Scope()
	if len(sc) != 2 {
		t.Fatalf("interface scope = %v, want 2 vars", sc)
	}
	for _, v := range sc {
		if v == PhotoVars.Bwbyte || v == PhotoVars.Redbyte {
			t.Fatalf("internal variable %q leaked into the interface", v)
		}
	}
}

func TestWeightedIntegrityVariant(t *testing.T) {
	// The same machinery under a weighted semiring: policies are
	// processing-time budgets, the requirement caps the end-to-end
	// latency.
	sr := semiring.Weighted{}
	s := core.NewSpace[float64](sr)
	stage := s.AddVariable("stage", core.IntDomain(0, 3))
	sys := NewSystem(s)
	if err := sys.AddModule("svc", core.NewConstraint(s, []core.Variable{stage},
		func(a core.Assignment) float64 { return 5 * a.Num(stage) })); err != nil {
		t.Fatal(err)
	}
	// In the weighted order lower cost is BETTER (higher in the
	// lattice), so staying within a budget is the Meets direction:
	// budget ⊑ implementation.
	budget := core.NewConstraint(s, []core.Variable{stage},
		func(a core.Assignment) float64 { return 20 * a.Num(stage) })
	if !sys.MeetsMin(budget, stage) {
		t.Fatal("a 5x-cost service should stay within a 20x budget")
	}
	over := core.NewConstraint(s, []core.Variable{stage},
		func(a core.Assignment) float64 { return 2 * a.Num(stage) })
	if sys.MeetsMin(over, stage) {
		t.Fatal("a 5x-cost service must exceed a 2x budget")
	}
}
