// Package policy implements the capability policies sketched in the
// paper's conclusions: "a web service specification could require
// that, for example, 'you MUST use HTTP Authentication and MAY use
// GZIP compression'". A requirement lists MUST and MAY capabilities;
// a provider offer lists the capabilities it supports. Matching is
// computed with the set-based semiring ⟨P(A),∪,∩,∅,A⟩ of Sec. 4 —
// MUST satisfaction is a crisp inclusion check, MAY coverage a fuzzy
// preference degree — so capability policies compose with the other
// QoS metrics of the framework.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"softsoa/internal/semiring"
)

// Vocabulary is the closed universe of capability names a deployment
// recognises (at most 64, the set-semiring carrier limit).
type Vocabulary struct {
	set *semiring.Set
}

// NewVocabulary returns a vocabulary over the given capability names.
func NewVocabulary(capabilities ...string) (*Vocabulary, error) {
	if len(capabilities) == 0 {
		return nil, fmt.Errorf("policy: empty capability vocabulary")
	}
	if len(capabilities) > 64 {
		return nil, fmt.Errorf("policy: vocabulary exceeds 64 capabilities (%d)", len(capabilities))
	}
	seen := map[string]bool{}
	for _, c := range capabilities {
		if seen[c] {
			return nil, fmt.Errorf("policy: duplicate capability %q", c)
		}
		seen[c] = true
	}
	return &Vocabulary{set: semiring.NewSet(capabilities...)}, nil
}

// Capabilities returns the vocabulary's names.
func (v *Vocabulary) Capabilities() []string {
	return append([]string(nil), v.set.Elements...)
}

// Requirement is a client-side capability policy.
type Requirement struct {
	// Must lists capabilities the provider is required to support.
	Must []string
	// May lists capabilities the client would like; each supported
	// MAY capability raises the preference score.
	May []string
}

// Offer is a provider-side capability declaration.
type Offer struct {
	// Supports lists the provider's capabilities.
	Supports []string
}

// Match is the outcome of evaluating a requirement against an offer.
type Match struct {
	// Satisfied reports whether every MUST capability is supported —
	// the classical-semiring component of the policy value.
	Satisfied bool
	// Preference is the fuzzy degree in [0,1] to which the MAY list
	// is covered (1 when the MAY list is empty: nothing to wish for).
	Preference float64
	// MissingMust lists unsupported MUST capabilities, sorted.
	MissingMust []string
	// MissingMay lists unsupported MAY capabilities, sorted.
	MissingMay []string
}

// Value returns the match as a pair in the Classical × Fuzzy product
// semiring, ready to combine with other policy values: composition of
// services intersects capabilities, so matching a pipeline is the
// semiring product of the per-stage values.
func (m Match) Value() semiring.Pair[bool, float64] {
	return semiring.P(m.Satisfied, m.Preference)
}

// Evaluate matches a requirement against an offer over the
// vocabulary. Unknown capability names are reported as errors —
// silently ignoring them would make a MUST vacuously satisfiable.
func (v *Vocabulary) Evaluate(req Requirement, off Offer) (Match, error) {
	must, err := v.set.Value(req.Must...)
	if err != nil {
		return Match{}, fmt.Errorf("policy: requirement MUST: %w", err)
	}
	may, err := v.set.Value(req.May...)
	if err != nil {
		return Match{}, fmt.Errorf("policy: requirement MAY: %w", err)
	}
	caps, err := v.set.Value(off.Supports...)
	if err != nil {
		return Match{}, fmt.Errorf("policy: offer: %w", err)
	}

	// MUST: crisp inclusion, via the set semiring order must ⊑ caps.
	satisfied := v.set.Leq(must, caps)
	// MAY: fuzzy coverage |may ∩ caps| / |may|.
	pref := 1.0
	if may.Len() > 0 {
		pref = float64(v.set.Times(may, caps).Len()) / float64(may.Len())
	}
	return Match{
		Satisfied:   satisfied,
		Preference:  pref,
		MissingMust: v.names(must &^ caps),
		MissingMay:  v.names(may &^ caps),
	}, nil
}

// CombineOffers intersects several providers' capabilities — the
// capabilities a composed service can guarantee end-to-end (the set
// semiring's ×).
func (v *Vocabulary) CombineOffers(offers ...Offer) (Offer, error) {
	acc := v.set.One()
	for _, o := range offers {
		caps, err := v.set.Value(o.Supports...)
		if err != nil {
			return Offer{}, fmt.Errorf("policy: offer: %w", err)
		}
		acc = v.set.Times(acc, caps)
	}
	return Offer{Supports: v.names(acc)}, nil
}

// Rank orders offers for a requirement: satisfied offers first,
// then by descending MAY preference, ties broken by index order.
// Unsatisfied offers are excluded.
func (v *Vocabulary) Rank(req Requirement, offers []Offer) ([]Match, []int, error) {
	type scored struct {
		m   Match
		idx int
	}
	var ok []scored
	for i, off := range offers {
		m, err := v.Evaluate(req, off)
		if err != nil {
			return nil, nil, err
		}
		if m.Satisfied {
			ok = append(ok, scored{m: m, idx: i})
		}
	}
	sort.SliceStable(ok, func(a, b int) bool {
		return ok[a].m.Preference > ok[b].m.Preference
	})
	ms := make([]Match, len(ok))
	idx := make([]int, len(ok))
	for i, s := range ok {
		ms[i] = s.m
		idx[i] = s.idx
	}
	return ms, idx, nil
}

func (v *Vocabulary) names(b semiring.Bitset) []string {
	out := make([]string, 0, b.Len())
	for _, i := range b.Elems() {
		out = append(out, v.set.Elements[i])
	}
	sort.Strings(out)
	return out
}

// String renders a requirement in the paper's MUST/MAY style.
func (r Requirement) String() string {
	var parts []string
	if len(r.Must) > 0 {
		parts = append(parts, "MUST "+strings.Join(r.Must, ", "))
	}
	if len(r.May) > 0 {
		parts = append(parts, "MAY "+strings.Join(r.May, ", "))
	}
	if len(parts) == 0 {
		return "no capability requirements"
	}
	return strings.Join(parts, "; ")
}
