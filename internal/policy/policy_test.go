package policy

import (
	"strings"
	"testing"
	"testing/quick"

	"softsoa/internal/semiring"
)

func vocab(t *testing.T) *Vocabulary {
	t.Helper()
	v, err := NewVocabulary("http-auth", "gzip", "tls13", "mtls", "json", "xml")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestPaperExample pins the conclusions' example: "you MUST use HTTP
// Authentication and MAY use GZIP compression".
func TestPaperExample(t *testing.T) {
	v := vocab(t)
	req := Requirement{Must: []string{"http-auth"}, May: []string{"gzip"}}

	full, err := v.Evaluate(req, Offer{Supports: []string{"http-auth", "gzip", "xml"}})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Satisfied || full.Preference != 1 {
		t.Fatalf("full offer: %+v", full)
	}

	noGzip, err := v.Evaluate(req, Offer{Supports: []string{"http-auth", "xml"}})
	if err != nil {
		t.Fatal(err)
	}
	if !noGzip.Satisfied || noGzip.Preference != 0 {
		t.Fatalf("no-gzip offer: %+v", noGzip)
	}
	if len(noGzip.MissingMay) != 1 || noGzip.MissingMay[0] != "gzip" {
		t.Fatalf("missing may = %v", noGzip.MissingMay)
	}

	noAuth, err := v.Evaluate(req, Offer{Supports: []string{"gzip"}})
	if err != nil {
		t.Fatal(err)
	}
	if noAuth.Satisfied {
		t.Fatal("missing MUST capability must not satisfy")
	}
	if len(noAuth.MissingMust) != 1 || noAuth.MissingMust[0] != "http-auth" {
		t.Fatalf("missing must = %v", noAuth.MissingMust)
	}
}

func TestMayCoverageIsFractional(t *testing.T) {
	v := vocab(t)
	req := Requirement{May: []string{"gzip", "tls13", "mtls", "json"}}
	m, err := v.Evaluate(req, Offer{Supports: []string{"gzip", "json"}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Satisfied {
		t.Fatal("no MUSTs: always satisfied")
	}
	if m.Preference != 0.5 {
		t.Fatalf("preference = %v, want 0.5", m.Preference)
	}
}

func TestEmptyMayIsFullPreference(t *testing.T) {
	v := vocab(t)
	m, err := v.Evaluate(Requirement{Must: []string{"tls13"}}, Offer{Supports: []string{"tls13"}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preference != 1 {
		t.Fatalf("preference = %v, want 1 (nothing to wish for)", m.Preference)
	}
}

func TestUnknownCapabilityErrors(t *testing.T) {
	v := vocab(t)
	if _, err := v.Evaluate(Requirement{Must: []string{"quantum"}}, Offer{}); err == nil {
		t.Error("unknown MUST should error")
	}
	if _, err := v.Evaluate(Requirement{May: []string{"quantum"}}, Offer{}); err == nil {
		t.Error("unknown MAY should error")
	}
	if _, err := v.Evaluate(Requirement{}, Offer{Supports: []string{"quantum"}}); err == nil {
		t.Error("unknown offer capability should error")
	}
}

func TestVocabularyValidation(t *testing.T) {
	if _, err := NewVocabulary(); err == nil {
		t.Error("empty vocabulary should error")
	}
	if _, err := NewVocabulary("a", "a"); err == nil {
		t.Error("duplicate capability should error")
	}
	big := make([]string, 65)
	for i := range big {
		big[i] = strings.Repeat("c", i+1)
	}
	if _, err := NewVocabulary(big...); err == nil {
		t.Error("oversized vocabulary should error")
	}
	v, err := NewVocabulary("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Capabilities(); len(got) != 2 {
		t.Errorf("capabilities = %v", got)
	}
}

func TestCombineOffersIntersects(t *testing.T) {
	v := vocab(t)
	combined, err := v.CombineOffers(
		Offer{Supports: []string{"http-auth", "gzip", "tls13"}},
		Offer{Supports: []string{"http-auth", "tls13", "json"}},
		Offer{Supports: []string{"http-auth", "tls13", "mtls"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http-auth", "tls13"}
	if len(combined.Supports) != len(want) {
		t.Fatalf("combined = %v, want %v", combined.Supports, want)
	}
	for i := range want {
		if combined.Supports[i] != want[i] {
			t.Fatalf("combined = %v, want %v", combined.Supports, want)
		}
	}
	// Empty combination is the full universe (the semiring One).
	all, err := v.CombineOffers()
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Supports) != 6 {
		t.Fatalf("empty combination = %v", all.Supports)
	}
}

func TestRank(t *testing.T) {
	v := vocab(t)
	req := Requirement{Must: []string{"http-auth"}, May: []string{"gzip", "tls13"}}
	offers := []Offer{
		{Supports: []string{"gzip", "tls13"}},              // unsatisfied
		{Supports: []string{"http-auth"}},                  // pref 0
		{Supports: []string{"http-auth", "gzip", "tls13"}}, // pref 1
		{Supports: []string{"http-auth", "gzip"}},          // pref 0.5
	}
	ms, idx, err := v.Rank(req, offers)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("ranked %d offers, want 3", len(ms))
	}
	if idx[0] != 2 || idx[1] != 3 || idx[2] != 1 {
		t.Fatalf("rank order = %v, want [2 3 1]", idx)
	}
	if ms[0].Preference != 1 || ms[1].Preference != 0.5 || ms[2].Preference != 0 {
		t.Fatalf("preferences = %v %v %v", ms[0].Preference, ms[1].Preference, ms[2].Preference)
	}
}

func TestMatchValueIsProductSemiringElement(t *testing.T) {
	v := vocab(t)
	req := Requirement{Must: []string{"http-auth"}, May: []string{"gzip"}}
	m1, err := v.Evaluate(req, Offer{Supports: []string{"http-auth", "gzip"}})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := v.Evaluate(req, Offer{Supports: []string{"http-auth"}})
	if err != nil {
		t.Fatal(err)
	}
	sr := semiring.NewProduct[bool, float64](semiring.Classical{}, semiring.Fuzzy{})
	comb := sr.Times(m1.Value(), m2.Value())
	if !comb.First {
		t.Fatal("both satisfied: combined must be satisfied")
	}
	if comb.Second != 0 {
		t.Fatalf("combined preference = %v, want min = 0", comb.Second)
	}
}

func TestQuickMustMonotone(t *testing.T) {
	// Adding capabilities to an offer never breaks satisfaction and
	// never lowers preference.
	v, err := NewVocabulary("c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7")
	if err != nil {
		t.Fatal(err)
	}
	all := v.Capabilities()
	pick := func(mask uint8) []string {
		var out []string
		for i := 0; i < 8; i++ {
			if mask&(1<<i) != 0 {
				out = append(out, all[i])
			}
		}
		return out
	}
	f := func(mustMask, mayMask, offMask, extraMask uint8) bool {
		req := Requirement{Must: pick(mustMask), May: pick(mayMask)}
		base, err := v.Evaluate(req, Offer{Supports: pick(offMask)})
		if err != nil {
			return false
		}
		bigger, err := v.Evaluate(req, Offer{Supports: pick(offMask | extraMask)})
		if err != nil {
			return false
		}
		if base.Satisfied && !bigger.Satisfied {
			return false
		}
		return bigger.Preference >= base.Preference
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequirementString(t *testing.T) {
	r := Requirement{Must: []string{"http-auth"}, May: []string{"gzip"}}
	if got := r.String(); got != "MUST http-auth; MAY gzip" {
		t.Errorf("String = %q", got)
	}
	if got := (Requirement{}).String(); got != "no capability requirements" {
		t.Errorf("empty String = %q", got)
	}
}
