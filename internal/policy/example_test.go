package policy_test

import (
	"fmt"

	"softsoa/internal/policy"
)

// The paper's conclusions sketch capability policies: "you MUST use
// HTTP Authentication and MAY use GZIP compression".
func ExampleVocabulary_Evaluate() {
	v, err := policy.NewVocabulary("http-auth", "gzip", "tls13")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	req := policy.Requirement{Must: []string{"http-auth"}, May: []string{"gzip", "tls13"}}
	fmt.Println(req)

	m, err := v.Evaluate(req, policy.Offer{Supports: []string{"http-auth", "gzip"}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("satisfied:", m.Satisfied)
	fmt.Println("preference:", m.Preference)
	fmt.Println("missing MAY:", m.MissingMay)
	// Output:
	// MUST http-auth; MAY gzip, tls13
	// satisfied: true
	// preference: 0.5
	// missing MAY: [tls13]
}

// A composed service only guarantees the capabilities every component
// offers: offers combine by set intersection (the semiring ×).
func ExampleVocabulary_CombineOffers() {
	v, err := policy.NewVocabulary("http-auth", "gzip", "tls13")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	combined, err := v.CombineOffers(
		policy.Offer{Supports: []string{"http-auth", "gzip"}},
		policy.Offer{Supports: []string{"http-auth", "tls13"}},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(combined.Supports)
	// Output:
	// [http-auth]
}
