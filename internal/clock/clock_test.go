package clock

import (
	"testing"
	"time"
)

func TestNilClockIsANoOp(t *testing.T) {
	var c Clock
	if !c.Now().IsZero() {
		t.Error("nil clock Now() should be the zero time")
	}
	if d := c.Since(time.Unix(100, 0)); d != 0 {
		t.Errorf("nil clock Since = %v, want 0", d)
	}
}

func TestFixed(t *testing.T) {
	at := time.Unix(1000, 0)
	c := Fixed(at)
	if !c.Now().Equal(at) || !c.Now().Equal(at) {
		t.Error("Fixed clock must always report the same instant")
	}
	if d := c.Since(at.Add(-3 * time.Second)); d != 3*time.Second {
		t.Errorf("Since = %v, want 3s", d)
	}
}

func TestStepped(t *testing.T) {
	start := time.Unix(0, 0)
	c := Stepped(start, time.Second)
	first := c.Now()
	second := c.Now()
	if !first.Equal(start) {
		t.Errorf("first reading = %v, want %v", first, start)
	}
	if got := second.Sub(first); got != time.Second {
		t.Errorf("step = %v, want 1s", got)
	}
	// Since reads the clock once more, advancing it again.
	if d := c.Since(start); d != 2*time.Second {
		t.Errorf("Since = %v, want 2s", d)
	}
}

func TestWallIsRealTime(t *testing.T) {
	before := time.Now()
	got := Wall.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Wall.Now() = %v outside [%v, %v]", got, before, after)
	}
}
