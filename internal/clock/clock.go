// Package clock provides an injectable time source so that the pure
// solver layers (semiring, core, solver, sccp, integrity, coalition)
// never read the wall clock directly. The determinism analyzer in
// internal/analysis forbids time.Now/time.Since in those packages;
// code that wants elapsed-time telemetry accepts a Clock instead and
// callers inject Wall (production) or Fixed/Stepped (tests).
package clock

import "time"

// Clock is a time source: a function returning the current instant.
// The zero (nil) Clock is valid and permanently reports the zero
// time, which makes timing a strict no-op for callers that do not
// care about telemetry.
type Clock func() time.Time

// Wall is the real wall clock.
var Wall Clock = time.Now

// Now returns the current instant, or the zero time for a nil Clock.
func (c Clock) Now() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c()
}

// Since returns the duration elapsed since start, or zero for a nil
// Clock. Mirrors time.Since for injected clocks.
func (c Clock) Since(start time.Time) time.Duration {
	if c == nil {
		return 0
	}
	return c().Sub(start)
}

// Fixed returns a Clock frozen at t.
func Fixed(t time.Time) Clock {
	return func() time.Time { return t }
}

// Stepped returns a Clock that starts at t and advances by step on
// every reading, giving tests deterministic non-zero durations.
func Stepped(t time.Time, step time.Duration) Clock {
	cur := t
	return func() time.Time {
		now := cur
		cur = cur.Add(step)
		return now
	}
}
