package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a trace ID from a broker
// client to the daemon (and echoed back on the response), so one
// negotiation's spans line up across processes.
const TraceHeader = "X-Softsoa-Trace"

// traceSeq numbers the traces minted by this process; combined with a
// per-process start stamp it yields IDs unique across restarts without
// a randomness dependency.
var traceSeq atomic.Uint64

var processStamp = struct {
	once sync.Once
	v    uint64
}{}

func stamp() uint64 {
	processStamp.once.Do(func() {
		processStamp.v = uint64(time.Now().UnixNano())
	})
	return processStamp.v
}

// Trace is one request's span collection. The zero value is unusable;
// construct with NewTrace. A nil *Trace is a valid no-op receiver for
// every method, so instrumented code paths need no nil checks.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord // guarded by mu
}

// NewTrace returns a trace with the given ID; an empty ID mints a
// process-unique one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = fmt.Sprintf("%016x-%08x", stamp(), traceSeq.Add(1))
	}
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanRecord is one completed (or still-open) pipeline stage.
type SpanRecord struct {
	// Name is the stage, e.g. "parse" or "nmsccp:providerX".
	Name string `json:"name"`
	// StartMicros is the stage's start offset from the trace start.
	StartMicros int64 `json:"start_us"`
	// DurationMicros is the stage's duration (0 until End).
	DurationMicros int64 `json:"duration_us"`
}

// Span is a live handle on one recorded stage.
type Span struct {
	tr    *Trace
	idx   int
	start time.Time
}

// StartSpan opens a named span on the trace. On a nil trace it
// returns a no-op span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{Name: name, StartMicros: now.Sub(t.start).Microseconds()})
	idx := len(t.spans) - 1
	t.mu.Unlock()
	return &Span{tr: t, idx: idx, start: now}
}

// End closes the span, recording its duration. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start).Microseconds()
	s.tr.mu.Lock()
	s.tr.spans[s.idx].DurationMicros = d
	s.tr.mu.Unlock()
}

// Spans returns a copy of the recorded spans, in start order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

type traceKey struct{}

// ContextWithTrace attaches the trace to the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's trace; nil when none is attached
// (or ctx itself is nil), so the result chains safely into StartSpan.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a span on the context's trace; a no-op span when
// the request is untraced.
func StartSpan(ctx context.Context, name string) *Span {
	return TraceFrom(ctx).StartSpan(name)
}

// TraceRecord is one trace in the debug dump.
type TraceRecord struct {
	ID string `json:"id"`
	// Start is the trace's wall-clock start.
	Start time.Time    `json:"start"`
	Spans []SpanRecord `json:"spans"`
}

// record snapshots the trace.
func (t *Trace) record() TraceRecord {
	return TraceRecord{ID: t.id, Start: t.start, Spans: t.Spans()}
}

// TraceLog is a fixed-capacity ring buffer of completed traces,
// newest overwriting oldest. Safe for concurrent use.
type TraceLog struct {
	mu    sync.Mutex
	buf   []TraceRecord // guarded by mu
	next  int           // guarded by mu; ring write cursor
	total int64         // guarded by mu; traces ever recorded
}

// NewTraceLog returns a ring holding up to capacity traces (minimum
// 1).
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{buf: make([]TraceRecord, 0, capacity)}
}

// Record appends the trace's snapshot to the ring. Nil traces and
// traces without spans are skipped — scrape and health traffic would
// otherwise wash the interesting negotiations out of the buffer.
func (l *TraceLog) Record(t *Trace) {
	if t == nil {
		return
	}
	rec := t.record()
	if len(rec.Spans) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, rec)
		return
	}
	l.buf[l.next] = rec
	l.next = (l.next + 1) % cap(l.buf)
}

// Snapshot returns the retained traces, oldest first.
func (l *TraceLog) Snapshot() []TraceRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TraceRecord, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Total returns how many traces have ever been recorded (retained or
// evicted).
func (l *TraceLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// traceDump is the JSON document served by the debug endpoint.
type traceDump struct {
	Total  int64         `json:"total"`
	Traces []TraceRecord `json:"traces"`
}

// WriteJSON renders the retained traces (oldest first) as one JSON
// document.
func (l *TraceLog) WriteJSON(w io.Writer) error {
	l.mu.Lock()
	dump := traceDump{Total: l.total}
	dump.Traces = append(dump.Traces, l.buf[l.next:]...)
	dump.Traces = append(dump.Traces, l.buf[:l.next]...)
	l.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
