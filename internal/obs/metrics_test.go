package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every instrument kind
// with fixed values, so the exposition is byte-stable.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("broker_requests_total", "Total requests.").Add(42)
	r.Gauge("broker_in_flight", "Requests currently in flight.").Set(3)
	r.Gauge("broker_load", "Synthetic load factor.").Set(0.25)

	rv := r.CounterVec("broker_route_total", "Requests by route and status.", "route", "status")
	rv.With("/v1/negotiations", "200").Add(7)
	rv.With("/v1/negotiations", "409").Add(2)
	rv.With("/v1/providers", "200").Add(11)

	gv := r.GaugeVec("broker_breaker_state", "Breaker state by provider.", "provider")
	gv.With("alpha").Set(0)
	gv.With("beta").Set(2)

	h := r.Histogram("broker_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	hv := r.HistogramVec("broker_blevel", "Negotiated blevel.", []float64{1, 5, 10}, "mode")
	hv.With("single").Observe(7)
	hv.With("single").Observe(0.5)

	r.CounterFunc("broker_faults_total", "Injected faults.", func() float64 { return 9 })
	r.CounterFuncs("broker_faults_by_kind_total", "Injected faults by kind.", "kind",
		map[string]func() float64{
			"latency": func() float64 { return 4 },
			"drop":    func() float64 { return 5 },
		})
	r.GaugeFunc("broker_uptime_ratio", "Synthetic uptime ratio.", func() float64 { return 0.999 })

	ev := r.CounterVec("broker_escapes_total", "Label escaping fixture.", "path")
	ev.With(`C:\tmp "x"`).Inc()
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := goldenRegistry()
	var first strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.String() != first.String() {
			t.Fatalf("exposition changed between identical scrapes (iteration %d)", i)
		}
	}
}

func TestCounterAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestReregisterMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "a counter")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestVecLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("y_total", "labelled", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With with one value for two labels did not panic")
		}
	}()
	v.With("only-one")
}

func TestVecReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("z_total", "labelled", "route")
	a := v.With("/v1/health")
	b := v.With("/v1/health")
	if a != b {
		t.Fatal("With returned distinct counters for identical labels")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared series value = %d, want 1", b.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1) // on the bound: counts in le="1"
	h.Observe(1.5)
	h.Observe(9) // overflow bucket
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 12 {
		t.Fatalf("Sum = %g, want 12", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="2"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_sum 12`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestRegistryRaceStress hammers one registry from many goroutines —
// concurrent series creation, updates of every instrument kind, and
// scrapes — and then checks the totals. Run under -race this is the
// registry's thread-safety proof.
func TestRegistryRaceStress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "stress counter")
	g := r.Gauge("stress_gauge", "stress gauge")
	h := r.Histogram("stress_seconds", "stress histogram", nil)
	v := r.CounterVec("stress_by_worker_total", "stress labelled", "worker")

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 100)
				v.With(label).Inc()
				if i%500 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Errorf("scrape: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %g, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := v.With(string(rune('a' + w))).Value(); got != iters {
			t.Errorf("worker %d counter = %d, want %d", w, got, iters)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {1, "1"}, {-3, "-3"}, {42, "42"},
		{0.25, "0.25"}, {0.999, "0.999"}, {1e16, "1e+16"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// The instrument benchmarks back the EXPERIMENTS E19 entry: the hot
// request-path operations must stay a handful of nanoseconds and
// allocation-free, so observing the broker cannot perturb what it
// measures.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench",
		[]float64{0.001, 0.01, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

// BenchmarkCounterVecWith measures the labelled path including the
// series lookup, the cost a handler pays when it cannot pre-resolve
// its series (the broker pre-resolves where the labels are static).
func BenchmarkCounterVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_labelled_total", "bench", "route", "status")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("/v1/negotiations", "200").Inc()
	}
}

// TestHistogramQuantile drives the bucket-interpolated estimator over
// the shapes that matter: mass confined to one bucket, mass spread
// over several, ranks landing in the +Inf tail (clamped to the largest
// finite bound), the first bucket (interpolated down to zero), and an
// empty histogram (NaN).
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	tests := []struct {
		name    string
		observe []float64
		q       float64
		want    float64
	}{
		// Four observations, all in the (0,1] bucket: rank q*4
		// interpolates linearly inside [0,1].
		{"exact bucket p50", []float64{0.2, 0.4, 0.6, 0.8}, 0.5, 0.5},
		{"exact bucket p25", []float64{0.2, 0.4, 0.6, 0.8}, 0.25, 0.25},
		{"exact bucket p100", []float64{0.2, 0.4, 0.6, 0.8}, 1, 1},
		// One observation per bucket: the median rank (2 of 4) sits at
		// the top of the second bucket.
		{"spread p50", []float64{0.5, 1.5, 3, 10}, 0.5, 2},
		// Rank 3.6 of 4 lands in the +Inf bucket: clamp to the largest
		// finite bound.
		{"inf tail p90", []float64{0.5, 1.5, 3, 10}, 0.9, 4},
		{"all inf tail", []float64{10, 20, 30}, 0.5, 4},
		// q=0 is the infimum of the first populated bucket.
		{"q zero", []float64{0.5, 1.5}, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := NewRegistry().Histogram("quantile_test_seconds", "test", bounds)
			for _, v := range tt.observe {
				h.Observe(v)
			}
			if got := h.Quantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
			}
		})
	}
	t.Run("empty histogram", func(t *testing.T) {
		h := NewRegistry().Histogram("quantile_empty_seconds", "test", bounds)
		if got := h.Quantile(0.5); !math.IsNaN(got) {
			t.Errorf("Quantile on empty histogram = %g, want NaN", got)
		}
	})
	t.Run("q clamped", func(t *testing.T) {
		h := NewRegistry().Histogram("quantile_clamp_seconds", "test", bounds)
		h.Observe(0.5)
		if got := h.Quantile(-1); got != 0 {
			t.Errorf("Quantile(-1) = %g, want 0", got)
		}
		if got := h.Quantile(2); math.Abs(got-1) > 1e-12 {
			t.Errorf("Quantile(2) = %g, want 1", got)
		}
	})
}
