package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc")
	if tr.ID() != "abc" {
		t.Fatalf("ID = %q, want abc", tr.ID())
	}
	s1 := tr.StartSpan("parse")
	s1.End()
	s2 := tr.StartSpan("precheck")
	s2.End()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "parse" || spans[1].Name != "precheck" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestNewTraceMintsUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTrace("").ID()
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty minted ID %q", id)
		}
		seen[id] = true
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	sp := tr.StartSpan("x") // must not panic
	sp.End()
	if tr.Spans() != nil {
		t.Fatal("nil trace has spans")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context produced a trace")
	}
	tr := NewTrace("ctx-test")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %v, want %v", got, tr)
	}
	sp := StartSpan(ctx, "stage")
	sp.End()
	if spans := tr.Spans(); len(spans) != 1 || spans[0].Name != "stage" {
		t.Fatalf("spans = %+v", spans)
	}
	// Untraced context: convenience helpers are no-ops, not panics.
	StartSpan(context.Background(), "orphan").End()
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(string(rune('a' + i)))
		tr.StartSpan("s").End()
		l.Record(tr)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d traces, want 3", len(snap))
	}
	// Oldest first: c, d, e survive after a and b are evicted.
	for i, want := range []string{"c", "d", "e"} {
		if snap[i].ID != want {
			t.Errorf("snap[%d].ID = %q, want %q", i, snap[i].ID, want)
		}
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
}

func TestTraceLogSkipsEmptyAndNil(t *testing.T) {
	l := NewTraceLog(4)
	l.Record(nil)
	l.Record(NewTrace("no-spans"))
	if got := len(l.Snapshot()); got != 0 {
		t.Fatalf("retained %d traces, want 0", got)
	}
}

func TestTraceLogWriteJSON(t *testing.T) {
	l := NewTraceLog(2)
	tr := NewTrace("json-1")
	tr.StartSpan("parse").End()
	l.Record(tr)
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Total  int64 `json:"total"`
		Traces []struct {
			ID    string `json:"id"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(b.String()), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if dump.Total != 1 || len(dump.Traces) != 1 || dump.Traces[0].ID != "json-1" ||
		len(dump.Traces[0].Spans) != 1 || dump.Traces[0].Spans[0].Name != "parse" {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("race")
	l := NewTraceLog(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.StartSpan("s").End()
				l.Record(tr)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8*200 {
		t.Fatalf("spans = %d, want %d", got, 8*200)
	}
}
