// Package obs is the broker's observability layer: a stdlib-only
// metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus text-format exposition), lightweight request tracing
// carried on context.Context and propagated over the X-Softsoa-Trace
// header, and an in-memory ring buffer of completed traces served as
// JSON from the broker's debug endpoint.
//
// Design constraints, in order: the hot paths the instruments sit on
// (per-request middleware, per-negotiation recording) must stay
// lock-cheap — every instrument update is one or two atomic
// operations, with locks confined to series creation and scrape time —
// and the exposition must be deterministic (families and series are
// rendered in sorted order) so it can be golden-file tested.
//
// The instruments are sanctioned telemetry sinks for the pure layers:
// counter adds commute, so recording into them from worker goroutines
// cannot make a solver's *output* scheduling-dependent, and the
// determinism analyzer's import allowlist admits this package (alone
// among the impure ones) into the pure layers.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bounds for request latencies,
// in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Counter is a monotonically increasing count. All methods are safe
// for concurrent use; updates are single atomic adds.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits in
// one atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bounds are immutable after
// construction; Observe is two atomic adds plus one CAS loop for the
// float sum.
type Histogram struct {
	bounds []float64 // immutable after construction
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation inside the bucket that holds
// the target rank, the same estimator Prometheus's histogram_quantile
// uses. The first bucket interpolates down to zero; a rank that lands
// in the implicit +Inf bucket clamps to the largest finite bound (the
// estimate cannot exceed what the buckets resolve). An empty
// histogram returns NaN. The counts are read live, so a concurrent
// Observe can shift the estimate by one rank — acceptable for the
// reporting paths this serves.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		n := float64(h.counts[i].Load())
		if n > 0 && cum+n >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (bound-lower)*((rank-cum)/n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one labelled instrument inside a family.
type series struct {
	labels []string // label values, parallel to family.labels
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // func-backed counter/gauge
}

// family is one named metric family: a HELP/TYPE pair and its series,
// keyed by joined label values.
type family struct {
	name   string
	help   string
	typ    string   // "counter", "gauge" or "histogram"
	labels []string // label names; empty for unlabelled families
	bounds []float64

	mu     sync.Mutex
	series map[string]*series // guarded by mu
}

// Registry is a set of metric families with deterministic text-format
// exposition. Instrument lookups lock only the owning family and are
// cached by the callers (the broker resolves its instruments once at
// construction), so steady-state updates never contend on the
// registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates the named family or returns it when already
// present with the same shape. A name reused with a different type or
// label set is a programming error and panics.
func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

const keySep = "\x1f"

// get returns (creating if needed) the family's series for the label
// values.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants labels %v, got %d values", f.name, f.labels, len(values)))
	}
	key := strings.Join(values, keySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]string(nil), values...)}
		switch f.typ {
		case "counter":
			s.c = &Counter{}
		case "gauge":
			s.g = &Gauge{}
		case "histogram":
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", nil, nil).get(nil).c
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", nil, nil).get(nil).g
}

// Histogram registers (or returns) an unlabelled histogram with the
// given bucket upper bounds (nil means DefBuckets). Bounds must be
// sorted ascending; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, "histogram", nil, bounds).get(nil).h
}

// CounterVec is a counter family with fixed label names.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels, nil)}
}

// With returns the counter for the label values (created on first
// use).
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a gauge family with fixed label names.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels, nil)}
}

// With returns the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec is a histogram family with fixed label names and
// shared bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labelled histogram family
// (nil bounds means DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{r.register(name, help, "histogram", labels, bounds)}
}

// With returns the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// CounterFunc registers a counter family whose single series is read
// from fn at scrape time — the bridge for components that already
// keep their own atomic counts (e.g. the fault injector).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "counter", nil, nil)
	s := f.get(nil)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// CounterFuncs registers a counter family with one label and one
// callback-backed series per label value. The callbacks are read at
// scrape time.
func (r *Registry) CounterFuncs(name, help, label string, fns map[string]func() float64) {
	f := r.register(name, help, "counter", []string{label}, nil)
	keys := make([]string, 0, len(fns))
	for k := range fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.get([]string{k})
		f.mu.Lock()
		s.fn = fns[k]
		f.mu.Unlock()
	}
}

// GaugeFunc registers a gauge family whose single series is read from
// fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil, nil)
	s := f.get(nil)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Families returns the number of registered metric families.
func (r *Registry) Families() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.families)
}

// snapshotFamilies returns the families sorted by name.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// snapshotSeries returns the family's series sorted by label values.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].labels, keySep) < strings.Join(out[j].labels, keySep)
	})
	return out
}

// WritePrometheus renders every family in the Prometheus text format
// (v0.0.4), deterministically: families sorted by name, series by
// label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.snapshotSeries() {
			switch {
			case f.typ == "histogram":
				writeHistogram(&b, f, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.labels, ""), formatFloat(s.fn()))
			case f.typ == "counter":
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, s.labels, ""), s.c.Value())
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.labels, ""), formatFloat(s.g.Value()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets,
// sum and count.
func writeHistogram(b *strings.Builder, f *family, s *series) {
	cum := int64(0)
	for i, bound := range s.h.bounds {
		cum += s.h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, s.labels, formatFloat(bound)), cum)
	}
	cum += s.h.counts[len(s.h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labels, ""), formatFloat(s.h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.labels, ""), s.h.Count())
}

// labelString renders {k="v",…}, appending le when non-empty; it
// returns "" for a label-free series.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, double quote and newline exactly as
		// the text format requires.
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: integral
// values without a decimal point.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving the text-format exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore errcheck a failed scrape write means the scraper is gone; nothing to do
		_ = r.WritePrometheus(w)
	})
}
