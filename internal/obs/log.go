package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger builds the repo's shared structured logger: a log/slog
// logger whose handler decorates every record with the context's trace
// id, so broker request logs, breaker transitions, failover decisions
// and journal warnings all correlate with /v1/debug/traces. The text
// handler is the human default; jsonFormat selects JSON lines
// (brokerd -log-json).
func NewLogger(w io.Writer, jsonFormat bool, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(traceHandler{h})
}

// NopLogger returns a logger that discards everything — the default
// for embedded servers that did not opt into logging.
func NopLogger() *slog.Logger {
	return slog.New(traceHandler{slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)})})
}

// traceHandler decorates records with the trace id carried by the
// context (ContextWithTrace), preserving its own type across
// WithAttrs/WithGroup so the decoration survives logger.With chains.
type traceHandler struct{ slog.Handler }

func (t traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if tr := TraceFrom(ctx); tr != nil {
		r.AddAttrs(slog.String("trace", tr.ID()))
	}
	return t.Handler.Handle(ctx, r)
}

func (t traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{t.Handler.WithAttrs(attrs)}
}

func (t traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{t.Handler.WithGroup(name)}
}
