package journal

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
)

func tr(step int, rule string) TransitionRecord {
	return TransitionRecord{Step: step, Rule: rule, BlevelAfter: "0", Consistent: true}
}

// TestRingDropAccounting: a full ring overwrites oldest-first, counts
// every loss, keeps Seq continuous, and reports through onDrop.
func TestRingDropAccounting(t *testing.T) {
	j := New(3, Meta{ID: "ring"})
	var notified int64
	j.SetOnDrop(func(n int64) { notified += n })
	j.BeginSegment(Segment{Label: "s"})

	for i := 1; i <= 5; i++ {
		j.RecordTransition(tr(i, "R1 Tell"))
	}

	if got := j.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
	if notified != 2 {
		t.Errorf("onDrop saw %d, want 2", notified)
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("ring retained %d events, want 3", len(evs))
	}
	// Oldest first, with journal-wide sequence numbers surviving the wrap.
	for k, ev := range evs {
		if want := k + 3; ev.Seq != want || ev.Transition.Step != want {
			t.Errorf("event %d: seq=%d step=%d, want %d", k, ev.Seq, ev.Transition.Step, want)
		}
	}
}

// TestAddDropped: machine-side losses reach both the counter and the
// hook without touching the ring.
func TestAddDropped(t *testing.T) {
	j := New(4, Meta{})
	var notified int64
	j.SetOnDrop(func(n int64) { notified += n })
	j.AddDropped(0)
	j.AddDropped(-3)
	j.AddDropped(7)
	if got := j.Dropped(); got != 7 {
		t.Errorf("Dropped() = %d, want 7", got)
	}
	if notified != 7 {
		t.Errorf("onDrop saw %d, want 7", notified)
	}
	if len(j.Events()) != 0 {
		t.Error("AddDropped must not synthesise events")
	}
}

// TestSegments: events are tagged with the open segment, and
// EndSegment records the outcome on the right one.
func TestSegments(t *testing.T) {
	j := New(0, Meta{ID: "segs", Kind: "test"})
	if j.Capacity() != DefaultCapacity {
		t.Errorf("Capacity() = %d, want DefaultCapacity", j.Capacity())
	}

	a := j.BeginSegment(Segment{Label: "a"})
	j.RecordTransition(tr(1, "R1 Tell"))
	j.EndSegment("succeeded", "c", "2")

	b := j.BeginSegment(Segment{Label: "b"})
	j.NoteSegment("second run")
	j.RecordSearch(SearchRecord{Kind: "expand", Node: 10})
	j.EndSegment("stuck", "", "")

	if a != 0 || b != 1 {
		t.Fatalf("segment indices = %d, %d", a, b)
	}
	segs := j.Segments()
	if len(segs) != 2 {
		t.Fatalf("got %d segments", len(segs))
	}
	if segs[0].Status != "succeeded" || segs[0].FinalBlevel != "2" {
		t.Errorf("segment a = %+v", segs[0])
	}
	if segs[1].Note != "second run" || segs[1].Status != "stuck" {
		t.Errorf("segment b = %+v", segs[1])
	}
	evs := j.Events()
	if len(evs) != 2 || evs[0].Seg != 0 || evs[1].Seg != 1 {
		t.Errorf("event segment tags wrong: %+v", evs)
	}
	if evs[0].Kind != "transition" || evs[1].Kind != "solver" {
		t.Errorf("event kinds = %q, %q", evs[0].Kind, evs[1].Kind)
	}
}

// TestJSONLRoundTrip: write → read → write is byte-identical, and the
// reconstruction preserves meta, segments, events and drop counts.
func TestJSONLRoundTrip(t *testing.T) {
	j := New(8, Meta{ID: "rt", Kind: "negotiation", Semiring: "weighted", Trace: "abc123"})
	j.BeginSegment(Segment{Label: "negotiate:p1", Program: "main :: success.", Seed: 1, Fuel: 200})
	j.RecordTransition(TransitionRecord{
		Step: 1, Rule: "R1 Tell", Agent: "tell(c)→ success",
		Delta: "c(x){⟨0⟩→0}", BlevelBefore: "0", BlevelAfter: "2", Consistent: true,
	})
	j.RecordSearch(SearchRecord{Kind: "incumbent", Node: 4, Value: "2.5", Reason: "improved"})
	j.EndSegment("succeeded", "c(x){⟨0⟩→0}", "2")
	j.AddDropped(3)

	var out bytes.Buffer
	if err := j.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	j2, err := ReadJSONL(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if j2.Meta() != j.Meta() {
		t.Errorf("meta = %+v, want %+v", j2.Meta(), j.Meta())
	}
	if j2.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", j2.Dropped())
	}
	if len(j2.Events()) != 2 || len(j2.Segments()) != 1 {
		t.Fatalf("reconstructed %d events / %d segments", len(j2.Events()), len(j2.Segments()))
	}
	var out2 bytes.Buffer
	if err := j2.WriteJSONL(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Error("JSONL round trip is not byte-identical")
	}
}

// TestReadJSONLErrors: malformed streams fail with positioned errors
// instead of yielding half-built journals.
func TestReadJSONLErrors(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"empty", "", "no header line"},
		{"event before header", `{"t":"transition","i":0,"seq":1}`, "before journal header"},
		{"unknown type", "{\"t\":\"journal\",\"v\":1}\n{\"t\":\"bogus\"}", "unknown line type"},
		{"bad json", "{\"t\":\"journal\",\"v\":1}\nnot json", "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(c.input))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestWriteJSONDocument: the single-object form carries the same data
// and never emits null arrays.
func TestWriteJSONDocument(t *testing.T) {
	j := New(4, Meta{ID: "doc"})
	var out bytes.Buffer
	if err := j.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "null") {
		t.Errorf("empty journal document contains null arrays:\n%s", s)
	}
	if !strings.Contains(s, `"id": "doc"`) {
		t.Errorf("document missing meta:\n%s", s)
	}
}

// TestContext: ContextWith/FromContext round-trip, and an untouched
// context yields nil (recording disabled).
func TestContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("background context should carry no journal")
	}
	j := New(1, Meta{})
	ctx := ContextWith(context.Background(), j)
	if FromContext(ctx) != j {
		t.Error("FromContext did not return the attached journal")
	}
}

// TestConcurrentRecording exercises the ring under parallel writers;
// meaningful with -race. Sequence numbers must be unique and the drop
// arithmetic must balance.
func TestConcurrentRecording(t *testing.T) {
	j := New(16, Meta{})
	j.BeginSegment(Segment{Label: "par"})
	done := make(chan struct{})
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				j.RecordTransition(tr(i, fmt.Sprintf("w%d", w)))
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	evs := j.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	if got := j.Dropped(); got != writers*per-16 {
		t.Errorf("Dropped() = %d, want %d", got, writers*per-16)
	}
	seen := map[int]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Errorf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}
