// Package journal is the semantic flight recorder: a bounded,
// structured event stream capturing what the nmsccp machine and the
// solver actually did — not how long it took (that is internal/obs's
// job), but which transition rules fired, on which agents, with which
// store deltas and consistency levels, and how the branch-and-bound
// search moved its incumbent.
//
// The paper's evaluation is entirely semantic: Examples 1-3 of Fig. 7
// are exact rule sequences with exact blevels. A journal makes the
// same evidence available for production negotiations: every
// transition carries the rule id (R1 Tell … R10 P-call, plus the
// timed tick), the acting sub-agent, the told/retracted constraint in
// canonical form, the blevel before and after, and a consistency
// flag. Journals contain no timestamps, so recording the same program
// with the same seed yields byte-identical JSONL — which is what
// makes cmd/softsoa-replay's golden-fixture verification possible.
//
// The package sits below the pure layers on purpose: it defines only
// plain record types and the Recorder/SearchRecorder interfaces, and
// imports no other softsoa package, so internal/sccp and
// internal/solver can emit events without the journal pulling
// effectful dependencies into the pure import closure (the
// determinism analyzer admits exactly this package there).
//
// A Journal is an append-only ring: when the configured capacity is
// reached the oldest events are dropped and accounted for in
// Dropped(), optionally reported through an OnDrop hook (the broker
// feeds it into the journal_events_dropped_total counter). Segments
// subdivide a journal into independently replayable machine runs —
// one per provider negotiation, renegotiation, or recorded program —
// each carrying the nmsccp source, seed and fuel needed to re-execute
// it deterministically.
package journal
