package journal

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TransitionRecord is one applied nmsccp transition as the machine
// saw it. All fields are plain strings/ints so the pure layers can
// emit records without this package knowing their types.
type TransitionRecord struct {
	// Step is the 1-based transition index within the emitting
	// machine run (not the journal: a journal may hold several runs).
	Step int `json:"step"`
	// Rule names the applied rule, e.g. "R1 Tell" or
	// "R7 Retract (via R10 P-call)".
	Rule string `json:"rule"`
	// Agent is the acting sub-agent's printed form.
	Agent string `json:"agent"`
	// Delta is the canonical form of the constraint the action told,
	// retracted or updated with; empty for actions that only observe
	// the store (ask/nask) or for timed ticks.
	Delta string `json:"delta,omitempty"`
	// Check is the transition's threshold annotation (e.g.
	// "→[a1=4,a2=1]"); empty for unrestricted transitions.
	Check string `json:"check,omitempty"`
	// BlevelBefore and BlevelAfter are σ⇓∅ around the transition,
	// rendered by the machine's semiring.
	BlevelBefore string `json:"blevel_before"`
	BlevelAfter  string `json:"blevel_after"`
	// Consistent reports whether the store stayed above the semiring
	// Zero after the transition (a Zero store satisfies nothing).
	Consistent bool `json:"consistent"`
	// Cut marks a transition that committed a nondeterministic sum
	// (rule R5 discarded the remaining branches).
	Cut bool `json:"cut,omitempty"`
}

// Recorder receives machine transitions. Implementations must be
// safe for use from a single machine goroutine; *Journal is safe for
// concurrent use across machines.
type Recorder interface {
	RecordTransition(TransitionRecord)
}

// SearchRecord is one sampled solver search event.
type SearchRecord struct {
	// Kind is "expand", "incumbent", "prune" or "propagate".
	Kind string `json:"kind"`
	// Node is the emitting searcher's node counter (per worker under
	// solver.WithWorkers, so numbers are per-worker-local there).
	Node int64 `json:"node,omitempty"`
	// Depth is the search depth at the event.
	Depth int `json:"depth,omitempty"`
	// Value carries the event's semiring value (the bound at an
	// expansion, the incumbent's level, a propagated c∅), formatted
	// by the solver's semiring.
	Value string `json:"value,omitempty"`
	// Reason qualifies prunes ("bound", "lookahead-bound") and
	// propagate verdicts ("viable", "doomed").
	Reason string `json:"reason,omitempty"`
}

// SearchRecorder receives solver search telemetry.
type SearchRecorder interface {
	RecordSearch(SearchRecord)
}

// Meta identifies a journal.
type Meta struct {
	// ID is the broker's journal key (sla-N, neg-N, comp-N) or a
	// caller-chosen name for recorded programs.
	ID string `json:"id,omitempty"`
	// Trace is the obs trace id of the request that produced the
	// journal, correlating it with the span ring and request logs.
	Trace string `json:"trace,omitempty"`
	// Kind is "negotiation", "renegotiation", "composition" or "run".
	Kind string `json:"kind,omitempty"`
	// Semiring names the carrier ("weighted", "fuzzy", …).
	Semiring string `json:"semiring,omitempty"`
}

// Segment is one independently replayable unit inside a journal:
// a single machine run (one provider negotiation, one renegotiation,
// one recorded program) or one solver phase.
type Segment struct {
	// Label names the segment, e.g. "negotiate:providerX".
	Label string `json:"label"`
	// Program is the nmsccp surface syntax whose execution the
	// segment's transition events record; empty when the segment is
	// not replayable (e.g. a precheck that skipped the machine).
	Program string `json:"program,omitempty"`
	// Seed is the machine's scheduler seed.
	Seed int64 `json:"seed,omitempty"`
	// Fuel is the machine's step budget.
	Fuel int `json:"fuel,omitempty"`
	// Setup counts leading transitions of Program that reconstruct
	// pre-existing store state (renegotiations replay onto a store
	// built by earlier segments); a verifier executes them but only
	// compares events after them.
	Setup int `json:"setup,omitempty"`
	// Note carries free-form context (precheck verdicts, skip
	// reasons).
	Note string `json:"note,omitempty"`
	// Status is the machine's final status ("succeeded", "stuck", …).
	Status string `json:"status,omitempty"`
	// FinalStore is the canonical form of σ after the run.
	FinalStore string `json:"final_store,omitempty"`
	// FinalBlevel is σ⇓∅ after the run.
	FinalBlevel string `json:"final_blevel,omitempty"`
}

// Event is one journal line: a transition or a solver record, tagged
// with the segment it belongs to and a journal-wide sequence number.
type Event struct {
	// Kind is "transition" or "solver".
	Kind string `json:"t"`
	// Seg indexes the segment the event belongs to.
	Seg int `json:"i"`
	// Seq is the 1-based journal-wide sequence number; it keeps
	// counting across drops, so gaps reveal where the ring wrapped.
	Seq int `json:"seq"`

	Transition *TransitionRecord `json:"tr,omitempty"`
	Search     *SearchRecord     `json:"solver,omitempty"`
}

// DefaultCapacity bounds a journal's event ring when the caller does
// not choose one.
const DefaultCapacity = 2048

// Journal is a bounded, concurrency-safe flight-recorder stream. It
// implements both Recorder and SearchRecorder so one journal can
// capture a negotiation's machine runs and its solver phases.
type Journal struct {
	mu       sync.Mutex
	meta     Meta      // guarded by mu
	segments []Segment // guarded by mu
	current  int       // index of the open segment; guarded by mu

	capacity int
	events   []Event // ring storage; guarded by mu
	head     int     // next overwrite position once full; guarded by mu
	seq      int     // events ever recorded; guarded by mu
	dropped  int64   // events overwritten by the ring; guarded by mu

	onDrop func(int64) // called outside hot paths but under mu
}

// New returns a journal with the given event capacity (values < 1
// select DefaultCapacity).
func New(capacity int, meta Meta) *Journal {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Journal{meta: meta, capacity: capacity, current: -1}
}

// Meta returns the journal's identity.
func (j *Journal) Meta() Meta {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.meta
}

// SetID names the journal after its identity is known (the broker
// only mints sla-N once a negotiation succeeds).
func (j *Journal) SetID(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.meta.ID = id
}

// SetSemiring records the journal's carrier name.
func (j *Journal) SetSemiring(name string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.meta.Semiring = name
}

// SetOnDrop installs a hook invoked with the number of events dropped
// whenever the ring overwrites or AddDropped reports machine-side
// drops. Used by the broker to feed journal_events_dropped_total.
func (j *Journal) SetOnDrop(fn func(int64)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.onDrop = fn
}

// BeginSegment opens a new segment and returns its index. Events
// recorded afterwards belong to it.
func (j *Journal) BeginSegment(seg Segment) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.segments = append(j.segments, seg)
	j.current = len(j.segments) - 1
	return j.current
}

// NoteSegment annotates the open segment.
func (j *Journal) NoteSegment(note string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.current >= 0 {
		j.segments[j.current].Note = note
	}
}

// EndSegment closes the open segment with its outcome.
func (j *Journal) EndSegment(status, finalStore, finalBlevel string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.current < 0 {
		return
	}
	s := &j.segments[j.current]
	s.Status, s.FinalStore, s.FinalBlevel = status, finalStore, finalBlevel
}

// Segments returns a copy of the segments recorded so far.
func (j *Journal) Segments() []Segment {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Segment(nil), j.segments...)
}

// RecordTransition implements Recorder.
func (j *Journal) RecordTransition(r TransitionRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.push(Event{Kind: "transition", Transition: &r})
}

// RecordSearch implements SearchRecorder.
func (j *Journal) RecordSearch(r SearchRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.push(Event{Kind: "solver", Search: &r})
}

// push appends an event to the ring. Callers hold j.mu.
func (j *Journal) push(ev Event) {
	j.seq++
	ev.Seq = j.seq
	ev.Seg = j.current
	if len(j.events) < j.capacity {
		j.events = append(j.events, ev)
		return
	}
	j.events[j.head] = ev
	j.head = (j.head + 1) % j.capacity
	j.dropped++
	if j.onDrop != nil {
		j.onDrop(1)
	}
}

// AddDropped accounts for events dropped before they reached the
// journal (e.g. a machine's own trace ring wrapping).
func (j *Journal) AddDropped(n int64) {
	if n <= 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dropped += n
	if j.onDrop != nil {
		j.onDrop(n)
	}
}

// Capacity returns the event ring's bound.
func (j *Journal) Capacity() int {
	return j.capacity
}

// Dropped returns how many events were lost to capacity bounds.
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.events))
	if len(j.events) == j.capacity {
		out = append(out, j.events[j.head:]...)
		out = append(out, j.events[:j.head]...)
		return out
	}
	return append(out, j.events...)
}

// JSONL line wrappers. Every line is a JSON object whose "t" field
// discriminates: "journal" (header), "segment", "transition"/"solver"
// (events), "end" (trailer with drop accounting). The stream contains
// no timestamps, so identical runs serialise to identical bytes.

type headerLine struct {
	T string `json:"t"`
	V int    `json:"v"`
	Meta
	Capacity int `json:"capacity"`
}

type segmentLine struct {
	T string `json:"t"`
	I int    `json:"i"`
	Segment
}

type endLine struct {
	T       string `json:"t"`
	Events  int    `json:"events"`
	Dropped int64  `json:"dropped"`
}

// WriteJSONL serialises the journal: header, then each segment line
// followed by its events, then the trailer.
func (j *Journal) WriteJSONL(w io.Writer) error {
	j.mu.Lock()
	meta := j.meta
	segments := append([]Segment(nil), j.segments...)
	dropped := j.dropped
	capacity := j.capacity
	j.mu.Unlock()
	events := j.Events()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerLine{T: "journal", V: 1, Meta: meta, Capacity: capacity}); err != nil {
		return err
	}
	for i, seg := range segments {
		if err := enc.Encode(segmentLine{T: "segment", I: i, Segment: seg}); err != nil {
			return err
		}
		for _, ev := range events {
			if ev.Seg != i {
				continue
			}
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
	}
	if err := enc.Encode(endLine{T: "end", Events: len(events), Dropped: dropped}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJSONL reconstructs a journal from its JSONL serialisation.
func ReadJSONL(r io.Reader) (*Journal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var j *Journal
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", lineNo, err)
		}
		if probe.T == "journal" {
			var h headerLine
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", lineNo, err)
			}
			j = New(h.Capacity, h.Meta)
			continue
		}
		if j == nil {
			return nil, fmt.Errorf("journal: line %d: %q before journal header", lineNo, probe.T)
		}
		switch probe.T {
		case "segment":
			var s segmentLine
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", lineNo, err)
			}
			j.BeginSegment(s.Segment)
		case "transition", "solver":
			var ev Event
			if err := json.Unmarshal(raw, &ev); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", lineNo, err)
			}
			j.mu.Lock()
			// Replay the recorded seq/seg verbatim instead of reassigning.
			if len(j.events) < j.capacity {
				j.events = append(j.events, ev)
			} else {
				j.events[j.head] = ev
				j.head = (j.head + 1) % j.capacity
			}
			if ev.Seq > j.seq {
				j.seq = ev.Seq
			}
			j.mu.Unlock()
		case "end":
			var e endLine
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", lineNo, err)
			}
			j.mu.Lock()
			j.dropped = e.Dropped
			j.mu.Unlock()
		default:
			return nil, fmt.Errorf("journal: line %d: unknown line type %q", lineNo, probe.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if j == nil {
		return nil, fmt.Errorf("journal: no header line")
	}
	return j, nil
}

// Document is the journal's single-object JSON form, served by the
// broker's GET /v1/negotiations/{id}/journal endpoint.
type Document struct {
	Journal  Meta      `json:"journal"`
	Segments []Segment `json:"segments"`
	Events   []Event   `json:"events"`
	Dropped  int64     `json:"dropped"`
}

// WriteJSON serialises the journal as one JSON document.
func (j *Journal) WriteJSON(w io.Writer) error {
	j.mu.Lock()
	doc := Document{Journal: j.meta, Segments: append([]Segment(nil), j.segments...), Dropped: j.dropped}
	j.mu.Unlock()
	doc.Events = j.Events()
	if doc.Segments == nil {
		doc.Segments = []Segment{}
	}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ctxKey keys the journal in a context.
type ctxKey struct{}

// ContextWith attaches the journal to the context.
func ContextWith(ctx context.Context, j *Journal) context.Context {
	return context.WithValue(ctx, ctxKey{}, j)
}

// FromContext returns the context's journal, or nil when the request
// is not being recorded. A nil *Journal is not a usable recorder;
// callers gate on the nil check.
func FromContext(ctx context.Context) *Journal {
	j, _ := ctx.Value(ctxKey{}).(*Journal)
	return j
}
