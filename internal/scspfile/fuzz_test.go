package scspfile

import "testing"

// FuzzParse checks the SCSP file parser never panics and that
// accepted problems are well-formed enough to query.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fig1Src,
		"semiring fuzzy\nvar X { a }\ncon X\nc(X): a=0.5",
		"semiring probabilistic\nvar X { a b c }\ncon X",
		"semiring weighted\nvar X { a b }\ncon X\nc(X): a=inf b=3",
		"semiring weighted\nvar X{a}\ncon X\nc(X",
		"# nothing",
		"semiring weighted\nvar X { a b }\nvar Y { a b }\ncon X Y\nc(X,Y): a,a=1",
		"semiring weighted\nvar X { a }\ncon X\nc(X): a=-1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip()
		}
		p, err := Parse(src)
		if err != nil {
			return
		}
		if p.Scsp == nil || p.SemiringName == "" {
			t.Fatalf("accepted problem is malformed: %+v", p)
		}
		// Querying the blevel must not panic on any accepted problem
		// (cap the joint size first).
		size := 1
		for _, v := range p.Scsp.Space().Variables() {
			size *= len(p.Scsp.Space().Domain(v))
			if size > 1<<12 {
				t.Skip()
			}
		}
		_ = p.Scsp.Blevel()
	})
}
