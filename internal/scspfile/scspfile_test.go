package scspfile

import (
	"strings"
	"testing"

	"softsoa/internal/solver"
)

// fig1Src is the paper's Fig. 1 problem in the file format.
const fig1Src = `
# Fig. 1 of the paper: a weighted CSP.
semiring weighted
var X { a b }
var Y { a b }
con X
c1(X): a=1 b=9
c2(X,Y): a,a=5 a,b=1 b,a=2 b,b=2
c3(Y): a=5 b=5
`

func TestParseFig1(t *testing.T) {
	p, err := Parse(fig1Src)
	if err != nil {
		t.Fatal(err)
	}
	if p.SemiringName != "weighted" {
		t.Errorf("semiring = %q", p.SemiringName)
	}
	res := solver.Exhaustive(p.Scsp)
	if res.Blevel != 7 {
		t.Errorf("blevel = %v, want 7", res.Blevel)
	}
	sol := p.Scsp.Sol()
	if got := sol.AtLabels("a"); got != 7 {
		t.Errorf("Sol⟨a⟩ = %v, want 7", got)
	}
	if got := sol.AtLabels("b"); got != 16 {
		t.Errorf("Sol⟨b⟩ = %v, want 16", got)
	}
}

func TestParseFuzzy(t *testing.T) {
	src := `
semiring fuzzy
var X { lo hi }
con X
pref(X): lo=0.3 hi=0.9
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Exhaustive(p.Scsp).Blevel; got != 0.9 {
		t.Errorf("blevel = %v", got)
	}
}

func TestUnlistedTuplesGetOne(t *testing.T) {
	src := `
semiring probabilistic
var X { a b c }
con X
p(X): a=0.5
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Exhaustive(p.Scsp).Blevel; got != 1 {
		t.Errorf("blevel = %v, want 1 (unlisted b/c default to One)", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no semiring":          "var X { a }\ncon X",
		"unknown semiring":     "semiring lexicographic\nvar X { a }\ncon X",
		"semiring twice":       "semiring fuzzy\nsemiring fuzzy\nvar X { a }\ncon X",
		"var before semiring":  "var X { a }\nsemiring fuzzy\ncon X",
		"bad var line":         "semiring fuzzy\nvar X a b\ncon X",
		"empty domain":         "semiring fuzzy\nvar X { }\ncon X",
		"dup var":              "semiring fuzzy\nvar X { a }\nvar X { a }\ncon X",
		"unknown con":          "semiring fuzzy\nvar X { a }\ncon Y",
		"no con":               "semiring fuzzy\nvar X { a }",
		"unknown scope":        "semiring fuzzy\nvar X { a }\ncon X\nc(Y): a=1",
		"empty scope":          "semiring fuzzy\nvar X { a }\ncon X\nc(): a=1",
		"bad entry":            "semiring fuzzy\nvar X { a }\ncon X\nc(X): a",
		"bad value":            "semiring fuzzy\nvar X { a }\ncon X\nc(X): a=9",
		"dup tuple":            "semiring fuzzy\nvar X { a }\ncon X\nc(X): a=0.5 a=0.6",
		"dup constraint":       "semiring fuzzy\nvar X { a }\ncon X\nc(X): a=0.5\nc(X): a=0.5",
		"no colon":             "semiring fuzzy\nvar X { a }\ncon X\nbogus line here",
		"head without parens":  "semiring fuzzy\nvar X { a }\ncon X\nc: a=1",
		"nameless var":         "semiring fuzzy\nvar { a }\ncon X",
		"semiring usage":       "semiring\nvar X { a }\ncon X",
		"con before semiring":  "con X\nsemiring fuzzy\nvar X { a }",
		"cons before semiring": "c(X): a=1\nsemiring fuzzy\nvar X { a }\ncon X",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWeightedInfValue(t *testing.T) {
	src := `
semiring weighted
var X { a b }
con X
c(X): a=inf b=3
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := solver.Exhaustive(p.Scsp)
	if res.Blevel != 3 {
		t.Errorf("blevel = %v, want 3", res.Blevel)
	}
	if len(res.Best) != 1 || res.Best[0].Assignment.Label("X") != "b" {
		t.Errorf("best = %+v", res.Best)
	}
}

func TestTupleWhitespaceNormalisation(t *testing.T) {
	// Tuples in binary constraints may not contain spaces (fields are
	// whitespace-split), but labels are trimmed around commas.
	src := strings.Join([]string{
		"semiring fuzzy",
		"var X { a }",
		"var Y { b }",
		"con X",
		"c(X,Y): a,b=0.4",
	}, "\n")
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Exhaustive(p.Scsp).Blevel; got != 0.4 {
		t.Errorf("blevel = %v, want 0.4", got)
	}
}

func TestDuplicateScopeVariableRejected(t *testing.T) {
	src := `
semiring weighted
var X { a b }
con X
c(X,X): a,a=1
`
	if _, err := Parse(src); err == nil {
		t.Fatal("duplicate scope variable must be a parse error, not a panic")
	}
}
