// Package scspfile parses the textual SCSP format consumed by
// cmd/scspsolve. A problem file looks like:
//
//	semiring weighted
//	var X { a b }
//	var Y { a b }
//	con X
//	c1(X): a=1 b=9
//	c2(X,Y): a,a=5 a,b=1 b,a=2 b,b=2
//	c3(Y): a=5 b=5
//
// Lines starting with '#' are comments. Tuples not listed in a
// constraint get the semiring One (no preference). Supported
// semirings: weighted, fuzzy, probabilistic.
package scspfile

import (
	"fmt"
	"strings"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// Problem is a parsed SCSP file.
type Problem struct {
	// SemiringName is the declared semiring.
	SemiringName string
	// Scsp is the constructed problem.
	Scsp *core.Problem[float64]
}

// Parse parses the file contents.
func Parse(src string) (*Problem, error) {
	var (
		sr       semiring.Semiring[float64]
		parser   semiring.ValueParser[float64]
		srName   string
		space    *core.Space[float64]
		conVars  []core.Variable
		cons     []*core.Constraint[float64]
		seenCons = map[string]bool{}
	)
	pick := func(name string) error {
		switch strings.ToLower(name) {
		case "weighted":
			w := semiring.Weighted{}
			sr, parser, srName = w, w, "weighted"
		case "fuzzy":
			f := semiring.Fuzzy{}
			sr, parser, srName = f, f, "fuzzy"
		case "probabilistic":
			p := semiring.Probabilistic{}
			sr, parser, srName = p, p, "probabilistic"
		default:
			return fmt.Errorf("scspfile: unknown semiring %q", name)
		}
		space = core.NewSpace[float64](sr)
		return nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("scspfile: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case fields[0] == "semiring":
			if len(fields) != 2 {
				return nil, errf("usage: semiring <name>")
			}
			if space != nil {
				return nil, errf("semiring must be declared once, first")
			}
			if err := pick(fields[1]); err != nil {
				return nil, errf("%v", err)
			}
		case fields[0] == "var":
			if space == nil {
				return nil, errf("declare the semiring before variables")
			}
			// var NAME { v1 v2 ... }
			rest := strings.TrimSpace(strings.TrimPrefix(line, "var"))
			open := strings.Index(rest, "{")
			close := strings.LastIndex(rest, "}")
			if open < 0 || close < open {
				return nil, errf("usage: var NAME { v1 v2 ... }")
			}
			name := strings.TrimSpace(rest[:open])
			if name == "" {
				return nil, errf("variable needs a name")
			}
			labels := strings.Fields(rest[open+1 : close])
			if len(labels) == 0 {
				return nil, errf("variable %q needs a non-empty domain", name)
			}
			if space.HasVariable(core.Variable(name)) {
				return nil, errf("variable %q declared twice", name)
			}
			space.AddVariable(core.Variable(name), core.LabelDomain(labels...))
		case fields[0] == "con":
			if space == nil {
				return nil, errf("declare the semiring before con")
			}
			for _, v := range fields[1:] {
				if !space.HasVariable(core.Variable(v)) {
					return nil, errf("con variable %q not declared", v)
				}
				conVars = append(conVars, core.Variable(v))
			}
		default:
			// Constraint: name(V1,V2): t1=v t2=v ...
			if space == nil {
				return nil, errf("declare the semiring before constraints")
			}
			colon := strings.Index(line, ":")
			if colon < 0 {
				return nil, errf("unrecognised line %q", line)
			}
			head := strings.TrimSpace(line[:colon])
			body := strings.TrimSpace(line[colon+1:])
			op := strings.Index(head, "(")
			cp := strings.LastIndex(head, ")")
			if op < 0 || cp < op {
				return nil, errf("constraint head %q needs (scope)", head)
			}
			cname := strings.TrimSpace(head[:op])
			if seenCons[cname] {
				return nil, errf("constraint %q declared twice", cname)
			}
			seenCons[cname] = true
			var scope []core.Variable
			seenScope := map[string]bool{}
			for _, v := range strings.Split(head[op+1:cp], ",") {
				v = strings.TrimSpace(v)
				if v == "" {
					continue
				}
				if !space.HasVariable(core.Variable(v)) {
					return nil, errf("scope variable %q not declared", v)
				}
				if seenScope[v] {
					return nil, errf("scope variable %q repeated in %q", v, cname)
				}
				seenScope[v] = true
				scope = append(scope, core.Variable(v))
			}
			if len(scope) == 0 {
				return nil, errf("constraint %q has empty scope", cname)
			}
			prefs := map[string]float64{}
			for _, ent := range strings.Fields(body) {
				eq := strings.LastIndex(ent, "=")
				if eq < 0 {
					return nil, errf("entry %q is not tuple=value", ent)
				}
				val, err := parser.ParseValue(ent[eq+1:])
				if err != nil {
					return nil, errf("%v", err)
				}
				key := normTuple(ent[:eq])
				if _, dup := prefs[key]; dup {
					return nil, errf("tuple %q listed twice", ent[:eq])
				}
				prefs[key] = val
			}
			sc := append([]core.Variable(nil), scope...)
			cons = append(cons, core.NewConstraint(space, sc, func(a core.Assignment) float64 {
				labels := make([]string, len(sc))
				for i, v := range sc {
					labels[i] = a.Label(v)
				}
				if v, ok := prefs[normTuple(strings.Join(labels, ","))]; ok {
					return v
				}
				return sr.One()
			}))
		}
	}
	if space == nil {
		return nil, fmt.Errorf("scspfile: no semiring declared")
	}
	if len(conVars) == 0 {
		return nil, fmt.Errorf("scspfile: no con (variables of interest) declared")
	}
	p := core.NewProblem(space, conVars...)
	p.Add(cons...)
	return &Problem{SemiringName: srName, Scsp: p}, nil
}

func normTuple(t string) string {
	parts := strings.Split(t, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return strings.Join(parts, ",")
}
