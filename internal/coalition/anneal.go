package coalition

import (
	"math"
	"math/rand"
	"sort"

	"softsoa/internal/semiring"
	"softsoa/internal/trust"
)

// AnnealParams tunes the simulated-annealing solver.
type AnnealParams struct {
	// Seed drives all randomness; runs are deterministic per seed.
	Seed int64
	// Steps is the number of proposed moves (default 20·n²).
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule
	// (defaults 0.25 → 0.001, matched to objectives in [0,1]).
	StartTemp float64
	EndTemp   float64
}

func (p *AnnealParams) defaults(n int) {
	if p.Steps <= 0 {
		p.Steps = 20 * n * n
	}
	if p.StartTemp <= 0 {
		p.StartTemp = 0.25
	}
	if p.EndTemp <= 0 || p.EndTemp >= p.StartTemp {
		p.EndTemp = 0.001
	}
}

// Anneal solves coalition formation by simulated annealing over
// partitions: the move set relocates one member to another coalition
// (or to a fresh singleton when the cap allows), accepting
// objective-improving moves always and worsening moves with the
// Metropolis probability under a geometric cooling schedule. It
// tracks the best *stable* partition seen; if none is found the
// grand coalition (always stable) is returned. Incomplete but
// scales far beyond the Bell-number reach of Exact.
func Anneal(net *trust.Network, comp trust.Composer, params AnnealParams, opts ...Option) Result {
	o := buildOptions(opts)
	start := o.clock.Now()
	n := net.Size()
	params.defaults(n)
	rng := rand.New(rand.NewSource(params.Seed))

	// Start from the grand coalition when capped tightly, otherwise
	// from a random cap-respecting partition.
	assign := make([]int, n) // member → coalition id
	numCoalitions := 1
	if o.maxCoalitions == 0 || o.maxCoalitions > 1 {
		limit := n
		if o.maxCoalitions > 0 {
			limit = o.maxCoalitions
		}
		numCoalitions = 1 + rng.Intn(limit)
		for i := range assign {
			assign[i] = rng.Intn(numCoalitions)
		}
	}

	toPartition := func() Partition {
		blocks := map[int]Coalition{}
		for i, b := range assign {
			blocks[b] = blocks[b].With(i)
		}
		// Emit blocks in sorted-id order: ranging over the map directly
		// would make the partition's block order depend on map
		// iteration order across runs with the same seed.
		ids := make([]int, 0, len(blocks))
		for id := range blocks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		p := make(Partition, 0, len(ids))
		for _, id := range ids {
			p = append(p, blocks[id])
		}
		return p
	}

	cur := toPartition()
	curObj := Objective(net, cur, comp)

	best := Result{Objective: -1}
	consider := func(p Partition, obj float64) {
		if obj <= best.Objective {
			return
		}
		if !Stable(net, p, comp) {
			return
		}
		best.Objective = obj
		best.Partition = append(Partition(nil), p...)
		best.Stable = true
	}
	consider(cur, curObj)

	cooling := math.Pow(params.EndTemp/params.StartTemp, 1/float64(params.Steps))
	temp := params.StartTemp
	for step := 0; step < params.Steps; step++ {
		best.Explored++
		k := rng.Intn(n)
		old := assign[k]
		// Candidate target: an existing coalition id or a fresh one.
		limit := n
		if o.maxCoalitions > 0 {
			limit = o.maxCoalitions
		}
		target := rng.Intn(limit)
		if target == old {
			temp *= cooling
			continue
		}
		assign[k] = target
		cand := toPartition()
		candObj := Objective(net, cand, comp)
		delta := candObj - curObj
		if delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
			cur, curObj = cand, candObj
			consider(cur, curObj)
		} else {
			assign[k] = old
		}
		temp *= cooling
	}

	if best.Partition == nil {
		grand := Partition{semiring.Bitset(1)<<uint(n) - 1}
		best.Partition = grand
		best.Objective = Objective(net, grand, comp)
		best.Stable = true
	}
	best.Elapsed = o.clock.Since(start)
	return best
}
