package coalition

import "softsoa/internal/trust"

// Fig9Network builds a concrete instance of the seven-component trust
// network of Fig. 9. The paper draws the topology but gives no
// scores; this instance has two natural communities — {x1,x2,x3,x4}
// and {x5,x6,x7} — with high intra-community and low inter-community
// trust, so the expected best stable partition under the min and avg
// composers is exactly the two communities.
func Fig9Network() *trust.Network {
	n := trust.NewNetwork("x1", "x2", "x3", "x4", "x5", "x6", "x7")
	set := func(from, to string, v float64) {
		if err := n.SetByName(from, to, v); err != nil {
			panic(err) // unreachable: names are fixed above
		}
	}
	communityA := []string{"x1", "x2", "x3", "x4"}
	communityB := []string{"x5", "x6", "x7"}
	// Deterministic, slightly asymmetric intra-community scores.
	intraScore := func(i, j int) float64 { return 0.80 + 0.03*float64((i+2*j)%5) }
	interScore := func(i, j int) float64 { return 0.10 + 0.02*float64((i+j)%4) }
	for i, a := range communityA {
		for j, b := range communityA {
			if a != b {
				set(a, b, intraScore(i, j))
			}
		}
	}
	for i, a := range communityB {
		for j, b := range communityB {
			if a != b {
				set(a, b, intraScore(i+4, j+4))
			}
		}
	}
	for i, a := range communityA {
		for j, b := range communityB {
			set(a, b, interScore(i, j+4))
			set(b, a, interScore(j+4, i))
		}
	}
	return n
}

// Fig10Network builds a blocking-coalition witness in the spirit of
// Fig. 10: with the partition {x1,x2,x3} / {x4,x5,x6,x7}, member x4
// trusts C1 = {x1,x2,x3} far more than its own coalition-mates, and
// C1's (avg-composed) trustworthiness rises by admitting x4 — so the
// two coalitions block and the partition is not stable.
func Fig10Network() *trust.Network {
	n := trust.NewNetwork("x1", "x2", "x3", "x4", "x5", "x6", "x7")
	set := func(from, to string, v float64) {
		if err := n.SetByName(from, to, v); err != nil {
			panic(err) // unreachable: names are fixed above
		}
	}
	c1 := []string{"x1", "x2", "x3"}
	c2rest := []string{"x5", "x6", "x7"}
	for _, a := range c1 {
		for _, b := range c1 {
			if a != b {
				set(a, b, 0.85)
			}
		}
	}
	for _, a := range c2rest {
		for _, b := range c2rest {
			if a != b {
				set(a, b, 0.6)
			}
		}
	}
	// x4 strongly trusts C1 and is strongly trusted back (so C1 gains
	// by admitting it), while barely trusting its own coalition.
	for _, b := range c1 {
		set("x4", b, 0.95)
		set(b, "x4", 0.95)
	}
	for _, b := range c2rest {
		set("x4", b, 0.2)
		set(b, "x4", 0.3)
	}
	// Weak cross links between C1 and the rest of C2.
	for _, a := range c1 {
		for _, b := range c2rest {
			set(a, b, 0.15)
			set(b, a, 0.15)
		}
	}
	return n
}
