package coalition

import (
	"testing"

	"softsoa/internal/semiring"
	"softsoa/internal/trust"
)

func TestTrustworthinessDef3(t *testing.T) {
	n := trust.NewNetwork("a", "b")
	mustSet(t, n, "a", "b", 0.8)
	mustSet(t, n, "b", "a", 0.6)
	c := semiring.BitsetOf(0, 1)
	// Ordered pairs: (a,a)=1, (a,b)=0.8, (b,a)=0.6, (b,b)=1.
	if got := Trustworthiness(n, c, trust.Min); got != 0.6 {
		t.Errorf("min T = %v, want 0.6", got)
	}
	if got := Trustworthiness(n, c, trust.Avg); got != 0.85 {
		t.Errorf("avg T = %v, want 0.85", got)
	}
	if got := Trustworthiness(n, c, trust.Max); got != 1 {
		t.Errorf("max T = %v, want 1", got)
	}
	// Singleton: only the self-trust pair.
	if got := Trustworthiness(n, semiring.BitsetOf(0), trust.Min); got != 1 {
		t.Errorf("singleton T = %v, want 1", got)
	}
	if got := Trustworthiness(n, 0, trust.Min); got != 1 {
		t.Errorf("empty T = %v, want 1", got)
	}
}

func mustSet(t *testing.T, n *trust.Network, from, to string, v float64) {
	t.Helper()
	if err := n.SetByName(from, to, v); err != nil {
		t.Fatal(err)
	}
}

func TestFig10BlockingCoalitions(t *testing.T) {
	n := Fig10Network()
	// C1 = {x1,x2,x3} (indices 0..2), C2 = {x4..x7} (indices 3..6).
	c1 := semiring.BitsetOf(0, 1, 2)
	c2 := semiring.BitsetOf(3, 4, 5, 6)
	if !Blocking(n, c1, c2, trust.Avg) {
		t.Fatal("Fig. 10: (C1, C2) must be blocking — x4 prefers C1 and C1 gains")
	}
	if Stable(n, Partition{c1, c2}, trust.Avg) {
		t.Fatal("Fig. 10 partition must not be stable")
	}
	// The repaired partition with x4 moved to C1 is stable.
	moved := Partition{c1.With(3), c2.Without(3)}
	if !Stable(n, moved, trust.Avg) {
		t.Fatal("moving x4 into C1 should stabilise the partition")
	}
}

func TestGrandCoalitionAlwaysStable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		n := trust.Random(6, 1, seed)
		grand := Partition{semiring.Bitset(1<<6 - 1)}
		if !Stable(n, grand, trust.Min) || !Stable(n, grand, trust.Avg) {
			t.Fatalf("seed %d: grand coalition must be stable", seed)
		}
	}
}

func TestValidate(t *testing.T) {
	n := trust.Random(4, 1, 1)
	good := Partition{semiring.BitsetOf(0, 1), semiring.BitsetOf(2, 3)}
	if err := Validate(n, good); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	for name, bad := range map[string]Partition{
		"overlap": {semiring.BitsetOf(0, 1), semiring.BitsetOf(1, 2, 3)},
		"gap":     {semiring.BitsetOf(0, 1), semiring.BitsetOf(2)},
		"empty":   {semiring.BitsetOf(0, 1, 2, 3), 0},
	} {
		if err := Validate(n, bad); err == nil {
			t.Errorf("%s: invalid partition accepted", name)
		}
	}
}

func TestExactFindsCommunitiesInFig9(t *testing.T) {
	n := Fig9Network()
	res := Exact(n, trust.Min, WithMaxCoalitions(2))
	if !res.Stable {
		t.Fatal("exact result must be stable")
	}
	if err := Validate(n, res.Partition); err != nil {
		t.Fatal(err)
	}
	if len(res.Partition) != 2 {
		t.Fatalf("expected the two communities, got %d coalitions: %v",
			len(res.Partition), res)
	}
	want := map[Coalition]bool{
		semiring.BitsetOf(0, 1, 2, 3): true,
		semiring.BitsetOf(4, 5, 6):    true,
	}
	for _, c := range res.Partition {
		if !want[c] {
			t.Fatalf("unexpected coalition %v in %v", c.Elems(), res)
		}
	}
	if res.Objective <= 0.7 {
		t.Errorf("objective = %v, want > 0.7 (intra trust floor is 0.8)", res.Objective)
	}
}

func TestExactBeatsOrMatchesBaselines(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		n := trust.Random(6, 2, seed)
		exact := Exact(n, trust.Min, WithMaxCoalitions(3))
		greedy := Greedy(n, trust.Min, WithMaxCoalitions(3))
		random := RandomBaseline(n, trust.Min, 50, seed, WithMaxCoalitions(3))
		if err := Validate(n, exact.Partition); err != nil {
			t.Fatalf("seed %d: exact invalid: %v", seed, err)
		}
		if err := Validate(n, greedy.Partition); err != nil {
			t.Fatalf("seed %d: greedy invalid: %v", seed, err)
		}
		if err := Validate(n, random.Partition); err != nil {
			t.Fatalf("seed %d: random invalid: %v", seed, err)
		}
		if random.Stable && exact.Objective < random.Objective {
			t.Errorf("seed %d: exact %v below stable random %v", seed, exact.Objective, random.Objective)
		}
		if greedy.Stable && exact.Objective < greedy.Objective {
			t.Errorf("seed %d: exact %v below stable greedy %v", seed, exact.Objective, greedy.Objective)
		}
	}
}

func TestSCSPEncodingAgreesWithDirect(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		n := trust.Random(4, 2, seed)
		direct := Exact(n, trust.Min, WithMaxCoalitions(2))
		encoded, err := SolveViaSCSP(n, trust.Min, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !encoded.Stable {
			t.Fatalf("seed %d: SCSP result not stable: %v", seed, encoded)
		}
		if err := Validate(n, encoded.Partition); err != nil {
			t.Fatalf("seed %d: SCSP result invalid: %v", seed, err)
		}
		if direct.Objective != encoded.Objective {
			t.Errorf("seed %d: objectives differ: direct %v, SCSP %v",
				seed, direct.Objective, encoded.Objective)
		}
	}
}

func TestSCSPEncodingRejectsLargeNetworks(t *testing.T) {
	n := trust.Random(6, 1, 1)
	if _, _, err := EncodeSCSP(n, trust.Min, 0); err == nil {
		t.Fatal("encoding must reject networks beyond the powerset cap")
	}
	if _, err := SolveViaSCSP(n, trust.Min, 0); err == nil {
		t.Fatal("SolveViaSCSP must propagate the cap error")
	}
}

func TestComposerChoiceChangesPartition(t *testing.T) {
	// Ablation: under Max the grand coalition looks perfect (some
	// pair always trusts fully via self-trust), while Min punishes
	// weak links — the partitions differ on a community network.
	n := Fig9Network()
	minRes := Exact(n, trust.Min, WithMaxCoalitions(2))
	maxRes := Exact(n, trust.Max, WithMaxCoalitions(2))
	if maxRes.Objective != 1 {
		t.Errorf("max-composed objective = %v, want 1 (self-trust)", maxRes.Objective)
	}
	if minRes.Objective >= maxRes.Objective {
		t.Errorf("min objective %v should be below max objective %v",
			minRes.Objective, maxRes.Objective)
	}
}

func TestResultString(t *testing.T) {
	n := trust.Random(3, 1, 1)
	res := Exact(n, trust.Min)
	if res.String() == "" {
		t.Error("empty result string")
	}
}

func TestExactSingleMember(t *testing.T) {
	n := trust.NewNetwork("solo")
	res := Exact(n, trust.Min)
	if len(res.Partition) != 1 || res.Partition[0] != semiring.BitsetOf(0) {
		t.Fatalf("partition = %v", res.Partition)
	}
	if res.Objective != 1 {
		t.Errorf("objective = %v, want 1 (self-trust)", res.Objective)
	}
}
