package coalition_test

import (
	"fmt"

	"softsoa/internal/coalition"
	"softsoa/internal/semiring"
	"softsoa/internal/trust"
)

// Forming trustworthy coalitions over the Fig. 9 network: the
// orchestrator partitions seven components into two pools maximising
// the minimum coalition trustworthiness under Def. 4 stability.
func ExampleExact() {
	net := coalition.Fig9Network()
	res := coalition.Exact(net, trust.Min, coalition.WithMaxCoalitions(2))
	for _, c := range res.Partition {
		names := []string{}
		for _, i := range c.Elems() {
			names = append(names, net.Members()[i])
		}
		fmt.Printf("%v T=%.2f\n", names, coalition.Trustworthiness(net, c, trust.Min))
	}
	fmt.Println("stable:", res.Stable)
	// Output:
	// [x1 x2 x3 x4] T=0.80
	// [x5 x6 x7] T=0.83
	// stable: true
}

// Detecting a blocking pair per Def. 4: x4 prefers C1 to its own
// coalition-mates and C1 gains by admitting it.
func ExampleBlocking() {
	net := coalition.Fig10Network()
	c1 := semiring.BitsetOf(0, 1, 2)
	c2 := semiring.BitsetOf(3, 4, 5, 6)
	fmt.Println("blocking:", coalition.Blocking(net, c1, c2, trust.Avg))
	fmt.Println("stable:", coalition.Stable(net, coalition.Partition{c1, c2}, trust.Avg))
	// Output:
	// blocking: true
	// stable: false
}
