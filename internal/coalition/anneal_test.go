package coalition

import (
	"testing"

	"softsoa/internal/trust"
)

func TestAnnealFindsFig9Communities(t *testing.T) {
	net := Fig9Network()
	res := Anneal(net, trust.Min, AnnealParams{Seed: 1}, WithMaxCoalitions(2))
	exact := Exact(net, trust.Min, WithMaxCoalitions(2))
	if !res.Stable {
		t.Fatal("anneal result must be stable")
	}
	if err := Validate(net, res.Partition); err != nil {
		t.Fatal(err)
	}
	if res.Objective != exact.Objective {
		t.Errorf("anneal objective %v != exact %v on the community network",
			res.Objective, exact.Objective)
	}
}

func TestAnnealNeverBeatsExact(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		net := trust.Random(6, 2, seed)
		exact := Exact(net, trust.Min, WithMaxCoalitions(3))
		sa := Anneal(net, trust.Min, AnnealParams{Seed: seed}, WithMaxCoalitions(3))
		if err := Validate(net, sa.Partition); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sa.Stable {
			t.Fatalf("seed %d: unstable anneal result", seed)
		}
		if sa.Objective > exact.Objective {
			t.Errorf("seed %d: anneal %v exceeds exact optimum %v",
				seed, sa.Objective, exact.Objective)
		}
	}
}

func TestAnnealScalesToLargeNetworks(t *testing.T) {
	// n = 20 is far beyond Bell-number enumeration; annealing must
	// return a valid stable partition quickly.
	net := trust.Random(20, 4, 7)
	res := Anneal(net, trust.Min, AnnealParams{Seed: 7, Steps: 4000}, WithMaxCoalitions(4))
	if err := Validate(net, res.Partition); err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("expected a stable partition (grand coalition fallback at worst)")
	}
	if len(res.Partition) > 4 {
		t.Errorf("cap violated: %d coalitions", len(res.Partition))
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	net := trust.Random(10, 2, 3)
	a := Anneal(net, trust.Avg, AnnealParams{Seed: 11}, WithMaxCoalitions(3))
	b := Anneal(net, trust.Avg, AnnealParams{Seed: 11}, WithMaxCoalitions(3))
	if a.Objective != b.Objective || len(a.Partition) != len(b.Partition) {
		t.Error("same seed must yield the same result")
	}
}

func TestAnnealRespectsUncappedDefault(t *testing.T) {
	net := trust.Random(8, 2, 5)
	res := Anneal(net, trust.Min, AnnealParams{Seed: 2})
	if err := Validate(net, res.Partition); err != nil {
		t.Fatal(err)
	}
	// Uncapped min-composer optimum is all singletons (objective 1).
	if res.Objective != 1 {
		t.Errorf("uncapped objective = %v, want 1 (singletons)", res.Objective)
	}
}
