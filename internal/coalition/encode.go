package coalition

import (
	"fmt"
	"strconv"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
	"softsoa/internal/solver"
	"softsoa/internal/trust"
)

// maxEncodableMembers caps the §6.1 SCSP encoding: the domain of each
// coalition variable is the powerset P{1..n} and the covering
// constraint spans all n variables, so tables grow as (2ⁿ)ⁿ. Beyond
// n = 4 the encoding is of theoretical interest only — exactly the
// point experiment E12 makes against the direct partition solver.
const maxEncodableMembers = 4

// EncodeSCSP builds the paper's §6.1 formalisation as a fuzzy SCSP:
// one variable coᵢ per potential coalition ("the maximum number of
// possible coalitions") with powerset domain, unary trust constraints
// quantifying T(η(coᵢ)), crisp partition constraints (pairwise
// disjointness plus covering), and crisp stability constraints
// encoding Def. 4. maxCoalitions ≤ 0 uses one variable per member.
// The variables of interest are all coᵢ.
func EncodeSCSP(net *trust.Network, comp trust.Composer, maxCoalitions int) (*core.Problem[float64], []core.Variable, error) {
	n := net.Size()
	if n > maxEncodableMembers {
		return nil, nil, fmt.Errorf(
			"coalition: SCSP encoding supports at most %d members (powerset domains), got %d",
			maxEncodableMembers, n)
	}
	k := maxCoalitions
	if k <= 0 || k > n {
		k = n
	}
	s := core.NewSpace[float64](semiring.Fuzzy{})
	full := 1<<uint(n) - 1

	// Domain: every subset mask 0..2ⁿ-1, the label being the mask.
	subsets := make([]core.DVal, 0, full+1)
	for m := 0; m <= full; m++ {
		subsets = append(subsets, core.DVal{Label: strconv.Itoa(m), Num: float64(m)})
	}
	vars := make([]core.Variable, k)
	for i := range vars {
		vars[i] = s.AddVariable(core.Variable(fmt.Sprintf("co%d", i+1)), subsets)
	}
	p := core.NewProblem(s, vars...)

	crisp := func(ok bool) float64 {
		if ok {
			return 1
		}
		return 0
	}
	maskOf := func(a core.Assignment, v core.Variable) Coalition {
		return Coalition(uint64(a.Num(v)))
	}

	// 1. Trust constraints: ct(coᵢ = S) = T(S).
	for _, v := range vars {
		v := v
		p.Add(core.NewConstraint(s, []core.Variable{v}, func(a core.Assignment) float64 {
			return Trustworthiness(net, maskOf(a, v), comp)
		}))
	}

	// 2a. Partition constraints: pairwise disjointness.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			vi, vj := vars[i], vars[j]
			p.Add(core.NewConstraint(s, []core.Variable{vi, vj}, func(a core.Assignment) float64 {
				return crisp(maskOf(a, vi)&maskOf(a, vj) == 0)
			}))
		}
	}
	// 2b. Covering: every element assigned to some coalition.
	p.Add(core.NewConstraint(s, vars, func(a core.Assignment) float64 {
		var union Coalition
		for _, v := range vars {
			union |= maskOf(a, v)
		}
		return crisp(union == Coalition(uint64(full)))
	}))

	// 3. Stability constraints: for each ordered pair (co_v, co_u)
	// and each member k, forbid the Def. 4 blocking situation.
	for vi := 0; vi < k; vi++ {
		for ui := 0; ui < k; ui++ {
			if vi == ui {
				continue
			}
			cov, cou := vars[vi], vars[ui]
			for mem := 0; mem < n; mem++ {
				mem := mem
				p.Add(core.NewConstraint(s, []core.Variable{cov, cou}, func(a core.Assignment) float64 {
					cv, cu := maskOf(a, cov), maskOf(a, cou)
					if !cv.Contains(mem) || cu == 0 {
						return 1
					}
					if !prefers(net, mem, cu, cv, comp) {
						return 1
					}
					return crisp(!(Trustworthiness(net, cu.With(mem), comp) > Trustworthiness(net, cu, comp)))
				}))
			}
		}
	}
	return p, vars, nil
}

// DecodePartition reads the coalition variables out of a solved
// assignment, dropping empty coalitions.
func DecodePartition(a core.Assignment, vars []core.Variable) Partition {
	var p Partition
	for _, v := range vars {
		if m := Coalition(uint64(a.Num(v))); m != 0 {
			p = append(p, m)
		}
	}
	return p
}

// SolveViaSCSP solves coalition formation through the §6.1 encoding
// using branch and bound, returning the decoded best partition. Note
// the encoding's objective multiplies (fuzzy: min) the per-coalition
// trust values with the crisp constraints, so its optimum coincides
// with the direct solver's max-min objective over stable partitions.
func SolveViaSCSP(net *trust.Network, comp trust.Composer, maxCoalitions int) (Result, error) {
	p, vars, err := EncodeSCSP(net, comp, maxCoalitions)
	if err != nil {
		return Result{}, err
	}
	res := solver.BranchAndBound(p)
	if len(res.Best) == 0 {
		return Result{}, fmt.Errorf("coalition: SCSP encoding found no stable partition (unexpected: the grand coalition is always stable)")
	}
	part := DecodePartition(res.Best[0].Assignment, vars)
	out := Result{
		Partition: part,
		Objective: Objective(net, part, comp),
		Stable:    Stable(net, part, comp),
		Explored:  res.Stats.Nodes,
		Elapsed:   res.Stats.Elapsed,
	}
	return out, nil
}
