// Package coalition implements trustworthy coalition formation
// (Sec. 6 of the paper): partitioning service components into
// coalitions that maximise the minimum coalition trustworthiness
// (fuzzy objective) subject to the blocking-coalition stability
// condition of Def. 4. It provides a direct exact solver over set
// partitions, greedy and random baselines, and the paper's §6.1 SCSP
// encoding (trust, partition and stability constraints over powerset
// domains) for cross-validation — experiment E12 measures the cost of
// the encoding against the direct solver.
package coalition

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"softsoa/internal/clock"
	"softsoa/internal/semiring"
	"softsoa/internal/trust"
)

// Coalition is a set of member indices, at most 64 members.
type Coalition = semiring.Bitset

// Partition is a set of disjoint, covering coalitions.
type Partition []Coalition

// String renders the partition as {x1,x2}{x3}… using indices.
func formatPartition(p Partition) string {
	cs := append(Partition(nil), p...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	out := ""
	for _, c := range cs {
		out += fmt.Sprintf("%v", c.Elems())
	}
	return out
}

// Trustworthiness computes T(C) per Def. 3: the ◦ composition of all
// 1-to-1 trust relationships t(xi, xj) over ordered pairs of members
// (i may equal j, modelling trust in oneself). An empty coalition has
// trustworthiness 1 (it constrains nothing).
func Trustworthiness(net *trust.Network, c Coalition, comp trust.Composer) float64 {
	if c == 0 {
		return 1
	}
	members := c.Elems()
	vals := make([]float64, 0, len(members)*len(members))
	for _, i := range members {
		for _, j := range members {
			vals = append(vals, net.Trust(i, j))
		}
	}
	return comp.Compose(vals)
}

// prefers reports whether member k prefers coalition cu over its
// coalition-mates in cv: ◦_{xi∈cu} t(k, xi) > ◦_{xj∈cv, j≠k} t(k, xj)
// (the socially oriented comparison of Def. 4).
func prefers(net *trust.Network, k int, cu, cv Coalition, comp trust.Composer) bool {
	var toCu, toOwn []float64
	for _, i := range cu.Elems() {
		toCu = append(toCu, net.Trust(k, i))
	}
	for _, j := range cv.Without(k).Elems() {
		toOwn = append(toOwn, net.Trust(k, j))
	}
	return comp.Compose(toCu) > comp.Compose(toOwn)
}

// Blocking reports whether (cu, cv) are blocking coalitions per
// Def. 4: some xk ∈ cv prefers cu to its own coalition-mates AND cu's
// trustworthiness would rise by admitting xk.
func Blocking(net *trust.Network, cu, cv Coalition, comp trust.Composer) bool {
	if cu == cv {
		return false
	}
	tu := Trustworthiness(net, cu, comp)
	for _, k := range cv.Elems() {
		if !prefers(net, k, cu, cv, comp) {
			continue
		}
		if Trustworthiness(net, cu.With(k), comp) > tu {
			return true
		}
	}
	return false
}

// Stable reports whether the partition admits no blocking pair of
// coalitions.
func Stable(net *trust.Network, p Partition, comp trust.Composer) bool {
	for i, cu := range p {
		for j, cv := range p {
			if i == j {
				continue
			}
			if Blocking(net, cu, cv, comp) {
				return false
			}
		}
	}
	return true
}

// Validate checks that p is a partition of all members: disjoint,
// covering, and free of empty coalitions.
func Validate(net *trust.Network, p Partition) error {
	var seen Coalition
	for _, c := range p {
		if c == 0 {
			return fmt.Errorf("coalition: empty coalition in partition")
		}
		if seen&c != 0 {
			return fmt.Errorf("coalition: overlapping coalitions")
		}
		seen |= c
	}
	want := semiring.Bitset(1)<<uint(net.Size()) - 1
	if seen != want {
		return fmt.Errorf("coalition: partition covers %d of %d members", seen.Len(), net.Size())
	}
	return nil
}

// Objective is the fuzzy optimisation target of §6.1: the minimum
// trustworthiness over the coalitions of the partition ("maximise the
// minimum trustworthiness of all the obtained coalitions").
func Objective(net *trust.Network, p Partition, comp trust.Composer) float64 {
	obj := 1.0
	for _, c := range p {
		if t := Trustworthiness(net, c, comp); t < obj {
			obj = t
		}
	}
	return obj
}

// Option configures a coalition-formation solve.
type Option func(*options)

type options struct {
	maxCoalitions int // 0 = unrestricted
	clock         clock.Clock
}

// WithMaxCoalitions caps the number of coalitions the orchestrator
// may form. The cap is what makes optimisation non-degenerate: with
// self-trust 1 and unrestricted coalition counts, the all-singletons
// partition is stable with a perfect max-min objective, so "at each
// request the orchestrator will create a partition of the resources
// in order to fulfill the requirements" — the request fixes how many
// service pools are needed.
func WithMaxCoalitions(k int) Option {
	return func(o *options) { o.maxCoalitions = k }
}

// WithClock injects the time source behind Result.Elapsed (default
// the wall clock). No solver in this package reads any other clock,
// so runs are deterministic given their seeds.
func WithClock(c clock.Clock) Option {
	return func(o *options) { o.clock = c }
}

func buildOptions(opts []Option) options {
	o := options{clock: clock.Wall}
	for _, f := range opts {
		f(&o)
	}
	return o
}

func (o options) admits(blocks int) bool {
	return o.maxCoalitions == 0 || blocks <= o.maxCoalitions
}

// Result is the outcome of a coalition-formation solve.
type Result struct {
	// Partition is the selected set of coalitions.
	Partition Partition
	// Objective is the minimum coalition trustworthiness.
	Objective float64
	// Stable reports whether the partition passed the Def. 4 check.
	Stable bool
	// Explored counts candidate partitions examined.
	Explored int64
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// Exact enumerates every set partition of the members (via restricted
// growth strings), filters by the coalition cap and stability, and
// returns the stable partition maximising the objective. The grand
// coalition is always stable, so a solution always exists. Feasible
// up to n ≈ 12 (Bell numbers grow super-exponentially).
func Exact(net *trust.Network, comp trust.Composer, opts ...Option) Result {
	o := buildOptions(opts)
	start := o.clock.Now()
	n := net.Size()
	best := Result{Objective: -1}
	rgs := make([]int, n) // restricted growth string
	var rec func(i, m int)
	rec = func(i, m int) {
		if i == n {
			if !o.admits(m + 1) {
				return
			}
			p := decodeRGS(rgs, m+1)
			best.Explored++
			if !Stable(net, p, comp) {
				return
			}
			if obj := Objective(net, p, comp); obj > best.Objective {
				best.Objective = obj
				best.Partition = p
				best.Stable = true
			}
			return
		}
		limit := m + 1
		if o.maxCoalitions > 0 && limit > o.maxCoalitions-1 {
			limit = o.maxCoalitions - 1
		}
		for v := 0; v <= limit; v++ {
			rgs[i] = v
			nm := m
			if v > m {
				nm = v
			}
			rec(i+1, nm)
		}
	}
	rgs[0] = 0
	if n == 1 {
		best.Partition = Partition{semiring.BitsetOf(0)}
		best.Objective = Objective(net, best.Partition, comp)
		best.Stable = true
		best.Explored = 1
	} else {
		rec(1, 0)
	}
	best.Elapsed = o.clock.Since(start)
	return best
}

func decodeRGS(rgs []int, blocks int) Partition {
	p := make(Partition, blocks)
	for i, b := range rgs {
		p[b] = p[b].With(i)
	}
	out := p[:0]
	for _, c := range p {
		if c != 0 {
			out = append(out, c)
		}
	}
	return out
}

// Greedy is the socially oriented baseline: starting from singletons,
// it repeatedly applies the best merge of two coalitions — required
// merges first, to respect the coalition cap, then merges that
// improve the objective — stopping when neither applies. Fast but
// neither optimal nor guaranteed stable.
func Greedy(net *trust.Network, comp trust.Composer, opts ...Option) Result {
	o := buildOptions(opts)
	start := o.clock.Now()
	var p Partition
	for i := 0; i < net.Size(); i++ {
		p = append(p, semiring.BitsetOf(i))
	}
	res := Result{}
	for {
		mustMerge := !o.admits(len(p))
		bestObj := Objective(net, p, comp)
		if mustMerge {
			bestObj = -1 // take the least-bad merge even if it hurts
		}
		bi, bj := -1, -1
		for i := 0; i < len(p); i++ {
			for j := i + 1; j < len(p); j++ {
				res.Explored++
				merged := mergeAt(p, i, j)
				if obj := Objective(net, merged, comp); obj > bestObj {
					bestObj = obj
					bi, bj = i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		p = mergeAt(p, bi, bj)
	}
	res.Partition = p
	res.Objective = Objective(net, p, comp)
	res.Stable = Stable(net, p, comp)
	res.Elapsed = o.clock.Since(start)
	return res
}

func mergeAt(p Partition, i, j int) Partition {
	merged := make(Partition, 0, len(p)-1)
	merged = append(merged, p[:i]...)
	merged = append(merged, p[i+1:j]...)
	merged = append(merged, p[j+1:]...)
	return append(merged, p[i]|p[j])
}

// RandomBaseline draws random partitions (respecting the coalition
// cap) and keeps the best stable one found; the floor any serious
// method must beat.
func RandomBaseline(net *trust.Network, comp trust.Composer, draws int, seed int64, opts ...Option) Result {
	o := buildOptions(opts)
	start := o.clock.Now()
	rng := rand.New(rand.NewSource(seed))
	n := net.Size()
	best := Result{Objective: -1}
	for d := 0; d < draws; d++ {
		best.Explored++
		rgs := make([]int, n)
		m := 0
		for i := 1; i < n; i++ {
			hi := m + 2
			if o.maxCoalitions > 0 && hi > o.maxCoalitions {
				hi = o.maxCoalitions
			}
			v := rng.Intn(hi)
			rgs[i] = v
			if v > m {
				m = v
			}
		}
		p := decodeRGS(rgs, m+1)
		if !Stable(net, p, comp) {
			continue
		}
		if obj := Objective(net, p, comp); obj > best.Objective {
			best.Objective = obj
			best.Partition = p
			best.Stable = true
		}
	}
	// The grand coalition is always stable: guarantee a result.
	if best.Partition == nil {
		grand := Partition{semiring.Bitset(1)<<uint(n) - 1}
		best.Partition = grand
		best.Objective = Objective(net, grand, comp)
		best.Stable = true
	}
	best.Elapsed = o.clock.Since(start)
	return best
}

// String implements a readable rendering for results.
func (r Result) String() string {
	return fmt.Sprintf("partition %s objective %.4f stable %v (%d explored)",
		formatPartition(r.Partition), r.Objective, r.Stable, r.Explored)
}
