package broker

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"softsoa/internal/broker/store"
	"softsoa/internal/obs/journal"
	"softsoa/internal/sccp"
	"softsoa/internal/soa"
)

// Durability layer: every state mutation the broker acknowledges is
// appended to the configured store.Store as one typed JSON record, and
// every snapshotEvery records the full state is compacted into a
// snapshot. Recovery replays snapshot + WAL tail *through the engine*:
// a negotiation record re-runs negotiateOne with the recorded winner
// and offer, a renegotiation record re-runs Session.Renegotiate on the
// live store — the same deterministic machinery the flight recorder
// relies on, so recovered sessions are bit-exact, not approximations.
//
// Breaker effects are not re-derived: each record carries the breaker
// feedback the live request generated (success / failure / trip per
// provider), applied verbatim on replay. That keeps recovery
// independent of the breakers' wall-clock open-timeout behaviour.

// WAL record types.
const (
	recRegister    = "register"
	recNegotiate   = "negotiate"
	recNegFail     = "negfail"
	recRenegotiate = "renegotiate"
	recObserve     = "observe"
	recCompose     = "compose"
	recSLOFailover = "slofailover"
)

// feedbackRecord is one breaker effect a request produced.
type feedbackRecord struct {
	Provider string `json:"provider"`
	// Kind is "success", "failure" or "trip".
	Kind string `json:"kind"`
}

// registerRecord journals POST /v1/providers.
type registerRecord struct {
	Doc soa.Document `json:"doc"`
}

// negotiateRecord journals a successful negotiation: the minted SLA
// id, the client request, and the winning provider with the offer it
// negotiated under (captured at negotiation time — the registry may be
// republished later).
type negotiateRecord struct {
	ID       string           `json:"id"`
	Req      Request          `json:"req"`
	Provider string           `json:"provider"`
	Offer    soa.Attribute    `json:"offer"`
	Feedback []feedbackRecord `json:"feedback,omitempty"`
}

// negFailRecord journals a negotiation that found no agreement: it
// still minted a journal id (consuming the shared counter) and fed
// the breakers.
type negFailRecord struct {
	ID       string           `json:"id"`
	Feedback []feedbackRecord `json:"feedback,omitempty"`
}

// renegotiateRecord journals an *accepted* renegotiation; rejected
// ones leave no durable state behind.
type renegotiateRecord struct {
	ID          string        `json:"id"`
	Requirement soa.Attribute `json:"requirement"`
	Lower       *float64      `json:"lower,omitempty"`
	Upper       *float64      `json:"upper,omitempty"`
}

// observeRecord journals one observation; when it triggered a
// failover, the new binding is recorded the same way a negotiation is.
type observeRecord struct {
	ID         string           `json:"id"`
	Level      float64          `json:"level"`
	Violated   bool             `json:"violated"`
	FailedOver bool             `json:"failedOver,omitempty"`
	Provider   string           `json:"provider,omitempty"`
	Offer      *soa.Attribute   `json:"offer,omitempty"`
	Feedback   []feedbackRecord `json:"feedback,omitempty"`
}

// sloFailoverRecord journals a failover the SLO reconciler initiated
// (burn-rate at-risk signal, not a per-observation threshold). A stuck
// attempt still carries the breaker feedback it produced.
type sloFailoverRecord struct {
	ID         string           `json:"id"`
	FailedOver bool             `json:"failedOver,omitempty"`
	Provider   string           `json:"provider,omitempty"`
	Offer      *soa.Attribute   `json:"offer,omitempty"`
	Feedback   []feedbackRecord `json:"feedback,omitempty"`
}

// composeRecord journals a composition's minted journal id, keeping
// the shared id counter in sync across a restart.
type composeRecord struct {
	ID string `json:"id"`
}

// histOp is one step of an SLA entry's binding history, enough to
// rebuild its session deterministically: the initial negotiation, each
// accepted renegotiation, each failover. Kept on the live entry and
// serialised into snapshots.
type histOp struct {
	// Kind is "negotiate", "renegotiate" or "failover".
	Kind        string         `json:"kind"`
	Provider    string         `json:"provider,omitempty"`
	Offer       *soa.Attribute `json:"offer,omitempty"`
	Requirement *soa.Attribute `json:"requirement,omitempty"`
	Lower       *float64       `json:"lower,omitempty"`
	Upper       *float64       `json:"upper,omitempty"`
}

// monitorSnap persists a monitor's counters.
type monitorSnap struct {
	Observations int64   `json:"observations"`
	Violations   int64   `json:"violations"`
	Worst        float64 `json:"worst"`
	HasWorst     bool    `json:"hasWorst"`
}

// breakerSnap persists one provider's breaker.
type breakerSnap struct {
	Provider string `json:"provider"`
	State    int    `json:"state"`
	Failures int    `json:"failures"`
}

// entrySnap persists one live SLA entry.
type entrySnap struct {
	ID      string      `json:"id"`
	Req     Request     `json:"req"`
	History []histOp    `json:"history"`
	Monitor monitorSnap `json:"monitor"`
}

// snapshotDoc is the broker's full compacted state.
type snapshotDoc struct {
	V        int            `json:"v"`
	NextID   int            `json:"nextId"`
	Registry []soa.Document `json:"registry"`
	Breakers []breakerSnap  `json:"breakers,omitempty"`
	Entries  []entrySnap    `json:"entries"`
}

// RecoveryStats summarises a completed crash recovery.
type RecoveryStats struct {
	// SnapshotSeq is the WAL sequence the recovered snapshot covered
	// (0 when the broker started from the WAL alone).
	SnapshotSeq uint64
	// Replayed counts WAL tail records replayed through the engine.
	Replayed int
	// Truncated counts torn or corrupt records cut from the WAL tail.
	Truncated int
	// SLAs and Providers count the recovered live agreements and
	// registry documents.
	SLAs      int
	Providers int
}

// appendRecord serialises one mutation into the WAL. Callers hold
// s.persistMu.RLock() across the in-memory commit and this append, so
// a snapshot (which takes the write lock) never captures a commit
// whose record would land after the snapshot's sequence. A failed
// append is logged and counted, not propagated: the in-memory state
// is already committed and serving, it just may not survive a restart.
func (s *Server) appendRecord(typ string, v any) {
	if s.st == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		// The record types marshal by construction; reaching this is a
		// programming error worth surfacing loudly in logs.
		s.logger.Error("WAL record encode failed", "type", typ, "error", err)
		s.bm.walAppendErrors.Inc()
		return
	}
	seq, err := s.st.Append(typ, data)
	if err != nil {
		s.logger.Error("WAL append failed", "type", typ, "error", err)
		s.bm.walAppendErrors.Inc()
		return
	}
	s.lastSeq.Store(seq)
	s.bm.walRecords.Inc()
	s.persistCount.Add(1)
}

// maybeSnapshot compacts the WAL into a snapshot once enough records
// have accumulated. It runs on the request goroutine that crossed the
// threshold; the write lock quiesces concurrent mutations for the
// duration.
func (s *Server) maybeSnapshot() {
	if s.st == nil || s.snapshotEvery <= 0 || s.persistCount.Load() < int64(s.snapshotEvery) {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.persistCount.Load() < int64(s.snapshotEvery) {
		return // another request snapshotted while we waited
	}
	//lint:ignore errcheck snapshot failures are logged and counted inside snapshotLocked; the periodic path simply retries at the next threshold
	_ = s.snapshotLocked()
}

// Flush writes a final snapshot — the drain path calls it after the
// HTTP server has stopped, so the state directory is current before
// exit. It is also safe to call at any quiescent point.
func (s *Server) Flush() error {
	if s.st == nil {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked captures and writes the snapshot. Callers hold the
// persistMu write lock, so no commit+append is in flight and lastSeq
// is exactly the newest durable record.
func (s *Server) snapshotLocked() error {
	state, err := json.Marshal(s.snapshotState())
	if err != nil {
		s.logger.Error("snapshot encode failed", "error", err)
		return err
	}
	if err := s.st.WriteSnapshot(state, s.lastSeq.Load()); err != nil {
		s.logger.Error("snapshot write failed", "error", err)
		s.bm.walAppendErrors.Inc()
		return err
	}
	s.persistCount.Store(0)
	s.bm.snapshots.Inc()
	s.logger.Info("state snapshot written", "seq", s.lastSeq.Load())
	return nil
}

// snapshotState assembles the full broker state. Callers hold the
// persistMu write lock.
func (s *Server) snapshotState() snapshotDoc {
	doc := snapshotDoc{V: 1}
	for _, d := range s.reg.Snapshot() {
		doc.Registry = append(doc.Registry, *d)
	}
	for _, b := range s.health.States() {
		doc.Breakers = append(doc.Breakers, breakerSnap{
			Provider: b.Provider, State: int(b.State), Failures: b.Failures,
		})
	}
	s.mu.Lock()
	doc.NextID = s.nextID
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	entries := make(map[string]*slaEntry, len(s.entries))
	for id, e := range s.entries {
		entries[id] = e
	}
	s.mu.Unlock()
	sortByIDNumber(ids)
	for _, id := range ids {
		e := entries[id]
		e.mu.Lock()
		snap := entrySnap{
			ID:      id,
			Req:     e.req,
			History: append([]histOp(nil), e.history...),
		}
		snap.Monitor.Observations, snap.Monitor.Violations, snap.Monitor.Worst, snap.Monitor.HasWorst = e.mon.counts()
		e.mu.Unlock()
		doc.Entries = append(doc.Entries, snap)
	}
	return doc
}

// Recover loads the configured store's snapshot and WAL tail and
// replays them into a freshly constructed server. It must be called
// once, before the handler serves traffic. A nil store makes it a
// no-op. Replay is strict: a record that does not reproduce its
// recorded outcome is a determinism bug and fails recovery rather
// than silently serving a diverged state.
func (s *Server) Recover(ctx context.Context) (*RecoveryStats, error) {
	if s.st == nil {
		return nil, nil
	}
	rec, err := s.st.Recover()
	if err != nil {
		return nil, err
	}
	stats := &RecoveryStats{SnapshotSeq: rec.SnapshotSeq, Truncated: rec.Truncated}
	if rec.Truncated > 0 {
		s.bm.walTruncated.Add(int64(rec.Truncated))
		s.logger.Warn("truncated torn WAL tail", "records", rec.Truncated)
	}
	s.lastSeq.Store(rec.SnapshotSeq)
	if rec.Snapshot != nil {
		if err := s.restoreSnapshot(ctx, rec.Snapshot); err != nil {
			return nil, fmt.Errorf("broker: restore snapshot: %w", err)
		}
	}
	for _, r := range rec.Tail {
		if err := s.replayRecord(ctx, r); err != nil {
			return nil, fmt.Errorf("broker: replay WAL record %d (%s): %w", r.Seq, r.Type, err)
		}
		s.lastSeq.Store(r.Seq)
		stats.Replayed++
	}
	s.mu.Lock()
	stats.SLAs = len(s.entries)
	s.mu.Unlock()
	stats.Providers = s.reg.Len()
	s.bm.slasActive.Set(float64(stats.SLAs))
	s.logger.Info("state recovered",
		"snapshotSeq", stats.SnapshotSeq, "replayed", stats.Replayed,
		"truncated", stats.Truncated, "slas", stats.SLAs, "providers", stats.Providers)
	return stats, nil
}

// restoreSnapshot rebuilds registry, breakers and every SLA entry
// from the compacted state.
func (s *Server) restoreSnapshot(ctx context.Context, state []byte) error {
	var doc snapshotDoc
	if err := json.Unmarshal(state, &doc); err != nil {
		return err
	}
	for i := range doc.Registry {
		if err := s.reg.Publish(&doc.Registry[i]); err != nil {
			return fmt.Errorf("republish %s/%s: %w", doc.Registry[i].Service, doc.Registry[i].Provider, err)
		}
	}
	for _, b := range doc.Breakers {
		s.health.RestoreBreaker(b.Provider, BreakerState(b.State), b.Failures)
	}
	for _, snap := range doc.Entries {
		e, j, err := s.rebuildEntry(ctx, snap)
		if err != nil {
			return fmt.Errorf("rebuild %s: %w", snap.ID, err)
		}
		s.mu.Lock()
		s.entries[snap.ID] = e
		s.mu.Unlock()
		s.storeJournal(snap.ID, j)
	}
	s.bumpNextID(doc.NextID)
	return nil
}

// rebuildEntry replays one entry's binding history through the
// engine: negotiateOne for the initial binding and each failover,
// Session.Renegotiate for each accepted relaxation — the identical
// floating-point operations in the identical order, so the recovered
// store is bit-exact. Monitor counters are then restored directly.
// The returned journal holds the replayed runs, so the SLA's journal
// route keeps working after a restart (with only the winning runs:
// losing providers of the original negotiation are not replayed).
func (s *Server) rebuildEntry(ctx context.Context, snap entrySnap) (*slaEntry, *journal.Journal, error) {
	if len(snap.History) == 0 || snap.History[0].Kind != "negotiate" {
		return nil, nil, fmt.Errorf("history must start with a negotiation")
	}
	j := s.newJournal(ctx, "recovery")
	jctx := journal.ContextWith(ctx, j)
	e := &slaEntry{req: snap.Req, history: snap.History}
	// The entry is unpublished until restoreSnapshot links it into
	// s.entries, so the lock is uncontended; holding it keeps the
	// guarded-field discipline uniform.
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, op := range snap.History {
		switch op.Kind {
		case "negotiate", "failover":
			if op.Offer == nil {
				return nil, nil, fmt.Errorf("history op %d (%s) without offer", i, op.Kind)
			}
			if op.Kind == "failover" {
				e.versionBase += e.session.Version()
			}
			sess, err := s.replaySession(jctx, snap.Req, op.Provider, *op.Offer)
			if err != nil {
				return nil, nil, err
			}
			mon, err := NewMonitor(sess.SLA())
			if err != nil {
				return nil, nil, err
			}
			e.session, e.mon = sess, mon
		case "renegotiate":
			if op.Requirement == nil {
				return nil, nil, fmt.Errorf("history op %d (renegotiate) without requirement", i)
			}
			sla, err := e.session.Renegotiate(jctx, *op.Requirement, op.Lower, op.Upper)
			if err != nil {
				return nil, nil, err
			}
			if sla == nil {
				return nil, nil, fmt.Errorf("history op %d: renegotiation accepted live but rejected on replay", i)
			}
			e.mon.Rebase(sla.AgreedLevel)
		default:
			return nil, nil, fmt.Errorf("history op %d has unknown kind %q", i, op.Kind)
		}
	}
	e.mon.restoreCounts(snap.Monitor.Observations, snap.Monitor.Violations,
		snap.Monitor.Worst, snap.Monitor.HasWorst)
	return e, j, nil
}

// replaySession re-runs the two-agent negotiation with the recorded
// winner and offer. The live run already proved it succeeds; a replay
// that does not is a determinism bug.
func (s *Server) replaySession(ctx context.Context, req Request, provider string, offer soa.Attribute) (*Session, error) {
	sr, err := soa.SemiringFor(req.Metric)
	if err != nil {
		return nil, err
	}
	po, sess, err := s.negotiator.negotiateOne(ctx, sr, req, provider, offer)
	if err != nil {
		return nil, err
	}
	if sess == nil || po.Status != sccp.Succeeded {
		return nil, fmt.Errorf("negotiation with %q succeeded live but ended %s on replay", provider, po.Status)
	}
	return sess, nil
}

// replayRecord applies one WAL tail record.
func (s *Server) replayRecord(ctx context.Context, r store.Record) error {
	switch r.Type {
	case recRegister:
		var rr registerRecord
		if err := json.Unmarshal(r.Data, &rr); err != nil {
			return err
		}
		return s.reg.Publish(&rr.Doc)
	case recNegotiate:
		var nr negotiateRecord
		if err := json.Unmarshal(r.Data, &nr); err != nil {
			return err
		}
		s.applyFeedback(nr.Feedback)
		offer := nr.Offer
		e, j, err := s.rebuildEntry(ctx, entrySnap{
			ID:  nr.ID,
			Req: nr.Req,
			History: []histOp{{
				Kind: "negotiate", Provider: nr.Provider, Offer: &offer,
			}},
		})
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.entries[nr.ID] = e
		s.mu.Unlock()
		s.storeJournal(nr.ID, j)
		s.bumpNextID(idNumber(nr.ID))
		return nil
	case recNegFail:
		var fr negFailRecord
		if err := json.Unmarshal(r.Data, &fr); err != nil {
			return err
		}
		s.applyFeedback(fr.Feedback)
		s.bumpNextID(idNumber(fr.ID))
		return nil
	case recRenegotiate:
		var rr renegotiateRecord
		if err := json.Unmarshal(r.Data, &rr); err != nil {
			return err
		}
		e, ok := s.entry(rr.ID)
		if !ok {
			return fmt.Errorf("renegotiation of unknown SLA %q", rr.ID)
		}
		j, ok := s.journalByID(rr.ID)
		if !ok {
			j = s.newJournal(ctx, "recovery")
		}
		jctx := journal.ContextWith(ctx, j)
		// Replay is single-threaded, but session, mon and history are
		// guarded by e.mu everywhere else; holding it here keeps the
		// invariant uniform. Released before storeJournal so the
		// documented s.mu → e.mu order is never reversed.
		e.mu.Lock()
		sla, err := e.session.Renegotiate(jctx, rr.Requirement, rr.Lower, rr.Upper)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		if sla == nil {
			e.mu.Unlock()
			return fmt.Errorf("renegotiation of %q accepted live but rejected on replay", rr.ID)
		}
		e.mon.Rebase(sla.AgreedLevel)
		req := rr.Requirement
		e.history = append(e.history, histOp{
			Kind: "renegotiate", Requirement: &req, Lower: rr.Lower, Upper: rr.Upper,
		})
		e.mu.Unlock()
		s.storeJournal(rr.ID, j)
		return nil
	case recObserve:
		var or observeRecord
		if err := json.Unmarshal(r.Data, &or); err != nil {
			return err
		}
		e, ok := s.entry(or.ID)
		if !ok {
			return fmt.Errorf("observation of unknown SLA %q", or.ID)
		}
		e.mu.Lock()
		violated := e.mon.Observe(or.Level)
		e.mu.Unlock()
		if violated != or.Violated {
			return fmt.Errorf("observation of %q was violated=%t live but %t on replay", or.ID, or.Violated, violated)
		}
		s.applyFeedback(or.Feedback)
		if or.FailedOver {
			if or.Offer == nil {
				return fmt.Errorf("failover record for %q without offer", or.ID)
			}
			// Rebuilt outside e.mu — replaySession takes s.mu and the
			// lock order is s.mu → e.mu, never the reverse.
			sess, err := s.replaySession(ctx, e.req, or.Provider, *or.Offer)
			if err != nil {
				return err
			}
			mon, err := NewMonitor(sess.SLA())
			if err != nil {
				return err
			}
			e.mu.Lock()
			e.versionBase += e.session.Version()
			e.session, e.mon = sess, mon
			e.history = append(e.history, histOp{
				Kind: "failover", Provider: or.Provider, Offer: or.Offer,
			})
			e.mu.Unlock()
		}
		return nil
	case recSLOFailover:
		var fr sloFailoverRecord
		if err := json.Unmarshal(r.Data, &fr); err != nil {
			return err
		}
		e, ok := s.entry(fr.ID)
		if !ok {
			return fmt.Errorf("SLO failover of unknown SLA %q", fr.ID)
		}
		s.applyFeedback(fr.Feedback)
		if !fr.FailedOver {
			return nil
		}
		if fr.Offer == nil {
			return fmt.Errorf("SLO failover record for %q without offer", fr.ID)
		}
		// Rebuilt outside e.mu — replaySession takes s.mu and the lock
		// order is s.mu → e.mu, never the reverse.
		sess, err := s.replaySession(ctx, e.req, fr.Provider, *fr.Offer)
		if err != nil {
			return err
		}
		mon, err := NewMonitor(sess.SLA())
		if err != nil {
			return err
		}
		e.mu.Lock()
		e.versionBase += e.session.Version()
		e.session, e.mon = sess, mon
		e.history = append(e.history, histOp{
			Kind: "failover", Provider: fr.Provider, Offer: fr.Offer,
		})
		e.mu.Unlock()
		return nil
	case recCompose:
		var cr composeRecord
		if err := json.Unmarshal(r.Data, &cr); err != nil {
			return err
		}
		s.bumpNextID(idNumber(cr.ID))
		return nil
	default:
		return fmt.Errorf("unknown record type %q", r.Type)
	}
}

// applyFeedback replays recorded breaker effects verbatim.
func (s *Server) applyFeedback(fb []feedbackRecord) {
	for _, f := range fb {
		switch f.Kind {
		case "success":
			s.health.RecordSuccess(f.Provider)
		case "failure":
			s.health.RecordFailure(f.Provider)
		case "trip":
			s.health.Trip(f.Provider)
		}
	}
}

// feedbackFromOutcome mirrors recordOutcome: the breaker effects a
// negotiation outcome produces, in provider order.
func feedbackFromOutcome(out *Outcome) []feedbackRecord {
	if out == nil {
		return nil
	}
	var fb []feedbackRecord
	for _, po := range out.PerProvider {
		if po.Skipped != "" {
			continue
		}
		kind := "failure"
		if po.Status == sccp.Succeeded {
			kind = "success"
		}
		fb = append(fb, feedbackRecord{Provider: po.Provider, Kind: kind})
	}
	return fb
}

// bumpNextID raises the shared id counter to at least n, keeping
// minted ids unique across a restart.
func (s *Server) bumpNextID(n int) {
	s.mu.Lock()
	if n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()
}

// idNumber extracts the numeric suffix of a minted id ("sla-7" → 7).
func idNumber(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return 0
	}
	return n
}

// sortByIDNumber orders minted ids by their numeric suffix, so
// snapshot entries replay in mint order ("sla-2" before "sla-10").
func sortByIDNumber(ids []string) {
	sort.Slice(ids, func(i, j int) bool { return idNumber(ids[i]) < idNumber(ids[j]) })
}
