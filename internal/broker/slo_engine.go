package broker

import (
	"context"
	"net/http"
	"time"

	"softsoa/internal/broker/slo"
	"softsoa/internal/clock"
)

// SLO layer: the server owns an slo.Reconciler fed from its live SLA
// entries. The reconciler is always on (WithSLO can tune or disable
// it); brokerd runs its sweep loop, tests drive Sweep directly under a
// fake clock. When a sweep flags an SLA at risk the OnAtRisk hook
// fails the agreement over immediately — the paper's graceful
// degradation triggered by the aggregate burn-rate signal instead of
// waiting for the next per-observation threshold crossing — and the
// observe path additionally consults the at-risk flag, so a flagged
// SLA fails over on its next violation even below the per-monitor
// failover threshold.

// SLOConfig tunes the server's SLO reconciler. The zero value selects
// the documented defaults (see slo.Config); Disabled switches the
// subsystem off entirely.
type SLOConfig struct {
	// Disabled switches the reconciler off: no slo_* metrics, no
	// sweeps, and /v1/debug/slo answers 404.
	Disabled bool
	// SweepEvery is the reconciliation period (default 10s).
	SweepEvery time.Duration
	// FastWindow / SlowWindow are the burn-rate windows (default
	// 1m / 1h).
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the fast-window violation rate above which an
	// SLA is at risk (default 0.5).
	BurnThreshold float64
	// MinWindowObservations gates the at-risk signal (default 3).
	MinWindowObservations int64
	// Clock overrides the sweep's time source (tests inject a fake).
	Clock clock.Clock
}

// WithSLO tunes (or disables) the SLO reconciliation subsystem.
func WithSLO(cfg SLOConfig) ServerOption {
	return func(c *serverConfig) { c.slo = cfg }
}

// newSLO builds the server's reconciler; nil when disabled.
func (s *Server) newSLO(cfg SLOConfig) *slo.Reconciler {
	if cfg.Disabled {
		return nil
	}
	return slo.New(slo.Config{
		Source:                s,
		Clock:                 cfg.Clock,
		SweepEvery:            cfg.SweepEvery,
		FastWindow:            cfg.FastWindow,
		SlowWindow:            cfg.SlowWindow,
		BurnThreshold:         cfg.BurnThreshold,
		MinWindowObservations: cfg.MinWindowObservations,
		Registry:              s.metrics,
		Logger:                s.logger,
		OnAtRisk:              s.sloFailOver,
	})
}

// SLO exposes the server's reconciler so brokerd can run its sweep
// loop and tests can drive sweeps deterministically. Nil when the
// subsystem is disabled.
func (s *Server) SLO() *slo.Reconciler { return s.slo }

// SLOSamples implements slo.Source: a snapshot of every live SLA's
// compliance state. The entry map is copied under s.mu, then each
// entry is read under its own lock — the reconciler never holds its
// lock while calling in, so sampling can never deadlock against a
// request handler consulting AtRisk.
func (s *Server) SLOSamples() []slo.Sample {
	s.mu.Lock()
	ids := make([]string, 0, len(s.entries))
	entries := make(map[string]*slaEntry, len(s.entries))
	for id, e := range s.entries {
		ids = append(ids, id)
		entries[id] = e
	}
	s.mu.Unlock()
	sortByIDNumber(ids)
	samples := make([]slo.Sample, 0, len(ids))
	for _, id := range ids {
		e := entries[id]
		e.mu.Lock()
		rep := e.mon.Report()
		samples = append(samples, slo.Sample{
			ID:           id,
			Provider:     e.session.Provider(),
			Metric:       string(rep.Metric),
			Negotiated:   rep.AgreedLevel,
			Drift:        e.mon.drift(),
			Observations: rep.Observations,
			Violations:   rep.Violations,
		})
		e.mu.Unlock()
	}
	return samples
}

// sloFailOver is the reconciler's OnAtRisk hook: an SLA whose
// fast-window burn rate crossed the threshold is failed over to a
// healthy provider right away. The attempt — rebound or stuck — is
// journalled as a recSLOFailover WAL record so recovery replays the
// same binding and breaker effects.
func (s *Server) sloFailOver(ctx context.Context, id string) {
	if !s.failover.Enabled {
		return
	}
	e, ok := s.entry(id)
	if !ok {
		return
	}
	defer s.maybeSnapshot()
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	rebound, fb := s.failOverLocked(ctx, e)
	rec := sloFailoverRecord{ID: id, Feedback: fb}
	if rebound {
		s.bm.failovers.With("slo_rebound").Inc()
		offer := e.session.offerAttr
		rec.FailedOver = true
		rec.Provider = e.session.Provider()
		rec.Offer = &offer
		e.history = append(e.history, histOp{
			Kind: "failover", Provider: rec.Provider, Offer: &offer,
		})
	} else {
		s.bm.failovers.With("slo_stuck").Inc()
	}
	s.appendRecord(recSLOFailover, rec)
}

// handleDebugSLO serves the reconciler's read-only snapshot as JSON.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		writeError(w, http.StatusNotFound, "slo reconciler disabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errcheck the response write is best-effort; a failed write means the client is gone
	_ = s.slo.WriteJSON(w)
}
