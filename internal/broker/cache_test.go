package broker

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"softsoa/internal/cache"
	"softsoa/internal/obs/journal"
	"softsoa/internal/soa"
)

// journalBytes renders a journal's full JSONL stream for byte-level
// comparison; cached and cold negotiations must be indistinguishable
// here, or replay determinism is broken.
func journalBytes(t *testing.T, j *journal.Journal) string {
	t.Helper()
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func cacheTestRequest() Request {
	return Request{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 3, PerUnit: 1, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(20),
	}
}

func cacheTestRegistry(t *testing.T) *soa.Registry {
	t.Helper()
	reg := soa.NewRegistry()
	for _, d := range []*soa.Document{
		costDoc("p1", "failmgmt", 2, 1, "eu"),
		costDoc("p2", "failmgmt", 4, 2, "us"),
	} {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// negotiateJournaled runs one journaled negotiation and returns the
// SLA, outcome, session and the journal's bytes.
func negotiateJournaled(t *testing.T, n *Negotiator, req Request) (*soa.SLA, *Session, *Outcome, string) {
	t.Helper()
	j := journal.New(0, journal.Meta{Kind: "negotiation"})
	ctx := journal.ContextWith(context.Background(), j)
	sla, sess, out, err := n.NegotiateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	return sla, sess, out, journalBytes(t, j)
}

// TestCachedNegotiationBitIdentical: a negotiation served from the
// plan cache must equal the cold run in every observable — SLA,
// per-provider outcomes, session level — and its journal must be byte
// for byte the cold journal.
func TestCachedNegotiationBitIdentical(t *testing.T) {
	req := cacheTestRequest()
	nCold := NewNegotiator(cacheTestRegistry(t))
	slaCold, sessCold, outCold, jCold := negotiateJournaled(t, nCold, req)

	c := cache.New(1024)
	nCached := NewNegotiator(cacheTestRegistry(t), WithNegotiatorSolveCache(c))
	slaMiss, _, outMiss, jMiss := negotiateJournaled(t, nCached, req)
	before := c.TierStats(cache.TierSearch).Hits
	slaHit, sessHit, outHit, jHit := negotiateJournaled(t, nCached, req)
	if c.TierStats(cache.TierSearch).Hits <= before {
		t.Fatal("repeat negotiation did not hit the plan cache")
	}

	if jMiss != jCold {
		t.Errorf("miss journal differs from cold:\ncold:\n%s\nmiss:\n%s", jCold, jMiss)
	}
	if jHit != jCold {
		t.Errorf("hit journal differs from cold:\ncold:\n%s\nhit:\n%s", jCold, jHit)
	}
	for label, got := range map[string]*soa.SLA{"miss": slaMiss, "hit": slaHit} {
		if got.AgreedLevel != slaCold.AgreedLevel || got.Providers[0] != slaCold.Providers[0] ||
			!reflect.DeepEqual(got.Resources, slaCold.Resources) {
			t.Errorf("%s SLA %+v differs from cold %+v", label, got, slaCold)
		}
	}
	for label, got := range map[string]*Outcome{"miss": outMiss, "hit": outHit} {
		if !reflect.DeepEqual(got, outCold) {
			t.Errorf("%s outcome %+v differs from cold %+v", label, got, outCold)
		}
	}
	if sessHit.AgreedLevel() != sessCold.AgreedLevel() || sessHit.Version() != sessCold.Version() {
		t.Errorf("replayed session (level %v, v%d) differs from cold (level %v, v%d)",
			sessHit.AgreedLevel(), sessHit.Version(), sessCold.AgreedLevel(), sessCold.Version())
	}
}

// TestCachedPrecheckedNegotiationBitIdentical covers the doomed
// precheck path: an unreachable lower bound is prechecked cold and
// must replay identically (note, search record, stuck status) from
// the cache.
func TestCachedPrecheckedNegotiationBitIdentical(t *testing.T) {
	req := cacheTestRequest()
	req.Lower = fptr(1) // cost semiring: 1 is better than any attainable total
	nCold := NewNegotiator(cacheTestRegistry(t))
	_, _, outCold, jCold := negotiateJournaled(t, nCold, req)

	c := cache.New(1024)
	nCached := NewNegotiator(cacheTestRegistry(t), WithNegotiatorSolveCache(c))
	_, _, _, jMiss := negotiateJournaled(t, nCached, req)
	_, _, outHit, jHit := negotiateJournaled(t, nCached, req)
	if jMiss != jCold || jHit != jCold {
		t.Errorf("prechecked journals differ:\ncold:\n%s\nmiss:\n%s\nhit:\n%s", jCold, jMiss, jHit)
	}
	if !reflect.DeepEqual(outHit, outCold) {
		t.Errorf("prechecked hit outcome %+v differs from cold %+v", outHit, outCold)
	}
	for _, po := range outHit.PerProvider {
		if !po.Prechecked {
			t.Errorf("provider %s not prechecked on replay", po.Provider)
		}
	}
}

// renegotiateJournaled renegotiates and returns the new SLA plus the
// journal bytes of just the renegotiation.
func renegotiateJournaled(t *testing.T, s *Session, newReq soa.Attribute, lower, upper *float64) (*soa.SLA, string) {
	t.Helper()
	j := journal.New(0, journal.Meta{Kind: "renegotiation"})
	ctx := journal.ContextWith(context.Background(), j)
	sla, err := s.Renegotiate(ctx, newReq, lower, upper)
	if err != nil {
		t.Fatal(err)
	}
	return sla, journalBytes(t, j)
}

// TestCachedRenegotiationBitIdentical: two sessions negotiated from
// the same template share a history key, so the second session's
// renegotiation replays the first's cached plan — and must match a
// cache-less session's renegotiation byte for byte.
func TestCachedRenegotiationBitIdentical(t *testing.T) {
	req := cacheTestRequest()
	newReq := soa.Attribute{
		Name: "budget", Metric: soa.MetricCost,
		Base: 1, PerUnit: 0, Resource: "failures", MaxUnits: 10,
	}

	nCold := NewNegotiator(cacheTestRegistry(t))
	_, sessCold, _, _ := negotiateJournaled(t, nCold, req)
	slaCold, jCold := renegotiateJournaled(t, sessCold, newReq, nil, nil)
	if slaCold == nil {
		t.Fatal("cold renegotiation should succeed")
	}

	c := cache.New(1024)
	nCached := NewNegotiator(cacheTestRegistry(t), WithNegotiatorSolveCache(c))
	_, sessA, _, _ := negotiateJournaled(t, nCached, req)
	_, sessB, _, _ := negotiateJournaled(t, nCached, req)
	slaMiss, jMiss := renegotiateJournaled(t, sessA, newReq, nil, nil)
	before := c.TierStats(cache.TierSearch).Hits
	slaHit, jHit := renegotiateJournaled(t, sessB, newReq, nil, nil)
	if c.TierStats(cache.TierSearch).Hits <= before {
		t.Fatal("sibling session's renegotiation did not hit the plan cache")
	}

	if jMiss != jCold || jHit != jCold {
		t.Errorf("renegotiation journals differ:\ncold:\n%s\nmiss:\n%s\nhit:\n%s", jCold, jMiss, jHit)
	}
	for label, got := range map[string]*soa.SLA{"miss": slaMiss, "hit": slaHit} {
		if got == nil || got.AgreedLevel != slaCold.AgreedLevel ||
			!reflect.DeepEqual(got.Resources, slaCold.Resources) {
			t.Errorf("%s renegotiated SLA %+v differs from cold %+v", label, got, slaCold)
		}
	}
	if sessB.Version() != sessCold.Version() || sessB.AgreedLevel() != sessCold.AgreedLevel() {
		t.Errorf("replayed session (level %v, v%d) differs from cold (level %v, v%d)",
			sessB.AgreedLevel(), sessB.Version(), sessCold.AgreedLevel(), sessCold.Version())
	}

	// A further renegotiation on the replayed session must keep
	// working — its history key advanced with the replay.
	sla2, _ := renegotiateJournaled(t, sessB, soa.Attribute{
		Metric: soa.MetricCost, Base: 0, PerUnit: 1, Resource: "failures", MaxUnits: 10,
	}, nil, nil)
	if sla2 == nil {
		t.Fatal("follow-up renegotiation on replayed session failed")
	}
}

// TestCachedRenegotiationRejectionReplay: a rejected renegotiation is
// cached too; the retry replays the rejection without touching the
// store.
func TestCachedRenegotiationRejectionReplay(t *testing.T) {
	c := cache.New(1024)
	n := NewNegotiator(cacheTestRegistry(t), WithNegotiatorSolveCache(c))
	_, sess, _, _ := negotiateJournaled(t, n, cacheTestRequest())
	level := sess.AgreedLevel()

	tight := soa.Attribute{
		Metric: soa.MetricCost, Base: 100, PerUnit: 10, Resource: "failures", MaxUnits: 10,
	}
	sla1, j1 := renegotiateJournaled(t, sess, tight, fptr(1), nil)
	before := c.TierStats(cache.TierSearch).Hits
	sla2, j2 := renegotiateJournaled(t, sess, tight, fptr(1), nil)
	if sla1 != nil || sla2 != nil {
		t.Fatalf("tightening should be rejected, got %v then %v", sla1, sla2)
	}
	if c.TierStats(cache.TierSearch).Hits <= before {
		t.Fatal("retried rejection did not hit the plan cache")
	}
	if j1 != j2 {
		t.Errorf("rejection replay journal differs:\nfirst:\n%s\nretry:\n%s", j1, j2)
	}
	if sess.AgreedLevel() != level || sess.Version() != 1 {
		t.Errorf("rejected renegotiation moved the session: level %v version %d", sess.AgreedLevel(), sess.Version())
	}
}

// TestNegotiationCacheRace hammers one negotiator (and its cache)
// from concurrent journaled negotiations and renegotiations over a
// few request templates; run with -race. Every agreement must match
// its cold reference.
func TestNegotiationCacheRace(t *testing.T) {
	reg := cacheTestRegistry(t)
	templates := []Request{cacheTestRequest()}
	{
		r := cacheTestRequest()
		r.Requirement.Base, r.Requirement.PerUnit = 1, 2
		templates = append(templates, r)
		r2 := cacheTestRequest()
		r2.Lower = nil
		templates = append(templates, r2)
	}
	cold := make([]float64, len(templates))
	nCold := NewNegotiator(reg)
	for i, req := range templates {
		sla, _, _, err := nCold.NegotiateSession(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if sla == nil {
			t.Fatalf("template %d found no agreement", i)
		}
		cold[i] = sla.AgreedLevel
	}

	n := NewNegotiator(reg, WithNegotiatorSolveCache(cache.New(64)))
	newReq := soa.Attribute{
		Name: "budget", Metric: soa.MetricCost,
		Base: 1, PerUnit: 0, Resource: "failures", MaxUnits: 10,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := templates[(g+i)%len(templates)]
				j := journal.New(0, journal.Meta{Kind: "negotiation"})
				ctx := journal.ContextWith(context.Background(), j)
				sla, sess, _, err := n.NegotiateSession(ctx, req)
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if sla == nil || sla.AgreedLevel != cold[(g+i)%len(templates)] {
					t.Errorf("goroutine %d iter %d: cached agreement diverged", g, i)
					return
				}
				if i%3 == 0 {
					if _, err := sess.Renegotiate(ctx, newReq, nil, nil); err != nil {
						t.Errorf("goroutine %d iter %d renegotiate: %v", g, i, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestServerCacheMetrics drives the full HTTP surface: repeated
// negotiations against a default server (cache on) must surface
// cache_hits_total > 0 on /v1/metrics, alongside the other cache
// families.
func TestServerCacheMetrics(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	_, client := serveForTest(t, srv)
	ctx := context.Background()
	if err := client.Publish(ctx, costDoc("p1", "failmgmt", 2, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sla, err := client.Negotiate(ctx, NegotiateRequest{
			Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
			Requirement: soa.Attribute{
				Name: "budget", Metric: soa.MetricCost,
				Base: 3, PerUnit: 1, Resource: "failures", MaxUnits: 10,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if sla == nil {
			t.Fatal("no agreement")
		}
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"cache_hits_total", "cache_misses_total", "cache_evictions_total",
		"cache_warm_starts_total", "cache_entries",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics missing family %s", family)
		}
	}
	var hits float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "cache_hits_total{") {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err == nil {
				hits += v
			}
		}
	}
	if hits <= 0 {
		t.Errorf("cache_hits_total = %v after repeated negotiations, want > 0", hits)
	}
}
