package broker

import (
	"context"
	"fmt"
	"sort"

	"softsoa/internal/cache"
	"softsoa/internal/core"
	"softsoa/internal/obs/journal"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
)

// Session is a live negotiation session: the shared constraint store
// behind a signed SLA. It is what makes renegotiation nonmonotonic —
// instead of starting over, the client's old requirement is retracted
// (÷) from the very store the agreement was computed on and the new
// one told, exactly as the paper's Example 2 relaxes a merged policy.
// A Session is not safe for concurrent use; the broker server
// serialises access per SLA.
type Session struct {
	// histKey is the session's content-derived history: the negotiation
	// plan key it was minted under, folded with every successful
	// renegotiation's key since. It determines the current σ bit for
	// bit, so it keys cached renegotiation plans — and two sessions
	// with equal histories (repeat negotiations of the same template)
	// share them. cache is the negotiator's solve cache (nil when
	// caching is off).
	histKey cache.Key
	cache   *cache.Cache

	provider     string
	service      string
	client       string
	metric       soa.Metric
	sr           semiring.Semiring[float64]
	space        *core.Space[float64]
	store        *core.Store[float64]
	reqCon       *core.Constraint[float64]
	resourceVars map[string]core.Variable
	version      int

	// offerAttr, reqAttr and maxUnits remember the QoS policies and
	// variable ranges the session was negotiated under, so a
	// renegotiation journal segment can synthesise a replayable
	// program (journalprog.go). reqAttr tracks the current
	// requirement across renegotiations.
	offerAttr soa.Attribute
	reqAttr   soa.Attribute
	maxUnits  map[string]int
}

// Provider returns the bound provider.
func (s *Session) Provider() string { return s.provider }

// Version counts the agreements reached on this session (1 after the
// initial negotiation, +1 per successful renegotiation).
func (s *Session) Version() int { return s.version }

// AgreedLevel returns the current store consistency.
func (s *Session) AgreedLevel() float64 { return s.store.Blevel() }

// SLA renders the session's current agreement.
func (s *Session) SLA() *soa.SLA {
	sla := &soa.SLA{
		Service:     s.service,
		Client:      s.client,
		Providers:   []string{s.provider},
		Metric:      s.metric,
		AgreedLevel: s.store.Blevel(),
	}
	res := bestResources(s.sr, s.store.Constraint(), s.resourceVars)
	names := make([]string, 0, len(res))
	for name := range res {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sla.Resources = append(sla.Resources, soa.ResourceBinding{Name: name, Units: res[name]})
	}
	return sla
}

// NegotiateSession is Negotiate, but additionally returns the live
// session of the winning agreement so it can be renegotiated later.
// The session is nil when no agreement was found.
func (n *Negotiator) NegotiateSession(ctx context.Context, req Request) (*soa.SLA, *Session, *Outcome, error) {
	return n.negotiate(ctx, req)
}

// Renegotiate relaxes the session nonmonotonically: it retracts the
// client's previous requirement from the store (rule R7) and tells
// the new one under the [lower, upper] acceptance interval (rule R1).
// On success the session advances a version and the new SLA is
// returned; on failure the store is rolled back, the old agreement
// stands, and a nil SLA is returned. When the context carries a
// flight-recorder journal, the retract/tell pair is recorded as a
// replayable segment whose setup prefix rebuilds the session store.
func (s *Session) Renegotiate(ctx context.Context, newReq soa.Attribute, lower, upper *float64) (*soa.SLA, error) {
	if newReq.Metric != s.metric {
		return nil, fmt.Errorf("broker: renegotiation metric %q differs from session metric %q",
			newReq.Metric, s.metric)
	}
	resVar, ok := s.resourceVars[newReq.Resource]
	if !ok {
		return nil, fmt.Errorf("broker: renegotiation resource %q not part of the session", newReq.Resource)
	}
	newCon, err := newReq.ToConstraint(s.space, resVar)
	if err != nil {
		return nil, err
	}

	j := journal.FromContext(ctx)
	var memoKey cache.Key
	if s.cache != nil {
		memoKey = renegKey(s.histKey, newReq, lower, upper)
		if v, ok := s.cache.Get(cache.TierSearch, memoKey); ok {
			// A success plan restores the cached post-run snapshot, so
			// it is only usable by sessions over the same space object
			// (plans can outlive their tier-1 instance in the LRU and a
			// rebuilt instance is a fresh space; σ content is equal but
			// Restore is rightly strict). Mismatches fall through cold.
			if pl, ok := v.(*renegPlan); ok && (pl.postSnap == nil || pl.postSnap.Space() == s.space) {
				return s.replayRenegotiation(j, memoKey, newReq, newCon, pl)
			}
		}
	}

	check := sccp.Check[float64]{LowerValue: lower, UpperValue: upper}
	agent := sccp.Retract[float64]{
		C: s.reqCon,
		Next: sccp.Tell[float64]{
			C:     newCon,
			Check: check,
			Next:  sccp.Success[float64]{},
		},
	}

	wantPlan := s.cache != nil
	var prog string
	var setup int
	var note string
	if j != nil || wantPlan {
		prog, setup = renegotiationJournalProgram(s, newReq, lower, upper)
		note = fmt.Sprintf("session version %d", s.version)
	}
	var machineOpts []sccp.MachineOption[float64]
	machineOpts = append(machineOpts, sccp.WithStore[float64](s.store))
	if j != nil {
		j.SetSemiring(s.sr.Name())
		j.BeginSegment(journal.Segment{
			Label:   "renegotiate:" + s.provider,
			Program: prog,
			Seed:    1,
			Fuel:    renegotiationFuel + setup,
			Setup:   setup,
			Note:    note,
		})
	}
	var tee *teeRecorder
	if wantPlan {
		var live journal.Recorder
		if j != nil {
			live = j
		}
		tee = &teeRecorder{live: live}
		machineOpts = append(machineOpts, sccp.WithRecorder[float64](tee))
	} else if j != nil {
		machineOpts = append(machineOpts, sccp.WithRecorder[float64](j))
	}

	snapshot := s.store.Snapshot()
	m := sccp.NewMachine(s.space, agent, machineOpts...)
	status, err := m.Run(renegotiationFuel)
	if err != nil {
		if j != nil {
			j.EndSegment("error", "", "")
		}
		s.store.Restore(snapshot)
		return nil, err
	}
	// Record the machine's view of the store before any rollback: the
	// replay re-executes the run itself, not the rollback.
	var endStore, endBlevel string
	if j != nil || wantPlan {
		endStore = s.store.Constraint().String()
		endBlevel = s.sr.Format(s.store.Blevel())
	}
	if j != nil {
		j.EndSegment(status.String(), endStore, endBlevel)
	}
	if wantPlan {
		pl := &renegPlan{
			prog: prog, setup: setup, note: note, status: status,
			transitions: tee.events, endStore: endStore, endBlevel: endBlevel,
		}
		if status == sccp.Succeeded {
			pl.postSnap = s.store.Snapshot()
		}
		s.cache.Put(cache.TierSearch, memoKey, pl)
	}
	if status != sccp.Succeeded {
		s.store.Restore(snapshot)
		return nil, nil
	}
	s.histKey = memoKey
	s.reqCon = newCon
	s.reqAttr = newReq
	s.version++
	return s.SLA(), nil
}

// replayRenegotiation serves a renegotiation from a cached plan: the
// journal segment is re-emitted byte for byte (same program, setup,
// transitions and final store strings), and on success the session
// store is restored to the cached post-run snapshot — the same σ the
// cold run left behind — before the version advances.
func (s *Session) replayRenegotiation(
	j *journal.Journal,
	memoKey cache.Key,
	newReq soa.Attribute,
	newCon *core.Constraint[float64],
	pl *renegPlan,
) (*soa.SLA, error) {
	if j != nil {
		j.SetSemiring(s.sr.Name())
		j.BeginSegment(journal.Segment{
			Label:   "renegotiate:" + s.provider,
			Program: pl.prog,
			Seed:    1,
			Fuel:    renegotiationFuel + pl.setup,
			Setup:   pl.setup,
			Note:    pl.note,
		})
		for _, tr := range pl.transitions {
			j.RecordTransition(tr)
		}
		j.EndSegment(pl.status.String(), pl.endStore, pl.endBlevel)
	}
	if pl.status != sccp.Succeeded {
		return nil, nil
	}
	s.store.Restore(pl.postSnap)
	s.histKey = memoKey
	s.reqCon = newCon
	s.reqAttr = newReq
	s.version++
	return s.SLA(), nil
}
