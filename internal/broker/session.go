package broker

import (
	"context"
	"fmt"
	"sort"

	"softsoa/internal/core"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
)

// Session is a live negotiation session: the shared constraint store
// behind a signed SLA. It is what makes renegotiation nonmonotonic —
// instead of starting over, the client's old requirement is retracted
// (÷) from the very store the agreement was computed on and the new
// one told, exactly as the paper's Example 2 relaxes a merged policy.
// A Session is not safe for concurrent use; the broker server
// serialises access per SLA.
type Session struct {
	provider     string
	service      string
	client       string
	metric       soa.Metric
	sr           semiring.Semiring[float64]
	space        *core.Space[float64]
	store        *core.Store[float64]
	reqCon       *core.Constraint[float64]
	resourceVars map[string]core.Variable
	version      int
}

// Provider returns the bound provider.
func (s *Session) Provider() string { return s.provider }

// Version counts the agreements reached on this session (1 after the
// initial negotiation, +1 per successful renegotiation).
func (s *Session) Version() int { return s.version }

// AgreedLevel returns the current store consistency.
func (s *Session) AgreedLevel() float64 { return s.store.Blevel() }

// SLA renders the session's current agreement.
func (s *Session) SLA() *soa.SLA {
	sla := &soa.SLA{
		Service:     s.service,
		Client:      s.client,
		Providers:   []string{s.provider},
		Metric:      s.metric,
		AgreedLevel: s.store.Blevel(),
	}
	res := bestResources(s.sr, s.store.Constraint(), s.resourceVars)
	names := make([]string, 0, len(res))
	for name := range res {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sla.Resources = append(sla.Resources, soa.ResourceBinding{Name: name, Units: res[name]})
	}
	return sla
}

// NegotiateSession is Negotiate, but additionally returns the live
// session of the winning agreement so it can be renegotiated later.
// The session is nil when no agreement was found.
func (n *Negotiator) NegotiateSession(ctx context.Context, req Request) (*soa.SLA, *Session, *Outcome, error) {
	return n.negotiate(ctx, req)
}

// Renegotiate relaxes the session nonmonotonically: it retracts the
// client's previous requirement from the store (rule R7) and tells
// the new one under the [lower, upper] acceptance interval (rule R1).
// On success the session advances a version and the new SLA is
// returned; on failure the store is rolled back, the old agreement
// stands, and a nil SLA is returned.
func (s *Session) Renegotiate(newReq soa.Attribute, lower, upper *float64) (*soa.SLA, error) {
	if newReq.Metric != s.metric {
		return nil, fmt.Errorf("broker: renegotiation metric %q differs from session metric %q",
			newReq.Metric, s.metric)
	}
	resVar, ok := s.resourceVars[newReq.Resource]
	if !ok {
		return nil, fmt.Errorf("broker: renegotiation resource %q not part of the session", newReq.Resource)
	}
	newCon, err := newReq.ToConstraint(s.space, resVar)
	if err != nil {
		return nil, err
	}

	check := sccp.Check[float64]{LowerValue: lower, UpperValue: upper}
	agent := sccp.Retract[float64]{
		C: s.reqCon,
		Next: sccp.Tell[float64]{
			C:     newCon,
			Check: check,
			Next:  sccp.Success[float64]{},
		},
	}

	snapshot := s.store.Snapshot()
	m := sccp.NewMachine(s.space, agent, sccp.WithStore[float64](s.store))
	status, err := m.Run(50)
	if err != nil {
		s.store.Restore(snapshot)
		return nil, err
	}
	if status != sccp.Succeeded {
		s.store.Restore(snapshot)
		return nil, nil
	}
	s.reqCon = newCon
	s.version++
	return s.SLA(), nil
}
