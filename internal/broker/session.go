package broker

import (
	"context"
	"fmt"
	"sort"

	"softsoa/internal/core"
	"softsoa/internal/obs/journal"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
)

// Session is a live negotiation session: the shared constraint store
// behind a signed SLA. It is what makes renegotiation nonmonotonic —
// instead of starting over, the client's old requirement is retracted
// (÷) from the very store the agreement was computed on and the new
// one told, exactly as the paper's Example 2 relaxes a merged policy.
// A Session is not safe for concurrent use; the broker server
// serialises access per SLA.
type Session struct {
	provider     string
	service      string
	client       string
	metric       soa.Metric
	sr           semiring.Semiring[float64]
	space        *core.Space[float64]
	store        *core.Store[float64]
	reqCon       *core.Constraint[float64]
	resourceVars map[string]core.Variable
	version      int

	// offerAttr, reqAttr and maxUnits remember the QoS policies and
	// variable ranges the session was negotiated under, so a
	// renegotiation journal segment can synthesise a replayable
	// program (journalprog.go). reqAttr tracks the current
	// requirement across renegotiations.
	offerAttr soa.Attribute
	reqAttr   soa.Attribute
	maxUnits  map[string]int
}

// Provider returns the bound provider.
func (s *Session) Provider() string { return s.provider }

// Version counts the agreements reached on this session (1 after the
// initial negotiation, +1 per successful renegotiation).
func (s *Session) Version() int { return s.version }

// AgreedLevel returns the current store consistency.
func (s *Session) AgreedLevel() float64 { return s.store.Blevel() }

// SLA renders the session's current agreement.
func (s *Session) SLA() *soa.SLA {
	sla := &soa.SLA{
		Service:     s.service,
		Client:      s.client,
		Providers:   []string{s.provider},
		Metric:      s.metric,
		AgreedLevel: s.store.Blevel(),
	}
	res := bestResources(s.sr, s.store.Constraint(), s.resourceVars)
	names := make([]string, 0, len(res))
	for name := range res {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sla.Resources = append(sla.Resources, soa.ResourceBinding{Name: name, Units: res[name]})
	}
	return sla
}

// NegotiateSession is Negotiate, but additionally returns the live
// session of the winning agreement so it can be renegotiated later.
// The session is nil when no agreement was found.
func (n *Negotiator) NegotiateSession(ctx context.Context, req Request) (*soa.SLA, *Session, *Outcome, error) {
	return n.negotiate(ctx, req)
}

// Renegotiate relaxes the session nonmonotonically: it retracts the
// client's previous requirement from the store (rule R7) and tells
// the new one under the [lower, upper] acceptance interval (rule R1).
// On success the session advances a version and the new SLA is
// returned; on failure the store is rolled back, the old agreement
// stands, and a nil SLA is returned. When the context carries a
// flight-recorder journal, the retract/tell pair is recorded as a
// replayable segment whose setup prefix rebuilds the session store.
func (s *Session) Renegotiate(ctx context.Context, newReq soa.Attribute, lower, upper *float64) (*soa.SLA, error) {
	if newReq.Metric != s.metric {
		return nil, fmt.Errorf("broker: renegotiation metric %q differs from session metric %q",
			newReq.Metric, s.metric)
	}
	resVar, ok := s.resourceVars[newReq.Resource]
	if !ok {
		return nil, fmt.Errorf("broker: renegotiation resource %q not part of the session", newReq.Resource)
	}
	newCon, err := newReq.ToConstraint(s.space, resVar)
	if err != nil {
		return nil, err
	}

	check := sccp.Check[float64]{LowerValue: lower, UpperValue: upper}
	agent := sccp.Retract[float64]{
		C: s.reqCon,
		Next: sccp.Tell[float64]{
			C:     newCon,
			Check: check,
			Next:  sccp.Success[float64]{},
		},
	}

	const renegotiationFuel = 50
	j := journal.FromContext(ctx)
	var machineOpts []sccp.MachineOption[float64]
	if j != nil {
		j.SetSemiring(s.sr.Name())
		prog, setup := renegotiationJournalProgram(s, newReq, lower, upper)
		j.BeginSegment(journal.Segment{
			Label:   "renegotiate:" + s.provider,
			Program: prog,
			Seed:    1,
			Fuel:    renegotiationFuel + setup,
			Setup:   setup,
			Note:    fmt.Sprintf("session version %d", s.version),
		})
		machineOpts = append(machineOpts, sccp.WithStore[float64](s.store), sccp.WithRecorder[float64](j))
	} else {
		machineOpts = append(machineOpts, sccp.WithStore[float64](s.store))
	}

	snapshot := s.store.Snapshot()
	m := sccp.NewMachine(s.space, agent, machineOpts...)
	status, err := m.Run(renegotiationFuel)
	if err != nil {
		if j != nil {
			j.EndSegment("error", "", "")
		}
		s.store.Restore(snapshot)
		return nil, err
	}
	// Record the machine's view of the store before any rollback: the
	// replay re-executes the run itself, not the rollback.
	if j != nil {
		j.EndSegment(status.String(), s.store.Constraint().String(), s.sr.Format(s.store.Blevel()))
	}
	if status != sccp.Succeeded {
		s.store.Restore(snapshot)
		return nil, nil
	}
	s.reqCon = newCon
	s.reqAttr = newReq
	s.version++
	return s.SLA(), nil
}
