package broker

import (
	"fmt"
	"sync"

	"softsoa/internal/semiring"
	"softsoa/internal/soa"
)

// Monitor tracks observed service levels against a signed agreement —
// the paper's requirement that "the composition of services can be
// monitored and checked". An observation violates the SLA when it is
// strictly worse than the agreed level in the metric's semiring
// order: a higher cost, or a lower reliability/preference. Monitors
// are safe for concurrent use.
type Monitor struct {
	mu sync.Mutex
	// metric and sr are immutable after construction.
	metric       soa.Metric
	sr           semiring.Semiring[float64]
	agreed       float64 // guarded by mu
	observations int64   // guarded by mu
	violations   int64   // guarded by mu
	worst        float64 // guarded by mu
	hasWorst     bool    // guarded by mu
}

// NewMonitor returns a monitor for the SLA's agreed level.
func NewMonitor(sla *soa.SLA) (*Monitor, error) {
	sr, err := soa.SemiringFor(sla.Metric)
	if err != nil {
		return nil, err
	}
	return &Monitor{metric: sla.Metric, sr: sr, agreed: sla.AgreedLevel}, nil
}

// Rebase updates the agreed level after a renegotiation; history is
// kept (past violations were violations of the agreement in force at
// the time).
func (m *Monitor) Rebase(agreedLevel float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.agreed = agreedLevel
}

// counts returns the accumulated counters, for the broker's durable
// snapshots.
func (m *Monitor) counts() (observations, violations int64, worst float64, hasWorst bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observations, m.violations, m.worst, m.hasWorst
}

// restoreCounts reinstates persisted counters on a freshly rebuilt
// monitor during crash recovery. The agreed level is untouched — it
// comes from replaying the negotiation history through the engine.
func (m *Monitor) restoreCounts(observations, violations int64, worst float64, hasWorst bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observations = observations
	m.violations = violations
	m.worst = worst
	m.hasWorst = hasWorst
}

// Observe records one measured service level and reports whether it
// violates the agreement.
func (m *Monitor) Observe(level float64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observations++
	if !m.hasWorst || semiring.Lt(m.sr, level, m.worst) {
		m.worst = level
		m.hasWorst = true
	}
	if semiring.Lt(m.sr, level, m.agreed) {
		m.violations++
		return true
	}
	return false
}

// drift returns how far the worst observed level sits from the agreed
// one when it is strictly worse in the metric's semiring order, and 0
// otherwise (including before the first observation). The SLO
// reconciler feeds this into the blevel-drift histogram.
func (m *Monitor) drift() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasWorst || !semiring.Lt(m.sr, m.worst, m.agreed) {
		return 0
	}
	d := m.worst - m.agreed
	if d < 0 {
		d = -d
	}
	return d
}

// MonitorReport summarises compliance.
type MonitorReport struct {
	// Metric is the monitored QoS metric.
	Metric soa.Metric `xml:"metric,attr"`
	// AgreedLevel is the level currently in force.
	AgreedLevel float64 `xml:"agreedLevel,attr"`
	// Observations counts reported measurements.
	Observations int64 `xml:"observations,attr"`
	// Violations counts measurements strictly worse than agreed.
	Violations int64 `xml:"violations,attr"`
	// ViolationRate is Violations/Observations (0 with no data).
	ViolationRate float64 `xml:"violationRate,attr"`
	// WorstObserved is the worst level seen (meaningless before the
	// first observation).
	WorstObserved float64 `xml:"worstObserved,attr"`
}

// Report returns the current compliance summary.
func (m *Monitor) Report() MonitorReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := MonitorReport{
		Metric:       m.metric,
		AgreedLevel:  m.agreed,
		Observations: m.observations,
		Violations:   m.violations,
	}
	if m.observations > 0 {
		r.ViolationRate = float64(m.violations) / float64(m.observations)
		r.WorstObserved = m.worst
	}
	return r
}

// Healthy reports whether the violation rate is at most maxRate.
// With no observations the agreement is vacuously healthy.
func (m *Monitor) Healthy(maxRate float64) bool {
	r := m.Report()
	return r.ViolationRate <= maxRate
}

// String renders a one-line summary.
func (m *Monitor) String() string {
	r := m.Report()
	return fmt.Sprintf("monitor[%s agreed=%v obs=%d viol=%d rate=%.2f]",
		r.Metric, r.AgreedLevel, r.Observations, r.Violations, r.ViolationRate)
}
