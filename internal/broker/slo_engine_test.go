package broker

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"softsoa/internal/broker/slo"
	"softsoa/internal/broker/store"
	"softsoa/internal/clock"
	"softsoa/internal/soa"
)

// sloClock is a mutable deterministic time source for the SLO tests:
// every sweep reads it, no test here ever sleeps.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSLOClock() *sloClock {
	return &sloClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *sloClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// sloServer builds a broker whose per-observation failover threshold
// is unreachable (MinObservations 1000), so any failover in these
// tests is attributable to the SLO layer: either the at-risk hook or
// the observe path consulting the at-risk flag.
func sloServer(fc *sloClock, opts ...ServerOption) *Server {
	base := []ServerOption{
		WithBreaker(BreakerConfig{FailureThreshold: 1000, OpenTimeout: time.Hour}),
		WithFailover(FailoverPolicy{Enabled: true, ViolationRate: 0.99, MinObservations: 1000}),
		WithSLO(SLOConfig{
			Clock:                 clock.Clock(fc.now),
			FastWindow:            time.Minute,
			SlowWindow:            time.Hour,
			BurnThreshold:         0.5,
			MinWindowObservations: 3,
		}),
	}
	return NewServer(DefaultLinkPenalty, append(base, opts...)...)
}

// negotiateFlaky publishes a cheap flaky provider and a pricier
// backup, then negotiates an agreement that binds to flaky at cost 2.
// Observing level 6 violates it; level 2 complies.
func negotiateFlaky(t *testing.T, client *Client) *soa.SLA {
	t.Helper()
	ctx := context.Background()
	if err := client.Publish(ctx, costDoc("flaky", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(ctx, costDoc("backup", "svc", 3, 0, "us")); err != nil {
		t.Fatal(err)
	}
	sla, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), Upper: fptr(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.Providers[0] != "flaky" {
		t.Fatalf("bound %s, want flaky", sla.Providers[0])
	}
	return sla
}

// TestSLOHandoffDeterministic walks one SLA through the full
// lifecycle the issue demands — healthy → at-risk → failed-over —
// driven exclusively by the injected clock and direct Sweep calls.
func TestSLOHandoffDeterministic(t *testing.T) {
	fc := newSLOClock()
	srv := sloServer(fc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	sla := negotiateFlaky(t, client)
	rec := srv.SLO()

	// Healthy: compliant observations only.
	for i := 0; i < 2; i++ {
		if _, err := client.Observe(ctx, sla.ID, 2); err != nil {
			t.Fatal(err)
		}
	}
	rec.Sweep(ctx)
	if rec.AtRisk(sla.ID) {
		t.Fatal("healthy SLA flagged at risk")
	}
	snap := rec.Snapshot()
	if len(snap.SLAs) != 1 || snap.SLAs[0].Compliance != 1 {
		t.Fatalf("healthy snapshot = %+v, want one fully compliant SLA", snap.SLAs)
	}

	// Degraded: five violations inside the fast window. None of them
	// fails over on the observe path (threshold unreachable, flag not
	// set yet).
	fc.advance(10 * time.Second)
	for i := 0; i < 5; i++ {
		obs, err := client.Observe(ctx, sla.ID, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !obs.Violated {
			t.Fatal("level 6 should violate the agreement")
		}
		if obs.FailedOver {
			t.Fatal("observe path failed over before the SLO sweep flagged the SLA")
		}
	}

	// The sweep crosses the burn threshold (5 of 7 fast-window
	// observations violated), flags the SLA and fails it over via the
	// OnAtRisk hook — all within this one call.
	rec.Sweep(ctx)
	if !rec.AtRisk(sla.ID) {
		t.Fatal("degraded SLA not flagged at risk")
	}
	got, err := client.SLA(ctx, sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Providers[0] != "backup" {
		t.Fatalf("after at-risk sweep the SLA is bound to %s, want backup", got.Providers[0])
	}
	if got.Version <= sla.Version {
		t.Fatalf("failover did not bump the version: %d -> %d", sla.Version, got.Version)
	}

	// The next sweep sees the new binding (fresh monitor, provider
	// change) and clears the flag: the rebind was the remedy.
	fc.advance(10 * time.Second)
	rec.Sweep(ctx)
	if rec.AtRisk(sla.ID) {
		t.Fatal("at-risk flag survived the failover")
	}
	snap = rec.Snapshot()
	if snap.SLAs[0].Provider != "backup" {
		t.Fatalf("snapshot provider = %s, want backup", snap.SLAs[0].Provider)
	}
	if snap.SLAs[0].FastBurnRate != 0 {
		t.Fatalf("fast burn rate after failover = %g, want 0", snap.SLAs[0].FastBurnRate)
	}
}

// TestSLOObservePathConsultsAtRisk pins the second handoff route: when
// the at-risk hook's failover attempt is stuck (no healthy
// replacement), the flag stays up and the next violating observation
// retries the failover through the observe path.
func TestSLOObservePathConsultsAtRisk(t *testing.T) {
	fc := newSLOClock()
	srv := sloServer(fc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	// Only one provider: the hook's failover has nowhere to go.
	if err := client.Publish(ctx, costDoc("flaky", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	sla, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), Upper: fptr(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := client.Observe(ctx, sla.ID, 6); err != nil {
			t.Fatal(err)
		}
	}
	rec := srv.SLO()
	rec.Sweep(ctx)
	if !rec.AtRisk(sla.ID) {
		t.Fatal("SLA not flagged at risk")
	}
	if got := srv.bm.failovers.With("slo_stuck").Value(); got != 1 {
		t.Fatalf("slo_stuck failovers = %d, want 1 (no replacement available)", got)
	}

	// A replacement appears. The stuck hook does not re-fire (still at
	// risk, no new transition), but the observe path consults the flag
	// on the next violation and completes the failover. flaky's breaker
	// was tripped by the stuck attempt, so the renegotiation can only
	// choose backup.
	if err := client.Publish(ctx, costDoc("backup", "svc", 3, 0, "us")); err != nil {
		t.Fatal(err)
	}
	obs, err := client.Observe(ctx, sla.ID, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.FailedOver || obs.Provider != "backup" {
		t.Fatalf("observe after at-risk flag: failedOver=%t provider=%s, want true/backup",
			obs.FailedOver, obs.Provider)
	}
}

// TestSLODebugEndpoint exercises GET /v1/debug/slo end to end, and its
// 404 when the subsystem is disabled.
func TestSLODebugEndpoint(t *testing.T) {
	fc := newSLOClock()
	srv := sloServer(fc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	sla := negotiateFlaky(t, client)
	if _, err := client.Observe(context.Background(), sla.ID, 6); err != nil {
		t.Fatal(err)
	}
	srv.SLO().Sweep(context.Background())

	resp, err := http.Get(ts.URL + "/v1/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	//lint:ignore errcheck test response body close
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/slo: %d\n%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var snap slo.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, body)
	}
	if snap.Sweeps != 1 || len(snap.SLAs) != 1 || snap.SLAs[0].ID != sla.ID {
		t.Fatalf("snapshot = %+v, want 1 sweep covering %s", snap, sla.ID)
	}
	if snap.SLAs[0].Violations != 1 {
		t.Fatalf("snapshot violations = %d, want 1", snap.SLAs[0].Violations)
	}

	off := httptest.NewServer(NewServer(DefaultLinkPenalty,
		WithSLO(SLOConfig{Disabled: true})).Handler())
	defer off.Close()
	resp, err = http.Get(off.URL + "/v1/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body close
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /v1/debug/slo: %d, want 404", resp.StatusCode)
	}
}

// TestSLOFailoverRecovery proves the recSLOFailover WAL record
// replays: a broker whose SLA was failed over by the SLO hook is
// abandoned and recovered, and the recovered wire state is
// byte-identical.
func TestSLOFailoverRecovery(t *testing.T) {
	mem := store.NewMemory()
	fc := newSLOClock()
	srv := sloServer(fc, WithStateStore(mem), WithSnapshotEvery(0))
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	sla := negotiateFlaky(t, client)
	for i := 0; i < 4; i++ {
		if _, err := client.Observe(ctx, sla.ID, 6); err != nil {
			t.Fatal(err)
		}
	}
	srv.SLO().Sweep(ctx) // at-risk hook fails the SLA over to backup
	got, err := client.SLA(ctx, sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Providers[0] != "backup" {
		t.Fatalf("setup: bound to %s, want backup", got.Providers[0])
	}
	// A compliant observation against the fresh binding lands after
	// the failover record in the WAL.
	if _, err := client.Observe(ctx, sla.ID, 3); err != nil {
		t.Fatal(err)
	}
	before := stateBodies(t, ts.URL, []string{sla.ID})
	ts.Close() // abandon without drain or flush

	srv2 := sloServer(newSLOClock(), WithStateStore(mem), WithSnapshotEvery(0))
	stats, err := srv2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SLAs != 1 {
		t.Fatalf("recovered %d SLAs, want 1", stats.SLAs)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	after := stateBodies(t, ts2.URL, []string{sla.ID})
	for p, want := range before {
		if after[p] != want {
			t.Errorf("recovered %s diverged\n--- before ---\n%s\n--- after ---\n%s", p, want, after[p])
		}
	}
}

// TestSLOConcurrentObserveSweepStress races observations (violating
// and compliant), sweeps under an advancing fake clock, at-risk
// queries and debug snapshots. Under -race this is the wiring's
// thread-safety and deadlock-freedom proof.
func TestSLOConcurrentObserveSweepStress(t *testing.T) {
	fc := newSLOClock()
	srv := sloServer(fc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	sla := negotiateFlaky(t, client)
	rec := srv.SLO()

	const iters = 150
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			level := 2.0
			if i%3 == 0 {
				level = 6
			}
			if _, err := client.Observe(ctx, sla.ID, level); err != nil {
				t.Errorf("observe: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec.Sweep(ctx)
			fc.advance(time.Second)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec.AtRisk(sla.ID)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			resp, err := http.Get(ts.URL + "/v1/debug/slo")
			if err != nil {
				t.Errorf("debug/slo: %v", err)
				return
			}
			//lint:ignore errcheck test response body drain
			_, _ = io.Copy(io.Discard, resp.Body)
			//lint:ignore errcheck test response body close
			_ = resp.Body.Close()
		}
	}()
	wg.Wait()

	// Final coherence check: one more sweep, snapshot parses and still
	// tracks the SLA.
	rec.Sweep(ctx)
	snap := rec.Snapshot()
	if len(snap.SLAs) != 1 || snap.SLAs[0].Observations < iters {
		t.Fatalf("post-stress snapshot = %+v, want >= %d observations on one SLA", snap.SLAs, iters)
	}
}
