package broker

import (
	"context"
	"fmt"
	"math"
	"sort"

	"softsoa/internal/cache"
	"softsoa/internal/core"
	"softsoa/internal/obs"
	"softsoa/internal/obs/journal"
	"softsoa/internal/policy"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
)

// Request is a client's negotiation request (step 1): the wanted
// service, the metric to negotiate, the client's own QoS policy, and
// the acceptance interval for the agreed consistency level.
type Request struct {
	// Service is the abstract service to bind.
	Service string
	// Client names the requesting party.
	Client string
	// Metric selects what is negotiated and hence the semiring.
	Metric soa.Metric
	// Requirement is the client's own policy, translated to a soft
	// constraint and told to the shared store alongside the
	// provider's offer.
	Requirement soa.Attribute
	// Lower (a1) and Upper (a2) bound the acceptable consistency of
	// the final store, as in the checked transitions of the language;
	// nil means unbounded. For cost, Lower is the worst (highest)
	// acceptable total and Upper the "too good to be true" floor.
	Lower *float64
	Upper *float64
	// Capabilities is the client's MUST/MAY capability policy;
	// providers that miss a MUST capability are excluded before
	// negotiation, and MAY coverage breaks ties between equally good
	// agreements. Requires the negotiator to have a vocabulary.
	Capabilities policy.Requirement
}

// Validate checks the request.
func (r *Request) Validate() error {
	if r.Service == "" {
		return fmt.Errorf("broker: request without service")
	}
	if r.Client == "" {
		return fmt.Errorf("broker: request without client")
	}
	if !r.Metric.Valid() {
		return fmt.Errorf("broker: unknown metric %q", r.Metric)
	}
	if r.Requirement.Metric != r.Metric {
		return fmt.Errorf("broker: requirement metric %q differs from negotiated %q",
			r.Requirement.Metric, r.Metric)
	}
	return nil
}

// ProviderOutcome records the result of negotiating with one
// provider.
type ProviderOutcome struct {
	// Provider names the provider.
	Provider string
	// Status is the nmsccp machine's final status.
	Status sccp.Status
	// Skipped explains why the provider was excluded before
	// negotiation (missing metric or capabilities); empty otherwise.
	Skipped string
	// Prechecked is true when the c∅ propagation precheck proved the
	// negotiation doomed and the machine run was skipped; the Status
	// is the Stuck outcome the run would have reached.
	Prechecked bool
	// AgreedLevel is the final store consistency (meaningful when
	// Status is Succeeded).
	AgreedLevel float64
	// Preference is the fuzzy MAY-capability coverage in [0,1]
	// (1 when the request states no capability policy).
	Preference float64
	// Resources is the best resource allocation under the agreement.
	Resources map[string]int
}

// Outcome is the full negotiation record across providers.
type Outcome struct {
	// PerProvider lists each attempted provider's result, in
	// registry order.
	PerProvider []ProviderOutcome
	// Best indexes the winning provider in PerProvider, or -1.
	Best int
}

// ProviderFilter gates provider selection: it reports whether the
// provider may be negotiated with and, when not, why (e.g. "circuit
// breaker open"). The broker server installs one backed by its
// HealthBoard so sick providers are skipped.
type ProviderFilter func(provider string) (ok bool, reason string)

// negotiationFuel and renegotiationFuel bound the machine runs; they
// are part of every cached plan's meaning (a plan replays a run of
// exactly this fuel), so they are package-level constants rather than
// per-call choices.
const (
	negotiationFuel   = 200
	renegotiationFuel = 50
)

// Negotiator is the broker's negotiation engine over a registry.
type Negotiator struct {
	reg    *soa.Registry
	vocab  *policy.Vocabulary
	filter ProviderFilter
	cache  *cache.Cache
}

// NegotiatorOption configures a Negotiator.
type NegotiatorOption func(*Negotiator)

// WithVocabulary equips the negotiator with a capability vocabulary,
// enabling MUST/MAY capability policies in requests.
func WithVocabulary(v *policy.Vocabulary) NegotiatorOption {
	return func(n *Negotiator) { n.vocab = v }
}

// WithProviderFilter gates every negotiation on the filter; excluded
// providers appear in the outcome as skipped with the filter's
// reason. A nil filter admits everyone.
func WithProviderFilter(f ProviderFilter) NegotiatorOption {
	return func(n *Negotiator) { n.filter = f }
}

// WithNegotiatorSolveCache attaches a content-addressed solve cache.
// Tier 1 memoises the compiled negotiation instance (space and
// constraint tables) per (semiring, offer, requirement); tier 2 serves
// the propagation precheck's fixpoint through solver.PropagateCached,
// so a request never computes the same c∅ twice; tier 3 memoises whole
// negotiation plans — status, transition stream, final store — keyed
// additionally by the acceptance interval, and renegotiation plans
// keyed by (session, version, new requirement, bounds). Cached and
// cold negotiations are bit-identical: same outcome, same SLA, and
// byte-for-byte the same journal segments. A nil cache disables
// caching.
func WithNegotiatorSolveCache(c *cache.Cache) NegotiatorOption {
	return func(n *Negotiator) { n.cache = c }
}

// NewNegotiator returns a negotiator over the registry.
func NewNegotiator(reg *soa.Registry, opts ...NegotiatorOption) *Negotiator {
	n := &Negotiator{reg: reg}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Negotiate runs the paper's protocol: discover the providers
// (step 2), for each run a provider/client nmsccp agent pair on a
// shared store (steps 3–4), and bind the best successful agreement
// into an SLA (step 5). It returns the SLA, the per-provider
// outcomes, and an error only for invalid requests or an empty
// registry; "no agreement" is reported via a nil SLA. The context
// carries the request's trace (if any); each provider's precheck and
// machine run is recorded as a span on it.
func (n *Negotiator) Negotiate(ctx context.Context, req Request) (*soa.SLA, *Outcome, error) {
	sla, _, outcome, err := n.negotiate(ctx, req)
	return sla, outcome, err
}

// negotiate is the engine behind Negotiate and NegotiateSession.
func (n *Negotiator) negotiate(ctx context.Context, req Request) (*soa.SLA, *Session, *Outcome, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, nil, err
	}
	docs := n.reg.Discover(req.Service)
	if len(docs) == 0 {
		return nil, nil, nil, fmt.Errorf("broker: no providers registered for %q", req.Service)
	}
	sr, err := soa.SemiringFor(req.Metric)
	if err != nil {
		return nil, nil, nil, err
	}

	hasPolicy := len(req.Capabilities.Must) > 0 || len(req.Capabilities.May) > 0
	if hasPolicy && n.vocab == nil {
		return nil, nil, nil, fmt.Errorf("broker: request states a capability policy but the broker has no vocabulary")
	}

	// The flight recorder, when the caller attached one: every
	// provider attempt becomes a journal segment, replayable when the
	// negotiation program could be synthesised.
	j := journal.FromContext(ctx)
	if j != nil {
		j.SetSemiring(sr.Name())
	}
	skip := func(provider, reason string) {
		if j == nil {
			return
		}
		j.BeginSegment(journal.Segment{
			Label: "negotiate:" + provider,
			Note:  "skipped: " + reason,
		})
		j.EndSegment(sccp.Stuck.String(), "", "")
	}

	out := &Outcome{Best: -1}
	var bestLevel, bestPref float64
	var bestSession *Session
	for _, doc := range docs {
		if n.filter != nil {
			if ok, reason := n.filter(doc.Provider); !ok {
				out.PerProvider = append(out.PerProvider, ProviderOutcome{
					Provider: doc.Provider, Status: sccp.Stuck, Skipped: reason,
				})
				skip(doc.Provider, reason)
				continue
			}
		}
		attr, ok := doc.Attr(req.Metric)
		if !ok {
			reason := fmt.Sprintf("no %q attribute", req.Metric)
			out.PerProvider = append(out.PerProvider, ProviderOutcome{
				Provider: doc.Provider, Status: sccp.Stuck, Skipped: reason,
			})
			skip(doc.Provider, reason)
			continue
		}
		pref := 1.0
		if hasPolicy {
			match, err := n.vocab.Evaluate(req.Capabilities, policy.Offer{Supports: doc.Capabilities})
			if err != nil {
				return nil, nil, nil, err
			}
			if !match.Satisfied {
				reason := fmt.Sprintf("missing MUST capabilities %v", match.MissingMust)
				out.PerProvider = append(out.PerProvider, ProviderOutcome{
					Provider: doc.Provider, Status: sccp.Stuck, Skipped: reason,
				})
				skip(doc.Provider, reason)
				continue
			}
			pref = match.Preference
		}
		po, sess, err := n.negotiateOne(ctx, sr, req, doc.Provider, attr)
		if err != nil {
			return nil, nil, nil, err
		}
		po.Preference = pref
		out.PerProvider = append(out.PerProvider, po)
		if po.Status != sccp.Succeeded {
			continue
		}
		better := semiring.Gt(sr, po.AgreedLevel, bestLevel) ||
			(sr.Eq(po.AgreedLevel, bestLevel) && po.Preference > bestPref)
		if out.Best < 0 || better {
			out.Best = len(out.PerProvider) - 1
			bestLevel = po.AgreedLevel
			bestPref = po.Preference
			bestSession = sess
		}
	}
	if out.Best < 0 {
		return nil, nil, out, nil
	}
	return bestSession.SLA(), bestSession, out, nil
}

// negotiateOne runs the two-agent nmsccp negotiation for a single
// provider: P ≡ tell(offer) → tell(spP) → ask(spC) → success and
// C ≡ tell(requirement) → tell(spC) → ask(spP)→[a1,a2] success,
// mirroring Example 1 of the paper with the client carrying the
// acceptance interval.
func (n *Negotiator) negotiateOne(
	ctx context.Context,
	sr semiring.Semiring[float64],
	req Request,
	provider string,
	offer soa.Attribute,
) (ProviderOutcome, *Session, error) {
	j := journal.FromContext(ctx)
	wantPlan := n.cache != nil
	var planKey cache.Key
	if wantPlan {
		planKey = negPlanKey(sr.Name(), offer, req.Requirement, req.Lower, req.Upper)
		if v, ok := n.cache.Get(cache.TierSearch, planKey); ok {
			if pl, ok := v.(*negPlan); ok {
				po, sess := n.replayNegotiation(j, sr, req, provider, planKey, pl)
				return po, sess, nil
			}
		}
	}

	inst, err := n.negInstanceFor(sr, req.Requirement, offer)
	if err != nil {
		return ProviderOutcome{}, nil, err
	}
	space, resourceVars := inst.space, inst.resourceVars
	offerCon, reqCon := inst.offerCon, inst.reqCon
	spPCon, spCCon := inst.spPCon, inst.spCCon

	// Propagation precheck: node consistency over the two constraints
	// about to be told yields c∅, and for a store of unaries c∅ equals
	// the eventual blevel exactly — the same floating-point Times
	// applications in the same order, and the sync flags contribute the
	// exact identity One at the success labels. So when the client
	// states a lower bound a1 and already c∅ < a1, the checked ask can
	// never fire: skip the machine run and report the Stuck outcome it
	// would have reached. The fixpoint reads through the cache's tier 2
	// (solver.PropagateCached), so one request never runs the same
	// propagation twice and repeat requests share the c∅ of the first.
	var czeroNote string
	if req.Lower != nil {
		sp := obs.StartSpan(ctx, "precheck:"+provider)
		pre := core.NewProblem(space)
		pre.Add(offerCon, reqCon)
		_, czero, _ := solver.PropagateCached(n.cache, pre, 1)
		sp.End()
		if semiring.Lt(sr, czero, *req.Lower) {
			note := fmt.Sprintf("prechecked: c∅ = %s below lower threshold %s, machine run skipped",
				sr.Format(czero), sr.Format(*req.Lower))
			if j != nil {
				// No program: the live run was skipped, so there is
				// nothing to replay — the segment is evidence only.
				j.BeginSegment(journal.Segment{
					Label: "negotiate:" + provider,
					Note:  note,
				})
				j.RecordSearch(journal.SearchRecord{Kind: "propagate", Value: sr.Format(czero), Reason: "doomed"})
				j.EndSegment(sccp.Stuck.String(), "", "")
			}
			if wantPlan {
				n.cache.Put(cache.TierSearch, planKey, &negPlan{
					inst: inst, offer: offer,
					prechecked:  true,
					doomedValue: sr.Format(czero),
					doomedNote:  note,
				})
			}
			return ProviderOutcome{Provider: provider, Status: sccp.Stuck, Prechecked: true}, nil, nil
		}
		czeroNote = sr.Format(czero)
	}

	check := sccp.Check[float64]{LowerValue: req.Lower, UpperValue: req.Upper}
	pAgent := sccp.Tell[float64]{C: offerCon, Next: sccp.Tell[float64]{C: spPCon, Next: sccp.Ask[float64]{
		C: spCCon, Next: sccp.Success[float64]{},
	}}}
	cAgent := sccp.Tell[float64]{C: reqCon, Next: sccp.Tell[float64]{C: spCCon, Next: sccp.Ask[float64]{
		C: spPCon, Check: check, Next: sccp.Success[float64]{},
	}}}

	var prog string
	if j != nil || wantPlan {
		prog = negotiationJournalProgram(
			sr.Name(), offer, req.Requirement, inst.names, inst.maxUnits, req.Lower, req.Upper)
	}
	var machineOpts []sccp.MachineOption[float64]
	if j != nil {
		j.BeginSegment(journal.Segment{
			Label:   "negotiate:" + provider,
			Program: prog,
			Seed:    1,
			Fuel:    negotiationFuel,
		})
		if czeroNote != "" {
			j.RecordSearch(journal.SearchRecord{Kind: "propagate", Value: czeroNote, Reason: "viable"})
		}
	}
	var tee *teeRecorder
	if wantPlan {
		var live journal.Recorder
		if j != nil {
			live = j
		}
		tee = &teeRecorder{live: live}
		machineOpts = append(machineOpts, sccp.WithRecorder[float64](tee))
	} else if j != nil {
		machineOpts = append(machineOpts, sccp.WithRecorder[float64](j))
	}

	m := sccp.NewMachine(space, sccp.Par[float64](pAgent, cAgent), machineOpts...)
	sp := obs.StartSpan(ctx, "nmsccp:"+provider)
	status, err := m.Run(negotiationFuel)
	sp.End()
	if err != nil {
		if j != nil {
			j.EndSegment("error", "", "")
		}
		return ProviderOutcome{}, nil, fmt.Errorf("broker: negotiation with %q: %w", provider, err)
	}
	var endStore, endBlevel string
	if j != nil || wantPlan {
		endStore = m.Store().Constraint().String()
		endBlevel = sr.Format(m.Store().Blevel())
	}
	if j != nil {
		j.EndSegment(status.String(), endStore, endBlevel)
	}
	po := ProviderOutcome{Provider: provider, Status: status}
	if status != sccp.Succeeded {
		if wantPlan {
			n.cache.Put(cache.TierSearch, planKey, &negPlan{
				inst: inst, offer: offer,
				program: prog, czeroNote: czeroNote, status: status,
				transitions: tee.events, endStore: endStore, endBlevel: endBlevel,
			})
		}
		return po, nil, nil
	}
	po.AgreedLevel = m.Store().Blevel()
	po.Resources = bestResources(sr, m.Store().Constraint(), resourceVars)
	sess := &Session{
		histKey:      planKey,
		cache:        n.cache,
		provider:     provider,
		service:      req.Service,
		client:       req.Client,
		metric:       req.Metric,
		sr:           sr,
		space:        space,
		store:        m.Store(),
		reqCon:       reqCon,
		offerAttr:    offer,
		reqAttr:      req.Requirement,
		maxUnits:     inst.maxUnits,
		resourceVars: resourceVars,
		version:      1,
	}
	if wantPlan {
		n.cache.Put(cache.TierSearch, planKey, &negPlan{
			inst: inst, offer: offer,
			program: prog, czeroNote: czeroNote, status: status,
			transitions: tee.events, endStore: endStore, endBlevel: endBlevel,
			agreed:    po.AgreedLevel,
			resources: copyResources(po.Resources),
			storeSnap: m.Store().Snapshot(),
		})
	}
	return po, sess, nil
}

// negInstanceFor compiles (or fetches from tier 1) the negotiation
// instance for an (offer, requirement) pair: the space with one
// variable per distinct resource name sized to cover both parties'
// declared ranges plus the two sync flags, and the four constraint
// tables the agents tell. The instance is immutable and shared; every
// machine run gets its own store.
func (n *Negotiator) negInstanceFor(
	sr semiring.Semiring[float64],
	reqAttr soa.Attribute,
	offer soa.Attribute,
) (*negInstance, error) {
	var key cache.Key
	if n.cache != nil {
		key = negInstanceKey(sr.Name(), offer, reqAttr)
		if v, ok := n.cache.Get(cache.TierTables, key); ok {
			if inst, ok := v.(*negInstance); ok {
				return inst, nil
			}
		}
	}
	space := core.NewSpace[float64](sr)
	maxUnits := map[string]int{offer.Resource: offer.MaxUnits}
	if cur, ok := maxUnits[reqAttr.Resource]; !ok || reqAttr.MaxUnits > cur {
		maxUnits[reqAttr.Resource] = reqAttr.MaxUnits
	}
	resourceVars := map[string]core.Variable{}
	names := make([]string, 0, len(maxUnits))
	for name := range maxUnits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resourceVars[name] = space.AddVariable(core.Variable(name), core.IntDomain(0, maxUnits[name]))
	}
	spP := space.AddVariable("spP", core.IntDomain(0, 1))
	spC := space.AddVariable("spC", core.IntDomain(0, 1))

	offerCon, err := offer.ToConstraint(space, resourceVars[offer.Resource])
	if err != nil {
		return nil, err
	}
	reqCon, err := reqAttr.ToConstraint(space, resourceVars[reqAttr.Resource])
	if err != nil {
		return nil, err
	}
	flag := func(v core.Variable) *core.Constraint[float64] {
		return core.NewConstraint(space, []core.Variable{v}, func(a core.Assignment) float64 {
			if a.Num(v) == 1 {
				return sr.One()
			}
			return sr.Zero()
		})
	}
	inst := &negInstance{
		space:        space,
		names:        names,
		maxUnits:     maxUnits,
		resourceVars: resourceVars,
		offerCon:     offerCon,
		reqCon:       reqCon,
		spPCon:       flag(spP),
		spCCon:       flag(spC),
	}
	if n.cache != nil {
		n.cache.Put(cache.TierTables, key, inst)
	}
	return inst, nil
}

// bestResources extracts the resource allocation attaining the
// store's best consistency level.
func bestResources(
	sr semiring.Semiring[float64],
	sigma *core.Constraint[float64],
	resourceVars map[string]core.Variable,
) map[string]int {
	keep := make([]core.Variable, 0, len(resourceVars))
	for _, v := range resourceVars {
		keep = append(keep, v)
	}
	proj := core.ProjectTo(sigma, keep...)
	best := sr.Zero()
	var bestAsst core.Assignment
	proj.ForEach(func(a core.Assignment, v float64) {
		if bestAsst == nil || semiring.Gt(sr, v, best) {
			best = v
			cp := make(core.Assignment, len(a))
			for k, dv := range a {
				cp[k] = dv
			}
			bestAsst = cp
		}
	})
	out := make(map[string]int, len(resourceVars))
	for name, v := range resourceVars {
		if dv, ok := bestAsst[v]; ok {
			out[name] = int(math.Round(dv.Num))
		}
	}
	return out
}
