package broker

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"softsoa/internal/core"
	"softsoa/internal/sccp"
	"softsoa/internal/soa"
)

// This file synthesises nmsccp surface programs for journal segments so
// cmd/softsoa-replay can re-execute a broker negotiation from nothing
// but the journal. The synthesised source compiles to the exact agent
// tree negotiateOne / Renegotiate build in memory: the same variable
// declaration order, the same constraint value functions (the compiled
// expression evaluates base + per·x through the identical floating-
// point operations as soa.Attribute.ToConstraint), the same sync-flag
// comparisons and the same checked transition. Replaying it with the
// machine's default seed therefore reproduces every recorded
// transition, the final store and the blevel bit for bit.
//
// Synthesis can fail — a resource named after a keyword, a negative
// threshold the surface grammar cannot spell, a non-finite attribute.
// In that case the segment carries an empty Program and is recorded as
// evidence only, not replayed; the synthesiser proves every non-empty
// program by compiling it before handing it out.

// journalNum renders a float like the sccp formatter: %g, falling back
// to plain decimals because the lexer has no exponent syntax.
func journalNum(v float64) (string, bool) {
	if math.IsNaN(v) || math.IsInf(v, -1) {
		return "", false
	}
	if math.IsInf(v, 1) {
		return "inf", true
	}
	s := fmt.Sprintf("%g", v)
	if strings.ContainsAny(s, "eE") {
		s = fmt.Sprintf("%f", v)
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
	}
	// The text must parse back to the identical float or the replayed
	// constraint tables drift by an ulp.
	if r, err := strconv.ParseFloat(s, 64); err != nil || r != v {
		return "", false
	}
	return s, true
}

// qosExpr renders the surface expression whose compiled constraint
// equals attr.ToConstraint: the affine value for cost/downtime (the
// weighted coerce clamps negatives to 0 exactly like math.Max), the
// percentage form divided by 100 for reliability/preference (clampUnit
// matches the Max/Min pair).
func qosExpr(attr soa.Attribute) (string, bool) {
	base, ok := journalNum(attr.Base)
	if !ok {
		return "", false
	}
	per, ok := journalNum(attr.PerUnit)
	if !ok {
		return "", false
	}
	affine := fmt.Sprintf("(%s + (%s * %s))", base, per, attr.Resource)
	switch attr.Metric {
	case soa.MetricCost, soa.MetricDowntime:
		return affine, true
	default:
		return fmt.Sprintf("(%s / 100)", affine), true
	}
}

// journalArrow renders the checked transition: "->" unrestricted,
// "->[a1,a2]" with "_" for an absent bound. The surface grammar has no
// negative thresholds.
func journalArrow(lower, upper *float64) (string, bool) {
	if lower == nil && upper == nil {
		return "->", true
	}
	bound := func(p *float64) (string, bool) {
		if p == nil {
			return "_", true
		}
		if *p < 0 {
			return "", false
		}
		return journalNum(*p)
	}
	lo, ok := bound(lower)
	if !ok {
		return "", false
	}
	hi, ok := bound(upper)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("->[%s,%s]", lo, hi), true
}

// journalHeader renders the shared declaration prefix: the semiring
// and the variables in the order negotiateOne adds them to the space —
// sorted resource names, then the sync flags.
func journalHeader(srName string, names []string, maxUnits map[string]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "semiring %s.\n", srName)
	for _, name := range names {
		fmt.Fprintf(&b, "var %s in 0..%d.\n", name, maxUnits[name])
	}
	b.WriteString("var spP in 0..1.\nvar spC in 0..1.\n")
	return b.String()
}

// proveProgram compiles the synthesised source; a program that does
// not compile (keyword-named resource, inverted thresholds, flag
// variable shadowed by a resource) is withdrawn rather than recorded
// as replayable.
func proveProgram(src string) string {
	if _, err := sccp.ParseAndCompile(src); err != nil {
		return ""
	}
	return src
}

// negotiationJournalProgram renders the two-agent negotiation of
// negotiateOne:
//
//	main :: tell(offer) -> tell(spP==1) -> ask(spC==1) -> success
//	     || tell(req)   -> tell(spC==1) -> ask(spP==1)->[a1,a2] success.
func negotiationJournalProgram(
	srName string,
	offer, requirement soa.Attribute,
	names []string, maxUnits map[string]int,
	lower, upper *float64,
) string {
	offerExpr, ok := qosExpr(offer)
	if !ok {
		return ""
	}
	reqExpr, ok := qosExpr(requirement)
	if !ok {
		return ""
	}
	arrow, ok := journalArrow(lower, upper)
	if !ok {
		return ""
	}
	var b strings.Builder
	b.WriteString(journalHeader(srName, names, maxUnits))
	fmt.Fprintf(&b,
		"main :: tell(%s) -> tell((spP == 1)) -> ask((spC == 1)) -> success || tell(%s) -> tell((spC == 1)) -> ask((spP == 1))%s success.\n",
		offerExpr, reqExpr, arrow)
	return proveProgram(b.String())
}

// renegotiationJournalProgram renders a Session.Renegotiate as a
// replayable segment: a setup prefix of four tells that rebuilds the
// session store, then the retract/tell pair the live machine actually
// ran. The setup tells are ordered so variables enter the store scope
// in the recorded order — the sync flags contribute exact semiring
// identities and the two affine constraints commute exactly under the
// carrier operation, so matching the scope order makes the rebuilt
// store (and every subsequent division and combination) bit-identical
// to the live one. Returns the program and the setup length.
func renegotiationJournalProgram(
	s *Session,
	newReq soa.Attribute,
	lower, upper *float64,
) (string, int) {
	if s.offerAttr.Resource == "" || s.reqAttr.Resource == "" || len(s.maxUnits) == 0 {
		return "", 0
	}
	offerExpr, ok := qosExpr(s.offerAttr)
	if !ok {
		return "", 0
	}
	curExpr, ok := qosExpr(s.reqAttr)
	if !ok {
		return "", 0
	}
	newExpr, ok := qosExpr(newReq)
	if !ok {
		return "", 0
	}
	arrow, ok := journalArrow(lower, upper)
	if !ok {
		return "", 0
	}

	names := make([]string, 0, len(s.maxUnits))
	for name := range s.maxUnits {
		names = append(names, name)
	}
	sort.Strings(names)

	// Order the setup tells by where each constraint's variable first
	// appears in the live store's scope; the offer precedes the
	// requirement on a shared resource (their order cannot change the
	// table — the carrier operations commute exactly).
	scopeIndex := map[core.Variable]int{}
	for i, v := range s.store.Constraint().Scope() {
		scopeIndex[v] = i
	}
	type setupTell struct {
		expr string
		rank int
		tie  int
	}
	rank := func(v core.Variable, fallback int) int {
		if i, ok := scopeIndex[v]; ok {
			return i
		}
		return fallback
	}
	tells := []setupTell{
		{offerExpr, rank(core.Variable(s.offerAttr.Resource), len(scopeIndex)), 0},
		{curExpr, rank(core.Variable(s.reqAttr.Resource), len(scopeIndex) + 1), 1},
		{"(spP == 1)", rank("spP", len(scopeIndex) + 2), 2},
		{"(spC == 1)", rank("spC", len(scopeIndex) + 3), 3},
	}
	sort.SliceStable(tells, func(i, j int) bool {
		if tells[i].rank != tells[j].rank {
			return tells[i].rank < tells[j].rank
		}
		return tells[i].tie < tells[j].tie
	})

	var b strings.Builder
	b.WriteString(journalHeader(s.sr.Name(), names, s.maxUnits))
	b.WriteString("main :: ")
	for _, t := range tells {
		fmt.Fprintf(&b, "tell(%s) -> ", t.expr)
	}
	fmt.Fprintf(&b, "retract(%s) -> tell(%s)%s success.\n", curExpr, newExpr, arrow)
	if src := proveProgram(b.String()); src != "" {
		return src, len(tells)
	}
	return "", 0
}
