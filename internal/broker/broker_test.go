package broker

import (
	"context"

	"testing"

	"softsoa/internal/sccp"
	"softsoa/internal/soa"
)

func costDoc(provider, service string, base, perUnit float64, region string) *soa.Document {
	return &soa.Document{
		Service:  service,
		Provider: provider,
		Region:   region,
		Attributes: []soa.Attribute{{
			Name: "fee", Metric: soa.MetricCost,
			Base: base, PerUnit: perUnit, Resource: "failures", MaxUnits: 10,
		}},
	}
}

func reliabilityDoc(provider, service string, base, perUnit float64, region string) *soa.Document {
	return &soa.Document{
		Service:  service,
		Provider: provider,
		Region:   region,
		Attributes: []soa.Attribute{{
			Name: "uptime", Metric: soa.MetricReliability,
			Base: base, PerUnit: perUnit, Resource: "processors", MaxUnits: 4,
		}},
	}
}

func fptr(v float64) *float64 { return &v }

// TestNegotiationExample1Shape mirrors the paper's Example 1 through
// the broker: provider policy x+5, client policy 2x, acceptance
// interval [4,1] — the merged blevel 5 falls outside, so no SLA.
func TestNegotiationExample1Shape(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "failmgmt", 5, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "failmgmt",
		Client:  "p2",
		Metric:  soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "hours", Metric: soa.MetricCost,
			Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), // at most 4 hours
		Upper: fptr(1), // at least 1 hour (not "too good")
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla != nil {
		t.Fatalf("expected no agreement, got SLA %+v", sla)
	}
	if outcome.Best != -1 || len(outcome.PerProvider) != 1 {
		t.Fatalf("outcome = %+v", outcome)
	}
	if outcome.PerProvider[0].Status != sccp.Stuck {
		t.Errorf("provider status = %v, want stuck", outcome.PerProvider[0].Status)
	}
}

// TestNegotiationExample2Shape relaxes the provider policy (base 2
// instead of 5, as after the paper's retract): blevel 2 lies inside
// [4,1] and the SLA binds at zero failures.
func TestNegotiationExample2Shape(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "failmgmt", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "failmgmt",
		Client:  "p2",
		Metric:  soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "hours", Metric: soa.MetricCost,
			Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4),
		Upper: fptr(1),
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatalf("expected agreement, outcome %+v", outcome)
	}
	if sla.AgreedLevel != 2 {
		t.Errorf("agreed level = %v, want 2", sla.AgreedLevel)
	}
	if len(sla.Resources) != 1 || sla.Resources[0].Units != 0 {
		t.Errorf("resources = %+v, want failures=0", sla.Resources)
	}
	if sla.Providers[0] != "p1" {
		t.Errorf("provider = %v", sla.Providers)
	}
}

func TestNegotiationSelectsBestProvider(t *testing.T) {
	reg := soa.NewRegistry()
	// dear costs 8 flat; cheap costs 3 flat.
	if err := reg.Publish(costDoc("dear", "svc", 8, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(costDoc("cheap", "svc", 3, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10},
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatalf("expected agreement, outcome %+v", outcome)
	}
	if sla.Providers[0] != "cheap" || sla.AgreedLevel != 3 {
		t.Errorf("winner = %s at %v, want cheap at 3", sla.Providers[0], sla.AgreedLevel)
	}
	if len(outcome.PerProvider) != 2 {
		t.Errorf("tried %d providers", len(outcome.PerProvider))
	}
}

func TestNegotiationReliabilityMetric(t *testing.T) {
	reg := soa.NewRegistry()
	// The paper's 80% + 5%/processor provider.
	if err := reg.Publish(reliabilityDoc("acme", "svc", 80, 5, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricReliability,
		Requirement: soa.Attribute{
			Metric: soa.MetricReliability, Base: 100, PerUnit: 0,
			Resource: "processors", MaxUnits: 4,
		},
		Lower: fptr(0.9), // demand ≥ 90% reliability
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatalf("expected agreement, outcome %+v", outcome)
	}
	if sla.AgreedLevel != 1 {
		t.Errorf("agreed level = %v, want 1.0 (4 processors)", sla.AgreedLevel)
	}
	if sla.Resources[0].Units != 4 {
		t.Errorf("agreed processors = %d, want 4", sla.Resources[0].Units)
	}
}

func TestNegotiationErrors(t *testing.T) {
	reg := soa.NewRegistry()
	n := NewNegotiator(reg)
	if _, _, err := n.Negotiate(context.Background(), Request{}); err == nil {
		t.Error("empty request should fail")
	}
	req := Request{
		Service: "ghost", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Resource: "x"},
	}
	if _, _, err := n.Negotiate(context.Background(), req); err == nil {
		t.Error("unknown service should fail")
	}
	bad := req
	bad.Requirement.Metric = soa.MetricReliability
	if _, _, err := n.Negotiate(context.Background(), bad); err == nil {
		t.Error("metric mismatch should fail")
	}
}

func TestNegotiationSkipsProvidersWithoutMetric(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(reliabilityDoc("relonly", "svc", 90, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(costDoc("costly", "svc", 4, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil || sla.Providers[0] != "costly" {
		t.Fatalf("sla = %+v, outcome %+v", sla, outcome)
	}
}

func registryForComposition(t *testing.T) *soa.Registry {
	t.Helper()
	reg := soa.NewRegistry()
	docs := []*soa.Document{
		// Stage "red": eu provider slightly dearer than us provider.
		costDoc("red-eu", "red", 6, 0, "eu"),
		costDoc("red-us", "red", 5, 0, "us"),
		// Stage "bw": only eu.
		costDoc("bw-eu", "bw", 4, 0, "eu"),
		// Stage "compress": eu and us equal.
		costDoc("comp-eu", "compress", 3, 0, "eu"),
		costDoc("comp-us", "compress", 3, 0, "us"),
	}
	for _, d := range docs {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// TestComposeOptimalAvoidsGreedyTrap: greedy picks red-us (5 < 6),
// then pays the cross-region penalty into bw-eu; the optimal solver
// keeps the whole pipeline in eu.
func TestComposeOptimalAvoidsGreedyTrap(t *testing.T) {
	reg := registryForComposition(t)
	c := NewComposer(reg, LinkPenalty{Cost: 5, Factor: 0.9})
	req := PipelineRequest{
		Client: "shop", Stages: []string{"red", "bw", "compress"}, Metric: soa.MetricCost,
	}
	slaOpt, compOpt, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if slaOpt == nil {
		t.Fatal("optimal composition failed")
	}
	// All-eu: 6 + 4 + 3 = 13 with no penalties.
	if compOpt.Total != 13 {
		t.Errorf("optimal total = %v, want 13", compOpt.Total)
	}
	for _, ch := range compOpt.Choices {
		if ch.Region != "eu" {
			t.Errorf("optimal stage %s in region %s, want eu", ch.Service, ch.Region)
		}
	}

	slaGreedy, compGreedy, err := c.ComposeGreedy(req)
	if err != nil {
		t.Fatal(err)
	}
	if slaGreedy == nil {
		t.Fatal("greedy composition failed")
	}
	// Greedy: red-us (5), bw-eu (4+5 penalty), comp-eu (3) = 17.
	if compGreedy.Total <= compOpt.Total {
		t.Errorf("greedy total %v should exceed optimal %v on this instance",
			compGreedy.Total, compOpt.Total)
	}
	// Exhaustive agrees with B&B.
	_, compEx, err := c.ComposeExhaustive(req)
	if err != nil {
		t.Fatal(err)
	}
	if compEx.Total != compOpt.Total {
		t.Errorf("exhaustive %v != B&B %v", compEx.Total, compOpt.Total)
	}
}

func TestComposeRespectsLowerBound(t *testing.T) {
	reg := registryForComposition(t)
	c := NewComposer(reg, DefaultLinkPenalty)
	req := PipelineRequest{
		Client: "shop", Stages: []string{"red", "bw"}, Metric: soa.MetricCost,
		Lower: fptr(8), // max acceptable total cost 8; best is 10
	}
	sla, comp, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if sla != nil {
		t.Fatalf("expected rejection, got SLA %+v (total %v)", sla, comp.Total)
	}
	req.Lower = fptr(20)
	sla, _, err = c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatal("20-cost budget should admit the composition")
	}
}

func TestComposeReliabilityPipeline(t *testing.T) {
	reg := soa.NewRegistry()
	for _, d := range []*soa.Document{
		reliabilityDoc("a1", "s1", 90, 0, "eu"),
		reliabilityDoc("a2", "s1", 95, 0, "us"),
		reliabilityDoc("b1", "s2", 90, 0, "eu"),
	} {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c := NewComposer(reg, LinkPenalty{Cost: 5, Factor: 0.9})
	req := PipelineRequest{Client: "c", Stages: []string{"s1", "s2"}, Metric: soa.MetricReliability}
	sla, comp, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatal("expected composition")
	}
	// a1,b1 same region: 0.9*0.9 = 0.81; a2,b1: 0.95*0.9*0.9 = 0.7695.
	if comp.Total != 0.81 {
		t.Errorf("total = %v, want 0.81 (stay in eu)", comp.Total)
	}
	if comp.Choices[0].Provider != "a1" {
		t.Errorf("stage 1 provider = %s, want a1", comp.Choices[0].Provider)
	}
}

func TestComposeErrors(t *testing.T) {
	reg := soa.NewRegistry()
	c := NewComposer(reg, DefaultLinkPenalty)
	if _, _, err := c.Compose(PipelineRequest{}); err == nil {
		t.Error("empty request should fail")
	}
	req := PipelineRequest{Client: "c", Stages: []string{"ghost"}, Metric: soa.MetricCost}
	if _, _, err := c.Compose(req); err == nil {
		t.Error("unknown stage should fail")
	}
	if _, _, err := c.ComposeGreedy(req); err == nil {
		t.Error("greedy with unknown stage should fail")
	}
}

func TestErrNoAgreementMessage(t *testing.T) {
	err := &ErrNoAgreement{Reason: "nobody home"}
	if got := err.Error(); got != "broker: no agreement: nobody home" {
		t.Errorf("Error() = %q", got)
	}
}

func TestServerRegistryAccessor(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	if srv.Registry() == nil || srv.Registry().Len() != 0 {
		t.Error("fresh server registry should be empty and non-nil")
	}
}

func TestSessionProviderAccessor(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	_, session, _, err := NewNegotiator(reg).NegotiateSession(context.Background(), Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if session.Provider() != "p1" {
		t.Errorf("Provider() = %q", session.Provider())
	}
}

func TestPipelineValidationBranches(t *testing.T) {
	c := NewComposer(soa.NewRegistry(), DefaultLinkPenalty)
	cases := []PipelineRequest{
		{Stages: []string{"s"}, Metric: soa.MetricCost},       // no client
		{Client: "c", Metric: soa.MetricCost},                 // no stages
		{Client: "c", Stages: []string{"s"}, Metric: "bogus"}, // bad metric
	}
	for i, req := range cases {
		if _, _, err := c.Compose(req); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// Request validation branches.
	n := NewNegotiator(soa.NewRegistry())
	reqs := []Request{
		{Client: "c", Metric: soa.MetricCost},        // no service
		{Service: "s", Metric: soa.MetricCost},       // no client
		{Service: "s", Client: "c", Metric: "bogus"}, // bad metric
	}
	for i, req := range reqs {
		if _, _, err := n.Negotiate(context.Background(), req); err == nil {
			t.Errorf("request case %d: expected validation error", i)
		}
	}
}

func TestDowntimeNegotiation(t *testing.T) {
	reg := soa.NewRegistry()
	doc := &soa.Document{
		Service: "db", Provider: "ha-sql", Region: "eu",
		Attributes: []soa.Attribute{{
			Name: "monthly-downtime", Metric: soa.MetricDowntime,
			Base: 8, PerUnit: -2, Resource: "replicas", MaxUnits: 3,
		}},
	}
	if err := reg.Publish(doc); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	sla, _, err := n.Negotiate(context.Background(), Request{
		Service: "db", Client: "c", Metric: soa.MetricDowntime,
		Requirement: soa.Attribute{
			Metric: soa.MetricDowntime, Base: 1, PerUnit: 0, Resource: "replicas", MaxUnits: 3,
		},
		Lower: fptr(4), // at most 4h total downtime budget
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatal("expected downtime agreement")
	}
	// Best: 3 replicas → 8-6=2h provider + 1h client = 3h ≤ 4h.
	if sla.AgreedLevel != 3 {
		t.Errorf("agreed downtime = %v, want 3", sla.AgreedLevel)
	}
	if sla.Resources[0].Units != 3 {
		t.Errorf("replicas = %d, want 3", sla.Resources[0].Units)
	}
}

func TestDowntimeComposition(t *testing.T) {
	reg := soa.NewRegistry()
	mk := func(prov, svc, region string, base float64) *soa.Document {
		return &soa.Document{
			Service: svc, Provider: prov, Region: region,
			Attributes: []soa.Attribute{{
				Name: "dt", Metric: soa.MetricDowntime,
				Base: base, Resource: "r", MaxUnits: 1,
			}},
		}
	}
	for _, d := range []*soa.Document{
		mk("a-eu", "s1", "eu", 2),
		mk("a-us", "s1", "us", 1),
		mk("b-eu", "s2", "eu", 2),
	} {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c := NewComposer(reg, LinkPenalty{Cost: 3, Factor: 0.9})
	_, comp, err := c.Compose(PipelineRequest{
		Client: "c", Stages: []string{"s1", "s2"}, Metric: soa.MetricDowntime,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-region downtime penalty is additive: a-us+b-eu = 1+2+3=6;
	// all-eu = 2+2=4 wins.
	if comp.Total != 4 {
		t.Errorf("total downtime = %v, want 4", comp.Total)
	}
	_, greedy, err := c.ComposeGreedy(PipelineRequest{
		Client: "c", Stages: []string{"s1", "s2"}, Metric: soa.MetricDowntime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Total != 6 {
		t.Errorf("greedy downtime = %v, want 6 (falls into the trap)", greedy.Total)
	}
}
