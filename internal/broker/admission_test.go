package broker

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"softsoa/internal/broker/store"
	"softsoa/internal/soa"
)

func negotiateBody() string {
	return `<negotiate service="svc" client="shop" metric="cost">` +
		`<requirement metric="cost" base="0" perUnit="2" resource="failures" maxUnits="10"></requirement>` +
		`</negotiate>`
}

// TestAdmissionShedsWith429 fills the single admission slot, then
// checks an arriving negotiation is shed with 429 and a Retry-After
// hint — and that the shed request left no half-committed state: no
// WAL record, no SLA entry.
func TestAdmissionShedsWith429(t *testing.T) {
	mem := store.NewMemory()
	srv := NewServer(DefaultLinkPenalty,
		WithStateStore(mem),
		WithAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 0, RetryAfter: 2 * time.Second}),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	if err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot directly — the gate is a plain semaphore.
	srv.gate.sem <- struct{}{}
	resp, err := http.Post(ts.URL+"/v1/negotiations", "application/xml",
		strings.NewReader(negotiateBody()))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body close
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if n := srv.bm.admissionShed.Value(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}
	if n := len(mem.Records()); n != 1 {
		// Only the publish was journaled; the shed negotiation must
		// not have committed anything.
		t.Errorf("WAL has %d records, want 1 (the publish)", n)
	}
	srv.mu.Lock()
	live := len(srv.entries)
	srv.mu.Unlock()
	if live != 0 {
		t.Errorf("%d SLA entries after a shed negotiation, want 0", live)
	}

	// Freeing the slot restores service.
	<-srv.gate.sem
	sla, err := client.Negotiate(context.Background(), NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.ID == "" {
		t.Error("negotiation after release returned no id")
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees parks a request in the accept
// queue and checks it completes once the in-flight slot frees, while
// a second arrival overflowing the queue is shed immediately.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty,
		WithAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1}),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	if err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}

	srv.gate.sem <- struct{}{} // occupy the slot
	queued := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/negotiations", "application/xml",
			strings.NewReader(negotiateBody()))
		if err != nil {
			queued <- -1
			return
		}
		//lint:ignore errcheck test response body close
		_ = resp.Body.Close()
		queued <- resp.StatusCode
	}()
	// Wait until the goroutine's request is parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.bm.admissionQueued.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is full now: the next arrival is shed.
	resp, err := http.Post(ts.URL+"/v1/negotiations", "application/xml",
		strings.NewReader(negotiateBody()))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body close
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}

	<-srv.gate.sem // free the slot; the queued request proceeds
	if status := <-queued; status != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", status)
	}
	if n := srv.bm.admissionQueued.Value(); n != 0 {
		t.Errorf("queued gauge = %v after drain, want 0", n)
	}
}

// TestDrainRefusesHotRoutes checks BeginDrain: hot routes answer 503,
// read-only routes keep serving.
func TestDrainRefusesHotRoutes(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	if err := client.Publish(ctx, costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	sla, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	srv.BeginDrain()
	resp, err := http.Post(ts.URL+"/v1/negotiations", "application/xml",
		strings.NewReader(negotiateBody()))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore errcheck test response body close
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("negotiation during drain = %d, want 503", resp.StatusCode)
	}
	if _, err := client.Observe(ctx, sla.ID, 2); err == nil {
		t.Error("observations should be refused during drain")
	}
	// Read paths still answer while in-flight work finishes.
	if _, err := client.SLA(ctx, sla.ID); err != nil {
		t.Errorf("GET sla during drain: %v", err)
	}
	if _, err := client.Health(ctx); err != nil {
		t.Errorf("GET health during drain: %v", err)
	}
}

// TestAdmissionQueuedClientGone covers the cancellation branch: a
// queued request whose context dies releases its queue slot and gets
// 503 without the handler ever running. The gate is driven directly —
// an HTTP/1.1 server with an unread body does not propagate client
// disconnects into the request context, so the branch is not
// reachable deterministically over a real connection.
func TestAdmissionQueuedClientGone(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty,
		WithAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1}),
	)
	handlerRan := make(chan struct{}, 1)
	h := srv.admit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerRan <- struct{}{}
	}))

	srv.gate.sem <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/negotiations",
		strings.NewReader(negotiateBody())).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.bm.admissionQueued.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never unblocked after cancellation")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("cancelled-while-queued status = %d, want 503", rec.Code)
	}
	select {
	case <-handlerRan:
		t.Error("handler ran for a cancelled queued request")
	default:
	}
	if n := srv.bm.admissionQueued.Value(); n != 0 {
		t.Errorf("queued gauge = %v after cancellation, want 0", n)
	}
	<-srv.gate.sem
}
