package broker

import (
	"fmt"
	"sort"

	"softsoa/internal/core"
	"softsoa/internal/policy"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
)

// qosPair is a point in the cost × reliability product semiring.
type qosPair = semiring.Pair[float64, float64]

// MultiChoice binds one stage in a multi-objective composition.
type MultiChoice struct {
	// Service is the abstract stage.
	Service string
	// Provider is the chosen provider.
	Provider string
	// Region is the provider's region.
	Region string
	// Cost and Reliability are the provider's standalone best levels.
	Cost        float64
	Reliability float64
}

// MultiComposition is one Pareto-optimal pipeline binding.
type MultiComposition struct {
	// Choices binds each stage, in order.
	Choices []MultiChoice
	// TotalCost is the end-to-end cost including link penalties.
	TotalCost float64
	// TotalReliability is the end-to-end success probability
	// including link penalties.
	TotalReliability float64
}

// ComposeMultiObjective solves the pipeline simultaneously for cost
// (weighted semiring) and reliability (probabilistic semiring) over
// their Cartesian product — "the cartesian product of multiple
// c-semirings is still a c-semiring" (Sec. 4). Because the product
// order is partial, the result is the Pareto frontier of
// non-dominated compositions: no returned composition is both
// cheaper and more reliable than another, and every dominated
// binding is excluded. Stages are restricted to providers
// advertising both metrics (and satisfying the capability policy, if
// any).
func (c *Composer) ComposeMultiObjective(req PipelineRequest) ([]MultiComposition, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}

	type cand struct {
		provider string
		region   string
		cost     float64
		rel      float64
	}
	hasPolicy := len(req.Capabilities.Must) > 0 || len(req.Capabilities.May) > 0
	if hasPolicy && c.vocab == nil {
		return nil, fmt.Errorf("broker: pipeline states a capability policy but the broker has no vocabulary")
	}

	cands := make([][]cand, len(req.Stages))
	for i, stage := range req.Stages {
		for _, d := range c.reg.Discover(stage) {
			costAttr, okC := d.Attr(soa.MetricCost)
			relAttr, okR := d.Attr(soa.MetricReliability)
			if !okC || !okR {
				continue
			}
			if hasPolicy {
				match, err := c.vocab.Evaluate(req.Capabilities, policy.Offer{Supports: d.Capabilities})
				if err != nil {
					return nil, err
				}
				if !match.Satisfied {
					continue
				}
			}
			cost, err := standaloneLevel(soa.MetricCost, costAttr)
			if err != nil {
				return nil, err
			}
			rel, err := standaloneLevel(soa.MetricReliability, relAttr)
			if err != nil {
				return nil, err
			}
			cands[i] = append(cands[i], cand{
				provider: d.Provider, region: d.Region, cost: cost, rel: rel,
			})
		}
		if len(cands[i]) == 0 {
			return nil, fmt.Errorf("broker: no providers with both cost and reliability for stage %q", stage)
		}
	}

	sr := semiring.NewProduct[float64, float64](semiring.Weighted{}, semiring.Probabilistic{})
	space := core.NewSpace[qosPair](sr)
	vars := make([]core.Variable, len(req.Stages))
	for i := range req.Stages {
		vars[i] = space.AddVariable(
			core.Variable(fmt.Sprintf("s%d", i)),
			core.IntDomain(0, len(cands[i])-1),
		)
	}
	p := core.NewProblem(space, vars...)
	for i := range req.Stages {
		i := i
		v := vars[i]
		p.Add(core.NewConstraint(space, []core.Variable{v}, func(a core.Assignment) qosPair {
			cd := cands[i][int(a.Num(v))]
			return semiring.P(cd.cost, cd.rel)
		}))
	}
	for i := 0; i+1 < len(req.Stages); i++ {
		i := i
		u, v := vars[i], vars[i+1]
		p.Add(core.NewConstraint(space, []core.Variable{u, v}, func(a core.Assignment) qosPair {
			if cands[i][int(a.Num(u))].region == cands[i+1][int(a.Num(v))].region {
				return sr.One()
			}
			return semiring.P(c.penalty.Cost, c.penalty.Factor)
		}))
	}

	// Parallelism from WithComposerSolver is honoured; propagation is
	// not added here because the probabilistic component of the product
	// carrier makes cost shifting inexact. Note the Pareto cap: with
	// more than 64 pairwise-incomparable compositions the parallel
	// merge may keep a different (equally nondominated) subset than the
	// sequential search — see solver.WithParallel.
	res := solver.BranchAndBound(p,
		append([]solver.Option{solver.WithMaxBest(64)}, c.solverOpts...)...)
	out := make([]MultiComposition, 0, len(res.Best))
	for _, sol := range res.Best {
		mc := MultiComposition{
			TotalCost:        sol.Value.First,
			TotalReliability: sol.Value.Second,
		}
		for i, v := range vars {
			cd := cands[i][int(sol.Assignment.Num(v))]
			mc.Choices = append(mc.Choices, MultiChoice{
				Service:     req.Stages[i],
				Provider:    cd.provider,
				Region:      cd.region,
				Cost:        cd.cost,
				Reliability: cd.rel,
			})
		}
		out = append(out, mc)
	}
	// Deterministic presentation: cheapest first.
	sort.Slice(out, func(a, b int) bool {
		if out[a].TotalCost != out[b].TotalCost {
			return out[a].TotalCost < out[b].TotalCost
		}
		return out[a].TotalReliability > out[b].TotalReliability
	})
	return out, nil
}

// standaloneLevel computes a provider attribute's best level over its
// own resource range.
func standaloneLevel(metric soa.Metric, attr soa.Attribute) (float64, error) {
	sr, err := soa.SemiringFor(metric)
	if err != nil {
		return 0, err
	}
	space := core.NewSpace[float64](sr)
	res := space.AddVariable(core.Variable(attr.Resource), attr.ResourceDomain())
	con, err := attr.ToConstraint(space, res)
	if err != nil {
		return 0, err
	}
	return core.Blevel(con), nil
}
