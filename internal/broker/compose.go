package broker

import (
	"fmt"
	"time"

	"softsoa/internal/cache"
	"softsoa/internal/core"
	"softsoa/internal/policy"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
)

// PipelineRequest asks the broker to "look for complex services by
// composing together simpler service interfaces": a pipeline of
// abstract stages, each to be bound to one registered provider,
// optimising the end-to-end metric.
type PipelineRequest struct {
	// Client names the requesting party.
	Client string
	// Stages are the abstract services, in pipeline order.
	Stages []string
	// Metric selects the optimisation semiring.
	Metric soa.Metric
	// Lower (a1) bounds the acceptable end-to-end level: for cost the
	// highest acceptable total, for reliability the lowest acceptable
	// product. nil accepts any consistent composition.
	Lower *float64
	// Capabilities is the client's MUST/MAY policy. Every stage is
	// restricted to providers supporting all MUST capabilities, so the
	// composed service (the intersection of the stages' capabilities)
	// supports them too.
	Capabilities policy.Requirement
}

// Validate checks the request.
func (r *PipelineRequest) Validate() error {
	if r.Client == "" {
		return fmt.Errorf("broker: pipeline request without client")
	}
	if len(r.Stages) == 0 {
		return fmt.Errorf("broker: empty pipeline")
	}
	if !r.Metric.Valid() {
		return fmt.Errorf("broker: unknown metric %q", r.Metric)
	}
	return nil
}

// StageChoice binds one pipeline stage to a provider.
type StageChoice struct {
	// Service is the abstract stage.
	Service string
	// Provider is the chosen provider.
	Provider string
	// Level is the provider's standalone QoS level at its best
	// resource allocation.
	Level float64
	// Region is the provider's region.
	Region string
}

// Composition is a solved pipeline binding.
type Composition struct {
	// Choices binds each stage, in order.
	Choices []StageChoice
	// Total is the end-to-end level including link penalties.
	Total float64
	// Nodes counts search nodes explored.
	Nodes int64
	// Prunes counts subtrees cut by the branch-and-bound bound
	// (0 for the greedy and exhaustive baselines).
	Prunes int64
	// Tasks counts the subtree tasks the parallel work-stealing
	// driver scheduled (0 for sequential solves and the baselines).
	Tasks int64
	// Steals counts tasks taken from another worker's deque.
	Steals int64
	// Splits counts subtree splits spilled on steal demand.
	Splits int64
	// Elapsed is the solve time.
	Elapsed time.Duration
}

// LinkPenalty is the QoS cost of handing data between adjacent stages
// deployed in different regions.
type LinkPenalty struct {
	// Cost is added per cross-region hop (weighted metric).
	Cost float64
	// Factor multiplies reliability / lower-bounds preference per
	// cross-region hop ([0,1] metrics).
	Factor float64
}

// DefaultLinkPenalty matches a WAN hop: 5 cost units, 4% reliability
// loss.
var DefaultLinkPenalty = LinkPenalty{Cost: 5, Factor: 0.96}

// Composer solves pipeline compositions over a registry.
type Composer struct {
	reg        *soa.Registry
	penalty    LinkPenalty
	vocab      *policy.Vocabulary
	filter     ProviderFilter
	solverOpts []solver.Option
	cache      *cache.Cache
}

// ComposerOption configures a Composer.
type ComposerOption func(*Composer)

// WithComposerVocabulary equips the composer with a capability
// vocabulary, enabling MUST/MAY capability policies in pipeline
// requests.
func WithComposerVocabulary(v *policy.Vocabulary) ComposerOption {
	return func(c *Composer) { c.vocab = v }
}

// WithComposerProviderFilter gates stage candidates on the filter, so
// providers with an open circuit breaker are never bound into a
// pipeline. A nil filter admits everyone.
func WithComposerProviderFilter(f ProviderFilter) ComposerOption {
	return func(c *Composer) { c.filter = f }
}

// WithSolverOptions threads extra solver options (typically
// solver.WithWorkers) into every branch-and-bound composition. The
// options apply to Compose and ComposeMultiObjective; the greedy and
// exhaustive baselines ignore them.
func WithSolverOptions(opts ...solver.Option) ComposerOption {
	return func(c *Composer) { c.solverOpts = append(c.solverOpts, opts...) }
}

// WithComposerSolveCache attaches a content-addressed solve cache to
// every branch-and-bound composition (solver.WithSolveCache): repeat
// pipelines are served from the exact memo, and each pipeline shape
// (stages + metric) keeps a warm-start slot (solver.WithWarmStart), so
// a re-composition after the candidate set drifted — a breaker opened,
// a provider registered — enters the search with the previous
// composition as its initial bound. Results are bit-identical to cold
// solves. A nil cache disables caching.
func WithComposerSolveCache(c *cache.Cache) ComposerOption {
	return func(cm *Composer) { cm.cache = c }
}

// WithComposerSolver threads extra solver options into every
// branch-and-bound composition.
//
// Deprecated: use WithSolverOptions, which follows the package's
// option naming convention (see doc.go).
func WithComposerSolver(opts ...solver.Option) ComposerOption {
	return WithSolverOptions(opts...)
}

// NewComposer returns a composer with the given link penalty.
func NewComposer(reg *soa.Registry, penalty LinkPenalty, opts ...ComposerOption) *Composer {
	c := &Composer{reg: reg, penalty: penalty}
	for _, o := range opts {
		o(c)
	}
	return c
}

// candidate is one provider option for a stage, with its standalone
// best level precomputed.
type candidate struct {
	provider string
	region   string
	level    float64
}

func (c *Composer) candidates(sr semiring.Semiring[float64], req PipelineRequest, stage string) ([]candidate, error) {
	metric := req.Metric
	hasPolicy := len(req.Capabilities.Must) > 0 || len(req.Capabilities.May) > 0
	if hasPolicy && c.vocab == nil {
		return nil, fmt.Errorf("broker: pipeline states a capability policy but the broker has no vocabulary")
	}
	docs := c.reg.Discover(stage)
	var out []candidate
	for _, d := range docs {
		if c.filter != nil {
			if ok, _ := c.filter(d.Provider); !ok {
				continue
			}
		}
		attr, ok := d.Attr(metric)
		if !ok {
			continue
		}
		if hasPolicy {
			match, err := c.vocab.Evaluate(req.Capabilities, policy.Offer{Supports: d.Capabilities})
			if err != nil {
				return nil, err
			}
			if !match.Satisfied {
				continue
			}
		}
		space := core.NewSpace[float64](sr)
		res := space.AddVariable(core.Variable(attr.Resource), attr.ResourceDomain())
		con, err := attr.ToConstraint(space, res)
		if err != nil {
			return nil, err
		}
		out = append(out, candidate{
			provider: d.Provider,
			region:   d.Region,
			level:    core.Blevel(con), // best standalone level
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("broker: no providers with a %q attribute for stage %q", metric, stage)
	}
	return out, nil
}

// encode builds the composition SCSP: one variable per stage whose
// domain indexes the stage's candidates; unary constraints score each
// candidate's level; binary constraints between adjacent stages apply
// the cross-region link penalty.
func (c *Composer) encode(
	sr semiring.Semiring[float64],
	req PipelineRequest,
	cands [][]candidate,
) (*core.Problem[float64], []core.Variable) {
	space := core.NewSpace[float64](sr)
	vars := make([]core.Variable, len(req.Stages))
	for i := range req.Stages {
		vars[i] = space.AddVariable(
			core.Variable(fmt.Sprintf("s%d", i)),
			core.IntDomain(0, len(cands[i])-1),
		)
	}
	p := core.NewProblem(space, vars...)
	for i := range req.Stages {
		i := i
		v := vars[i]
		p.Add(core.NewConstraint(space, []core.Variable{v}, func(a core.Assignment) float64 {
			return cands[i][int(a.Num(v))].level
		}))
	}
	for i := 0; i+1 < len(req.Stages); i++ {
		i := i
		u, v := vars[i], vars[i+1]
		p.Add(core.NewConstraint(space, []core.Variable{u, v}, func(a core.Assignment) float64 {
			cu := cands[i][int(a.Num(u))]
			cv := cands[i+1][int(a.Num(v))]
			if cu.region == cv.region {
				return sr.One()
			}
			if req.Metric == soa.MetricCost || req.Metric == soa.MetricDowntime {
				return c.penalty.Cost
			}
			return c.penalty.Factor
		}))
	}
	return p, vars
}

// Compose solves the pipeline optimally with branch and bound and
// returns the SLA binding every stage, or a nil SLA when no
// composition meets the requested lower bound. Extra solver options
// (e.g. solver.WithTelemetry for journaling the search) are appended
// to the composer's own.
func (c *Composer) Compose(req PipelineRequest, extra ...solver.Option) (*soa.SLA, *Composition, error) {
	return c.compose(req, func(p *core.Problem[float64]) solver.Result[float64] {
		opts := append(c.solveOpts(req), extra...)
		return solver.BranchAndBound(p, opts...)
	})
}

// solveOpts assembles the branch-and-bound options for a composition:
// the configured extras (parallelism) plus soft-AC propagation to
// tighten the unaries and seed the root bound with c∅ before the
// search starts. Propagation is enabled only for the metrics whose
// carrier operations are floating-point-exact — cost and downtime
// (weighted min/+ with ÷ = −, exact on the registry's magnitudes) and
// preference (fuzzy max/min, always exact) — so the reported Total is
// bitwise identical to the unpropagated search. Reliability rides on
// the probabilistic semiring, whose ×/÷ cost shifts round, so it
// searches unseeded rather than risk an ulp-different agreement level.
// When a solve cache is attached, the solve additionally reads the
// exact memo and the pipeline shape's warm-start slot (see
// WithComposerSolveCache).
func (c *Composer) solveOpts(req PipelineRequest) []solver.Option {
	opts := append([]solver.Option(nil), c.solverOpts...)
	if req.Metric != soa.MetricReliability {
		opts = append(opts, solver.WithPropagation(0))
	}
	if c.cache != nil {
		opts = append(opts, solver.WithSolveCache(c.cache), solver.WithWarmStart(composeSlotKey(req)))
	}
	return opts
}

// ComposeExhaustive solves by full enumeration (the reference).
func (c *Composer) ComposeExhaustive(req PipelineRequest) (*soa.SLA, *Composition, error) {
	return c.compose(req, func(p *core.Problem[float64]) solver.Result[float64] {
		return solver.Exhaustive(p)
	})
}

func (c *Composer) compose(
	req PipelineRequest,
	solve func(*core.Problem[float64]) solver.Result[float64],
) (*soa.SLA, *Composition, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	sr, err := soa.SemiringFor(req.Metric)
	if err != nil {
		return nil, nil, err
	}
	cands := make([][]candidate, len(req.Stages))
	for i, stage := range req.Stages {
		cs, err := c.candidates(sr, req, stage)
		if err != nil {
			return nil, nil, err
		}
		cands[i] = cs
	}
	p, vars := c.encode(sr, req, cands)
	res := solve(p)
	comp := &Composition{
		Nodes:   res.Stats.Nodes,
		Prunes:  res.Stats.Prunes,
		Tasks:   res.Stats.Tasks,
		Steals:  res.Stats.Steals,
		Splits:  res.Stats.Splits,
		Elapsed: res.Stats.Elapsed,
	}
	if len(res.Best) == 0 {
		return nil, comp, nil
	}
	best := res.Best[0]
	comp.Total = best.Value
	for i, v := range vars {
		cand := cands[i][int(best.Assignment.Num(v))]
		comp.Choices = append(comp.Choices, StageChoice{
			Service:  req.Stages[i],
			Provider: cand.provider,
			Level:    cand.level,
			Region:   cand.region,
		})
	}
	if req.Lower != nil && semiring.Lt(sr, comp.Total, *req.Lower) {
		return nil, comp, nil // best composition still below the bar
	}
	return compositionSLA(req, comp), comp, nil
}

// ComposeGreedy is the baseline: it binds stages left to right,
// locally maximising the candidate level combined with the link
// penalty to the previously chosen stage. Fast, but blind to
// downstream penalties — experiment E11 quantifies the quality gap.
func (c *Composer) ComposeGreedy(req PipelineRequest) (*soa.SLA, *Composition, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	sr, err := soa.SemiringFor(req.Metric)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	comp := &Composition{}
	total := sr.One()
	prevRegion := ""
	for i, stage := range req.Stages {
		cs, err := c.candidates(sr, req, stage)
		if err != nil {
			return nil, nil, err
		}
		bestScore := sr.Zero()
		bestIdx := -1
		for j, cand := range cs {
			comp.Nodes++
			score := cand.level
			if i > 0 && cand.region != prevRegion {
				score = sr.Times(score, c.linkValue(sr, req.Metric))
			}
			if bestIdx < 0 || semiring.Gt(sr, score, bestScore) {
				bestScore = score
				bestIdx = j
			}
		}
		cand := cs[bestIdx]
		total = sr.Times(total, bestScore)
		prevRegion = cand.region
		comp.Choices = append(comp.Choices, StageChoice{
			Service:  stage,
			Provider: cand.provider,
			Level:    cand.level,
			Region:   cand.region,
		})
	}
	comp.Total = total
	comp.Elapsed = time.Since(start)
	if req.Lower != nil && semiring.Lt(sr, comp.Total, *req.Lower) {
		return nil, comp, nil
	}
	return compositionSLA(req, comp), comp, nil
}

func (c *Composer) linkValue(sr semiring.Semiring[float64], m soa.Metric) float64 {
	if m == soa.MetricCost || m == soa.MetricDowntime {
		return c.penalty.Cost
	}
	return c.penalty.Factor
}

func compositionSLA(req PipelineRequest, comp *Composition) *soa.SLA {
	sla := &soa.SLA{
		Service:     fmt.Sprintf("pipeline(%d stages)", len(req.Stages)),
		Client:      req.Client,
		Metric:      req.Metric,
		AgreedLevel: comp.Total,
	}
	for _, ch := range comp.Choices {
		sla.Providers = append(sla.Providers, ch.Provider)
	}
	return sla
}
