// Package broker implements the QoS broker/orchestrator of Fig. 6:
// the module between clients and providers that hosts a soft
// constraint solver and an nmsccp engine to negotiate Service Level
// Agreements (steps 1–5 of the paper's protocol), to select the best
// provider among those registered, and to compose pipelines of
// services optimising end-to-end QoS. The HTTP front-end in server.go
// exposes the same operations over XML, standing in for the SOAP/UDDI
// stack the paper assumes.
//
// # The v1 HTTP API
//
// The broker's surface is versioned under /v1. Resources are nouns;
// identifiers live in the path:
//
//	POST /v1/providers                        publish a QoS document (201)
//	GET  /v1/providers?query=<service>        discover providers for a service
//	POST /v1/negotiations                     negotiate an SLA (or 409 + failure report)
//	POST /v1/negotiations/{id}/renegotiate    relax a live agreement nonmonotonically
//	GET  /v1/negotiations/{id}/journal        flight-recorder journal (JSON; ?format=jsonl)
//	GET  /v1/slas/{id}                        current agreement for an SLA
//	GET  /v1/slas/{id}/compliance             compliance summary for an SLA
//	POST /v1/observations                     record a measured service level
//	POST /v1/compositions                     solve a pipeline composition
//	GET  /v1/health                           per-provider circuit-breaker states
//	GET  /v1/metrics                          Prometheus text-format metrics
//	GET  /v1/debug/traces                     recent request traces (JSON)
//
// The pre-v1 routes (/publish, /discover?service=, /negotiate,
// /renegotiate, /sla?id=, /observe, /compliance?id=, /compose,
// /health) remain as deprecated aliases: each rewrites the request to
// its /v1 equivalent — bodies and query parameters preserved verbatim
// — re-enters the mux, and increments the
// broker_http_legacy_requests_total metric so operators can watch
// residual legacy traffic drain before removing the aliases.
//
// Every request is traced: the server adopts the client's
// X-Softsoa-Trace header (minting an ID when absent), echoes it on
// the response, and records the pipeline stages — parse, per-provider
// c∅ precheck, nmsccp run, SLA commit — as spans in a ring buffer
// served by GET /v1/debug/traces. Metrics cover per-route HTTP
// traffic, negotiation outcomes and agreed levels, solver search
// statistics, breaker transitions, live SLAs, observations and
// failovers; see the README's Observability section for the
// catalogue.
//
// # Options convention
//
// Constructors take variadic functional options, one option type per
// constructed value, named With<Thing> on the type they configure:
//
//   - NewServer:     ServerOption     (WithServerVocabulary, WithBreaker,
//     WithFailover, WithRequestTimeout, WithSolverWorkers,
//     WithMetricsRegistry, WithTraceCapacity, WithSolveCache)
//   - NewNegotiator: NegotiatorOption (WithVocabulary, WithProviderFilter,
//     WithNegotiatorSolveCache)
//   - NewComposer:   ComposerOption   (WithComposerVocabulary,
//     WithComposerProviderFilter, WithSolverOptions,
//     WithComposerSolveCache)
//   - NewClient:     ClientOption     (WithRetry, WithClientTimeout)
//
// Options are applied in order, later options overriding earlier
// ones; the zero configuration is always valid. Options that forward
// a whole option set to a subordinate component are named
// With<Component>Options (WithSolverOptions).
//
// Two deprecated spellings are kept as thin aliases and will not grow
// new behaviour: WithComposerSolver (use WithSolverOptions) and
// WithSolverParallelism (use WithSolverWorkers, whose worker count
// follows the solver convention — 0 means runtime.GOMAXPROCS(0), 1
// means the sequential path).
//
// # Solve cache
//
// NewServer attaches a bounded content-addressed solve cache
// (internal/cache) by default and threads it to its negotiator and
// composer; WithSolveCache overrides the default (nil disables).
// With the cache on, repeat negotiations with identical content
// replay memoised plans — emitting byte-identical flight-recorder
// journals without re-running the transition machine — sessions
// share renegotiation plans under history-derived keys, the
// c∅ precheck and composition solves read propagation fixpoints and
// exact search memos through the cache, and composition re-solves
// warm-start from the previous frontier. Cached outcomes are bitwise
// those of the cold runs; error outcomes are never cached. Hit rates
// are exported as the cache_* metric families on /v1/metrics.
package broker
