package broker

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"softsoa/internal/obs"
	"softsoa/internal/soa"
)

// get fetches a path from the test server and returns status + body.
func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// post sends an XML body to a path and returns status + body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(out)
}

// TestLegacyDiscoverAliasEquivalence is the alias regression test: a
// legacy GET /discover?service=S must return byte-for-byte the same
// body as GET /v1/providers?query=S, with the service parameter
// renamed — query strings and bodies travel through the alias
// verbatim.
func TestLegacyDiscoverAliasEquivalence(t *testing.T) {
	ts, client := newTestServer(t)
	for _, d := range []*soa.Document{
		costDoc("p1", "failmgmt", 2, 0, "eu"),
		costDoc("p2", "failmgmt", 7, 1, "us"),
	} {
		if err := client.Publish(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	legacyStatus, legacyBody := get(t, ts, "/discover?service=failmgmt")
	v1Status, v1Body := get(t, ts, "/v1/providers?query=failmgmt")
	if legacyStatus != http.StatusOK || v1Status != http.StatusOK {
		t.Fatalf("status legacy=%d v1=%d, want 200/200", legacyStatus, v1Status)
	}
	if legacyBody != v1Body {
		t.Errorf("alias body mismatch\n--- legacy ---\n%s\n--- v1 ---\n%s", legacyBody, v1Body)
	}
	// Legacy traffic is observable: the alias counts the hit.
	_, metrics := get(t, ts, "/v1/metrics")
	if !strings.Contains(metrics, `broker_http_legacy_requests_total{route="/discover"} 1`) {
		t.Errorf("legacy /discover hit not counted:\n%s", metrics)
	}
	// The missing-parameter contract survives the rename.
	if status, _ := get(t, ts, "/discover"); status != http.StatusBadRequest {
		t.Errorf("legacy /discover without service = %d, want 400", status)
	}
}

// TestLegacyRenegotiateAliasPreservesBody exercises the one alias
// that must read the body (to lift the SLA id into the v1 path) and
// then restore it verbatim for the handler.
func TestLegacyRenegotiateAliasPreservesBody(t *testing.T) {
	ts, client := newTestServer(t)
	if err := client.Publish(context.Background(), costDoc("p1", "failmgmt", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	negotiate := `<negotiate service="failmgmt" client="shop" metric="cost">` +
		`<requirement metric="cost" base="0" perUnit="2" resource="failures" maxUnits="10"></requirement>` +
		`<lower>4</lower><upper>1</upper></negotiate>`
	status, body := post(t, ts, "/negotiate", negotiate)
	if status != http.StatusOK {
		t.Fatalf("legacy negotiate = %d: %s", status, body)
	}
	var sla soa.SLA
	if err := xml.Unmarshal([]byte(body), &sla); err != nil {
		t.Fatalf("decode SLA: %v", err)
	}
	reneg := fmt.Sprintf(`<renegotiate id=%q>`+
		`<requirement metric="cost" base="0" perUnit="2" resource="failures" maxUnits="10"></requirement>`+
		`<lower>4</lower><upper>1</upper></renegotiate>`, sla.ID)
	status, body = post(t, ts, "/renegotiate", reneg)
	if status != http.StatusOK {
		t.Fatalf("legacy renegotiate = %d: %s", status, body)
	}
	if !strings.Contains(body, sla.ID) {
		t.Errorf("renegotiated SLA does not carry id %s: %s", sla.ID, body)
	}
	// Unknown and missing ids keep the structured 404.
	if status, _ = post(t, ts, "/renegotiate", `<renegotiate id="sla-999"></renegotiate>`); status != http.StatusNotFound {
		t.Errorf("unknown id = %d, want 404", status)
	}
	if status, _ = post(t, ts, "/renegotiate", `<renegotiate></renegotiate>`); status != http.StatusNotFound {
		t.Errorf("missing id = %d, want 404", status)
	}
}

// TestTracePropagationEndToEnd drives a traced negotiation through
// the real client and server: the client's trace ID travels in
// X-Softsoa-Trace, the server adopts it, and the recorded trace
// carries the pipeline spans — parse, the negotiator's nmsccp run,
// and the SLA commit — under the client's ID.
func TestTracePropagationEndToEnd(t *testing.T) {
	ts, client := newTestServer(t)
	if err := client.Publish(context.Background(), costDoc("p1", "failmgmt", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("cli-trace-1")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), Upper: fptr(1),
	}); err != nil {
		t.Fatal(err)
	}

	// The server records the trace after the response is written, so
	// poll briefly instead of racing it.
	var spans []string
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, body := get(t, ts, "/v1/debug/traces")
		var dump struct {
			Traces []struct {
				ID    string `json:"id"`
				Spans []struct {
					Name string `json:"name"`
				} `json:"spans"`
			} `json:"traces"`
		}
		if err := json.Unmarshal([]byte(body), &dump); err != nil {
			t.Fatalf("decode traces: %v\n%s", err, body)
		}
		for _, rec := range dump.Traces {
			if rec.ID == "cli-trace-1" {
				for _, sp := range rec.Spans {
					spans = append(spans, sp.Name)
				}
			}
		}
		if spans != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(spans) < 3 {
		t.Fatalf("traced negotiation recorded %d spans %v, want >= 3", len(spans), spans)
	}
	for _, want := range []string{"parse", "nmsccp:p1", "sla-commit"} {
		found := false
		for _, s := range spans {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("spans %v missing %q", spans, want)
		}
	}
}

// TestMetricsExposition drives one of everything through the v1 API
// and checks the Prometheus endpoint serves the full catalogue.
func TestMetricsExposition(t *testing.T) {
	ts, client := newTestServer(t)
	ctx := context.Background()
	for _, d := range []*soa.Document{
		costDoc("p1", "stage-a", 2, 0, "eu"),
		costDoc("p2", "stage-b", 3, 0, "eu"),
	} {
		if err := client.Publish(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	sla, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "stage-a", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Observe(ctx, sla.ID, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Compose(ctx, ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"stage-a", "stage-b"},
	}); err != nil {
		t.Fatal(err)
	}

	status, body := get(t, ts, "/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", status)
	}
	families := strings.Count(body, "# TYPE ")
	if families < 12 {
		t.Errorf("exposition serves %d families, want >= 12:\n%s", families, body)
	}
	for _, want := range []string{
		`broker_http_requests_total{route="/v1/negotiations",method="POST",status="200"} 1`,
		`broker_negotiations_total{outcome="agreed"} 1`,
		`broker_negotiation_blevel_count 1`,
		`broker_solver_solves_total{mode="optimal"} 1`,
		`broker_observations_total{result="ok"} 1`,
		`broker_slas_active 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestClientPing covers the health probe: success against a live
// broker, a typed *BrokerError against a broken one.
func TestClientPing(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusInternalServerError, "down for maintenance")
	}))
	t.Cleanup(broken.Close)
	err := NewClient(broken.URL, broken.Client()).Ping(context.Background())
	var be *BrokerError
	if !errors.As(err, &be) {
		t.Fatalf("Ping err = %v, want *BrokerError", err)
	}
	if be.Status != http.StatusInternalServerError || be.Reason != "down for maintenance" {
		t.Errorf("BrokerError = %+v", be)
	}
}
