package broker

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"softsoa/internal/obs"
	"softsoa/internal/obs/journal"
	"softsoa/internal/soa"
)

// RetryPolicy configures the client's retry loop for retryable
// failures: connection errors, 5xx responses, and 429 overload sheds
// (which additionally honour the broker's Retry-After hint).
// Definitive broker answers — 2xx, other 4xx and in particular the
// 409 behind ErrNoAgreement — are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it (exponential backoff). Zero means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 2s.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay drawn uniformly at random
	// and added to it, in [0,1]; it decorrelates clients hammering a
	// recovering broker. Zero means no jitter.
	Jitter float64
	// Seed makes the jitter sequence deterministic (tests); the zero
	// seed is used as-is.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// DefaultRetryPolicy is a sensible production policy: 3 attempts, 50ms
// base delay, 50% jitter.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, Jitter: 0.5}

// Client is a typed HTTP client for a broker daemon. The zero value
// is unusable; construct with NewClient. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	timeout time.Duration

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu (jitter draws race across retry loops)
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetry enables retries with the given policy.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithClientTimeout bounds each individual attempt (not the whole
// retry loop, which the caller bounds via its context). Zero means
// no per-attempt timeout.
func WithClientTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient returns a client for the broker at baseURL (e.g.
// "http://localhost:8700"). A nil httpClient uses
// http.DefaultClient. Without options the client makes exactly one
// attempt per call, preserving the behaviour of earlier versions.
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, hc: httpClient}
	for _, o := range opts {
		o(c)
	}
	c.rng = rand.New(rand.NewSource(c.retry.Seed))
	return c
}

// ErrNoAgreement is returned when the broker found no acceptable
// agreement or composition (HTTP 409).
type ErrNoAgreement struct {
	// Reason is the broker's explanation.
	Reason string
	// Tried lists the providers attempted during a negotiation.
	Tried []ProviderReport
}

// Error implements error.
func (e *ErrNoAgreement) Error() string {
	return fmt.Sprintf("broker: no agreement: %s", e.Reason)
}

// BrokerError is a non-2xx broker response decoded from the
// structured <error reason="..."/> body.
type BrokerError struct {
	// Op is the failing operation (the request path).
	Op string
	// Status is the HTTP status code.
	Status int
	// Reason is the broker's structured reason, or the raw body when
	// the broker (or an intermediary) answered with something else.
	Reason string
}

// Error implements error.
func (e *BrokerError) Error() string {
	return fmt.Sprintf("broker: %s: HTTP %d: %s", e.Op, e.Status, e.Reason)
}

// Temporary reports whether the failure is transient and worth
// retrying: a server-side 5xx, or a 429 shed by the broker's
// admission gate.
func (e *BrokerError) Temporary() bool {
	return e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// maxRetryAfter caps how long a Retry-After hint can stretch one
// backoff sleep, so a misbehaving server cannot stall a deadline-less
// caller indefinitely.
const maxRetryAfter = 30 * time.Second

// do runs one HTTP request with the client's retry policy: connection
// errors, 5xx responses and 429 sheds are retried with exponential
// backoff and jitter until the attempts are exhausted or ctx is
// cancelled; any other response is returned to the caller
// immediately. A Retry-After header on a shed response raises the
// backoff to at least the broker's hint.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := c.attempt(ctx, method, path, body)
		if err == nil && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return resp, nil
		}
		var retryAfter time.Duration
		if err != nil {
			lastErr = fmt.Errorf("broker: %s: %w", path, err)
		} else {
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = httpError(path, resp)
			discard(resp)
		}
		// Never keep retrying past the caller's deadline or after the
		// budget is spent.
		if attempt >= attempts || ctx.Err() != nil {
			return nil, lastErr
		}
		delay := c.backoff(attempt)
		if retryAfter > delay {
			delay = retryAfter
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// parseRetryAfter reads a Retry-After header in its delay-seconds
// form (the only form the broker emits), capped at maxRetryAfter.
// Malformed or absent values mean no hint.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// attempt runs a single HTTP round trip under the per-attempt
// timeout.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		// The response body must stay readable after we return, so the
		// cancel is tied to the body's lifetime below.
		resp, err := c.roundTrip(ctx, method, path, body)
		if err != nil {
			cancel()
			return nil, err
		}
		resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	}
	return c.roundTrip(ctx, method, path, body)
}

func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/xml")
	}
	// Propagate the caller's trace so the broker's spans land under
	// the same trace ID.
	if tr := obs.TraceFrom(ctx); tr != nil {
		req.Header.Set(obs.TraceHeader, tr.ID())
	}
	return c.hc.Do(req)
}

// cancelOnClose releases a per-attempt timeout context when the
// response body is closed.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// backoff computes the delay before retry number attempt (1-based):
// BaseDelay·2^(attempt-1), capped at MaxDelay, plus uniform jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.retry.BaseDelay << (attempt - 1)
	if d <= 0 || d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	if c.retry.Jitter > 0 {
		c.mu.Lock()
		f := c.rng.Float64()
		c.mu.Unlock()
		d += time.Duration(f * c.retry.Jitter * float64(d))
	}
	return d
}

// Publish registers a provider QoS document with the broker.
func (c *Client) Publish(ctx context.Context, doc *soa.Document) error {
	body, err := doc.Render()
	if err != nil {
		return err
	}
	const path = "/v1/providers"
	resp, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusCreated {
		return httpError(path, resp)
	}
	return nil
}

// Discover lists the registered QoS documents for a service.
func (c *Client) Discover(ctx context.Context, service string) ([]soa.Document, error) {
	path := "/v1/providers?query=" + url.QueryEscape(service)
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(path, resp)
	}
	var dr DiscoverResponse
	if err := xml.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return nil, fmt.Errorf("broker: decode discover response: %w", err)
	}
	return dr.Documents, nil
}

// Negotiate runs a QoS negotiation and returns the signed SLA. A
// *ErrNoAgreement error reports a completed but unsuccessful
// negotiation and is never retried.
func (c *Client) Negotiate(ctx context.Context, req NegotiateRequest) (*soa.SLA, error) {
	return c.postForSLA(ctx, "/v1/negotiations", req)
}

// Compose asks the broker to bind a pipeline of services.
func (c *Client) Compose(ctx context.Context, req ComposeRequest) (*soa.SLA, error) {
	return c.postForSLA(ctx, "/v1/compositions", req)
}

// Renegotiate relaxes an existing agreement: the broker retracts the
// old requirement from the SLA's live store and tells the new one.
// A *ErrNoAgreement error means the relaxation was rejected and the
// previous agreement stands.
func (c *Client) Renegotiate(ctx context.Context, req RenegotiateRequest) (*soa.SLA, error) {
	return c.postForSLA(ctx, "/v1/negotiations/"+url.PathEscape(req.ID)+"/renegotiate", req)
}

// Journal fetches the flight-recorder journal retained for a
// negotiation, renegotiation or composition id, in the canonical
// JSONL dump format (the bytes softsoa-replay verifies).
func (c *Client) Journal(ctx context.Context, id string) (*journal.Journal, error) {
	path := "/v1/negotiations/" + url.PathEscape(id) + "/journal?format=jsonl"
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(path, resp)
	}
	return journal.ReadJSONL(resp.Body)
}

// Observe reports one measured service level for an agreement and
// returns whether it violated the SLA with the updated compliance
// summary.
func (c *Client) Observe(ctx context.Context, id string, level float64) (*ObserveResponse, error) {
	body, err := xml.Marshal(ObserveRequest{ID: id, Level: level})
	if err != nil {
		return nil, fmt.Errorf("broker: encode observation: %w", err)
	}
	const path = "/v1/observations"
	resp, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return nil, err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(path, resp)
	}
	var or ObserveResponse
	if err := xml.NewDecoder(resp.Body).Decode(&or); err != nil {
		return nil, fmt.Errorf("broker: decode observation: %w", err)
	}
	return &or, nil
}

// Compliance fetches the compliance summary for an agreement.
func (c *Client) Compliance(ctx context.Context, id string) (*MonitorReport, error) {
	path := "/v1/slas/" + url.PathEscape(id) + "/compliance"
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(path, resp)
	}
	var mr MonitorReport
	if err := xml.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("broker: decode compliance: %w", err)
	}
	return &mr, nil
}

// SLA fetches the current agreement by id.
func (c *Client) SLA(ctx context.Context, id string) (*soa.SLA, error) {
	path := "/v1/slas/" + url.PathEscape(id)
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(path, resp)
	}
	var sla soa.SLA
	if err := xml.NewDecoder(resp.Body).Decode(&sla); err != nil {
		return nil, fmt.Errorf("broker: decode SLA: %w", err)
	}
	return &sla, nil
}

// Health fetches the broker's per-provider circuit breaker states.
func (c *Client) Health(ctx context.Context) ([]ProviderHealth, error) {
	const path = "/v1/health"
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(path, resp)
	}
	var hr HealthResponse
	if err := xml.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil, fmt.Errorf("broker: decode health: %w", err)
	}
	return hr.Providers, nil
}

// Ping checks that the broker is reachable and answering /v1/health,
// without decoding the body. It returns nil on success and a
// *BrokerError (or transport error) otherwise.
func (c *Client) Ping(ctx context.Context) error {
	const path = "/v1/health"
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return httpError(path, resp)
	}
	return nil
}

func (c *Client) postForSLA(ctx context.Context, path string, req any) (*soa.SLA, error) {
	body, err := xml.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("broker: encode request: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return nil, err
	}
	defer discard(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var sla soa.SLA
		if err := xml.NewDecoder(resp.Body).Decode(&sla); err != nil {
			return nil, fmt.Errorf("broker: decode SLA: %w", err)
		}
		return &sla, nil
	case http.StatusConflict:
		var fr FailureResponse
		if err := xml.NewDecoder(resp.Body).Decode(&fr); err != nil {
			return nil, fmt.Errorf("broker: decode failure: %w", err)
		}
		return nil, &ErrNoAgreement{Reason: fr.Reason, Tried: fr.Tried}
	default:
		return nil, httpError(path, resp)
	}
}

// httpError turns a non-2xx response into a *BrokerError, decoding
// the broker's structured <error reason="..."/> body when present.
func httpError(op string, resp *http.Response) error {
	//lint:ignore errcheck best-effort read of the error body; a partial body still yields a useful BrokerError
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	be := &BrokerError{Op: op, Status: resp.StatusCode}
	var xe XMLError
	if err := xml.Unmarshal(msg, &xe); err == nil && xe.Reason != "" {
		be.Reason = xe.Reason
	} else {
		be.Reason = string(bytes.TrimSpace(msg))
	}
	return be
}

func discard(resp *http.Response) {
	//lint:ignore errcheck draining a doomed response body to enable connection reuse; nothing to do on failure
	_, _ = io.Copy(io.Discard, resp.Body)
	//lint:ignore errcheck closing a response body cannot be meaningfully handled here
	_ = resp.Body.Close()
}
