package broker

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"softsoa/internal/soa"
)

// Client is a typed HTTP client for a broker daemon. The zero value
// is unusable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the broker at baseURL (e.g.
// "http://localhost:8700"). A nil httpClient uses
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, hc: httpClient}
}

// ErrNoAgreement is returned when the broker found no acceptable
// agreement or composition (HTTP 409).
type ErrNoAgreement struct {
	// Reason is the broker's explanation.
	Reason string
	// Tried lists the providers attempted during a negotiation.
	Tried []ProviderReport
}

// Error implements error.
func (e *ErrNoAgreement) Error() string {
	return fmt.Sprintf("broker: no agreement: %s", e.Reason)
}

// Publish registers a provider QoS document with the broker.
func (c *Client) Publish(doc *soa.Document) error {
	body, err := doc.Render()
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+"/publish", "application/xml", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("broker: publish: %w", err)
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusCreated {
		return httpError("publish", resp)
	}
	return nil
}

// Discover lists the registered QoS documents for a service.
func (c *Client) Discover(service string) ([]soa.Document, error) {
	u := c.base + "/discover?service=" + url.QueryEscape(service)
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, fmt.Errorf("broker: discover: %w", err)
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("discover", resp)
	}
	var dr DiscoverResponse
	if err := xml.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return nil, fmt.Errorf("broker: decode discover response: %w", err)
	}
	return dr.Documents, nil
}

// Negotiate runs a QoS negotiation and returns the signed SLA. A
// *ErrNoAgreement error reports a completed but unsuccessful
// negotiation.
func (c *Client) Negotiate(req NegotiateRequest) (*soa.SLA, error) {
	return c.postForSLA("/negotiate", req)
}

// Compose asks the broker to bind a pipeline of services.
func (c *Client) Compose(req ComposeRequest) (*soa.SLA, error) {
	return c.postForSLA("/compose", req)
}

// Renegotiate relaxes an existing agreement: the broker retracts the
// old requirement from the SLA's live store and tells the new one.
// A *ErrNoAgreement error means the relaxation was rejected and the
// previous agreement stands.
func (c *Client) Renegotiate(req RenegotiateRequest) (*soa.SLA, error) {
	return c.postForSLA("/renegotiate", req)
}

// Observe reports one measured service level for an agreement and
// returns whether it violated the SLA with the updated compliance
// summary.
func (c *Client) Observe(id string, level float64) (*ObserveResponse, error) {
	body, err := xml.Marshal(ObserveRequest{ID: id, Level: level})
	if err != nil {
		return nil, fmt.Errorf("broker: encode observation: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/observe", "application/xml", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("broker: observe: %w", err)
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("observe", resp)
	}
	var or ObserveResponse
	if err := xml.NewDecoder(resp.Body).Decode(&or); err != nil {
		return nil, fmt.Errorf("broker: decode observation: %w", err)
	}
	return &or, nil
}

// Compliance fetches the compliance summary for an agreement.
func (c *Client) Compliance(id string) (*MonitorReport, error) {
	resp, err := c.hc.Get(c.base + "/compliance?id=" + url.QueryEscape(id))
	if err != nil {
		return nil, fmt.Errorf("broker: compliance: %w", err)
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("compliance", resp)
	}
	var mr MonitorReport
	if err := xml.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("broker: decode compliance: %w", err)
	}
	return &mr, nil
}

// SLA fetches the current agreement by id.
func (c *Client) SLA(id string) (*soa.SLA, error) {
	resp, err := c.hc.Get(c.base + "/sla?id=" + url.QueryEscape(id))
	if err != nil {
		return nil, fmt.Errorf("broker: sla: %w", err)
	}
	defer discard(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("sla", resp)
	}
	var sla soa.SLA
	if err := xml.NewDecoder(resp.Body).Decode(&sla); err != nil {
		return nil, fmt.Errorf("broker: decode SLA: %w", err)
	}
	return &sla, nil
}

func (c *Client) postForSLA(path string, req any) (*soa.SLA, error) {
	body, err := xml.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("broker: encode request: %w", err)
	}
	resp, err := c.hc.Post(c.base+path, "application/xml", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("broker: %s: %w", path, err)
	}
	defer discard(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var sla soa.SLA
		if err := xml.NewDecoder(resp.Body).Decode(&sla); err != nil {
			return nil, fmt.Errorf("broker: decode SLA: %w", err)
		}
		return &sla, nil
	case http.StatusConflict:
		var fr FailureResponse
		if err := xml.NewDecoder(resp.Body).Decode(&fr); err != nil {
			return nil, fmt.Errorf("broker: decode failure: %w", err)
		}
		return nil, &ErrNoAgreement{Reason: fr.Reason, Tried: fr.Tried}
	default:
		return nil, httpError(path, resp)
	}
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("broker: %s: HTTP %d: %s", op, resp.StatusCode, bytes.TrimSpace(msg))
}

func discard(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
