// Package slo is the broker's always-on SLO layer: a periodic
// reconciliation sweep that walks every live SLA, recomputes
// compliance from the accumulated observations, and publishes the
// aggregate dependability signals the paper's monitoring story calls
// for — per-SLA/per-provider compliance gauges, a blevel-drift
// histogram (how far the observed level has strayed from the
// negotiated one), and multi-window burn rates (violation rate over a
// fast ~1m window and a slow ~1h window). Crossing the fast-window
// threshold marks the SLA *at risk*: a structured slog event is
// emitted carrying the SLA id and a trace id, the slo_at_risk gauge
// flips, and the configured OnAtRisk hook fires — the broker wires it
// to violation-driven failover, so a degraded provider is rebound
// before the per-observation failover path would have noticed.
//
// The sweep loop is driven by an injectable clock.Clock: production
// runs it on a ticker (Run), tests call Sweep directly under a fake
// clock and assert every gauge and burn-rate transition
// deterministically, with no sleeps.
package slo

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"softsoa/internal/clock"
	"softsoa/internal/obs"
)

// Sample is one live SLA's compliance state at sweep time, produced
// by the Source (the broker). Observations and Violations are
// cumulative for the SLA's *current* monitor — a failover installs a
// fresh monitor, so the counters (and Provider) reset together, which
// the reconciler detects and treats as a window reset.
type Sample struct {
	// ID is the SLA id ("sla-7").
	ID string
	// Provider is the currently bound provider.
	Provider string
	// Metric names the negotiated QoS metric.
	Metric string
	// Negotiated is the agreed blevel currently in force.
	Negotiated float64
	// Drift is the semiring distance from the negotiated blevel to
	// the worst observed level, 0 while the agreement is honoured.
	// The source computes it in the session's semiring, where "worse"
	// is direction-dependent (higher cost, lower reliability).
	Drift float64
	// Observations and Violations are the monitor's cumulative
	// counters.
	Observations int64
	Violations   int64
}

// Source supplies the sweep's input: a snapshot of every live SLA.
// The broker implements it over its entry map; tests implement it
// with canned samples.
type Source interface {
	SLOSamples() []Sample
}

// Config parameterises a Reconciler. The zero value of each field
// selects the documented default.
type Config struct {
	// Source supplies the per-SLA samples (required).
	Source Source
	// Clock is the sweep's time source (default clock.Wall). Every
	// window computation uses it, so a fake clock makes the whole
	// reconciler deterministic.
	Clock clock.Clock
	// SweepEvery is Run's tick period (default 10s).
	SweepEvery time.Duration
	// FastWindow is the short burn-rate window; crossing
	// BurnThreshold here flags the SLA at risk (default 1m).
	FastWindow time.Duration
	// SlowWindow is the long burn-rate window, the backdrop the fast
	// signal is judged against (default 1h). It also bounds how much
	// per-sweep history is retained.
	SlowWindow time.Duration
	// BurnThreshold is the fast-window violation rate (violations /
	// observations) above which an SLA is at risk (default 0.5).
	BurnThreshold float64
	// MinWindowObservations gates the at-risk signal: fewer
	// observations than this in the fast window cannot flag it, so a
	// single unlucky probe on a quiet SLA does not page (default 3).
	MinWindowObservations int64
	// Registry receives the slo_* metric families (default: a
	// private registry, useful only in tests).
	Registry *obs.Registry
	// Logger receives the structured at-risk / recovered events
	// (default: discard).
	Logger *slog.Logger
	// OnAtRisk fires once per healthy→at-risk transition, after the
	// sweep's bookkeeping is done and outside the reconciler's lock
	// (so the hook may call back into AtRisk or the Source). The
	// context carries the sweep's trace. The broker hooks failover
	// here.
	OnAtRisk func(ctx context.Context, id string)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Wall
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 10 * time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 0.5
	}
	if c.MinWindowObservations <= 0 {
		c.MinWindowObservations = 3
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// driftBuckets span the blevel distances the shipped metrics produce:
// sub-unit drifts for the [0,1] carriers (reliability, preference),
// larger ones for cost/downtime totals.
var driftBuckets = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// window is one sweep's delta of an SLA's counters, timestamped by
// the sweep's clock reading.
type window struct {
	t    time.Time
	obs  int64
	viol int64
}

// slaState is the reconciler's accumulated view of one SLA.
type slaState struct {
	provider   string
	negotiated float64
	drift      float64
	// lastObs/lastViol are the cumulative counters at the previous
	// sweep, the baseline the next delta is computed from.
	lastObs, lastViol int64
	// totalObs/totalViol survive monitor resets (failover installs a
	// fresh monitor), so compliance reflects the SLA's whole life.
	totalObs, totalViol int64
	// buckets holds per-sweep deltas young enough to matter for the
	// slow window, oldest first.
	buckets  []window
	fastRate float64
	slowRate float64
	fastObs  int64
	atRisk   bool
	seen     bool // refreshed each sweep; stale states are dropped
}

// Reconciler is the sweep engine. Construct with New; run with Run or
// drive sweeps directly with Sweep.
type Reconciler struct {
	cfg Config

	sweeps      *obs.Counter
	tracked     *obs.Gauge
	compliance  *obs.GaugeVec   // by sla, provider
	burnRate    *obs.GaugeVec   // by sla, window (fast/slow)
	atRiskGauge *obs.GaugeVec   // by sla
	transitions *obs.CounterVec // by direction (at_risk/recovered)
	drift       *obs.Histogram

	mu    sync.Mutex
	slas  map[string]*slaState // guarded by mu
	order []string             // guarded by mu; ids sorted for deterministic snapshots
}

// New returns a reconciler over cfg. Every slo_* metric family is
// registered up front, so a scrape of a fresh broker already
// documents the catalogue.
func New(cfg Config) *Reconciler {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	r := &Reconciler{
		cfg: cfg,
		sweeps: reg.Counter("slo_sweeps_total",
			"SLO reconciliation sweeps completed."),
		tracked: reg.Gauge("slo_slas_tracked",
			"Live SLAs covered by the latest SLO sweep."),
		compliance: reg.GaugeVec("slo_compliance",
			"Lifetime compliance ratio per SLA (1 - violations/observations; 1 with no data).",
			"sla", "provider"),
		burnRate: reg.GaugeVec("slo_burn_rate",
			"Violation rate per SLA over the fast and slow burn windows.",
			"sla", "window"),
		atRiskGauge: reg.GaugeVec("slo_at_risk",
			"1 while the SLA's fast-window burn rate exceeds the threshold; failover consults this.",
			"sla"),
		transitions: reg.CounterVec("slo_at_risk_transitions_total",
			"At-risk state transitions, by direction (at_risk / recovered).",
			"direction"),
		drift: reg.Histogram("slo_blevel_drift",
			"Distance from the negotiated blevel to the worst observed level, per SLA per sweep.",
			driftBuckets),
		slas: make(map[string]*slaState),
	}
	// Materialise both transition series at zero so the family has
	// samples (not just headers) before the first transition — scrapes
	// and smoke checks can rely on its presence.
	r.transitions.With("at_risk")
	r.transitions.With("recovered")
	return r
}

// Run drives Sweep on a ticker until ctx is cancelled. It is the
// production loop; tests call Sweep directly under a fake clock.
func (r *Reconciler) Run(ctx context.Context) {
	t := time.NewTicker(r.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Sweep(ctx)
		}
	}
}

// Sweep performs one reconciliation pass: pull samples from the
// source, fold each into its SLA's windowed state, publish the
// gauges, and fire the at-risk transitions. The source is consulted
// and the hooks run outside the reconciler's lock, so a hook (or a
// concurrent request handler consulting AtRisk) can never deadlock
// against a sweep.
func (r *Reconciler) Sweep(ctx context.Context) {
	now := r.cfg.Clock.Now()
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		tr = obs.NewTrace("")
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	samples := r.cfg.Source.SLOSamples()

	type transition struct {
		id     string
		toRisk bool
		rate   float64
	}
	var trans []transition

	r.mu.Lock()
	for i := range samples {
		s := &samples[i]
		st, ok := r.slas[s.ID]
		if !ok {
			st = &slaState{}
			r.slas[s.ID] = st
		}
		// A provider change or a counter running backwards means the
		// monitor was replaced (failover): the burn windows restart
		// with the new binding, and a standing at-risk flag clears —
		// the rebind is exactly what the flag demanded.
		if ok && (st.provider != s.Provider || s.Observations < st.lastObs) {
			st.buckets = st.buckets[:0]
			st.lastObs, st.lastViol = 0, 0
			if st.atRisk {
				st.atRisk = false
				trans = append(trans, transition{id: s.ID, toRisk: false})
			}
		}
		st.provider = s.Provider
		st.negotiated = s.Negotiated
		st.drift = s.Drift
		st.seen = true
		dObs := s.Observations - st.lastObs
		dViol := s.Violations - st.lastViol
		st.lastObs, st.lastViol = s.Observations, s.Violations
		st.totalObs += dObs
		st.totalViol += dViol
		if dObs > 0 || dViol > 0 {
			st.buckets = append(st.buckets, window{t: now, obs: dObs, viol: dViol})
		}
		// Trim everything older than the slow window; the fast rate
		// re-filters the survivors.
		cutSlow := now.Add(-r.cfg.SlowWindow)
		for len(st.buckets) > 0 && !st.buckets[0].t.After(cutSlow) {
			st.buckets = st.buckets[1:]
		}
		cutFast := now.Add(-r.cfg.FastWindow)
		var fastObs, fastViol, slowObs, slowViol int64
		for _, b := range st.buckets {
			slowObs += b.obs
			slowViol += b.viol
			if b.t.After(cutFast) {
				fastObs += b.obs
				fastViol += b.viol
			}
		}
		st.fastRate = rate(fastViol, fastObs)
		st.slowRate = rate(slowViol, slowObs)
		st.fastObs = fastObs
		risky := fastObs >= r.cfg.MinWindowObservations && st.fastRate > r.cfg.BurnThreshold
		if risky != st.atRisk {
			st.atRisk = risky
			trans = append(trans, transition{id: s.ID, toRisk: risky, rate: st.fastRate})
		}
	}
	// Drop SLAs the source no longer reports (expired, evicted).
	for id, st := range r.slas {
		if !st.seen {
			delete(r.slas, id)
			r.atRiskGauge.With(id).Set(0)
			continue
		}
		st.seen = false
	}
	r.order = r.order[:0]
	for id := range r.slas {
		r.order = append(r.order, id)
	}
	sortByIDNumber(r.order)
	// Publish under the lock so a scrape races at most one sweep.
	for _, id := range r.order {
		st := r.slas[id]
		r.compliance.With(id, st.provider).Set(1 - rate(st.totalViol, st.totalObs))
		r.burnRate.With(id, "fast").Set(st.fastRate)
		r.burnRate.With(id, "slow").Set(st.slowRate)
		if st.atRisk {
			r.atRiskGauge.With(id).Set(1)
		} else {
			r.atRiskGauge.With(id).Set(0)
		}
		r.drift.Observe(st.drift)
	}
	r.tracked.Set(float64(len(r.slas)))
	r.sweeps.Inc()
	r.mu.Unlock()

	// The sweep's trace rides ctx, so a trace-aware handler
	// (obs.NewLogger, what brokerd installs) stamps every event
	// below with the trace id.
	for _, t := range trans {
		if t.toRisk {
			r.transitions.With("at_risk").Inc()
			r.cfg.Logger.WarnContext(ctx, "SLA at risk",
				"sla", t.id,
				"fast_burn_rate", t.rate, "threshold", r.cfg.BurnThreshold)
			if r.cfg.OnAtRisk != nil {
				r.cfg.OnAtRisk(ctx, t.id)
			}
		} else {
			r.transitions.With("recovered").Inc()
			r.cfg.Logger.InfoContext(ctx, "SLA recovered", "sla", t.id)
		}
	}
}

// rate is violations/observations, 0 with no observations.
func rate(viol, obs int64) float64 {
	if obs <= 0 {
		return 0
	}
	return float64(viol) / float64(obs)
}

// AtRisk reports whether the latest sweep left the SLA flagged at
// risk. Unknown ids are not at risk. Safe to call from request
// handlers (the broker's failover check consults it).
func (r *Reconciler) AtRisk(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.slas[id]
	return ok && st.atRisk
}

// SLASnapshot is one SLA's row in the debug snapshot.
type SLASnapshot struct {
	ID           string  `json:"id"`
	Provider     string  `json:"provider"`
	Negotiated   float64 `json:"negotiated"`
	Compliance   float64 `json:"compliance"`
	FastBurnRate float64 `json:"fastBurnRate"`
	SlowBurnRate float64 `json:"slowBurnRate"`
	Drift        float64 `json:"drift"`
	Observations int64   `json:"observations"`
	Violations   int64   `json:"violations"`
	AtRisk       bool    `json:"atRisk"`
}

// Snapshot is the read-only state served at /v1/debug/slo.
type Snapshot struct {
	Sweeps        int64         `json:"sweeps"`
	SweepEvery    string        `json:"sweepEvery"`
	FastWindow    string        `json:"fastWindow"`
	SlowWindow    string        `json:"slowWindow"`
	BurnThreshold float64       `json:"burnThreshold"`
	DriftP50      float64       `json:"driftP50"`
	DriftP99      float64       `json:"driftP99"`
	SLAs          []SLASnapshot `json:"slas"`
}

// Snapshot captures the reconciler's current view, SLAs in id order.
// Drift quantiles are bucket-interpolated estimates from the
// slo_blevel_drift histogram (NaN is reported as 0 while empty).
func (r *Reconciler) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Sweeps:        r.sweeps.Value(),
		SweepEvery:    r.cfg.SweepEvery.String(),
		FastWindow:    r.cfg.FastWindow.String(),
		SlowWindow:    r.cfg.SlowWindow.String(),
		BurnThreshold: r.cfg.BurnThreshold,
		SLAs:          make([]SLASnapshot, 0, len(r.slas)),
	}
	if r.drift.Count() > 0 {
		snap.DriftP50 = r.drift.Quantile(0.5)
		snap.DriftP99 = r.drift.Quantile(0.99)
	}
	for _, id := range r.order {
		st := r.slas[id]
		snap.SLAs = append(snap.SLAs, SLASnapshot{
			ID:           id,
			Provider:     st.provider,
			Negotiated:   st.negotiated,
			Compliance:   1 - rate(st.totalViol, st.totalObs),
			FastBurnRate: st.fastRate,
			SlowBurnRate: st.slowRate,
			Drift:        st.drift,
			Observations: st.totalObs,
			Violations:   st.totalViol,
			AtRisk:       st.atRisk,
		})
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Reconciler) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// sortByIDNumber orders minted ids by their numeric suffix ("sla-2"
// before "sla-10"), falling back to lexical order for foreign ids.
func sortByIDNumber(ids []string) {
	num := func(id string) (int, bool) {
		i := strings.LastIndexByte(id, '-')
		if i < 0 {
			return 0, false
		}
		n, err := strconv.Atoi(id[i+1:])
		return n, err == nil
	}
	sort.Slice(ids, func(i, j int) bool {
		a, aok := num(ids[i])
		b, bok := num(ids[j])
		if aok && bok && a != b {
			return a < b
		}
		return ids[i] < ids[j]
	})
}
