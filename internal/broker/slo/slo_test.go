package slo

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"softsoa/internal/clock"
	"softsoa/internal/obs"
)

// fakeClock is a mutable deterministic time source. Every test in
// this file drives the reconciler exclusively through it — no sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// fakeSource is a programmable sample feed.
type fakeSource struct {
	mu      sync.Mutex
	samples []Sample
}

func (f *fakeSource) SLOSamples() []Sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Sample(nil), f.samples...)
}

func (f *fakeSource) set(samples ...Sample) {
	f.mu.Lock()
	f.samples = samples
	f.mu.Unlock()
}

func testReconciler(t *testing.T, src Source, fc *fakeClock, onAtRisk func(ctx context.Context, id string)) *Reconciler {
	t.Helper()
	return New(Config{
		Source:                src,
		Clock:                 clock.Clock(fc.now),
		FastWindow:            time.Minute,
		SlowWindow:            time.Hour,
		BurnThreshold:         0.5,
		MinWindowObservations: 3,
		OnAtRisk:              onAtRisk,
	})
}

func TestSweepComplianceAndSnapshot(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	r := testReconciler(t, src, fc, nil)

	src.set(
		Sample{ID: "sla-1", Provider: "p1", Metric: "cost", Negotiated: 20, Drift: 0, Observations: 10, Violations: 0},
		Sample{ID: "sla-2", Provider: "p2", Metric: "cost", Negotiated: 20, Drift: 3.5, Observations: 8, Violations: 2},
	)
	r.Sweep(context.Background())

	snap := r.Snapshot()
	if snap.Sweeps != 1 {
		t.Fatalf("Sweeps = %d, want 1", snap.Sweeps)
	}
	if len(snap.SLAs) != 2 {
		t.Fatalf("snapshot has %d SLAs, want 2", len(snap.SLAs))
	}
	if snap.SLAs[0].ID != "sla-1" || snap.SLAs[1].ID != "sla-2" {
		t.Fatalf("snapshot order = %s,%s; want sla-1,sla-2", snap.SLAs[0].ID, snap.SLAs[1].ID)
	}
	if got := snap.SLAs[0].Compliance; got != 1 {
		t.Errorf("sla-1 compliance = %g, want 1", got)
	}
	if got := snap.SLAs[1].Compliance; got != 0.75 {
		t.Errorf("sla-2 compliance = %g, want 0.75", got)
	}
	if got := snap.SLAs[1].Drift; got != 3.5 {
		t.Errorf("sla-2 drift = %g, want 3.5", got)
	}
	if got := r.compliance.With("sla-2", "p2").Value(); got != 0.75 {
		t.Errorf("slo_compliance{sla-2,p2} = %g, want 0.75", got)
	}
	if got := r.tracked.Value(); got != 2 {
		t.Errorf("slo_slas_tracked = %g, want 2", got)
	}
	if snap.DriftP50 <= 0 {
		t.Errorf("DriftP50 = %g, want > 0 after non-zero drift observations", snap.DriftP50)
	}
}

func TestBurnRateWindows(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	r := testReconciler(t, src, fc, nil)

	// Sweep 1: 10 observations, all violating.
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 10, Violations: 10})
	r.Sweep(context.Background())
	if got := r.burnRate.With("sla-1", "fast").Value(); got != 1 {
		t.Fatalf("fast burn after violating sweep = %g, want 1", got)
	}
	if got := r.burnRate.With("sla-1", "slow").Value(); got != 1 {
		t.Fatalf("slow burn after violating sweep = %g, want 1", got)
	}

	// Two minutes later the violating bucket ages out of the fast
	// window; 10 fresh clean observations dominate it.
	fc.advance(2 * time.Minute)
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 20, Violations: 10})
	r.Sweep(context.Background())
	if got := r.burnRate.With("sla-1", "fast").Value(); got != 0 {
		t.Errorf("fast burn after clean recent window = %g, want 0", got)
	}
	if got := r.burnRate.With("sla-1", "slow").Value(); got != 0.5 {
		t.Errorf("slow burn = %g, want 0.5 (10 of 20 in the hour)", got)
	}

	// Two hours later everything has aged out of the slow window too.
	fc.advance(2 * time.Hour)
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 20, Violations: 10})
	r.Sweep(context.Background())
	if got := r.burnRate.With("sla-1", "slow").Value(); got != 0 {
		t.Errorf("slow burn after windows drained = %g, want 0", got)
	}
	// Lifetime compliance still remembers everything.
	if got := r.compliance.With("sla-1", "p1").Value(); got != 0.5 {
		t.Errorf("lifetime compliance = %g, want 0.5", got)
	}
}

func TestAtRiskTransitionsAndHook(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	var fired []string
	r := testReconciler(t, src, fc, func(_ context.Context, id string) {
		fired = append(fired, id)
	})

	// Healthy: plenty of observations, no violations.
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 5})
	r.Sweep(context.Background())
	if r.AtRisk("sla-1") {
		t.Fatal("healthy SLA flagged at risk")
	}

	// Degraded: 6 new observations, all violating → fast rate 6/11,
	// strictly above the 0.5 threshold (the comparison is strict, so
	// exactly-at-threshold stays healthy).
	fc.advance(10 * time.Second)
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 11, Violations: 6})
	r.Sweep(context.Background())
	if !r.AtRisk("sla-1") {
		t.Fatal("degraded SLA not flagged at risk")
	}
	if got := r.atRiskGauge.With("sla-1").Value(); got != 1 {
		t.Errorf("slo_at_risk gauge = %g, want 1", got)
	}
	if len(fired) != 1 || fired[0] != "sla-1" {
		t.Fatalf("OnAtRisk fired %v, want [sla-1]", fired)
	}

	// Still degraded: the hook must not re-fire while at risk.
	fc.advance(10 * time.Second)
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 13, Violations: 8})
	r.Sweep(context.Background())
	if len(fired) != 1 {
		t.Fatalf("OnAtRisk re-fired while already at risk: %v", fired)
	}

	// Recovery: violations stop, the bad buckets age out.
	fc.advance(2 * time.Minute)
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 20, Violations: 8})
	r.Sweep(context.Background())
	if r.AtRisk("sla-1") {
		t.Fatal("recovered SLA still flagged at risk")
	}
	if got := r.atRiskGauge.With("sla-1").Value(); got != 0 {
		t.Errorf("slo_at_risk gauge after recovery = %g, want 0", got)
	}
	if got := r.transitions.With("at_risk").Value(); got != 1 {
		t.Errorf("at_risk transitions = %d, want 1", got)
	}
	if got := r.transitions.With("recovered").Value(); got != 1 {
		t.Errorf("recovered transitions = %d, want 1", got)
	}
}

// TestMinWindowObservationsGate: a single violating probe on a quiet
// SLA must not flag it.
func TestMinWindowObservationsGate(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	r := testReconciler(t, src, fc, nil)

	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 1, Violations: 1})
	r.Sweep(context.Background())
	if r.AtRisk("sla-1") {
		t.Fatal("SLA flagged at risk on a single observation (below MinWindowObservations)")
	}
	fc.advance(time.Second)
	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 3, Violations: 3})
	r.Sweep(context.Background())
	if !r.AtRisk("sla-1") {
		t.Fatal("SLA not flagged once the window reached MinWindowObservations")
	}
}

// TestFailoverResetsWindow: a provider change (fresh monitor, counters
// restart from zero) clears the at-risk flag and restarts the burn
// windows — the rebind is what the flag asked for.
func TestFailoverResetsWindow(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	var fired int
	r := testReconciler(t, src, fc, func(context.Context, string) { fired++ })

	src.set(Sample{ID: "sla-1", Provider: "p1", Observations: 6, Violations: 6})
	r.Sweep(context.Background())
	if !r.AtRisk("sla-1") || fired != 1 {
		t.Fatalf("setup: atRisk=%v fired=%d, want true/1", r.AtRisk("sla-1"), fired)
	}

	// Failed over: new provider, monitor counters restarted.
	fc.advance(10 * time.Second)
	src.set(Sample{ID: "sla-1", Provider: "p2", Observations: 2, Violations: 0})
	r.Sweep(context.Background())
	if r.AtRisk("sla-1") {
		t.Fatal("at-risk flag survived the failover")
	}
	if got := r.burnRate.With("sla-1", "fast").Value(); got != 0 {
		t.Errorf("fast burn after failover = %g, want 0 (window restarted)", got)
	}
	if fired != 1 {
		t.Errorf("OnAtRisk fired %d times, want 1", fired)
	}
	// Lifetime compliance keeps the pre-failover violations.
	if got := r.compliance.With("sla-1", "p2").Value(); got != 0.25 {
		t.Errorf("lifetime compliance = %g, want 0.25 (6 of 8 violated)", got)
	}
}

// TestStaleSLADropped: an SLA the source stops reporting disappears
// from the snapshot and its at-risk gauge resets.
func TestStaleSLADropped(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	r := testReconciler(t, src, fc, nil)

	src.set(
		Sample{ID: "sla-1", Provider: "p1", Observations: 6, Violations: 6},
		Sample{ID: "sla-2", Provider: "p1", Observations: 4},
	)
	r.Sweep(context.Background())
	if !r.AtRisk("sla-1") {
		t.Fatal("setup: sla-1 should be at risk")
	}

	src.set(Sample{ID: "sla-2", Provider: "p1", Observations: 5})
	r.Sweep(context.Background())
	if r.AtRisk("sla-1") {
		t.Fatal("dropped SLA still at risk")
	}
	snap := r.Snapshot()
	if len(snap.SLAs) != 1 || snap.SLAs[0].ID != "sla-2" {
		t.Fatalf("snapshot = %+v, want only sla-2", snap.SLAs)
	}
	if got := r.atRiskGauge.With("sla-1").Value(); got != 0 {
		t.Errorf("dropped SLA's at-risk gauge = %g, want 0", got)
	}
}

func TestSnapshotIDOrdering(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	r := testReconciler(t, src, fc, nil)

	src.set(
		Sample{ID: "sla-10", Provider: "p1", Observations: 1},
		Sample{ID: "sla-2", Provider: "p1", Observations: 1},
		Sample{ID: "sla-1", Provider: "p1", Observations: 1},
	)
	r.Sweep(context.Background())
	snap := r.Snapshot()
	got := []string{snap.SLAs[0].ID, snap.SLAs[1].ID, snap.SLAs[2].ID}
	want := []string{"sla-1", "sla-2", "sla-10"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v (numeric suffix order)", got, want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	r := testReconciler(t, src, fc, nil)
	src.set(Sample{ID: "sla-1", Provider: "p1", Negotiated: 12, Observations: 4, Violations: 1})
	r.Sweep(context.Background())

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b.String())
	}
	if len(snap.SLAs) != 1 || snap.SLAs[0].Negotiated != 12 {
		t.Fatalf("round-tripped snapshot = %+v", snap)
	}
}

// TestMetricsRegisteredUpFront: every slo_* family must appear in the
// exposition before the first sweep, so scrapes of a fresh broker
// document the catalogue (and CI can grep for the families).
func TestMetricsRegisteredUpFront(t *testing.T) {
	reg := obs.NewRegistry()
	New(Config{Source: &fakeSource{}, Registry: reg})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"slo_sweeps_total", "slo_slas_tracked", "slo_compliance",
		"slo_burn_rate", "slo_at_risk", "slo_at_risk_transitions_total",
		"slo_blevel_drift",
	} {
		if !strings.Contains(b.String(), fam) {
			t.Errorf("exposition missing family %q before first sweep", fam)
		}
	}
}

func TestRunStopsOnCancel(t *testing.T) {
	src := &fakeSource{}
	r := New(Config{Source: src, SweepEvery: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		r.Run(ctx)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}

// TestConcurrentSweepStress races sweeps against source mutation,
// AtRisk queries, and snapshots. Run under -race this is the
// reconciler's thread-safety proof.
func TestConcurrentSweepStress(t *testing.T) {
	src := &fakeSource{}
	fc := newFakeClock()
	var r *Reconciler
	r = testReconciler(t, src, fc, func(_ context.Context, id string) {
		// The hook runs outside r.mu: calling back in must not deadlock.
		r.AtRisk(id)
	})

	const iters = 300
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			obsN := int64(i + 1)
			src.set(
				Sample{ID: "sla-1", Provider: "p1", Observations: obsN, Violations: obsN / 2},
				Sample{ID: "sla-2", Provider: "p2", Observations: obsN, Violations: obsN},
			)
			fc.advance(time.Second)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			r.Sweep(context.Background())
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			r.AtRisk("sla-1")
			r.Snapshot()
		}
	}()
	wg.Wait()

	// One final deterministic sweep: state must be coherent.
	r.Sweep(context.Background())
	snap := r.Snapshot()
	if len(snap.SLAs) != 2 {
		t.Fatalf("snapshot has %d SLAs after stress, want 2", len(snap.SLAs))
	}
}
