package broker

import (
	"encoding/xml"
	"sort"
	"sync"
	"time"
)

// BreakerState is the lifecycle state of a provider's circuit
// breaker.
type BreakerState int

// Breaker states: Closed passes traffic, Open rejects it, HalfOpen
// lets a single probe through to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-provider circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures
	// (negotiations that end stuck, or observations that violate the
	// SLA) that opens a provider's breaker. Zero means the default of
	// 3.
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects a provider
	// before a half-open probe is allowed. Zero means the default of
	// 30 seconds.
	OpenTimeout time.Duration
	// Clock overrides the time source (tests). Nil means time.Now.
	Clock func() time.Time
	// OnTransition, when non-nil, is called on every genuine breaker
	// state change (not on same-state resets). It runs synchronously
	// under the board's lock, so it must be cheap — atomics, metric
	// updates — and must not call back into the board.
	OnTransition func(provider string, from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// breaker is one provider's state. Every field is guarded by mu —
// the owning HealthBoard's mutex, since breakers are only reachable
// through its map.
type breaker struct {
	state    BreakerState // guarded by mu
	failures int          // consecutive failures while closed; guarded by mu
	openedAt time.Time    // when the breaker last opened; guarded by mu
	probing  bool         // a half-open probe is in flight; guarded by mu
}

// ProviderHealth is one provider's breaker status on the wire
// (GET /health).
type ProviderHealth struct {
	Name     string `xml:"name,attr"`
	State    string `xml:"state,attr"`
	Failures int    `xml:"consecutiveFailures,attr"`
}

// HealthResponse is the XML body returned by GET /health.
type HealthResponse struct {
	XMLName   xml.Name         `xml:"health"`
	Providers []ProviderHealth `xml:"provider"`
}

// HealthBoard tracks a circuit breaker per provider. The negotiator
// and composer consult it (via Allow) so that providers with a run of
// failures are skipped until a half-open probe shows recovery. Safe
// for concurrent use.
type HealthBoard struct {
	mu       sync.Mutex
	cfg      BreakerConfig       // immutable after construction
	breakers map[string]*breaker // guarded by mu
}

// NewHealthBoard returns a board with the given breaker config.
func NewHealthBoard(cfg BreakerConfig) *HealthBoard {
	return &HealthBoard{cfg: cfg.withDefaults(), breakers: make(map[string]*breaker)}
}

// get returns (creating if needed) the provider's breaker. Callers
// hold h.mu.
func (h *HealthBoard) get(provider string) *breaker {
	b, ok := h.breakers[provider]
	if !ok {
		b = &breaker{}
		h.breakers[provider] = b
	}
	return b
}

// Allow reports whether traffic may be sent to the provider. An open
// breaker whose timeout has elapsed transitions to half-open and
// admits exactly one probe; the probe's RecordSuccess/RecordFailure
// closes or re-opens the breaker.
func (h *HealthBoard) Allow(provider string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(provider)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if h.cfg.Clock().Sub(b.openedAt) < h.cfg.OpenTimeout {
			return false
		}
		h.transition(provider, b, BreakerHalfOpen)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false // one probe at a time
		}
		b.probing = true
		return true
	}
	return true
}

// RecordSuccess reports a successful interaction with the provider:
// it resets the failure run and closes a half-open breaker.
func (h *HealthBoard) RecordSuccess(provider string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(provider)
	b.failures = 0
	b.probing = false
	h.transition(provider, b, BreakerClosed)
}

// RecordFailure reports a failed interaction: a run of
// FailureThreshold consecutive failures opens the breaker, and a
// failed half-open probe re-opens it immediately.
func (h *HealthBoard) RecordFailure(provider string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(provider)
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= h.cfg.FailureThreshold {
		h.open(provider, b)
	}
}

// Trip forces the provider's breaker open, regardless of its failure
// count. The failover path uses it to quarantine a provider whose
// violation rate crossed the threshold.
func (h *HealthBoard) Trip(provider string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.open(provider, h.get(provider))
}

// open trips the breaker. Callers hold h.mu.
func (h *HealthBoard) open(provider string, b *breaker) {
	h.transition(provider, b, BreakerOpen)
	b.openedAt = h.cfg.Clock()
	b.probing = false
	b.failures = 0
}

// transition moves the breaker to the target state, firing the
// OnTransition hook only when the state actually changes. Callers
// hold h.mu, so the hook runs under the board lock.
func (h *HealthBoard) transition(provider string, b *breaker, to BreakerState) {
	from := b.state
	b.state = to
	if from != to && h.cfg.OnTransition != nil {
		h.cfg.OnTransition(provider, from, to)
	}
}

// BreakerStatus is one provider's persistable breaker state — the
// structured complement of Snapshot's wire form.
type BreakerStatus struct {
	Provider string
	State    BreakerState
	Failures int
}

// States returns every tracked provider's breaker state and
// consecutive-failure count, sorted by provider name, for the
// broker's durable snapshots.
func (h *HealthBoard) States() []BreakerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]BreakerStatus, 0, len(h.breakers))
	for name, b := range h.breakers {
		out = append(out, BreakerStatus{Provider: name, State: b.state, Failures: b.failures})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

// RestoreBreaker forces a provider's breaker to the given state and
// failure count during crash recovery, firing the usual transition
// hook so gauges and logs reflect the restored state. The opening
// instant of an Open breaker is not persisted, so its timeout restarts
// at the restore time: a recovered broker waits a full OpenTimeout
// before probing the provider again.
func (h *HealthBoard) RestoreBreaker(provider string, state BreakerState, failures int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(provider)
	h.transition(provider, b, state)
	b.failures = failures
	b.probing = false
	if state == BreakerOpen {
		b.openedAt = h.cfg.Clock()
	}
}

// State returns the provider's current breaker state (an open breaker
// past its timeout still reads as open until a probe is admitted).
func (h *HealthBoard) State(provider string) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.get(provider).state
}

// Snapshot lists every tracked provider's health, sorted by name.
func (h *HealthBoard) Snapshot() []ProviderHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ProviderHealth, 0, len(h.breakers))
	for name, b := range h.breakers {
		out = append(out, ProviderHealth{Name: name, State: b.state.String(), Failures: b.failures})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FailoverPolicy controls violation-driven failover: when a live
// SLA's monitor crosses ViolationRate after at least MinObservations
// measurements, the broker trips the bound provider's breaker and
// renegotiates the agreement against the remaining healthy providers.
type FailoverPolicy struct {
	// Enabled turns failover on.
	Enabled bool
	// ViolationRate is the rate (violations/observations) above which
	// the broker fails over. Zero means the default of 0.5.
	ViolationRate float64
	// MinObservations is the minimum number of observations since the
	// current agreement before failover can trigger. Zero means the
	// default of 3.
	MinObservations int64
}

func (p FailoverPolicy) withDefaults() FailoverPolicy {
	if p.ViolationRate <= 0 {
		p.ViolationRate = 0.5
	}
	if p.MinObservations <= 0 {
		p.MinObservations = 3
	}
	return p
}
