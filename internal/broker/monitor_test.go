package broker

import (
	"context"
	"strings"
	"testing"

	"softsoa/internal/soa"
)

func TestMonitorCostViolations(t *testing.T) {
	mon, err := NewMonitor(&soa.SLA{Metric: soa.MetricCost, AgreedLevel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mon.Observe(4) {
		t.Error("cost 4 under an agreed 5 is compliant")
	}
	if mon.Observe(5) {
		t.Error("exactly the agreed level is compliant")
	}
	if !mon.Observe(7) {
		t.Error("cost 7 over an agreed 5 is a violation")
	}
	r := mon.Report()
	if r.Observations != 3 || r.Violations != 1 {
		t.Errorf("report = %+v", r)
	}
	if r.WorstObserved != 7 {
		t.Errorf("worst = %v, want 7", r.WorstObserved)
	}
	if !mon.Healthy(0.5) || mon.Healthy(0.2) {
		t.Errorf("health thresholds wrong: rate %v", r.ViolationRate)
	}
	if !strings.Contains(mon.String(), "viol=1") {
		t.Errorf("String = %q", mon.String())
	}
}

func TestMonitorReliabilityDirection(t *testing.T) {
	mon, err := NewMonitor(&soa.SLA{Metric: soa.MetricReliability, AgreedLevel: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if mon.Observe(0.95) {
		t.Error("reliability above agreed is compliant")
	}
	if !mon.Observe(0.5) {
		t.Error("reliability below agreed is a violation")
	}
	if got := mon.Report().WorstObserved; got != 0.5 {
		t.Errorf("worst = %v", got)
	}
}

func TestMonitorRebase(t *testing.T) {
	mon, err := NewMonitor(&soa.SLA{Metric: soa.MetricCost, AgreedLevel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !mon.Observe(6) {
		t.Fatal("6 violates agreed 5")
	}
	mon.Rebase(10)
	if mon.Observe(6) {
		t.Error("6 complies with rebased 10")
	}
	r := mon.Report()
	if r.Violations != 1 || r.AgreedLevel != 10 {
		t.Errorf("report = %+v", r)
	}
}

func TestMonitorUnknownMetric(t *testing.T) {
	if _, err := NewMonitor(&soa.SLA{Metric: "latency"}); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestMonitorEmptyIsHealthy(t *testing.T) {
	mon, err := NewMonitor(&soa.SLA{Metric: soa.MetricCost, AgreedLevel: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !mon.Healthy(0) {
		t.Error("no observations: vacuously healthy")
	}
}

// TestHTTPMonitoringLifecycle drives negotiate → observe → compliance
// → renegotiate (rebase) → observe over the wire.
func TestHTTPMonitoringLifecycle(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	client, _ := clientFor(t, srv)
	if err := client.Publish(context.Background(), costDoc("p1", "failmgmt", 5, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	sla, err := client.Negotiate(context.Background(), NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Agreed level 5. An observed cost of 6.5 violates.
	obs, err := client.Observe(context.Background(), sla.ID, 6.5)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Violated {
		t.Error("6.5 over agreed 5 must violate")
	}
	obs, err = client.Observe(context.Background(), sla.ID, 4)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Violated {
		t.Error("4 under agreed 5 must comply")
	}
	rep, err := client.Compliance(context.Background(), sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observations != 2 || rep.Violations != 1 || rep.ViolationRate != 0.5 {
		t.Errorf("report = %+v", rep)
	}

	// Renegotiation rebases the monitor (same flat requirement keeps
	// level 5 here, but the path is exercised).
	if _, err := client.Renegotiate(context.Background(), RenegotiateRequest{
		ID: sla.ID,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
	}); err != nil {
		t.Fatal(err)
	}
	rep, err = client.Compliance(context.Background(), sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgreedLevel != 5 {
		t.Errorf("rebased agreed level = %v", rep.AgreedLevel)
	}

	// Unknown id paths.
	if _, err := client.Observe(context.Background(), "sla-999", 1); err == nil {
		t.Error("unknown SLA should fail")
	}
	if _, err := client.Compliance(context.Background(), "sla-999"); err == nil {
		t.Error("unknown SLA should fail")
	}
}
