package broker

import (
	"context"
	"errors"
	"testing"

	"softsoa/internal/soa"
)

// TestSessionRenegotiateRelaxes mirrors Example 2 through the broker
// API: the initial agreement merges provider x+5 with client 2x
// (level 5); renegotiating retracts the client's 2x requirement and
// tells a cheaper x-0 one — the store relaxes on the SAME session via
// the ÷ operator.
func TestSessionRenegotiateRelaxes(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "failmgmt", 5, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
	}
	sla, session, _, err := n.NegotiateSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil || session == nil {
		t.Fatal("expected initial agreement")
	}
	if sla.AgreedLevel != 5 || session.Version() != 1 {
		t.Fatalf("initial level %v version %d", sla.AgreedLevel, session.Version())
	}

	// Relax: the client drops its 2x policy for a flat 0 requirement;
	// the store becomes just the provider's x+5 — still level 5 — but
	// now check a per-variable consequence: σ(x=3) drops from
	// (3+5)+(2·3)+... the retract path must divide out 2x exactly.
	relaxed, err := session.Renegotiate(context.Background(), soa.Attribute{
		Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed == nil {
		t.Fatal("relaxation should succeed")
	}
	if relaxed.AgreedLevel != 5 {
		t.Errorf("relaxed level = %v, want 5 (provider base alone)", relaxed.AgreedLevel)
	}
	if session.Version() != 2 {
		t.Errorf("version = %d, want 2", session.Version())
	}
}

// TestSessionRenegotiateTightens: renegotiating to a stricter
// requirement whose interval the store cannot meet is rejected and
// rolls back.
func TestSessionRenegotiateRejectedRollsBack(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "failmgmt", 5, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 1, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
	}
	_, session, _, err := n.NegotiateSession(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	levelBefore := session.AgreedLevel()

	// Demand the relaxed agreement cost at most 3 (lower threshold in
	// the weighted order) — the provider's flat 5 makes that
	// impossible.
	lower := 3.0
	sla, err := session.Renegotiate(context.Background(), soa.Attribute{
		Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
	}, &lower, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sla != nil {
		t.Fatal("renegotiation should be rejected")
	}
	if got := session.AgreedLevel(); got != levelBefore {
		t.Errorf("store changed on rejected renegotiation: %v -> %v", levelBefore, got)
	}
	if session.Version() != 1 {
		t.Errorf("version advanced on rejection: %d", session.Version())
	}
}

func TestSessionRenegotiateValidation(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	_, session, _, err := n.NegotiateSession(context.Background(), Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Renegotiate(context.Background(), soa.Attribute{
		Metric: soa.MetricReliability, Base: 90, Resource: "failures",
	}, nil, nil); err == nil {
		t.Error("metric mismatch should fail")
	}
	if _, err := session.Renegotiate(context.Background(), soa.Attribute{
		Metric: soa.MetricCost, Base: 0, Resource: "ghost",
	}, nil, nil); err == nil {
		t.Error("unknown resource should fail")
	}
}

// TestHTTPRenegotiationRoundTrip drives the whole nonmonotonic SLA
// lifecycle over the wire: negotiate → inspect → renegotiate →
// rejected renegotiation → inspect again.
func TestHTTPRenegotiationRoundTrip(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	client, _ := clientFor(t, srv)
	if err := client.Publish(context.Background(), costDoc("p1", "failmgmt", 5, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	sla, err := client.Negotiate(context.Background(), NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.ID == "" || sla.Version != 1 {
		t.Fatalf("SLA missing id/version: %+v", sla)
	}

	fetched, err := client.SLA(context.Background(), sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fetched.AgreedLevel != sla.AgreedLevel {
		t.Errorf("fetched level %v != negotiated %v", fetched.AgreedLevel, sla.AgreedLevel)
	}

	relaxed, err := client.Renegotiate(context.Background(), RenegotiateRequest{
		ID: sla.ID,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Version != 2 {
		t.Errorf("version = %d, want 2", relaxed.Version)
	}

	// Impossible tightening is rejected; agreement v2 stands. The
	// provider's base cost is 5, so demanding at most 1 (lower
	// threshold) cannot hold.
	lower := 1.0
	_, err = client.Renegotiate(context.Background(), RenegotiateRequest{
		ID: sla.ID,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
		Lower: &lower,
	})
	var noAgree *ErrNoAgreement
	if !errors.As(err, &noAgree) {
		t.Fatalf("err = %v, want ErrNoAgreement", err)
	}
	final, err := client.SLA(context.Background(), sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Version != 2 {
		t.Errorf("final version = %d, want 2 (rejection must not advance)", final.Version)
	}
}

func TestHTTPRenegotiateUnknownID(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	client, _ := clientFor(t, srv)
	_, err := client.Renegotiate(context.Background(), RenegotiateRequest{
		ID:          "sla-999",
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "x", MaxUnits: 1},
	})
	if err == nil {
		t.Fatal("unknown SLA id should fail")
	}
	if _, err := client.SLA(context.Background(), "sla-999"); err == nil {
		t.Fatal("unknown SLA id should fail on GET too")
	}
}
