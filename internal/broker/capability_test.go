package broker

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"softsoa/internal/policy"
	"softsoa/internal/soa"
)

func testVocabulary(t *testing.T) *policy.Vocabulary {
	t.Helper()
	v, err := policy.NewVocabulary("http-auth", "gzip", "tls13")
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func capDoc(provider string, base float64, caps ...string) *soa.Document {
	d := costDoc(provider, "svc", base, 0, "eu")
	d.Capabilities = caps
	return d
}

// TestNegotiationFiltersByMustCapabilities: a provider without the
// required capability is excluded even when its offer is cheaper —
// the paper's "you MUST use HTTP Authentication".
func TestNegotiationFiltersByMustCapabilities(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(capDoc("cheap-insecure", 2, "gzip")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(capDoc("secure", 5, "http-auth", "gzip")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg, WithVocabulary(testVocabulary(t)))
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement:  soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 10},
		Capabilities: policy.Requirement{Must: []string{"http-auth"}},
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatalf("expected agreement, outcome %+v", outcome)
	}
	if sla.Providers[0] != "secure" || sla.AgreedLevel != 5 {
		t.Errorf("winner = %s at %v, want secure at 5", sla.Providers[0], sla.AgreedLevel)
	}
	var skipped *ProviderOutcome
	for i := range outcome.PerProvider {
		if outcome.PerProvider[i].Provider == "cheap-insecure" {
			skipped = &outcome.PerProvider[i]
		}
	}
	if skipped == nil || !strings.Contains(skipped.Skipped, "http-auth") {
		t.Errorf("cheap-insecure should be skipped for missing http-auth: %+v", skipped)
	}
}

// TestNegotiationMayBreaksTies: two providers with identical offers;
// the one covering more MAY capabilities wins.
func TestNegotiationMayBreaksTies(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(capDoc("plain", 3, "http-auth")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(capDoc("zippy", 3, "http-auth", "gzip")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg, WithVocabulary(testVocabulary(t)))
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 10},
		Capabilities: policy.Requirement{
			Must: []string{"http-auth"},
			May:  []string{"gzip"},
		},
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatalf("expected agreement, outcome %+v", outcome)
	}
	if sla.Providers[0] != "zippy" {
		t.Errorf("winner = %s, want zippy (MAY gzip covered)", sla.Providers[0])
	}
}

func TestNegotiationCapabilityPolicyWithoutVocabulary(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(capDoc("p", 3, "http-auth")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg) // no vocabulary
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement:  soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
		Capabilities: policy.Requirement{Must: []string{"http-auth"}},
	}
	if _, _, err := n.Negotiate(context.Background(), req); err == nil {
		t.Fatal("capability policy without vocabulary must fail")
	}
}

func TestNegotiationAllProvidersMissMust(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(capDoc("p", 3, "gzip")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg, WithVocabulary(testVocabulary(t)))
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement:  soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
		Capabilities: policy.Requirement{Must: []string{"tls13"}},
	}
	sla, outcome, err := n.Negotiate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sla != nil {
		t.Fatal("no provider satisfies MUST: no SLA")
	}
	if outcome.Best != -1 {
		t.Errorf("outcome.Best = %d", outcome.Best)
	}
}

func TestComposeFiltersByCapabilities(t *testing.T) {
	reg := soa.NewRegistry()
	d1 := costDoc("stage1-insecure", "s1", 1, 0, "eu")
	d1.Capabilities = []string{"gzip"}
	d2 := costDoc("stage1-secure", "s1", 4, 0, "eu")
	d2.Capabilities = []string{"http-auth"}
	d3 := costDoc("stage2-secure", "s2", 2, 0, "eu")
	d3.Capabilities = []string{"http-auth", "gzip"}
	for _, d := range []*soa.Document{d1, d2, d3} {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c := NewComposer(reg, DefaultLinkPenalty, WithComposerVocabulary(testVocabulary(t)))
	req := PipelineRequest{
		Client: "c", Stages: []string{"s1", "s2"}, Metric: soa.MetricCost,
		Capabilities: policy.Requirement{Must: []string{"http-auth"}},
	}
	sla, comp, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatal("expected composition")
	}
	// The cheap insecure stage-1 provider is excluded: 4 + 2 = 6.
	if comp.Total != 6 {
		t.Errorf("total = %v, want 6", comp.Total)
	}
	if comp.Choices[0].Provider != "stage1-secure" {
		t.Errorf("stage 1 = %s", comp.Choices[0].Provider)
	}
	// Without the policy the insecure provider wins: 1 + 2 = 3.
	open := PipelineRequest{Client: "c", Stages: []string{"s1", "s2"}, Metric: soa.MetricCost}
	_, openComp, err := c.Compose(open)
	if err != nil {
		t.Fatal(err)
	}
	if openComp.Total != 3 {
		t.Errorf("unfiltered total = %v, want 3", openComp.Total)
	}
}

func TestComposeNoCapableCandidates(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(capDoc("p", 3, "gzip")); err != nil {
		t.Fatal(err)
	}
	c := NewComposer(reg, DefaultLinkPenalty, WithComposerVocabulary(testVocabulary(t)))
	req := PipelineRequest{
		Client: "c", Stages: []string{"svc"}, Metric: soa.MetricCost,
		Capabilities: policy.Requirement{Must: []string{"tls13"}},
	}
	if _, _, err := c.Compose(req); err == nil {
		t.Fatal("no capable candidate should be an error")
	}
	if _, _, err := c.ComposeGreedy(req); err == nil {
		t.Fatal("greedy: no capable candidate should be an error")
	}
}

func TestHTTPCapabilityNegotiation(t *testing.T) {
	v, err := policy.NewVocabulary("http-auth", "gzip")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(DefaultLinkPenalty, WithServerVocabulary(v))
	client, ts := clientFor(t, srv)
	_ = ts
	insecure := capDoc("insecure", 1, "gzip")
	secure := capDoc("secure", 3, "http-auth", "gzip")
	if err := client.Publish(context.Background(), insecure); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(context.Background(), secure); err != nil {
		t.Fatal(err)
	}
	sla, err := client.Negotiate(context.Background(), NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 10},
		Must:        []string{"http-auth"},
		May:         []string{"gzip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.Providers[0] != "secure" {
		t.Errorf("winner = %s, want secure", sla.Providers[0])
	}
	// Capabilities survive the XML round trip on discovery.
	docs, err := client.Discover(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range docs {
		if d.Provider == "secure" && len(d.Capabilities) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("capabilities lost over the wire: %+v", docs)
	}
}

// clientFor starts an httptest server around srv and returns a
// client; the server is closed with the test.
func clientFor(t *testing.T, srv *Server) (*Client, string) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), ts.URL
}
