package broker

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"softsoa/internal/cache"
	"softsoa/internal/obs"
)

// blevelBuckets cover agreed levels across the metrics the broker
// negotiates: [0,1] carriers (reliability, preference) land in the
// low buckets, cost/downtime totals in the high ones.
var blevelBuckets = []float64{0.5, 0.9, 0.99, 1, 2.5, 5, 10, 25, 50, 100, 250}

// brokerMetrics holds the server's instruments, resolved once at
// construction so the hot paths never touch the registry's lock.
type brokerMetrics struct {
	requests *obs.CounterVec   // by route, method, status
	latency  *obs.HistogramVec // by route
	inFlight *obs.Gauge
	legacy   *obs.CounterVec // by legacy route

	negStarted    *obs.Counter
	negOutcomes   *obs.CounterVec // by outcome: agreed / no_agreement / error
	negPrechecked *obs.Counter
	negBlevel     *obs.Histogram

	solves        *obs.CounterVec // by mode: optimal / greedy
	solverNodes   *obs.Counter
	solverPrunes  *obs.Counter
	solverTasks   *obs.Counter
	solverSteals  *obs.Counter
	solverSplits  *obs.Counter
	solverSeconds *obs.Histogram

	breakerState       *obs.GaugeVec   // by provider
	breakerTransitions *obs.CounterVec // by provider, to-state

	slasActive   *obs.Gauge
	observations *obs.CounterVec // by result: ok / violation
	failovers    *obs.CounterVec // by result: rebound / stuck

	journalDropped *obs.Counter

	walRecords      *obs.Counter
	walAppendErrors *obs.Counter
	walTruncated    *obs.Counter
	snapshots       *obs.Counter

	admissionInflight *obs.Gauge
	admissionQueued   *obs.Gauge
	admissionShed     *obs.Counter
}

// newBrokerMetrics registers the broker's metric families on reg. All
// families are registered up front — even those whose series only
// appear under traffic — so one scrape of a fresh broker already
// documents the full catalogue.
func newBrokerMetrics(reg *obs.Registry) *brokerMetrics {
	return &brokerMetrics{
		requests: reg.CounterVec("broker_http_requests_total",
			"HTTP requests served, by v1 route, method and status.",
			"route", "method", "status"),
		latency: reg.HistogramVec("broker_http_request_seconds",
			"HTTP request handling latency in seconds, by v1 route.",
			nil, "route"),
		inFlight: reg.Gauge("broker_http_in_flight",
			"HTTP requests currently being handled."),
		legacy: reg.CounterVec("broker_http_legacy_requests_total",
			"Requests arriving on deprecated pre-v1 routes, by legacy path.",
			"route"),
		negStarted: reg.Counter("broker_negotiations_started_total",
			"Negotiations started (initial requests and failover replays)."),
		negOutcomes: reg.CounterVec("broker_negotiations_total",
			"Completed negotiations, by outcome.",
			"outcome"),
		negPrechecked: reg.Counter("broker_negotiation_prechecks_doomed_total",
			"Provider negotiations skipped because the c-zero precheck proved them doomed."),
		negBlevel: reg.Histogram("broker_negotiation_blevel",
			"Agreed consistency level (blevel) of successful negotiations.",
			blevelBuckets),
		solves: reg.CounterVec("broker_solver_solves_total",
			"Composition solves, by algorithm.",
			"mode"),
		solverNodes: reg.Counter("broker_solver_nodes_total",
			"Search nodes expanded by composition solves."),
		solverPrunes: reg.Counter("broker_solver_prunes_total",
			"Subtrees pruned by the branch-and-bound bound in composition solves."),
		solverTasks: reg.Counter("broker_solver_tasks_total",
			"Parallel subtree tasks executed by composition solves."),
		solverSteals: reg.Counter("broker_solver_steals_total",
			"Subtree tasks stolen between workers in composition solves."),
		solverSplits: reg.Counter("broker_solver_splits_total",
			"Subtree splits spilled on steal demand in composition solves."),
		solverSeconds: reg.Histogram("broker_solver_seconds",
			"Wall-clock composition solve time in seconds.", nil),
		journalDropped: reg.Counter("journal_events_dropped_total",
			"Flight-recorder journal events dropped by the bounded event ring."),
		breakerState: reg.GaugeVec("broker_breaker_state",
			"Circuit breaker state per provider (0 closed, 1 open, 2 half-open).",
			"provider"),
		breakerTransitions: reg.CounterVec("broker_breaker_transitions_total",
			"Circuit breaker state transitions, by provider and new state.",
			"provider", "to"),
		slasActive: reg.Gauge("broker_slas_active",
			"Live SLA sessions held by the broker."),
		observations: reg.CounterVec("broker_observations_total",
			"Service-level observations recorded against live SLAs, by result.",
			"result"),
		failovers: reg.CounterVec("broker_failovers_total",
			"Violation-driven failover attempts, by result.",
			"result"),
		walRecords: reg.Counter("broker_wal_records_total",
			"State mutation records appended to the durability WAL."),
		walAppendErrors: reg.Counter("broker_wal_append_errors_total",
			"WAL appends that failed; the in-memory state is served but may not survive a restart."),
		walTruncated: reg.Counter("broker_wal_truncated_records_total",
			"Torn or corrupt WAL tail records discarded during crash recovery."),
		snapshots: reg.Counter("broker_snapshots_total",
			"State snapshots written (periodic and final-drain)."),
		admissionInflight: reg.Gauge("broker_admission_inflight",
			"Requests currently holding an admission slot on overload-protected routes."),
		admissionQueued: reg.Gauge("broker_admission_queued",
			"Requests waiting in the bounded admission queue."),
		admissionShed: reg.Counter("broker_admission_shed_total",
			"Requests shed with 429 because the admission semaphore and queue were full."),
	}
}

// observeSolve records one composition solve's search statistics.
func (m *brokerMetrics) observeSolve(mode string, comp *Composition) {
	m.solves.With(mode).Inc()
	if comp == nil {
		return
	}
	m.solverNodes.Add(comp.Nodes)
	m.solverPrunes.Add(comp.Prunes)
	m.solverTasks.Add(comp.Tasks)
	m.solverSteals.Add(comp.Steals)
	m.solverSplits.Add(comp.Splits)
	m.solverSeconds.Observe(comp.Elapsed.Seconds())
}

// statusRecorder captures the status code a handler writes so the
// request counter can label it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route's handler with the per-route
// count/latency/status instruments. The route label is the registered
// pattern — bounded cardinality, unlike raw request paths.
func (s *Server) instrument(pattern string, next http.HandlerFunc) http.Handler {
	method, route, ok := strings.Cut(pattern, " ")
	if !ok {
		method, route = "", pattern
	}
	lat := s.bm.latency.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.bm.inFlight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next(rec, r)
		elapsed := time.Since(start)
		lat.Observe(elapsed.Seconds())
		s.bm.inFlight.Dec()
		s.bm.requests.With(route, method, strconv.Itoa(rec.status)).Inc()
		s.logger.InfoContext(r.Context(), "request",
			"method", method, "route", route, "status", rec.status,
			"elapsed", elapsed.Round(time.Microsecond).String())
	})
}

// withTracing opens a trace for every request — adopting the
// client's ID from the X-Softsoa-Trace header when present, minting
// one otherwise — echoes the ID on the response, and records the
// completed trace in the server's ring buffer (traces without spans,
// e.g. scrapes, are dropped there).
func (s *Server) withTracing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
		w.Header().Set(obs.TraceHeader, tr.ID())
		next.ServeHTTP(w, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
		s.traces.Record(tr)
	})
}

// handleMetrics serves the Prometheus text-format exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Handler().ServeHTTP(w, r)
}

// handleTraces dumps the trace ring buffer as JSON, oldest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errcheck a failed debug-dump write means the client is gone; nothing to do
	_ = s.traces.WriteJSON(w)
}

// registerCacheMetrics exports the solve cache's counters on the
// registry as live families: cache_{hits,misses,evictions}_total are
// labelled by tier (tables / fixpoint / search), cache_warm_starts_total
// by result (applied / fallback), and cache_entries gauges the current
// population. The readings come straight from the cache's atomics, so
// every scrape sees the instantaneous truth without per-operation
// instrument plumbing on the hot paths.
func registerCacheMetrics(reg *obs.Registry, c *cache.Cache) {
	tiers := []cache.Tier{cache.TierTables, cache.TierFixpoint, cache.TierSearch}
	hits := map[string]func() float64{}
	misses := map[string]func() float64{}
	evictions := map[string]func() float64{}
	for _, t := range tiers {
		t := t
		hits[t.String()] = func() float64 { return float64(c.TierStats(t).Hits) }
		misses[t.String()] = func() float64 { return float64(c.TierStats(t).Misses) }
		evictions[t.String()] = func() float64 { return float64(c.TierStats(t).Evictions) }
	}
	reg.CounterFuncs("cache_hits_total", "Solve cache hits by tier.", "tier", hits)
	reg.CounterFuncs("cache_misses_total", "Solve cache misses by tier.", "tier", misses)
	reg.CounterFuncs("cache_evictions_total", "Solve cache LRU evictions by tier.", "tier", evictions)
	reg.CounterFuncs("cache_warm_starts_total",
		"Warm-started solves by result: applied (seeded the search) or fallback (slot unusable, ran cold).",
		"result", map[string]func() float64{
			"applied":  func() float64 { applied, _ := c.WarmStats(); return float64(applied) },
			"fallback": func() float64 { _, fb := c.WarmStats(); return float64(fb) },
		})
	reg.GaugeFunc("cache_entries", "Entries currently resident in the solve cache.",
		func() float64 { return float64(c.Len()) })
}
