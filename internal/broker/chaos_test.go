package broker

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"strings"
	"sync"
	"testing"
	"time"

	"softsoa/internal/faults"
	"softsoa/internal/soa"
)

// TestChaosDegradationFailover drives the full dependability loop the
// paper motivates: a seeded injector degrades one provider's observed
// QoS, the monitor records violations, the provider's breaker opens
// within the failure budget, the broker fails the session over to the
// remaining healthy provider by renegotiating the original request,
// and compliance recovers below the threshold.
func TestChaosDegradationFailover(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty,
		WithBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Hour}),
		WithFailover(FailoverPolicy{Enabled: true, ViolationRate: 0.5, MinObservations: 3}),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Transport faults ride along (deterministically: every request
	// pays 1ms), proving the client survives an injected transport.
	inj := faults.New(faults.Plan{
		Seed:      42,
		Providers: []string{"flaky"},
		Latency:   time.Millisecond, LatencyProb: 1,
		DegradeProb: 1, DegradeFactor: 3,
	})
	hc := &http.Client{Transport: inj.Transport(http.DefaultTransport)}
	client := NewClient(ts.URL, hc, WithRetry(RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	}))
	ctx := context.Background()

	// Two providers for the same service; the cheaper one will rot.
	trueLevel := map[string]float64{"flaky": 2, "backup": 3}
	if err := client.Publish(ctx, costDoc("flaky", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(ctx, costDoc("backup", "svc", 3, 0, "us")); err != nil {
		t.Fatal(err)
	}

	sla, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), Upper: fptr(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.Providers[0] != "flaky" || sla.AgreedLevel != 2 {
		t.Fatalf("initial SLA = %+v, want flaky at level 2", sla)
	}

	// The prober measures the bound provider and reports what it saw;
	// the injector degrades flaky's level 2 → 6, a violation.
	provider := sla.Providers[0]
	var failedOverAt int
	for i := 1; i <= 3; i++ {
		obs, err := client.Observe(ctx, sla.ID, inj.MeasureProvider(provider, trueLevel[provider]))
		if err != nil {
			t.Fatal(err)
		}
		if !obs.Violated {
			t.Fatalf("observation %d should violate the degraded SLA", i)
		}
		if obs.FailedOver {
			failedOverAt = i
			provider = obs.Provider
		}
	}
	// Failure budget: threshold 3 consecutive violations == the
	// failover minimum of 3 observations at rate 1.0.
	if failedOverAt != 3 {
		t.Fatalf("failover at observation %d, want 3", failedOverAt)
	}
	if provider != "backup" {
		t.Fatalf("failed over to %q, want backup", provider)
	}

	// The sick provider's breaker is open; the healthy one is closed.
	health, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, ph := range health {
		states[ph.Name] = ph.State
	}
	if states["flaky"] != "open" {
		t.Errorf("flaky breaker = %q, want open", states["flaky"])
	}
	if states["backup"] != "closed" {
		t.Errorf("backup breaker = %q, want closed", states["backup"])
	}

	// The rebound agreement: same ID, next version, healthy provider.
	bound, err := client.SLA(ctx, sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Providers[0] != "backup" || bound.AgreedLevel != 3 || bound.Version != 2 {
		t.Fatalf("post-failover SLA = %+v, want backup at level 3, v2", bound)
	}

	// Compliance recovers: backup is untargeted, so observed levels
	// match the new agreement and the violation rate stays at zero.
	for i := 0; i < 5; i++ {
		obs, err := client.Observe(ctx, sla.ID, inj.MeasureProvider(provider, trueLevel[provider]))
		if err != nil {
			t.Fatal(err)
		}
		if obs.Violated || obs.FailedOver {
			t.Fatalf("post-failover observation %d = %+v, want compliant", i, obs)
		}
	}
	report, err := client.Compliance(ctx, sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if report.Observations != 5 || report.ViolationRate > 0.5 {
		t.Fatalf("post-failover report = %+v, want 5 compliant observations", report)
	}
	if s := inj.Stats(); s.Degradations != 3 || s.Latencies == 0 {
		t.Errorf("injector stats = %+v, want 3 degradations and some latencies", s)
	}
}

// TestChaosZeroFaultRunMatchesDirect verifies the injector at rest is
// invisible: the same negotiation through a zero-fault transport
// yields a byte-identical SLA to one negotiated directly.
func TestChaosZeroFaultRunMatchesDirect(t *testing.T) {
	negotiate := func(hc *http.Client, url string, opts ...ClientOption) []byte {
		client := NewClient(url, hc, opts...)
		ctx := context.Background()
		if err := client.Publish(ctx, costDoc("p1", "failmgmt", 2, 0, "eu")); err != nil {
			t.Fatal(err)
		}
		if err := client.Publish(ctx, costDoc("p2", "failmgmt", 7, 1, "us")); err != nil {
			t.Fatal(err)
		}
		sla, err := client.Negotiate(ctx, NegotiateRequest{
			Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
			Requirement: soa.Attribute{
				Name: "hours", Metric: soa.MetricCost,
				Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
			},
			Lower: fptr(4), Upper: fptr(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := sla.Render()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	direct := httptest.NewServer(NewServer(DefaultLinkPenalty).Handler())
	t.Cleanup(direct.Close)
	plain := negotiate(direct.Client(), direct.URL)

	chaos := httptest.NewServer(NewServer(DefaultLinkPenalty,
		WithBreaker(BreakerConfig{}), WithFailover(FailoverPolicy{Enabled: true}),
	).Handler())
	t.Cleanup(chaos.Close)
	inj := faults.New(faults.Plan{Seed: 42}) // zero probabilities: no faults
	faulted := negotiate(&http.Client{Transport: inj.Transport(http.DefaultTransport)},
		chaos.URL, WithRetry(DefaultRetryPolicy))

	if string(plain) != string(faulted) {
		t.Errorf("zero-fault SLA differs from direct run:\n direct: %s\n chaos:  %s", plain, faulted)
	}
	if s := inj.Stats(); s != (faults.Stats{}) {
		t.Errorf("zero-fault injector produced faults: %+v", s)
	}
}

// TestConcurrentSLALifecycle hammers shared SLAs with negotiate,
// observe, renegotiate, compliance and SLA-fetch traffic from many
// goroutines; run under -race it checks the per-session critical
// sections (notably renegotiate + monitor rebase) hold up.
func TestConcurrentSLALifecycle(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if err := client.Publish(ctx, costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}

	newSLA := func() *soa.SLA {
		sla, err := client.Negotiate(ctx, NegotiateRequest{
			Service: "svc", Client: "shop", Metric: soa.MetricCost,
			Requirement: soa.Attribute{
				Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sla
	}
	shared := []*soa.SLA{newSLA(), newSLA(), newSLA()}

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sla := shared[i%len(shared)]
			for j := 0; j < 8; j++ {
				switch j % 4 {
				case 0:
					// Compliant observation (cost 1 beats agreed 2).
					if _, err := client.Observe(ctx, sla.ID, 1); err != nil {
						errs <- fmt.Errorf("observe: %w", err)
					}
				case 1:
					// Renegotiations may be rejected under contention;
					// only transport/5xx failures are bugs.
					_, err := client.Renegotiate(ctx, RenegotiateRequest{
						ID: sla.ID,
						Requirement: soa.Attribute{
							Metric: soa.MetricCost, Base: 0, PerUnit: float64(1 + j%3),
							Resource: "failures", MaxUnits: 10,
						},
					})
					var noAgree *ErrNoAgreement
					if err != nil && !errors.As(err, &noAgree) {
						errs <- fmt.Errorf("renegotiate: %w", err)
					}
				case 2:
					if _, err := client.Compliance(ctx, sla.ID); err != nil {
						errs <- fmt.Errorf("compliance: %w", err)
					}
				case 3:
					if _, err := client.SLA(ctx, sla.ID); err != nil {
						errs <- fmt.Errorf("sla: %w", err)
					}
				}
			}
			// Fresh negotiations interleave with the shared traffic.
			if _, err := client.Negotiate(ctx, NegotiateRequest{
				Service: "svc", Client: fmt.Sprintf("c%d", i), Metric: soa.MetricCost,
				Requirement: soa.Attribute{
					Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5,
				},
			}); err != nil {
				errs <- fmt.Errorf("negotiate: %w", err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every shared agreement is still coherent: fetchable, monitored,
	// and at a version no lower than the initial agreement.
	for _, sla := range shared {
		got, err := client.SLA(ctx, sla.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Version < 1 {
			t.Errorf("SLA %s version = %d", sla.ID, got.Version)
		}
		report, err := client.Compliance(ctx, sla.ID)
		if err != nil {
			t.Fatal(err)
		}
		if report.Violations != 0 {
			t.Errorf("SLA %s recorded %d violations from compliant traffic", sla.ID, report.Violations)
		}
	}
}

// TestRecoveryMiddleware proves a handler panic surfaces as a
// structured 500 instead of a dropped connection.
func TestRecoveryMiddleware(t *testing.T) {
	h := withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := httputil.DumpResponse(resp, true)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500:\n%s", resp.StatusCode, dump)
	}
	if !strings.Contains(string(dump), `reason="internal error: boom"`) {
		t.Errorf("panic reason not in structured body:\n%s", dump)
	}
}

// TestBreakerSkipsSickProviderInOutcome checks a provider with an
// open breaker is reported as skipped, not negotiated with.
func TestBreakerSkipsSickProviderInOutcome(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty, WithBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if err := client.Publish(ctx, costDoc("sick", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	srv.Health().Trip("sick")
	_, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5,
		},
	})
	var noAgree *ErrNoAgreement
	if !errors.As(err, &noAgree) {
		t.Fatalf("err = %v, want ErrNoAgreement with the only provider quarantined", err)
	}

	// Composition skips the sick provider too.
	if err := client.Publish(ctx, costDoc("well", "svc", 9, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	sla, err := client.Compose(ctx, ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"svc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.Providers[0] != "well" {
		t.Errorf("composition bound %q, want the healthy provider", sla.Providers[0])
	}
}
