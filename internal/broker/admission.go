package broker

import (
	"fmt"
	"net/http"
	"time"
)

// AdmissionConfig bounds concurrent work on the broker's hot routes
// (negotiations, renegotiations, observations, compositions) so a
// burst degrades into fast 429s instead of a pile-up of slow solver
// runs.
type AdmissionConfig struct {
	// MaxInFlight is the number of requests handled concurrently.
	// Zero disables admission control entirely.
	MaxInFlight int
	// MaxQueue is the number of requests allowed to wait for a slot
	// beyond MaxInFlight; arrivals past both bounds are shed with 429.
	// Zero means no queue: the semaphore alone gates admission.
	MaxQueue int
	// RetryAfter is the hint sent in the Retry-After header of shed
	// responses. Zero means the default of 1 second.
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// admission is the gate: a semaphore of in-flight slots plus a
// bounded wait queue, both plain buffered channels. The struct needs
// no mutex — every field is set once in newAdmission and never
// reassigned; the channels themselves are the synchronization, and
// the companion draining flag on Server is an atomic.Bool (atomiccheck
// holds it to atomic access everywhere).
type admission struct {
	sem        chan struct{} // immutable after construction; capacity = MaxInFlight
	queue      chan struct{} // immutable after construction; capacity = MaxQueue
	retryAfter string        // immutable after construction; Retry-After header value, in whole seconds
	bm         *brokerMetrics
}

func newAdmission(cfg AdmissionConfig, bm *brokerMetrics) *admission {
	cfg = cfg.withDefaults()
	secs := int(cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &admission{
		sem:        make(chan struct{}, cfg.MaxInFlight),
		queue:      make(chan struct{}, cfg.MaxQueue),
		retryAfter: fmt.Sprintf("%d", secs),
		bm:         bm,
	}
}

// admit wraps a hot route. The draining check runs even when
// admission control is disabled, so a draining broker refuses new
// work on these routes while in-flight requests finish.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "broker is draining")
			return
		}
		if s.gate == nil {
			next.ServeHTTP(w, r)
			return
		}
		s.gate.serve(w, r, next)
	})
}

func (a *admission) serve(w http.ResponseWriter, r *http.Request, next http.Handler) {
	select {
	case a.sem <- struct{}{}:
	default:
		// No free slot: try to wait in the bounded queue.
		select {
		case a.queue <- struct{}{}:
			a.bm.admissionQueued.Inc()
			select {
			case a.sem <- struct{}{}:
				<-a.queue
				a.bm.admissionQueued.Dec()
			case <-r.Context().Done():
				<-a.queue
				a.bm.admissionQueued.Dec()
				// The client is gone; any status is a courtesy.
				writeError(w, http.StatusServiceUnavailable, "request cancelled while queued")
				return
			}
		default:
			a.bm.admissionShed.Inc()
			w.Header().Set("Retry-After", a.retryAfter)
			writeError(w, http.StatusTooManyRequests, "broker overloaded; retry later")
			return
		}
	}
	a.bm.admissionInflight.Inc()
	defer func() {
		a.bm.admissionInflight.Dec()
		<-a.sem
	}()
	next.ServeHTTP(w, r)
}
