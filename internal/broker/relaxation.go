package broker

import (
	"context"
	"fmt"

	"softsoa/internal/soa"
)

// RelaxationStep is one round of an automatic relaxation strategy: a
// weaker requirement and the acceptance interval under which it may
// be told.
type RelaxationStep struct {
	// Requirement replaces the previous one (retracted first).
	Requirement soa.Attribute
	// Lower/Upper bound the acceptable consistency after the step.
	Lower *float64
	Upper *float64
}

// RelaxationOutcome records how a negotiation with fallbacks ended.
type RelaxationOutcome struct {
	// Rounds counts the requirements tried (1 = the original).
	Rounds int
	// RelaxationsUsed counts the fallback steps applied.
	RelaxationsUsed int
	// FinalOutcome is the per-provider record of the last attempt.
	FinalOutcome *Outcome
}

// NegotiateWithRelaxation implements the multi-round negotiation the
// paper's nonmonotonic language is designed for: if the original
// request finds no agreement, the client's requirement is relaxed
// through the fallback steps — each applied to the winning provider
// candidates by retracting (÷) the previous requirement and telling
// the weaker one, exactly as Example 2 relaxes a merged policy. The
// first round that produces an agreement wins; if every round fails,
// a nil SLA is returned with the full outcome trail.
func (n *Negotiator) NegotiateWithRelaxation(
	ctx context.Context,
	req Request,
	fallbacks []RelaxationStep,
) (*soa.SLA, *Session, *RelaxationOutcome, error) {
	for _, fb := range fallbacks {
		if fb.Requirement.Metric != req.Metric {
			return nil, nil, nil, fmt.Errorf(
				"broker: fallback metric %q differs from negotiated %q",
				fb.Requirement.Metric, req.Metric)
		}
	}

	trail := &RelaxationOutcome{}
	sla, session, outcome, err := n.NegotiateSession(ctx, req)
	trail.Rounds = 1
	trail.FinalOutcome = outcome
	if err != nil {
		return nil, nil, nil, err
	}
	if sla != nil {
		return sla, session, trail, nil
	}

	// No agreement: relax round by round. Each round renegotiates the
	// request with the weaker requirement; sessions from failed rounds
	// are not retained (the failed machines never produced one), so
	// the relaxation re-enters negotiation with the new requirement —
	// and, once a session exists, subsequent steps relax it in place.
	cur := req
	for _, fb := range fallbacks {
		trail.Rounds++
		trail.RelaxationsUsed++
		if session == nil {
			cur.Requirement = fb.Requirement
			cur.Lower = fb.Lower
			cur.Upper = fb.Upper
			sla, session, outcome, err = n.NegotiateSession(ctx, cur)
			if err != nil {
				return nil, nil, trail, err
			}
			trail.FinalOutcome = outcome
			if sla != nil {
				return sla, session, trail, nil
			}
			continue
		}
		// A live session exists from an earlier successful round (only
		// reachable when a later fallback tightens again): relax it
		// nonmonotonically.
		relaxed, err := session.Renegotiate(ctx, fb.Requirement, fb.Lower, fb.Upper)
		if err != nil {
			return nil, nil, trail, err
		}
		if relaxed != nil {
			return relaxed, session, trail, nil
		}
	}
	return nil, nil, trail, nil
}
