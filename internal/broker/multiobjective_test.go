package broker

import (
	"testing"

	"softsoa/internal/policy"
	"softsoa/internal/soa"
)

func dualDoc(provider, service, region string, cost, rel float64, caps ...string) *soa.Document {
	return &soa.Document{
		Service: service, Provider: provider, Region: region,
		Capabilities: caps,
		Attributes: []soa.Attribute{
			{Name: "fee", Metric: soa.MetricCost, Base: cost, PerUnit: 0, Resource: "load", MaxUnits: 2},
			{Name: "uptime", Metric: soa.MetricReliability, Base: rel, PerUnit: 0, Resource: "load", MaxUnits: 2},
		},
	}
}

// TestMultiObjectiveParetoFrontier: three single-stage providers —
// cheap/flaky, dear/solid, and a dominated middle one. The frontier
// must contain exactly the two non-dominated offers.
func TestMultiObjectiveParetoFrontier(t *testing.T) {
	reg := soa.NewRegistry()
	for _, d := range []*soa.Document{
		dualDoc("cheap", "svc", "eu", 2, 80),    // cost 2, rel 0.80
		dualDoc("solid", "svc", "eu", 8, 99),    // cost 8, rel 0.99
		dualDoc("middling", "svc", "eu", 9, 90), // dominated by solid
	} {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c := NewComposer(reg, DefaultLinkPenalty)
	frontier, err := c.ComposeMultiObjective(PipelineRequest{
		Client: "shop", Stages: []string{"svc"}, Metric: soa.MetricCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 2 {
		t.Fatalf("frontier size = %d, want 2: %+v", len(frontier), frontier)
	}
	if frontier[0].Choices[0].Provider != "cheap" || frontier[0].TotalCost != 2 {
		t.Errorf("first frontier point = %+v, want cheap at cost 2", frontier[0])
	}
	if frontier[1].Choices[0].Provider != "solid" || frontier[1].TotalReliability != 0.99 {
		t.Errorf("second frontier point = %+v, want solid at rel 0.99", frontier[1])
	}
	for _, mc := range frontier {
		if mc.Choices[0].Provider == "middling" {
			t.Error("dominated provider must not appear on the frontier")
		}
	}
}

// TestMultiObjectivePipelineWithLinkPenalty: staying in one region
// trades off against a cheaper cross-region pair; both ends of the
// trade-off appear on the frontier.
func TestMultiObjectivePipelineWithLinkPenalty(t *testing.T) {
	reg := soa.NewRegistry()
	for _, d := range []*soa.Document{
		dualDoc("a-eu", "s1", "eu", 6, 95),
		dualDoc("a-us", "s1", "us", 3, 95),
		dualDoc("b-eu", "s2", "eu", 4, 95),
	} {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c := NewComposer(reg, LinkPenalty{Cost: 2, Factor: 0.9})
	frontier, err := c.ComposeMultiObjective(PipelineRequest{
		Client: "shop", Stages: []string{"s1", "s2"}, Metric: soa.MetricCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	// all-eu: cost 10, rel 0.9025; us+eu: cost 3+4+2=9, rel 0.9025·0.9.
	// Neither dominates: both on the frontier.
	if len(frontier) != 2 {
		t.Fatalf("frontier = %+v, want both trade-offs", frontier)
	}
	if frontier[0].TotalCost != 9 || frontier[1].TotalCost != 10 {
		t.Errorf("costs = %v, %v; want 9 and 10", frontier[0].TotalCost, frontier[1].TotalCost)
	}
	if !(frontier[1].TotalReliability > frontier[0].TotalReliability) {
		t.Errorf("the dearer composition must be more reliable: %+v", frontier)
	}
}

func TestMultiObjectiveRequiresBothMetrics(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("costonly", "svc", 3, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	c := NewComposer(reg, DefaultLinkPenalty)
	if _, err := c.ComposeMultiObjective(PipelineRequest{
		Client: "shop", Stages: []string{"svc"}, Metric: soa.MetricCost,
	}); err == nil {
		t.Fatal("providers without both metrics must be rejected")
	}
}

func TestMultiObjectiveHonoursCapabilities(t *testing.T) {
	reg := soa.NewRegistry()
	for _, d := range []*soa.Document{
		dualDoc("insecure", "svc", "eu", 1, 99, "gzip"),
		dualDoc("secure", "svc", "eu", 5, 90, "http-auth"),
	} {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	c := NewComposer(reg, DefaultLinkPenalty, WithComposerVocabulary(testVocabulary(t)))
	frontier, err := c.ComposeMultiObjective(PipelineRequest{
		Client: "shop", Stages: []string{"svc"}, Metric: soa.MetricCost,
		Capabilities: policy.Requirement{Must: []string{"http-auth"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 1 || frontier[0].Choices[0].Provider != "secure" {
		t.Fatalf("frontier = %+v, want only the secure provider", frontier)
	}
}

func TestMultiObjectiveValidation(t *testing.T) {
	c := NewComposer(soa.NewRegistry(), DefaultLinkPenalty)
	if _, err := c.ComposeMultiObjective(PipelineRequest{}); err == nil {
		t.Error("empty request should fail")
	}
	if _, err := c.ComposeMultiObjective(PipelineRequest{
		Client: "c", Stages: []string{"ghost"}, Metric: soa.MetricCost,
	}); err == nil {
		t.Error("unknown stage should fail")
	}
}
