package broker

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	brokerslo "softsoa/internal/broker/slo"
	"softsoa/internal/broker/store"
	"softsoa/internal/cache"
	"softsoa/internal/obs"
	"softsoa/internal/obs/journal"
	"softsoa/internal/policy"
	"softsoa/internal/sccp"
	"softsoa/internal/soa"
	"softsoa/internal/solver"
)

// Wire formats. The paper assumes SOAP messages extended with QoS
// requirements and a UDDI registry; this HTTP/XML front-end carries
// the same documents over the same protocol steps.

// NegotiateRequest is the XML body of POST /negotiate.
type NegotiateRequest struct {
	XMLName     xml.Name      `xml:"negotiate"`
	Service     string        `xml:"service,attr"`
	Client      string        `xml:"client,attr"`
	Metric      soa.Metric    `xml:"metric,attr"`
	Requirement soa.Attribute `xml:"requirement"`
	// Lower/Upper are the client's acceptance interval (a1/a2);
	// omitted elements mean unbounded.
	Lower *float64 `xml:"lower,omitempty"`
	Upper *float64 `xml:"upper,omitempty"`
	// Must/May carry the client's capability policy.
	Must []string `xml:"must,omitempty"`
	May  []string `xml:"may,omitempty"`
}

// ComposeRequest is the XML body of POST /compose.
type ComposeRequest struct {
	XMLName xml.Name   `xml:"compose"`
	Client  string     `xml:"client,attr"`
	Metric  soa.Metric `xml:"metric,attr"`
	// Greedy selects the baseline algorithm instead of the optimal
	// branch-and-bound composition.
	Greedy bool     `xml:"greedy,attr,omitempty"`
	Stages []string `xml:"stage"`
	Lower  *float64 `xml:"lower,omitempty"`
	// Must/May carry the client's capability policy.
	Must []string `xml:"must,omitempty"`
	May  []string `xml:"may,omitempty"`
}

// DiscoverResponse is the XML body returned by GET /discover.
type DiscoverResponse struct {
	XMLName   xml.Name       `xml:"services"`
	Service   string         `xml:"service,attr"`
	Documents []soa.Document `xml:"qos"`
}

// FailureResponse reports a negotiation that found no agreement.
type FailureResponse struct {
	XMLName xml.Name         `xml:"failure"`
	Reason  string           `xml:"reason,attr"`
	Tried   []ProviderReport `xml:"provider"`
}

// ProviderReport is one provider's negotiation status on the wire.
type ProviderReport struct {
	Name   string `xml:"name,attr"`
	Status string `xml:"status,attr"`
}

// XMLError is the structured error body the broker returns for every
// failed request: <error reason="..."/>.
type XMLError struct {
	XMLName xml.Name `xml:"error"`
	Reason  string   `xml:"reason,attr"`
}

// RenegotiateRequest is the XML body of POST /renegotiate: the
// client's new requirement and acceptance interval for an existing
// agreement.
type RenegotiateRequest struct {
	XMLName     xml.Name      `xml:"renegotiate"`
	ID          string        `xml:"id,attr"`
	Requirement soa.Attribute `xml:"requirement"`
	Lower       *float64      `xml:"lower,omitempty"`
	Upper       *float64      `xml:"upper,omitempty"`
}

// ObserveRequest is the XML body of POST /observe: one measured
// service level for a live agreement.
type ObserveRequest struct {
	XMLName xml.Name `xml:"observe"`
	ID      string   `xml:"id,attr"`
	Level   float64  `xml:"level,attr"`
}

// ObserveResponse reports whether the observation violated the SLA,
// with the updated compliance summary. When the violation rate
// crossed the failover threshold, FailedOver is true, Provider names
// the newly bound provider and Report summarises the fresh agreement.
type ObserveResponse struct {
	XMLName    xml.Name      `xml:"observation"`
	ID         string        `xml:"id,attr"`
	Violated   bool          `xml:"violated,attr"`
	Provider   string        `xml:"provider,attr,omitempty"`
	FailedOver bool          `xml:"failedOver,attr,omitempty"`
	Report     MonitorReport `xml:"report"`
}

// slaEntry is the server-side record of one live agreement: the
// session, its compliance monitor, and the original request (kept for
// violation-driven failover). Each entry carries its own lock so
// renegotiation and monitor rebasing happen in one critical section
// per agreement without serialising unrelated SLAs.
type slaEntry struct {
	mu sync.Mutex
	// session is the live constraint store behind the agreement; it
	// is replaced wholesale on failover. guarded by mu
	session *Session
	mon     *Monitor // guarded by mu
	// req is the original negotiation request, replayed against the
	// remaining healthy providers when the agreement fails over.
	// Immutable after construction.
	req Request
	// versionBase offsets session.Version() so the wire version keeps
	// increasing monotonically across failovers. guarded by mu
	versionBase int
	// history is the entry's binding history (initial negotiation,
	// accepted renegotiations, failovers), enough to rebuild the
	// session deterministically from a snapshot. guarded by mu
	history []histOp
}

// version is the wire version of the agreement. Callers hold e.mu.
func (e *slaEntry) version() int { return e.versionBase + e.session.Version() }

// Server is the broker daemon: registry + negotiator + composer
// behind an HTTP mux, plus the store of live SLA sessions, their
// compliance monitors, the per-provider circuit breakers, and the
// observability layer (metrics registry and trace ring buffer).
type Server struct {
	reg        *soa.Registry
	negotiator *Negotiator
	composer   *Composer
	handler    http.Handler
	health     *HealthBoard
	failover   FailoverPolicy
	metrics    *obs.Registry
	bm         *brokerMetrics
	traces     *obs.TraceLog
	logger     *slog.Logger
	slo        *brokerslo.Reconciler // nil when the SLO subsystem is disabled

	// Flight-recorder configuration (immutable after construction).
	journalCap       int
	journalRetention int
	journalStride    int
	journalSink      func(*journal.Journal)

	// Durability (immutable after construction; nil st disables it).
	st            store.Store
	snapshotEvery int
	// persistMu orders commits against snapshots: every handler holds
	// the read side across its in-memory commit and WAL append, a
	// snapshot holds the write side, so no snapshot ever captures a
	// commit whose record lands after the snapshot's sequence. Lock
	// order is persistMu → s.mu → e.mu, never the reverse.
	persistMu    sync.RWMutex
	persistCount atomic.Int64  // records since the last snapshot
	lastSeq      atomic.Uint64 // newest appended WAL sequence
	draining     atomic.Bool   // drain started; hot routes refuse work
	gate         *admission    // nil when admission control is off

	mu         sync.Mutex
	entries    map[string]*slaEntry        // guarded by mu
	nextID     int                         // guarded by mu
	journals   map[string]*journal.Journal // guarded by mu
	journalIDs []string                    // guarded by mu, FIFO retention order
}

// ServerOption configures a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	vocab            *policy.Vocabulary
	breaker          BreakerConfig
	failover         FailoverPolicy
	timeout          time.Duration
	solverWorkers    int
	solverWorkersSet bool
	metrics          *obs.Registry
	traceCap         int
	logger           *slog.Logger
	journalCap       int
	journalRetention int
	journalStride    int
	journalSink      func(*journal.Journal)
	st               store.Store
	snapshotEvery    int
	admission        AdmissionConfig
	solveCache       *cache.Cache
	solveCacheSet    bool
	slo              SLOConfig
}

// defaultSolveCacheSize is the entry capacity of the solve cache a
// server creates when WithSolveCache is not used.
const defaultSolveCacheSize = 4096

// WithServerVocabulary equips the broker daemon with a capability
// vocabulary, enabling MUST/MAY capability policies on the wire.
func WithServerVocabulary(v *policy.Vocabulary) ServerOption {
	return func(c *serverConfig) { c.vocab = v }
}

// WithBreaker tunes the per-provider circuit breakers.
func WithBreaker(cfg BreakerConfig) ServerOption {
	return func(c *serverConfig) { c.breaker = cfg }
}

// WithFailover enables violation-driven failover with the given
// policy.
func WithFailover(p FailoverPolicy) ServerOption {
	return func(c *serverConfig) { c.failover = p.withDefaults() }
}

// WithRequestTimeout bounds each request's total handling time
// (default 30s; <= 0 disables the timeout middleware).
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.timeout = d }
}

// WithSolverWorkers runs the composer's branch-and-bound searches on
// n work-stealing workers. 0 resolves to runtime.GOMAXPROCS(0) at
// solve time; 1 is the sequential path (the default when the option
// is omitted). Results are unchanged — see solver.WithWorkers for the
// determinism guarantee — only the wall-clock of /compose requests
// and the steal/split counters on /v1/metrics.
func WithSolverWorkers(n int) ServerOption {
	return func(c *serverConfig) {
		if n < 0 {
			n = 0
		}
		c.solverWorkers = n
		c.solverWorkersSet = true
	}
}

// WithSolverParallelism runs the composer's solves on n workers.
//
// Deprecated: use WithSolverWorkers. The only semantic difference is
// n < 1, which here stays sequential instead of resolving to
// GOMAXPROCS.
func WithSolverParallelism(n int) ServerOption {
	if n < 1 {
		n = 1
	}
	return WithSolverWorkers(n)
}

// WithMetricsRegistry shares an existing metrics registry with the
// server instead of the private one it creates by default — so an
// ops listener, a fault injector, or several embedded brokers can
// expose one merged scrape.
func WithMetricsRegistry(reg *obs.Registry) ServerOption {
	return func(c *serverConfig) { c.metrics = reg }
}

// WithTraceCapacity sets how many completed traces the debug ring
// buffer retains (default 256).
func WithTraceCapacity(n int) ServerOption {
	return func(c *serverConfig) { c.traceCap = n }
}

// WithLogger installs a structured logger (obs.NewLogger) for request
// outcomes, breaker transitions, failover decisions and journal
// warnings. The default discards everything.
func WithLogger(l *slog.Logger) ServerOption {
	return func(c *serverConfig) { c.logger = l }
}

// WithJournalCapacity bounds each flight-recorder journal's event ring
// (default journal.DefaultCapacity); events beyond it are dropped
// oldest-first and counted by journal_events_dropped_total.
func WithJournalCapacity(n int) ServerOption {
	return func(c *serverConfig) { c.journalCap = n }
}

// WithJournalRetention sets how many journals the server retains for
// GET /v1/negotiations/{id}/journal (default 256, FIFO eviction).
func WithJournalRetention(n int) ServerOption {
	return func(c *serverConfig) { c.journalRetention = n }
}

// WithJournalSink installs a callback invoked with each finished
// journal — brokerd -journal-dir uses it to dump JSONL files. The
// sink runs on the request goroutine; keep it quick.
func WithJournalSink(fn func(*journal.Journal)) ServerOption {
	return func(c *serverConfig) { c.journalSink = fn }
}

// WithSolverTelemetryStride samples every n-th solver search event
// into composition journals (default 64; higher is cheaper).
func WithSolverTelemetryStride(n int) ServerOption {
	return func(c *serverConfig) { c.journalStride = n }
}

// WithStateStore makes the broker durable: every acknowledged state
// mutation is appended to st's WAL, and Recover rebuilds the full
// state — SLAs, sessions, compliance counters, breakers, registry —
// from st's snapshot and WAL tail after a crash or restart. The
// caller owns st's lifecycle (open it before NewServer, close it
// after the final Flush).
func WithStateStore(st store.Store) ServerOption {
	return func(c *serverConfig) { c.st = st }
}

// WithSolveCache installs the content-addressed solve cache shared by
// the negotiator (negotiation instances, propagation fixpoints,
// negotiation and renegotiation plans) and the composer (exact solve
// memos and per-pipeline-shape warm starts). By default the server
// creates its own cache of defaultSolveCacheSize entries; pass an
// explicit cache to share one across embedded brokers or to size it,
// or nil to disable caching entirely. Cached and cold requests are
// bit-identical — same SLAs, same journals — the cache only changes
// how fast the answer is computed. Hit/miss/eviction and warm-start
// counters are exported on the metrics registry (cache_hits_total and
// friends, labelled by tier).
func WithSolveCache(c *cache.Cache) ServerOption {
	return func(cfg *serverConfig) {
		cfg.solveCache = c
		cfg.solveCacheSet = true
	}
}

// WithSnapshotEvery compacts the WAL into a snapshot every n appended
// records (default 256; <= 0 disables periodic snapshots — only
// Flush writes one).
func WithSnapshotEvery(n int) ServerOption {
	return func(c *serverConfig) { c.snapshotEvery = n }
}

// WithAdmission bounds concurrent work on the hot routes; see
// AdmissionConfig. A zero MaxInFlight leaves admission control off.
func WithAdmission(cfg AdmissionConfig) ServerOption {
	return func(c *serverConfig) { c.admission = cfg }
}

// NewServer returns a broker server over a fresh registry with the
// given link penalty for compositions.
func NewServer(penalty LinkPenalty, opts ...ServerOption) *Server {
	cfg := serverConfig{
		timeout:          30 * time.Second,
		traceCap:         256,
		journalCap:       journal.DefaultCapacity,
		journalRetention: 256,
		journalStride:    64,
		snapshotEvery:    256,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.metrics == nil {
		cfg.metrics = obs.NewRegistry()
	}
	if cfg.logger == nil {
		cfg.logger = obs.NopLogger()
	}
	if cfg.journalRetention < 1 {
		cfg.journalRetention = 1
	}
	if cfg.journalStride < 1 {
		cfg.journalStride = 1
	}
	reg := soa.NewRegistry()
	s := &Server{
		reg:              reg,
		failover:         cfg.failover,
		entries:          make(map[string]*slaEntry),
		metrics:          cfg.metrics,
		traces:           obs.NewTraceLog(cfg.traceCap),
		logger:           cfg.logger,
		journalCap:       cfg.journalCap,
		journalRetention: cfg.journalRetention,
		journalStride:    cfg.journalStride,
		journalSink:      cfg.journalSink,
		journals:         make(map[string]*journal.Journal),
		st:               cfg.st,
		snapshotEvery:    cfg.snapshotEvery,
	}
	s.bm = newBrokerMetrics(cfg.metrics)
	if cfg.admission.MaxInFlight > 0 {
		s.gate = newAdmission(cfg.admission, s.bm)
	}
	// Breaker transitions feed the state gauge and transition counter.
	// The hook runs under the board lock, so it stays atomic-only; a
	// user-supplied hook is chained after.
	breaker := cfg.breaker
	userHook := breaker.OnTransition
	breaker.OnTransition = func(provider string, from, to BreakerState) {
		s.bm.breakerState.With(provider).Set(float64(to))
		s.bm.breakerTransitions.With(provider, to.String()).Inc()
		s.logger.Info("breaker transition",
			"provider", provider, "from", from.String(), "to", to.String())
		if userHook != nil {
			userHook(provider, from, to)
		}
	}
	s.health = NewHealthBoard(breaker)
	// The breaker board gates provider selection in both the
	// negotiator and the composer, so a sick provider is skipped
	// everywhere until a half-open probe shows recovery.
	filter := func(provider string) (bool, string) {
		if s.health.Allow(provider) {
			return true, ""
		}
		return false, "circuit breaker open"
	}
	if !cfg.solveCacheSet {
		cfg.solveCache = cache.New(defaultSolveCacheSize)
	}
	negOpts := []NegotiatorOption{WithVocabulary(cfg.vocab), WithProviderFilter(filter)}
	composerOpts := []ComposerOption{
		WithComposerVocabulary(cfg.vocab), WithComposerProviderFilter(filter),
	}
	if cfg.solveCache != nil {
		negOpts = append(negOpts, WithNegotiatorSolveCache(cfg.solveCache))
		composerOpts = append(composerOpts, WithComposerSolveCache(cfg.solveCache))
		registerCacheMetrics(cfg.metrics, cfg.solveCache)
	}
	s.negotiator = NewNegotiator(reg, negOpts...)
	if cfg.solverWorkersSet && cfg.solverWorkers != 1 {
		composerOpts = append(composerOpts, WithSolverOptions(solver.WithWorkers(cfg.solverWorkers)))
	}
	s.composer = NewComposer(reg, penalty, composerOpts...)
	s.slo = s.newSLO(cfg.slo)

	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	// Hot routes sit behind the admission gate (and the drain check),
	// inside the instrumentation so shed 429s appear in the per-route
	// request counters.
	hot := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, s.admit(h).ServeHTTP))
	}
	route("POST /v1/providers", s.handlePublish)
	route("GET /v1/providers", s.handleDiscover)
	hot("POST /v1/negotiations", s.handleNegotiate)
	hot("POST /v1/negotiations/{id}/renegotiate", s.handleRenegotiate)
	route("GET /v1/negotiations/{id}/journal", s.handleJournal)
	route("GET /v1/slas/{id}", s.handleGetSLA)
	route("GET /v1/slas/{id}/compliance", s.handleCompliance)
	hot("POST /v1/observations", s.handleObserve)
	hot("POST /v1/compositions", s.handleCompose)
	route("GET /v1/health", s.handleHealth)
	route("GET /v1/metrics", s.handleMetrics)
	route("GET /v1/debug/traces", s.handleTraces)
	route("GET /v1/debug/slo", s.handleDebugSLO)
	s.registerLegacyAliases(mux)

	var h http.Handler = mux
	if cfg.timeout > 0 {
		h = http.TimeoutHandler(h, cfg.timeout, `<error reason="request timed out"></error>`)
	}
	s.handler = withRecovery(s.withTracing(h))
	return s
}

// registerLegacyAliases installs the deprecated pre-v1 routes as thin
// aliases: each counts the hit under the legacy-requests metric,
// rewrites the request to its /v1 equivalent — preserving method,
// query parameters and body verbatim, modulo the documented
// service→query rename and the id-to-path moves — and re-enters the
// mux, so the request is served and instrumented by the v1 handler.
func (s *Server) registerLegacyAliases(mux *http.ServeMux) {
	reenter := func(w http.ResponseWriter, r *http.Request, legacy, path string) {
		s.bm.legacy.With(legacy).Inc()
		r2 := r.Clone(r.Context())
		r2.URL.Path = path
		mux.ServeHTTP(w, r2)
	}
	mux.HandleFunc("POST /publish", func(w http.ResponseWriter, r *http.Request) {
		reenter(w, r, "/publish", "/v1/providers")
	})
	mux.HandleFunc("POST /negotiate", func(w http.ResponseWriter, r *http.Request) {
		reenter(w, r, "/negotiate", "/v1/negotiations")
	})
	mux.HandleFunc("POST /observe", func(w http.ResponseWriter, r *http.Request) {
		reenter(w, r, "/observe", "/v1/observations")
	})
	mux.HandleFunc("POST /compose", func(w http.ResponseWriter, r *http.Request) {
		reenter(w, r, "/compose", "/v1/compositions")
	})
	mux.HandleFunc("GET /health", func(w http.ResponseWriter, r *http.Request) {
		reenter(w, r, "/health", "/v1/health")
	})
	mux.HandleFunc("GET /discover", func(w http.ResponseWriter, r *http.Request) {
		s.bm.legacy.With("/discover").Inc()
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/v1/providers"
		q := r2.URL.Query()
		if q.Has("service") { // v1 renames the parameter to "query"
			q.Set("query", q.Get("service"))
			q.Del("service")
			r2.URL.RawQuery = q.Encode()
		}
		mux.ServeHTTP(w, r2)
	})
	mux.HandleFunc("GET /sla", func(w http.ResponseWriter, r *http.Request) {
		s.bm.legacy.With("/sla").Inc()
		id := r.URL.Query().Get("id")
		if id == "" {
			writeError(w, http.StatusNotFound, `unknown SLA ""`)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/v1/slas/" + url.PathEscape(id)
		mux.ServeHTTP(w, r2)
	})
	mux.HandleFunc("GET /compliance", func(w http.ResponseWriter, r *http.Request) {
		s.bm.legacy.With("/compliance").Inc()
		id := r.URL.Query().Get("id")
		if id == "" {
			writeError(w, http.StatusNotFound, `unknown SLA ""`)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/v1/slas/" + url.PathEscape(id) + "/compliance"
		mux.ServeHTTP(w, r2)
	})
	mux.HandleFunc("POST /renegotiate", func(w http.ResponseWriter, r *http.Request) {
		s.bm.legacy.With("/renegotiate").Inc()
		// The v1 route carries the SLA id in the path; pull it from the
		// legacy body, then restore the body so the v1 handler re-reads
		// it verbatim.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		var rr RenegotiateRequest
		if err := xml.Unmarshal(body, &rr); err != nil {
			writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		if rr.ID == "" {
			writeError(w, http.StatusNotFound, `unknown SLA ""`)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/v1/negotiations/" + url.PathEscape(rr.ID) + "/renegotiate"
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		mux.ServeHTTP(w, r2)
	})
}

// Registry exposes the server's registry (for tests and local
// embedding).
func (s *Server) Registry() *soa.Registry { return s.reg }

// Health exposes the per-provider breaker board (for tests and local
// embedding).
func (s *Server) Health() *HealthBoard { return s.health }

// Handler returns the HTTP handler: the broker mux wrapped in
// timeout, tracing and panic-recovery middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the server's metrics registry, so an ops listener
// (brokerd -ops-addr) or a test can scrape it without going through
// the public mux.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Traces exposes the server's trace ring buffer.
func (s *Server) Traces() *obs.TraceLog { return s.traces }

// BeginDrain puts the broker into drain mode: the hot routes refuse
// new work with 503 while requests already admitted run to
// completion. The caller then shuts the HTTP server down and calls
// Flush for the final snapshot.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.logger.Info("drain started")
	}
}

// withRecovery turns a handler panic into a structured 500 instead of
// killing the connection (and, under http.Serve, leaking a broken
// keep-alive). http.ErrAbortHandler is re-raised: it is the sanctioned
// way to abort a response.
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	doc, err := soa.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.persistMu.RLock()
	if err := s.reg.Publish(doc); err != nil {
		s.persistMu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.appendRecord(recRegister, registerRecord{Doc: *doc})
	s.persistMu.RUnlock()
	s.maybeSnapshot()
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("query")
	if service == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter")
		return
	}
	resp := DiscoverResponse{Service: service}
	for _, d := range s.reg.Discover(service) {
		resp.Documents = append(resp.Documents, *d)
	}
	writeXML(w, http.StatusOK, resp)
}

func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	parse := obs.StartSpan(ctx, "parse")
	var nr NegotiateRequest
	ok := readXML(w, r, &nr)
	parse.End()
	if !ok {
		return
	}
	req := Request{
		Service:      nr.Service,
		Client:       nr.Client,
		Metric:       nr.Metric,
		Requirement:  nr.Requirement,
		Lower:        nr.Lower,
		Upper:        nr.Upper,
		Capabilities: policy.Requirement{Must: nr.Must, May: nr.May},
	}
	s.bm.negStarted.Inc()
	j := s.newJournal(ctx, "negotiation")
	ctx = journal.ContextWith(ctx, j)
	sla, session, outcome, err := s.negotiator.NegotiateSession(ctx, req)
	s.recordOutcome(outcome)
	if err != nil {
		s.bm.negOutcomes.With("error").Inc()
		s.logger.ErrorContext(ctx, "negotiation failed",
			"service", req.Service, "client", req.Client, "error", err)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if sla == nil {
		s.bm.negOutcomes.With("no_agreement").Inc()
		s.persistMu.RLock()
		id := s.nextJournalID("neg")
		s.appendRecord(recNegFail, negFailRecord{ID: id, Feedback: feedbackFromOutcome(outcome)})
		s.persistMu.RUnlock()
		s.maybeSnapshot()
		s.keepJournal(w, id, j)
		s.logger.InfoContext(ctx, "negotiation found no agreement",
			"service", req.Service, "client", req.Client, "journal", id)
		writeXML(w, http.StatusConflict, failureFromOutcome("no shared agreement", outcome))
		return
	}
	// A live agreement without a monitor would 404 on /observe and
	// /compliance forever; fail the negotiation instead of signing an
	// unmonitorable SLA.
	mon, err := NewMonitor(sla)
	if err != nil {
		s.bm.negOutcomes.With("error").Inc()
		writeError(w, http.StatusInternalServerError, "monitor: "+err.Error())
		return
	}
	commit := obs.StartSpan(ctx, "sla-commit")
	offer := session.offerAttr
	s.persistMu.RLock()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("sla-%d", s.nextID)
	s.entries[id] = &slaEntry{session: session, mon: mon, req: req,
		history: []histOp{{Kind: "negotiate", Provider: session.Provider(), Offer: &offer}}}
	live := len(s.entries)
	s.mu.Unlock()
	s.appendRecord(recNegotiate, negotiateRecord{
		ID: id, Req: req, Provider: session.Provider(), Offer: offer,
		Feedback: feedbackFromOutcome(outcome),
	})
	s.persistMu.RUnlock()
	commit.End()
	s.maybeSnapshot()
	s.bm.negOutcomes.With("agreed").Inc()
	s.bm.negBlevel.Observe(sla.AgreedLevel)
	s.bm.slasActive.Set(float64(live))
	sla.ID = id
	sla.Version = session.Version()
	s.keepJournal(w, id, j)
	s.logger.InfoContext(ctx, "negotiation agreed",
		"service", req.Service, "client", req.Client, "sla", id,
		"provider", session.Provider(), "blevel", sla.AgreedLevel)
	writeXML(w, http.StatusOK, sla)
}

// recordOutcome feeds negotiation results into the breaker board:
// an agreement is a success, a stuck negotiation a failure. Skipped
// providers (missing metric/capabilities, open breaker) don't count.
// Precheck-doomed providers count as failures — the precheck proves
// the run would have ended stuck — and are tallied separately.
func (s *Server) recordOutcome(out *Outcome) {
	if out == nil {
		return
	}
	for _, po := range out.PerProvider {
		if po.Prechecked {
			s.bm.negPrechecked.Inc()
		}
		if po.Skipped != "" {
			continue
		}
		if po.Status == sccp.Succeeded {
			s.health.RecordSuccess(po.Provider)
		} else {
			s.health.RecordFailure(po.Provider)
		}
	}
}

func (s *Server) entry(id string) (*slaEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	return e, ok
}

// handleRenegotiate relaxes an existing agreement nonmonotonically:
// the session's old requirement is retracted from the shared store
// and the new one told under the given interval.
func (s *Server) handleRenegotiate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var rr RenegotiateRequest
	if !readXML(w, r, &rr) {
		return
	}
	e, ok := s.entry(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown SLA %q", id))
		return
	}
	// The renegotiation appends segments to the SLA's retained journal
	// so a negotiation and its later relaxations replay as one
	// artifact; a fresh journal takes over when the original was
	// evicted.
	ctx := r.Context()
	j, ok := s.journalByID(id)
	if !ok {
		j = s.newJournal(ctx, "renegotiation")
	}
	ctx = journal.ContextWith(ctx, j)
	// One critical section per agreement: renegotiating the store and
	// rebasing the monitor must be atomic, or a concurrent
	// renegotiation could rebase the monitor to a stale agreed level.
	// The persist read lock is taken outside e.mu (lock order
	// persistMu → e.mu) so the WAL append lands inside the same
	// critical section: per-entry WAL order matches commit order.
	s.persistMu.RLock()
	e.mu.Lock()
	sla, err := e.session.Renegotiate(ctx, rr.Requirement, rr.Lower, rr.Upper)
	if err != nil {
		e.mu.Unlock()
		s.persistMu.RUnlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if sla == nil {
		e.mu.Unlock()
		s.persistMu.RUnlock()
		s.keepJournal(w, id, j)
		s.logger.InfoContext(ctx, "renegotiation rejected", "sla", id)
		writeXML(w, http.StatusConflict, FailureResponse{
			Reason: "renegotiation rejected: the relaxed store violates the interval; previous agreement stands",
		})
		return
	}
	sla.ID = id
	sla.Version = e.version()
	e.mon.Rebase(sla.AgreedLevel)
	newReq := rr.Requirement
	e.history = append(e.history, histOp{
		Kind: "renegotiate", Requirement: &newReq, Lower: rr.Lower, Upper: rr.Upper,
	})
	s.appendRecord(recRenegotiate, renegotiateRecord{
		ID: id, Requirement: rr.Requirement, Lower: rr.Lower, Upper: rr.Upper,
	})
	e.mu.Unlock()
	s.persistMu.RUnlock()
	s.maybeSnapshot()
	s.keepJournal(w, id, j)
	s.logger.InfoContext(ctx, "renegotiation agreed",
		"sla", id, "version", sla.Version, "blevel", sla.AgreedLevel)
	writeXML(w, http.StatusOK, sla)
}

// handleObserve records a measured service level against a live SLA.
// When failover is enabled and the violation rate crosses the policy
// threshold, the bound provider's breaker is tripped and the original
// request is renegotiated against the remaining healthy providers —
// the paper's graceful degradation: the composition is monitored,
// checked, and rebound when it stops honouring the agreement.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var or ObserveRequest
	if !readXML(w, r, &or) {
		return
	}
	e, ok := s.entry(or.ID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown SLA %q", or.ID))
		return
	}
	// Defers run LIFO: e.mu, then the persist read lock, then the
	// snapshot check (which needs the write lock free).
	defer s.maybeSnapshot()
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	provider := e.session.Provider()
	violated := e.mon.Observe(or.Level)
	rec := observeRecord{ID: or.ID, Level: or.Level, Violated: violated}
	if violated {
		s.bm.observations.With("violation").Inc()
		s.health.RecordFailure(provider)
		rec.Feedback = append(rec.Feedback, feedbackRecord{Provider: provider, Kind: "failure"})
	} else {
		s.bm.observations.With("ok").Inc()
		s.health.RecordSuccess(provider)
		rec.Feedback = append(rec.Feedback, feedbackRecord{Provider: provider, Kind: "success"})
	}
	resp := ObserveResponse{ID: or.ID, Violated: violated, Provider: provider}
	if violated && s.shouldFailOver(or.ID, e.mon) {
		rebound, fb := s.failOverLocked(r.Context(), e)
		rec.Feedback = append(rec.Feedback, fb...)
		if rebound {
			s.bm.failovers.With("rebound").Inc()
			resp.FailedOver = true
			resp.Provider = e.session.Provider()
			offer := e.session.offerAttr
			rec.FailedOver = true
			rec.Provider = resp.Provider
			rec.Offer = &offer
			e.history = append(e.history, histOp{
				Kind: "failover", Provider: resp.Provider, Offer: &offer,
			})
		} else {
			s.bm.failovers.With("stuck").Inc()
		}
	}
	s.appendRecord(recObserve, rec)
	resp.Report = e.mon.Report()
	writeXML(w, http.StatusOK, resp)
}

func (s *Server) shouldFailOver(id string, mon *Monitor) bool {
	if !s.failover.Enabled {
		return false
	}
	// An SLA the SLO reconciler flagged at risk fails over on its next
	// violation even below the per-monitor threshold: the aggregate
	// burn-rate signal has already condemned the binding.
	if s.slo != nil && s.slo.AtRisk(id) {
		return true
	}
	r := mon.Report()
	return r.Observations >= s.failover.MinObservations &&
		r.ViolationRate > s.failover.ViolationRate
}

// failOverLocked replays the entry's original request against the
// remaining healthy providers (the sick one's breaker is tripped
// first, so the negotiator skips it). On success the session is
// replaced and a fresh monitor tracks the new agreement; on failure
// the old agreement stands and the next violation retries. The
// breaker effects the attempt produced are returned so the caller can
// journal them for replay. The caller holds e.mu.
func (s *Server) failOverLocked(ctx context.Context, e *slaEntry) (bool, []feedbackRecord) {
	sick := e.session.Provider()
	s.health.Trip(sick)
	fb := []feedbackRecord{{Provider: sick, Kind: "trip"}}
	s.bm.negStarted.Inc()
	sla, session, outcome, err := s.negotiator.NegotiateSession(ctx, e.req)
	s.recordOutcome(outcome)
	fb = append(fb, feedbackFromOutcome(outcome)...)
	if err != nil || sla == nil {
		s.logger.WarnContext(ctx, "failover found no replacement",
			"service", e.req.Service, "provider", sick)
		return false, fb
	}
	mon, err := NewMonitor(sla)
	if err != nil {
		return false, fb
	}
	e.versionBase += e.session.Version()
	e.session = session
	e.mon = mon
	s.logger.InfoContext(ctx, "failover rebound agreement",
		"service", e.req.Service, "from", sick, "to", session.Provider(),
		"blevel", sla.AgreedLevel)
	return true, fb
}

// handleCompliance returns the compliance summary for a live SLA.
func (s *Server) handleCompliance(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.entry(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown SLA %q", id))
		return
	}
	e.mu.Lock()
	report := e.mon.Report()
	e.mu.Unlock()
	writeXML(w, http.StatusOK, report)
}

// handleGetSLA returns the current agreement for an SLA id.
func (s *Server) handleGetSLA(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.entry(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown SLA %q", id))
		return
	}
	e.mu.Lock()
	sla := e.session.SLA()
	sla.ID = id
	sla.Version = e.version()
	e.mu.Unlock()
	writeXML(w, http.StatusOK, sla)
}

// handleHealth reports every tracked provider's breaker state.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeXML(w, http.StatusOK, HealthResponse{Providers: s.health.Snapshot()})
}

func (s *Server) handleCompose(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	parse := obs.StartSpan(ctx, "parse")
	var cr ComposeRequest
	ok := readXML(w, r, &cr)
	parse.End()
	if !ok {
		return
	}
	req := PipelineRequest{
		Client:       cr.Client,
		Stages:       cr.Stages,
		Metric:       cr.Metric,
		Lower:        cr.Lower,
		Capabilities: policy.Requirement{Must: cr.Must, May: cr.May},
	}
	var (
		sla  *soa.SLA
		comp *Composition
		err  error
	)
	// Compositions journal the solver's search telemetry (sampled
	// node expansions, incumbents, prunes) rather than machine
	// transitions; the segment is evidence, not a replayable program.
	j := s.newJournal(ctx, "composition")
	j.BeginSegment(journal.Segment{
		Label: "compose",
		Note:  fmt.Sprintf("stages=%d metric=%s", len(req.Stages), req.Metric),
	})
	mode := "optimal"
	solve := obs.StartSpan(ctx, "solve")
	if cr.Greedy {
		mode = "greedy"
		sla, comp, err = s.composer.ComposeGreedy(req)
	} else {
		sla, comp, err = s.composer.Compose(req, solver.WithTelemetry(j, s.journalStride))
	}
	solve.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.bm.observeSolve(mode, comp)
	s.persistMu.RLock()
	id := s.nextJournalID("comp")
	s.appendRecord(recCompose, composeRecord{ID: id})
	s.persistMu.RUnlock()
	s.maybeSnapshot()
	if sla == nil {
		j.EndSegment("no_composition", "", "")
		s.keepJournal(w, id, j)
		s.logger.InfoContext(ctx, "composition found no pipeline",
			"client", req.Client, "stages", len(req.Stages), "journal", id)
		writeXML(w, http.StatusConflict, FailureResponse{Reason: "no composition meets the requirement"})
		return
	}
	j.EndSegment("composed", "", fmt.Sprintf("%g", comp.Total))
	s.keepJournal(w, id, j)
	s.logger.InfoContext(ctx, "composition solved",
		"client", req.Client, "mode", mode, "stages", len(req.Stages),
		"total", comp.Total, "journal", id)
	writeXML(w, http.StatusOK, sla)
}

func failureFromOutcome(reason string, out *Outcome) FailureResponse {
	fr := FailureResponse{Reason: reason}
	if out != nil {
		for _, po := range out.PerProvider {
			fr.Tried = append(fr.Tried, ProviderReport{Name: po.Provider, Status: po.Status.String()})
		}
	}
	return fr
}

func readXML(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return false
	}
	if err := xml.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return false
	}
	return true
}

// writeError sends a structured XML error body so clients get typed
// errors instead of free-text ones.
func writeError(w http.ResponseWriter, status int, reason string) {
	writeXML(w, status, XMLError{Reason: reason})
}

func writeXML(w http.ResponseWriter, status int, v any) {
	out, err := xml.MarshalIndent(v, "", "  ")
	if err != nil {
		// Marshalling our own wire types cannot fail under normal
		// operation; fall back to a hand-built error body.
		w.Header().Set("Content-Type", "application/xml")
		w.WriteHeader(http.StatusInternalServerError)
		//lint:ignore errcheck the response write is best-effort; a failed write means the client is gone
		fmt.Fprintf(w, "<error reason=%q></error>\n", "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	//lint:ignore errcheck the response write is best-effort; a failed write means the client is gone
	_, _ = w.Write(out)
	//lint:ignore errcheck the response write is best-effort; a failed write means the client is gone
	_, _ = w.Write([]byte("\n"))
}
