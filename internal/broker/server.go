package broker

import (
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sync"

	"softsoa/internal/policy"
	"softsoa/internal/soa"
)

// Wire formats. The paper assumes SOAP messages extended with QoS
// requirements and a UDDI registry; this HTTP/XML front-end carries
// the same documents over the same protocol steps.

// NegotiateRequest is the XML body of POST /negotiate.
type NegotiateRequest struct {
	XMLName     xml.Name      `xml:"negotiate"`
	Service     string        `xml:"service,attr"`
	Client      string        `xml:"client,attr"`
	Metric      soa.Metric    `xml:"metric,attr"`
	Requirement soa.Attribute `xml:"requirement"`
	// Lower/Upper are the client's acceptance interval (a1/a2);
	// omitted elements mean unbounded.
	Lower *float64 `xml:"lower,omitempty"`
	Upper *float64 `xml:"upper,omitempty"`
	// Must/May carry the client's capability policy.
	Must []string `xml:"must,omitempty"`
	May  []string `xml:"may,omitempty"`
}

// ComposeRequest is the XML body of POST /compose.
type ComposeRequest struct {
	XMLName xml.Name   `xml:"compose"`
	Client  string     `xml:"client,attr"`
	Metric  soa.Metric `xml:"metric,attr"`
	// Greedy selects the baseline algorithm instead of the optimal
	// branch-and-bound composition.
	Greedy bool     `xml:"greedy,attr,omitempty"`
	Stages []string `xml:"stage"`
	Lower  *float64 `xml:"lower,omitempty"`
	// Must/May carry the client's capability policy.
	Must []string `xml:"must,omitempty"`
	May  []string `xml:"may,omitempty"`
}

// DiscoverResponse is the XML body returned by GET /discover.
type DiscoverResponse struct {
	XMLName   xml.Name       `xml:"services"`
	Service   string         `xml:"service,attr"`
	Documents []soa.Document `xml:"qos"`
}

// FailureResponse reports a negotiation that found no agreement.
type FailureResponse struct {
	XMLName xml.Name         `xml:"failure"`
	Reason  string           `xml:"reason,attr"`
	Tried   []ProviderReport `xml:"provider"`
}

// ProviderReport is one provider's negotiation status on the wire.
type ProviderReport struct {
	Name   string `xml:"name,attr"`
	Status string `xml:"status,attr"`
}

// RenegotiateRequest is the XML body of POST /renegotiate: the
// client's new requirement and acceptance interval for an existing
// agreement.
type RenegotiateRequest struct {
	XMLName     xml.Name      `xml:"renegotiate"`
	ID          string        `xml:"id,attr"`
	Requirement soa.Attribute `xml:"requirement"`
	Lower       *float64      `xml:"lower,omitempty"`
	Upper       *float64      `xml:"upper,omitempty"`
}

// ObserveRequest is the XML body of POST /observe: one measured
// service level for a live agreement.
type ObserveRequest struct {
	XMLName xml.Name `xml:"observe"`
	ID      string   `xml:"id,attr"`
	Level   float64  `xml:"level,attr"`
}

// ObserveResponse reports whether the observation violated the SLA,
// with the updated compliance summary.
type ObserveResponse struct {
	XMLName  xml.Name      `xml:"observation"`
	ID       string        `xml:"id,attr"`
	Violated bool          `xml:"violated,attr"`
	Report   MonitorReport `xml:"report"`
}

// Server is the broker daemon: registry + negotiator + composer
// behind an HTTP mux, plus the store of live SLA sessions and their
// compliance monitors.
type Server struct {
	reg        *soa.Registry
	negotiator *Negotiator
	composer   *Composer
	mux        *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*Session
	monitors map[string]*Monitor
	nextID   int
}

// ServerOption configures a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	vocab *policy.Vocabulary
}

// WithServerVocabulary equips the broker daemon with a capability
// vocabulary, enabling MUST/MAY capability policies on the wire.
func WithServerVocabulary(v *policy.Vocabulary) ServerOption {
	return func(c *serverConfig) { c.vocab = v }
}

// NewServer returns a broker server over a fresh registry with the
// given link penalty for compositions.
func NewServer(penalty LinkPenalty, opts ...ServerOption) *Server {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	reg := soa.NewRegistry()
	s := &Server{
		reg:        reg,
		negotiator: NewNegotiator(reg, WithVocabulary(cfg.vocab)),
		composer:   NewComposer(reg, penalty, WithComposerVocabulary(cfg.vocab)),
		sessions:   make(map[string]*Session),
		monitors:   make(map[string]*Monitor),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", s.handlePublish)
	mux.HandleFunc("GET /discover", s.handleDiscover)
	mux.HandleFunc("POST /negotiate", s.handleNegotiate)
	mux.HandleFunc("POST /renegotiate", s.handleRenegotiate)
	mux.HandleFunc("GET /sla", s.handleGetSLA)
	mux.HandleFunc("POST /observe", s.handleObserve)
	mux.HandleFunc("GET /compliance", s.handleCompliance)
	mux.HandleFunc("POST /compose", s.handleCompose)
	s.mux = mux
	return s
}

// Registry exposes the server's registry (for tests and local
// embedding).
func (s *Server) Registry() *soa.Registry { return s.reg }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	doc, err := soa.Parse(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.reg.Publish(doc); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	service := r.URL.Query().Get("service")
	if service == "" {
		http.Error(w, "missing service parameter", http.StatusBadRequest)
		return
	}
	resp := DiscoverResponse{Service: service}
	for _, d := range s.reg.Discover(service) {
		resp.Documents = append(resp.Documents, *d)
	}
	writeXML(w, http.StatusOK, resp)
}

func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	var nr NegotiateRequest
	if !readXML(w, r, &nr) {
		return
	}
	req := Request{
		Service:      nr.Service,
		Client:       nr.Client,
		Metric:       nr.Metric,
		Requirement:  nr.Requirement,
		Lower:        nr.Lower,
		Upper:        nr.Upper,
		Capabilities: policy.Requirement{Must: nr.Must, May: nr.May},
	}
	sla, session, outcome, err := s.negotiator.NegotiateSession(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sla == nil {
		writeXML(w, http.StatusConflict, failureFromOutcome("no shared agreement", outcome))
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("sla-%d", s.nextID)
	s.sessions[id] = session
	if mon, err := NewMonitor(sla); err == nil {
		s.monitors[id] = mon
	}
	s.mu.Unlock()
	sla.ID = id
	sla.Version = session.Version()
	writeXML(w, http.StatusOK, sla)
}

// handleRenegotiate relaxes an existing agreement nonmonotonically:
// the session's old requirement is retracted from the shared store
// and the new one told under the given interval.
func (s *Server) handleRenegotiate(w http.ResponseWriter, r *http.Request) {
	var rr RenegotiateRequest
	if !readXML(w, r, &rr) {
		return
	}
	s.mu.Lock()
	session, ok := s.sessions[rr.ID]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown SLA %q", rr.ID), http.StatusNotFound)
		return
	}
	// Sessions are single-threaded: serialise renegotiations on one
	// agreement under the server lock (stores mutate in place).
	s.mu.Lock()
	sla, err := session.Renegotiate(rr.Requirement, rr.Lower, rr.Upper)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sla == nil {
		writeXML(w, http.StatusConflict, FailureResponse{
			Reason: "renegotiation rejected: the relaxed store violates the interval; previous agreement stands",
		})
		return
	}
	sla.ID = rr.ID
	sla.Version = session.Version()
	s.mu.Lock()
	if mon, ok := s.monitors[rr.ID]; ok {
		mon.Rebase(sla.AgreedLevel)
	}
	s.mu.Unlock()
	writeXML(w, http.StatusOK, sla)
}

// handleObserve records a measured service level against a live SLA.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var or ObserveRequest
	if !readXML(w, r, &or) {
		return
	}
	s.mu.Lock()
	mon, ok := s.monitors[or.ID]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown SLA %q", or.ID), http.StatusNotFound)
		return
	}
	violated := mon.Observe(or.Level)
	writeXML(w, http.StatusOK, ObserveResponse{
		ID: or.ID, Violated: violated, Report: mon.Report(),
	})
}

// handleCompliance returns the compliance summary for a live SLA.
func (s *Server) handleCompliance(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	s.mu.Lock()
	mon, ok := s.monitors[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown SLA %q", id), http.StatusNotFound)
		return
	}
	writeXML(w, http.StatusOK, mon.Report())
}

// handleGetSLA returns the current agreement for an SLA id.
func (s *Server) handleGetSLA(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	s.mu.Lock()
	session, ok := s.sessions[id]
	var sla *soa.SLA
	if ok {
		sla = session.SLA()
		sla.ID = id
		sla.Version = session.Version()
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown SLA %q", id), http.StatusNotFound)
		return
	}
	writeXML(w, http.StatusOK, sla)
}

func (s *Server) handleCompose(w http.ResponseWriter, r *http.Request) {
	var cr ComposeRequest
	if !readXML(w, r, &cr) {
		return
	}
	req := PipelineRequest{
		Client:       cr.Client,
		Stages:       cr.Stages,
		Metric:       cr.Metric,
		Lower:        cr.Lower,
		Capabilities: policy.Requirement{Must: cr.Must, May: cr.May},
	}
	var (
		sla *soa.SLA
		err error
	)
	if cr.Greedy {
		sla, _, err = s.composer.ComposeGreedy(req)
	} else {
		sla, _, err = s.composer.Compose(req)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sla == nil {
		writeXML(w, http.StatusConflict, FailureResponse{Reason: "no composition meets the requirement"})
		return
	}
	writeXML(w, http.StatusOK, sla)
}

func failureFromOutcome(reason string, out *Outcome) FailureResponse {
	fr := FailureResponse{Reason: reason}
	if out != nil {
		for _, po := range out.PerProvider {
			fr.Tried = append(fr.Tried, ProviderReport{Name: po.Provider, Status: po.Status.String()})
		}
	}
	return fr
}

func readXML(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := xml.Unmarshal(body, v); err != nil {
		http.Error(w, "decode request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeXML(w http.ResponseWriter, status int, v any) {
	out, err := xml.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("encode response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	_, _ = w.Write(out)
	_, _ = w.Write([]byte("\n"))
}
