package broker

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"softsoa/internal/soa"
)

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv := NewServer(DefaultLinkPenalty)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client())
}

// TestHTTPEndToEndNegotiation walks the full Fig. 6 protocol over
// HTTP: providers publish XML QoS documents, the client discovers
// them, requests a negotiation, and receives a signed SLA.
func TestHTTPEndToEndNegotiation(t *testing.T) {
	_, client := newTestServer(t)

	if err := client.Publish(context.Background(), costDoc("p1", "failmgmt", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(context.Background(), costDoc("p2", "failmgmt", 7, 1, "us")); err != nil {
		t.Fatal(err)
	}

	docs, err := client.Discover(context.Background(), "failmgmt")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("discovered %d docs, want 2", len(docs))
	}

	sla, err := client.Negotiate(context.Background(), NegotiateRequest{
		Service: "failmgmt",
		Client:  "shop",
		Metric:  soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "hours", Metric: soa.MetricCost,
			Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4),
		Upper: fptr(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.Providers[0] != "p1" || sla.AgreedLevel != 2 {
		t.Errorf("SLA = %+v, want p1 at level 2", sla)
	}
}

func TestHTTPNegotiationFailureReportsProviders(t *testing.T) {
	_, client := newTestServer(t)
	if err := client.Publish(context.Background(), costDoc("p1", "failmgmt", 5, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	_, err := client.Negotiate(context.Background(), NegotiateRequest{
		Service: "failmgmt",
		Client:  "shop",
		Metric:  soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4),
		Upper: fptr(1),
	})
	var noAgree *ErrNoAgreement
	if !errors.As(err, &noAgree) {
		t.Fatalf("err = %v, want ErrNoAgreement", err)
	}
	if len(noAgree.Tried) != 1 || noAgree.Tried[0].Name != "p1" || noAgree.Tried[0].Status != "stuck" {
		t.Errorf("tried = %+v", noAgree.Tried)
	}
}

func TestHTTPComposition(t *testing.T) {
	_, client := newTestServer(t)
	for _, d := range []*soa.Document{
		costDoc("red-eu", "red", 6, 0, "eu"),
		costDoc("red-us", "red", 5, 0, "us"),
		costDoc("bw-eu", "bw", 4, 0, "eu"),
	} {
		if err := client.Publish(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	sla, err := client.Compose(context.Background(), ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"red", "bw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: red-eu + bw-eu = 10 (no cross-region penalty).
	if sla.AgreedLevel != 10 || len(sla.Providers) != 2 {
		t.Errorf("SLA = %+v, want total 10 over 2 providers", sla)
	}
	greedy, err := client.Compose(context.Background(), ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"red", "bw"}, Greedy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.AgreedLevel != 14 { // red-us 5 + (bw-eu 4 + penalty 5)
		t.Errorf("greedy level = %v, want 14", greedy.AgreedLevel)
	}
	// A budget between the two rejects greedy but admits optimal.
	if _, err := client.Compose(context.Background(), ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"red", "bw"},
		Greedy: true, Lower: fptr(12),
	}); err == nil {
		t.Error("greedy composition above budget should be rejected")
	}
	if _, err := client.Compose(context.Background(), ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"red", "bw"}, Lower: fptr(12),
	}); err != nil {
		t.Errorf("optimal composition within budget rejected: %v", err)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	ts, client := newTestServer(t)

	// Invalid QoS document.
	resp, err := http.Post(ts.URL+"/publish", "application/xml", strings.NewReader("<qos/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("publish invalid: status %d", resp.StatusCode)
	}

	// Garbage XML.
	resp, err = http.Post(ts.URL+"/negotiate", "application/xml", strings.NewReader("<negoti"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negotiate garbage: status %d", resp.StatusCode)
	}

	// Missing service parameter.
	resp, err = http.Get(ts.URL + "/discover")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("discover without service: status %d", resp.StatusCode)
	}

	// Unknown service negotiation → 400 from the negotiator.
	_, err = client.Negotiate(context.Background(), NegotiateRequest{
		Service: "ghost", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Resource: "x"},
	})
	if err == nil {
		t.Error("unknown service should error")
	}

	// Method not allowed.
	resp, err = http.Get(ts.URL + "/publish")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /publish: status %d", resp.StatusCode)
	}
}

func TestHTTPComposeNoCandidates(t *testing.T) {
	_, client := newTestServer(t)
	_, err := client.Compose(context.Background(), ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"ghost"},
	})
	if err == nil {
		t.Error("composition over unknown stage should error")
	}
	var noAgree *ErrNoAgreement
	if errors.As(err, &noAgree) {
		t.Error("unknown stage is a request error, not a failed agreement")
	}
}

func TestClientAgainstDownServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1", nil) // nothing listens here
	if err := client.Publish(context.Background(), costDoc("p", "s", 1, 0, "eu")); err == nil {
		t.Error("publish to dead server should error")
	}
	if _, err := client.Discover(context.Background(), "s"); err == nil {
		t.Error("discover against dead server should error")
	}
}

// TestConcurrentNegotiations hammers one broker with parallel
// negotiate/observe/compose traffic; the server must stay consistent
// (exercised under -race in CI runs).
func TestConcurrentNegotiations(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	if err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(context.Background(), costDoc("p2", "stage", 3, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				sla, err := client.Negotiate(context.Background(), NegotiateRequest{
					Service: "svc", Client: fmt.Sprintf("c%d", i), Metric: soa.MetricCost,
					Requirement: soa.Attribute{
						Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5,
					},
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := client.Observe(context.Background(), sla.ID, 1); err != nil {
					errs <- err
					return
				}
				if _, err := client.Compose(context.Background(), ComposeRequest{
					Client: "c", Metric: soa.MetricCost, Stages: []string{"stage"},
				}); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
