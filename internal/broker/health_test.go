package broker

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBoard(threshold int, openFor time.Duration) (*HealthBoard, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	return NewHealthBoard(BreakerConfig{
		FailureThreshold: threshold, OpenTimeout: openFor, Clock: clk.now,
	}), clk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	h, _ := testBoard(3, time.Minute)
	if !h.Allow("p") {
		t.Fatal("fresh provider should be allowed")
	}
	h.RecordFailure("p")
	h.RecordFailure("p")
	if h.State("p") != BreakerClosed || !h.Allow("p") {
		t.Fatal("breaker should stay closed below the threshold")
	}
	h.RecordFailure("p")
	if h.State("p") != BreakerOpen {
		t.Fatalf("state = %v, want open after 3 failures", h.State("p"))
	}
	if h.Allow("p") {
		t.Error("open breaker should reject traffic")
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	h, _ := testBoard(3, time.Minute)
	h.RecordFailure("p")
	h.RecordFailure("p")
	h.RecordSuccess("p")
	h.RecordFailure("p")
	h.RecordFailure("p")
	if h.State("p") != BreakerClosed {
		t.Error("non-consecutive failures should not open the breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	h, clk := testBoard(1, time.Minute)
	h.RecordFailure("p")
	if h.Allow("p") {
		t.Fatal("open breaker should reject before the timeout")
	}
	clk.advance(time.Minute)
	if !h.Allow("p") {
		t.Fatal("breaker past its timeout should admit a probe")
	}
	if h.State("p") != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", h.State("p"))
	}
	if h.Allow("p") {
		t.Error("half-open breaker should admit only one probe at a time")
	}
	// A failed probe re-opens immediately; a successful one closes.
	h.RecordFailure("p")
	if h.State("p") != BreakerOpen || h.Allow("p") {
		t.Error("failed probe should re-open the breaker")
	}
	clk.advance(time.Minute)
	if !h.Allow("p") {
		t.Fatal("second probe should be admitted")
	}
	h.RecordSuccess("p")
	if h.State("p") != BreakerClosed || !h.Allow("p") {
		t.Error("successful probe should close the breaker")
	}
}

func TestBreakerTrip(t *testing.T) {
	h, _ := testBoard(5, time.Minute)
	h.Trip("p")
	if h.State("p") != BreakerOpen || h.Allow("p") {
		t.Error("Trip should open the breaker regardless of failures")
	}
	if !h.Allow("q") {
		t.Error("tripping one provider must not affect others")
	}
}

func TestBoardSnapshotSorted(t *testing.T) {
	h, _ := testBoard(1, time.Minute)
	h.RecordFailure("zeta")
	h.RecordSuccess("alpha")
	snap := h.Snapshot()
	if len(snap) != 2 || snap[0].Name != "alpha" || snap[1].Name != "zeta" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].State != "open" {
		t.Errorf("zeta state = %q, want open", snap[1].State)
	}
}
