package broker

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"softsoa/internal/soa"
)

// flaky returns a handler failing with 502 for the first n requests,
// then delegating, plus a counter of requests seen.
func flaky(n int, next http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			writeError(w, http.StatusBadGateway, "transient upstream failure")
			return
		}
		next.ServeHTTP(w, r)
	}), &calls
}

func fastRetry(attempts int) ClientOption {
	return WithRetry(RetryPolicy{
		MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.5,
	})
}

func TestClientRetriesTransient5xx(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	h, calls := flaky(2, srv.Handler())
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client(), fastRetry(3))

	if err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatalf("publish should succeed on the third attempt: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

func TestClientExhaustsRetriesWithTypedError(t *testing.T) {
	h, calls := flaky(100, http.NotFoundHandler())
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client(), fastRetry(3))

	err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu"))
	var be *BrokerError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BrokerError", err)
	}
	if be.Status != http.StatusBadGateway || be.Reason != "transient upstream failure" {
		t.Errorf("BrokerError = %+v, want decoded structured reason", be)
	}
	if !be.Temporary() {
		t.Error("5xx should be Temporary")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want exactly 3 attempts", got)
	}
}

func TestClientNeverRetriesNoAgreement(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	var calls atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/negotiations" {
			calls.Add(1)
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counted)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client(), fastRetry(5))

	if err := client.Publish(context.Background(), costDoc("p1", "failmgmt", 5, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	_, err := client.Negotiate(context.Background(), NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), Upper: fptr(1),
	})
	var noAgree *ErrNoAgreement
	if !errors.As(err, &noAgree) {
		t.Fatalf("err = %v, want ErrNoAgreement", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("409 no-agreement was retried: %d negotiate requests", got)
	}
}

func TestClientStructuredErrorsOn4xx(t *testing.T) {
	_, client := newTestServer(t)
	_, err := client.SLA(context.Background(), "sla-404")
	var be *BrokerError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BrokerError", err)
	}
	if be.Status != http.StatusNotFound || be.Reason != `unknown SLA "sla-404"` {
		t.Errorf("BrokerError = %+v", be)
	}
	if be.Temporary() {
		t.Error("404 must not be Temporary")
	}
}

func TestClientRespectsContextCancellation(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	t.Cleanup(func() { close(block); ts.Close() })
	client := NewClient(ts.URL, ts.Client(), fastRetry(3))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := client.Discover(ctx, "svc"); err == nil {
		t.Fatal("cancelled request should fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled request did not return promptly: %v", elapsed)
	}
}

func TestClientCancelledBetweenRetries(t *testing.T) {
	h, calls := flaky(100, http.NotFoundHandler())
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second,
	}))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := client.Publish(ctx, costDoc("p1", "svc", 2, 0, "eu"))
	if err == nil {
		t.Fatal("publish should fail")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retry loop ignored context deadline: ran %v", elapsed)
	}
	if got := calls.Load(); got >= 10 {
		t.Errorf("retry loop ran to exhaustion (%d attempts) despite cancellation", got)
	}
}

func TestClientPerAttemptTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client(), WithClientTimeout(20*time.Millisecond))

	start := time.Now()
	_, err := client.Discover(context.Background(), "svc")
	if err == nil {
		t.Fatal("timed-out request should fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("per-attempt timeout not applied: ran %v", elapsed)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := NewClient("http://x", nil, WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
	}))
	var prev time.Duration
	for attempt := 1; attempt <= 4; attempt++ {
		d := c.backoff(attempt)
		if d < prev {
			t.Errorf("backoff(%d) = %v, shrank below %v", attempt, d, prev)
		}
		if d > 40*time.Millisecond {
			t.Errorf("backoff(%d) = %v exceeds the cap", attempt, d)
		}
		prev = d
	}
	if c.backoff(1) != 10*time.Millisecond {
		t.Errorf("backoff(1) = %v, want the base delay", c.backoff(1))
	}
}

// shedding returns a handler answering 429 with a Retry-After hint
// for the first n requests, then delegating.
func shedding(n int, retryAfter string, next http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusTooManyRequests, "broker overloaded; retry later")
			return
		}
		next.ServeHTTP(w, r)
	}), &calls
}

func TestClientRetries429HonoringRetryAfter(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	h, calls := shedding(2, "1", srv.Handler())
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	// BaseDelay of 1ms: any wait near a second proves the Retry-After
	// hint — not the exponential backoff — set the pace.
	client := NewClient(ts.URL, ts.Client(), fastRetry(3))

	start := time.Now()
	if err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatalf("publish should succeed once the shedding stops: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("two shed retries took %v, want >= 2s (Retry-After: 1 twice)", elapsed)
	}
}

func TestClient429ExhaustionIsTemporary(t *testing.T) {
	h, calls := shedding(100, "1", http.NotFoundHandler())
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client(), fastRetry(2))

	err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu"))
	var be *BrokerError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BrokerError", err)
	}
	if be.Status != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", be.Status)
	}
	if !be.Temporary() {
		t.Error("a 429 shed should be Temporary")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d requests, want exactly 2 attempts", got)
	}
}

func TestClientIgnoresMalformedRetryAfter(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	h, calls := shedding(1, "soon", srv.Handler())
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client(), fastRetry(2))

	start := time.Now()
	if err := client.Publish(context.Background(), costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
	// A malformed hint falls back to the millisecond-scale backoff.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("retry after malformed hint took %v, want fast backoff", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"999999", maxRetryAfter},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
