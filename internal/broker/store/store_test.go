package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendN(t *testing.T, s Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		data, _ := json.Marshal(map[string]int{"i": i})
		if _, err := s.Append("op", data); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	appendN(t, m, 3)
	if err := m.WriteSnapshot([]byte(`{"n":3}`), 3); err != nil {
		t.Fatal(err)
	}
	appendN(t, m, 2)
	rec, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != `{"n":3}` || rec.SnapshotSeq != 3 {
		t.Errorf("snapshot = %q seq %d, want {\"n\":3} seq 3", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Seq != 4 || rec.Tail[1].Seq != 5 {
		t.Errorf("tail = %+v, want seqs 4,5", rec.Tail)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 4)
	if err := s.WriteSnapshot([]byte(`{"state":1}`), 2); err != nil {
		t.Fatal(err)
	}
	// Records 3 and 4 were covered... no: snapshot says upToSeq 2, so
	// 3,4 are gone with the WAL reset — that is the caller's contract
	// violation to avoid; here we assert the reset semantics, then
	// append fresh tail records.
	appendN(t, s, 2) // seqs 5, 6
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != `{"state":1}` || rec.SnapshotSeq != 2 {
		t.Errorf("snapshot = %q seq %d", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Seq != 5 || rec.Tail[1].Seq != 6 {
		t.Errorf("tail = %+v, want seqs 5,6", rec.Tail)
	}
	if rec.Truncated != 0 {
		t.Errorf("truncated = %d, want 0", rec.Truncated)
	}
	// The sequence counter resumes after the newest durable record.
	seq, err := s2.Append("op", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Errorf("next seq = %d, want 7", seq)
	}
}

func TestFileTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: a partial frame with no newline.
	walPath := filepath.Join(dir, WALName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":4,"ty`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("tail = %d records, want 3", len(rec.Tail))
	}
	if rec.Truncated != 1 {
		t.Errorf("truncated = %d, want 1", rec.Truncated)
	}
	// The torn bytes are physically gone: a third open sees a clean log.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "deadbeef") {
		t.Errorf("torn frame still present after repair:\n%s", raw)
	}
	// Appends continue after the repaired tail.
	if seq, err := s2.Append("op", nil); err != nil || seq != 4 {
		t.Errorf("append after repair: seq %d err %v, want 4 nil", seq, err)
	}
}

func TestFileCorruptRecordEndsValidPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, WALName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second record's payload: its CRC no
	// longer matches, so recovery keeps only the first record even
	// though the line is complete.
	lines := strings.SplitAfter(string(raw), "\n")
	second := []byte(lines[1])
	second[len(second)/2] ^= 0x01
	corrupted := lines[0] + string(second) + `00000000 {"seq":3,"type":"op"}` + "\n"
	if err := os.WriteFile(walPath, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 1 {
		t.Fatalf("tail = %+v, want the single valid record", rec.Tail)
	}
	if rec.Truncated != 2 {
		t.Errorf("truncated = %d, want 2 (corrupt record + everything after it)", rec.Truncated)
	}
}

func TestFileWriteFaults(t *testing.T) {
	t.Run("enospc", func(t *testing.T) {
		dir := t.TempDir()
		enospc := errors.New("no space left on device")
		fail := true
		s, err := Open(dir, WithWriteFault(func(frame []byte) (int, error) {
			if fail {
				return 0, enospc
			}
			return len(frame), nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append("op", nil); !errors.Is(err, enospc) {
			t.Fatalf("append under ENOSPC: %v, want wrapped fault", err)
		}
		// The failed record consumed no sequence number and left no bytes.
		fail = false
		if seq, err := s.Append("op", nil); err != nil || seq != 1 {
			t.Errorf("append after ENOSPC: seq %d err %v, want 1 nil", seq, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("torn write", func(t *testing.T) {
		dir := t.TempDir()
		torn := errors.New("write torn by power loss")
		var tear bool
		s, err := Open(dir, WithWriteFault(func(frame []byte) (int, error) {
			if tear {
				return len(frame) / 2, torn
			}
			return len(frame), nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, s, 2)
		tear = true
		if _, err := s.Append("op", []byte(`{"x":1}`)); !errors.Is(err, torn) {
			t.Fatalf("torn append error = %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Recovery cuts the half-written frame and keeps the two good
		// records.
		s2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		rec, err := s2.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Tail) != 2 {
			t.Errorf("tail = %d records, want 2", len(rec.Tail))
		}
		if rec.Truncated != 1 {
			t.Errorf("truncated = %d, want 1", rec.Truncated)
		}
	})
}

func TestFileSnapshotAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		appendN(t, s, 1)
		state := fmt.Sprintf(`{"gen":%d}`, i)
		if err := s.WriteSnapshot([]byte(state), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// No temp files linger, and the newest snapshot won.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != `{"gen":2}` || rec.SnapshotSeq != 3 || len(rec.Tail) != 0 {
		t.Errorf("recovery = snapshot %q seq %d tail %d", rec.Snapshot, rec.SnapshotSeq, len(rec.Tail))
	}
}

// TestFileStaleWALAfterSnapshotCrash models a crash between the
// snapshot rename and the WAL reset: the old WAL still holds records
// the snapshot covers, and recovery must skip them.
func TestFileStaleWALAfterSnapshotCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-write the snapshot covering seq 2, leaving the WAL as-is —
	// exactly the state after a crash mid-WriteSnapshot.
	doc, _ := json.Marshal(snapshotFile{V: 1, Seq: 2, State: []byte(`{"covered":2}`)})
	if err := os.WriteFile(filepath.Join(dir, SnapshotName), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 2 || len(rec.Tail) != 1 || rec.Tail[0].Seq != 3 {
		t.Errorf("recovery = seq %d tail %+v, want snapshot 2 + tail seq 3", rec.SnapshotSeq, rec.Tail)
	}
}

func TestFileCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SnapshotName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open over a corrupt snapshot should fail loudly, not guess")
	}
}

func TestFileRecoverTwice(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err == nil {
		t.Fatal("second Recover should fail")
	}
}
