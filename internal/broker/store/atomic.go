package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// atomicWriteFile replaces path with data so that a reader — or a
// recovery after a crash at any instant — sees either the old
// complete file or the new complete file, never a mixture: the data
// is written to a temp file in the same directory, fsync'd, renamed
// over path, and the directory is fsync'd so the rename itself is
// durable.
//
// This is the only function in this package allowed to create or
// rename state files; softsoa-lint's writecheck analyzer flags any
// other os.WriteFile / os.Rename / os.Create / os.CreateTemp call
// here.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		//lint:ignore errcheck best-effort cleanup of the temp file after a failed atomic write
		_ = os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		//lint:ignore errcheck the write error is what matters; close is cleanup
		_ = tmp.Close()
		cleanup()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		//lint:ignore errcheck the chmod error is what matters; close is cleanup
		_ = tmp.Close()
		cleanup()
		return fmt.Errorf("store: chmod %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		//lint:ignore errcheck the sync error is what matters; close is cleanup
		_ = tmp.Close()
		cleanup()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
