package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// State file names inside a File store's directory.
const (
	// WALName is the append-only write-ahead log of mutation records.
	WALName = "wal.log"
	// SnapshotName is the atomically replaced snapshot document.
	SnapshotName = "snapshot.json"
)

// WAL line format: "%08x %s\n" — the IEEE CRC-32 of the JSON record
// in fixed-width hex, a space, the record, a newline. The JSON is the
// same byte-stable encoding discipline as the flight recorder's
// journal lines: no timestamps, struct-ordered fields, so identical
// mutation sequences produce identical logs.
const walCRCLen = 8

// WriteFault intercepts a WAL frame about to be written, for fault
// injection (internal/faults): it returns how many of the frame's
// bytes actually reach the file and the error Append reports. A
// short count with a non-nil error simulates a torn write — the
// partial frame lands on disk and recovery must cut it; (0, ENOSPC)
// simulates a full disk. A nil WriteFault writes everything.
type WriteFault func(frame []byte) (int, error)

// FileOption configures a File store.
type FileOption func(*File)

// WithWriteFault installs a write fault hook (see WriteFault).
func WithWriteFault(f WriteFault) FileOption {
	return func(s *File) { s.fault = f }
}

// WithoutSync disables the fsync after each append — faster, but a
// crash can lose acknowledged records. Tests and benchmarks only.
func WithoutSync() FileOption {
	return func(s *File) { s.noSync = true }
}

// File is a disk-backed Store: an append-only checksummed WAL plus an
// atomically replaced snapshot, both under one state directory.
type File struct {
	dir    string
	fault  WriteFault
	noSync bool

	mu       sync.Mutex
	w        *os.File  // open WAL append handle; guarded by mu
	seq      uint64    // last assigned sequence number; guarded by mu
	recovery *Recovery // cached by Open, returned once by Recover; guarded by mu
	closed   bool      // guarded by mu
}

// Open opens (creating if needed) the state directory, scans the WAL
// — truncating a torn or corrupt tail back to the last valid record —
// and resumes the sequence counter after the newest durable record.
// The recovery result is cached for the Recover call.
func Open(dir string, opts ...FileOption) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create state dir %s: %w", dir, err)
	}
	s := &File{dir: dir}
	for _, o := range opts {
		o(s)
	}
	// The store is not shared until Open returns, so the lock is
	// uncontended; holding it keeps the guarded-field discipline
	// uniform.
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, err := s.load()
	if err != nil {
		return nil, err
	}
	s.recovery = rec
	s.seq = rec.SnapshotSeq
	if n := len(rec.Tail); n > 0 {
		s.seq = rec.Tail[n-1].Seq
	}
	w, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	s.w = w
	return s, nil
}

func (s *File) walPath() string      { return filepath.Join(s.dir, WALName) }
func (s *File) snapshotPath() string { return filepath.Join(s.dir, SnapshotName) }

// snapshotFile is the on-disk snapshot envelope.
type snapshotFile struct {
	V     int             `json:"v"`
	Seq   uint64          `json:"seq"`
	State json.RawMessage `json:"state"`
}

// load reads the snapshot and scans + repairs the WAL.
func (s *File) load() (*Recovery, error) {
	rec := &Recovery{}
	if raw, err := os.ReadFile(s.snapshotPath()); err == nil {
		var sf snapshotFile
		if err := json.Unmarshal(raw, &sf); err != nil {
			// The snapshot is written atomically, so a damaged one is
			// disk corruption, not a crash artifact; refuse to guess.
			return nil, fmt.Errorf("store: corrupt snapshot %s: %w", s.snapshotPath(), err)
		}
		rec.Snapshot = sf.State
		rec.SnapshotSeq = sf.Seq
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}

	raw, err := os.ReadFile(s.walPath())
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read WAL: %w", err)
	}
	records, validLen, truncated := scanWAL(raw)
	if truncated > 0 {
		if err := os.Truncate(s.walPath(), int64(validLen)); err != nil {
			return nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
		rec.Truncated = truncated
	}
	for _, r := range records {
		if r.Seq > rec.SnapshotSeq {
			rec.Tail = append(rec.Tail, r)
		}
	}
	return rec, nil
}

// scanWAL walks the log, returning the valid records, the byte length
// of the valid prefix, and how many trailing torn/corrupt records (or
// record fragments) follow it. Validity is strict: a complete
// newline-terminated line, a well-formed CRC prefix matching the
// record bytes, JSON that decodes to a Record, and a sequence number
// strictly above its predecessor. The first violation ends the valid
// prefix — nothing after it is trusted, even if it frames correctly.
func scanWAL(raw []byte) (records []Record, validLen int, truncated int) {
	offset := 0
	var lastSeq uint64
	for offset < len(raw) {
		nl := bytes.IndexByte(raw[offset:], '\n')
		if nl < 0 {
			break // torn final line, no newline
		}
		line := raw[offset : offset+nl]
		r, ok := parseWALLine(line, lastSeq)
		if !ok {
			break
		}
		records = append(records, r)
		lastSeq = r.Seq
		offset += nl + 1
	}
	validLen = offset
	// Count what is being discarded: complete lines plus a final
	// fragment.
	rest := raw[offset:]
	for len(rest) > 0 {
		truncated++
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break
		}
		rest = rest[nl+1:]
	}
	return records, validLen, truncated
}

// parseWALLine validates one framed record line (without the
// newline).
func parseWALLine(line []byte, lastSeq uint64) (Record, bool) {
	if len(line) < walCRCLen+2 || line[walCRCLen] != ' ' {
		return Record{}, false
	}
	want, err := strconv.ParseUint(string(line[:walCRCLen]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := line[walCRCLen+1:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return Record{}, false
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, false
	}
	if r.Seq <= lastSeq {
		return Record{}, false
	}
	return r, true
}

// Append implements Store: frame, optional fault, write, fsync.
func (s *File) Append(typ string, data []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errClosed
	}
	payload, err := json.Marshal(Record{Seq: s.seq + 1, Type: typ, Data: data})
	if err != nil {
		return 0, fmt.Errorf("store: encode record: %w", err)
	}
	frame := make([]byte, 0, walCRCLen+2+len(payload))
	frame = fmt.Appendf(frame, "%08x ", crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	frame = append(frame, '\n')

	n := len(frame)
	var faultErr error
	if s.fault != nil {
		n, faultErr = s.fault(frame)
		if n > len(frame) {
			n = len(frame)
		}
	}
	if n > 0 {
		if _, werr := s.w.Write(frame[:n]); werr != nil {
			return 0, fmt.Errorf("store: append WAL: %w", werr)
		}
		if !s.noSync {
			if serr := s.w.Sync(); serr != nil {
				return 0, fmt.Errorf("store: sync WAL: %w", serr)
			}
		}
	}
	if faultErr != nil {
		return 0, fmt.Errorf("store: append WAL: %w", faultErr)
	}
	s.seq++
	return s.seq, nil
}

// WriteSnapshot implements Store: the snapshot is replaced
// atomically, then the WAL is reset (also atomically) since every
// covered record is now redundant. A crash between the two steps is
// safe — recovery skips WAL records with Seq <= the snapshot's.
func (s *File) WriteSnapshot(state []byte, upToSeq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	doc, err := json.Marshal(snapshotFile{V: 1, Seq: upToSeq, State: state})
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := atomicWriteFile(s.snapshotPath(), doc, 0o644); err != nil {
		return err
	}
	// Reset the WAL: swap in a fresh empty file and reopen the append
	// handle on it.
	if err := s.w.Close(); err != nil {
		return fmt.Errorf("store: close WAL for reset: %w", err)
	}
	if err := atomicWriteFile(s.walPath(), nil, 0o644); err != nil {
		return err
	}
	w, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen WAL: %w", err)
	}
	s.w = w
	return nil
}

// Recover implements Store, returning the state Open loaded.
func (s *File) Recover() (*Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	if s.recovery == nil {
		return nil, fmt.Errorf("store: Recover called twice")
	}
	rec := s.recovery
	s.recovery = nil
	return rec, nil
}

// Close implements Store.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.w.Close()
}
