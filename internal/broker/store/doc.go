// Package store is the broker's durable state layer: a pluggable
// write-ahead log of state mutations plus periodic snapshots, so a
// crashed brokerd recovers every SLA, session, compliance history and
// breaker state it had acknowledged.
//
// The package deliberately knows nothing about the broker's types. A
// Record is an opaque (type, payload) pair stamped with a
// monotonically increasing sequence number; the broker serialises its
// mutations (register / negotiate / renegotiate / observe / compose)
// into records and replays them through its own deterministic engine
// on startup — the same bit-exact machinery the flight recorder
// (internal/obs/journal) relies on.
//
// Two implementations ship:
//
//   - Memory keeps everything in RAM. It is the zero-dependency
//     default for tests and embedded brokers: recovery works within a
//     process lifetime, nothing survives it.
//   - File appends each record as one checksummed JSON line to
//     <dir>/wal.log, fsync'd before Append returns, and writes
//     snapshots atomically to <dir>/snapshot.json (write to a temp
//     file, fsync, rename, fsync the directory). On recovery a torn
//     or corrupt WAL tail — a crash mid-write, a bad sector — is
//     detected by checksum and truncated back to the last valid
//     record, with the number of discarded records reported so the
//     broker can count the warning.
//
// Durability contract: when Append returns nil the record has reached
// the disk (File) or the heap (Memory). WriteSnapshot makes every
// record with Seq <= the snapshot's sequence redundant; File resets
// the WAL afterwards, and a crash between the two steps is harmless
// because recovery skips WAL records the snapshot already covers.
//
// All state files are created and replaced exclusively through the
// atomic write helper in atomic.go; softsoa-lint's writecheck
// analyzer enforces that discipline for this package.
package store
