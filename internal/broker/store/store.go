package store

import (
	"encoding/json"
	"errors"
	"sync"
)

// errClosed reports an operation on a closed store.
var errClosed = errors.New("store: closed")

// Record is one durable state mutation. Data is an opaque JSON
// payload owned by the caller; Type discriminates it on replay.
type Record struct {
	// Seq is the record's sequence number, assigned by Append,
	// strictly increasing across the store's lifetime (snapshots do
	// not reset it).
	Seq uint64 `json:"seq"`
	// Type names the mutation ("register", "negotiate", …).
	Type string `json:"type"`
	// Data is the mutation payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Recovery is what a Store hands back on startup: the newest
// snapshot (nil when none was ever written), and the WAL tail — every
// durable record the snapshot does not already cover, in append
// order.
type Recovery struct {
	// Snapshot is the last snapshot's state blob, nil if none.
	Snapshot []byte
	// SnapshotSeq is the sequence number the snapshot covers: every
	// record with Seq <= SnapshotSeq is already folded into it.
	SnapshotSeq uint64
	// Tail lists the records to replay on top of the snapshot.
	Tail []Record
	// Truncated counts torn or corrupt trailing records that were
	// detected by checksum and cut from the WAL. Always the tail of
	// the log — a valid record never follows a corrupt one.
	Truncated int
}

// Store is the broker's durability interface. Implementations must be
// safe for concurrent Append calls; Recover and WriteSnapshot are
// called with mutations quiesced (the broker serialises them).
type Store interface {
	// Append durably records one mutation and returns its assigned
	// sequence number. When Append returns an error the record must
	// be treated as not persisted.
	Append(typ string, data []byte) (uint64, error)
	// WriteSnapshot atomically replaces the snapshot with state,
	// covering every record up to and including upToSeq.
	WriteSnapshot(state []byte, upToSeq uint64) error
	// Recover loads the snapshot and WAL tail. It must be called
	// before the first Append so the sequence counter resumes past
	// recovered records.
	Recover() (*Recovery, error)
	// Close releases the store's resources.
	Close() error
}

// Memory is an in-process Store: records and snapshots live on the
// heap, so recovery works across broker instances within one process
// (tests, embedded brokers) and nothing survives it. Close is a
// no-op — the value keeps its state so a later broker over the same
// Memory can Recover it, mirroring a file store's directory
// surviving the process.
type Memory struct {
	mu       sync.Mutex
	seq      uint64   // guarded by mu
	records  []Record // guarded by mu
	snapshot []byte   // guarded by mu
	snapSeq  uint64   // guarded by mu
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{} }

// Append implements Store.
func (m *Memory) Append(typ string, data []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	m.records = append(m.records, Record{
		Seq:  m.seq,
		Type: typ,
		Data: append(json.RawMessage(nil), data...),
	})
	return m.seq, nil
}

// WriteSnapshot implements Store: records covered by the snapshot are
// dropped, mirroring the file store's WAL reset.
func (m *Memory) WriteSnapshot(state []byte, upToSeq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot = append([]byte(nil), state...)
	m.snapSeq = upToSeq
	kept := m.records[:0]
	for _, r := range m.records {
		if r.Seq > upToSeq {
			kept = append(kept, r)
		}
	}
	m.records = kept
	return nil
}

// Recover implements Store.
func (m *Memory) Recover() (*Recovery, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := &Recovery{SnapshotSeq: m.snapSeq}
	if m.snapshot != nil {
		rec.Snapshot = append([]byte(nil), m.snapshot...)
	}
	for _, r := range m.records {
		if r.Seq > m.snapSeq {
			rec.Tail = append(rec.Tail, r)
		}
	}
	return rec, nil
}

// Close implements Store (no-op for Memory, see type comment).
func (m *Memory) Close() error { return nil }

// Records returns a copy of the retained (post-snapshot) records, for
// tests asserting what was and was not committed.
func (m *Memory) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.records...)
}
