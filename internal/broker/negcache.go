package broker

import (
	"softsoa/internal/cache"
	"softsoa/internal/core"
	"softsoa/internal/obs/journal"
	"softsoa/internal/sccp"
	"softsoa/internal/semiring"
	"softsoa/internal/soa"
)

// This file is the broker side of the content-addressed solve cache:
// negotiation instances (tier 1: the compiled space and constraint
// tables a provider/requirement pair always produces), negotiation and
// renegotiation plans (tier 3: the full machine outcome — status,
// transition stream, final store — of a deterministic run), and the
// key builders that address them. The machine is deterministic given
// (semiring, offer, requirement, bounds): seed 1, fixed fuel, fixed
// agent trees. A plan hit therefore replays the exact journal segment
// the cold run recorded — byte for byte, including the transition
// records — and mints a live Session from the cached store snapshot
// without burning fuel.
//
// Plan keys deliberately exclude the provider *name*: two providers
// registering identical QoS attributes produce identical machine runs,
// so they share one plan; the replay stamps the current provider into
// the outcome and the journal label. Error outcomes (fuel exhaustion,
// machine faults) are never cached.

// teeRecorder captures the machine's transition stream for a plan
// while forwarding it unchanged to the live journal (when there is
// one), so a cold run under a recorder journals exactly as before.
type teeRecorder struct {
	live   journal.Recorder
	events []journal.TransitionRecord
}

func (t *teeRecorder) RecordTransition(r journal.TransitionRecord) {
	t.events = append(t.events, r)
	if t.live != nil {
		t.live.RecordTransition(r)
	}
}

// hashAttr folds every field of a QoS attribute that reaches the
// compiled constraint (and the synthesised journal program).
func hashAttr(h *cache.Hasher, a soa.Attribute) {
	h.Str(a.Name)
	h.Str(string(a.Metric))
	h.Float(a.Base)
	h.Float(a.PerUnit)
	h.Str(a.Resource)
	h.Int(a.MaxUnits)
}

// negInstanceKey addresses tier 1: the space and constraint tables of
// a negotiation, a function of (semiring, offer, requirement) only —
// the acceptance bounds live in the checked transition, not the
// tables.
func negInstanceKey(srName string, offer, req soa.Attribute) cache.Key {
	h := cache.NewHasher("neg-instance")
	h.Str(srName)
	hashAttr(h, offer)
	hashAttr(h, req)
	return h.Sum()
}

// negPlanKey addresses tier 3: the complete outcome of a negotiation
// run, additionally keyed by the client's acceptance interval.
func negPlanKey(srName string, offer, req soa.Attribute, lower, upper *float64) cache.Key {
	h := cache.NewHasher("neg-plan")
	h.Str(srName)
	hashAttr(h, offer)
	hashAttr(h, req)
	h.FloatPtr(lower)
	h.FloatPtr(upper)
	return h.Sum()
}

// renegKey addresses a renegotiation plan by the session's history
// key — the negotiation plan key folded with every successful
// renegotiation since (see Session.histKey) — plus the new requirement
// and bounds. The history key determines σ bit for bit (failures roll
// the store back, successes advance the key), so two sessions with the
// same history run the identical machine and share one plan.
func renegKey(hist cache.Key, newReq soa.Attribute, lower, upper *float64) cache.Key {
	h := cache.NewHasher("reneg-plan")
	h.Str(string(hist[:]))
	hashAttr(h, newReq)
	h.FloatPtr(lower)
	h.FloatPtr(upper)
	return h.Sum()
}

// composeSlotKey names the warm-start slot for a pipeline shape:
// compositions over the same stages and metric perturb each other
// (providers drift, breakers open and close), so each solve seeds the
// next one's branch-and-bound bound.
func composeSlotKey(req PipelineRequest) cache.Key {
	h := cache.NewHasher("compose-slot")
	h.Str(string(req.Metric))
	h.Int(len(req.Stages))
	for _, s := range req.Stages {
		h.Str(s)
	}
	return h.Sum()
}

// negInstance is tier 1's cached value: everything negotiateOne
// compiles before fuel starts burning. All fields are immutable after
// construction — constraints and spaces are read-only by design, and
// names/maxUnits/resourceVars are never written post-build — so one
// instance is safely shared by concurrent negotiations and by every
// session minted from it; each run gets its own fresh store.
type negInstance struct {
	space        *core.Space[float64]
	names        []string
	maxUnits     map[string]int
	resourceVars map[string]core.Variable
	offerCon     *core.Constraint[float64]
	reqCon       *core.Constraint[float64]
	spPCon       *core.Constraint[float64]
	spCCon       *core.Constraint[float64]
}

// negPlan is tier 3's cached value for a whole negotiation run.
type negPlan struct {
	inst  *negInstance
	offer soa.Attribute // content-equal to every hit's offer

	// Doomed precheck: the machine never ran.
	prechecked  bool
	doomedValue string // sr.Format(c∅), for the journal's search record
	doomedNote  string // the segment note of the skipped run

	// Full run.
	program     string // synthesised replayable program ("" if withheld)
	czeroNote   string // viable precheck's formatted c∅ ("" without bounds)
	status      sccp.Status
	transitions []journal.TransitionRecord
	endStore    string
	endBlevel   string

	// Success extras.
	agreed    float64
	resources map[string]int
	storeSnap *core.Store[float64] // final σ; Snapshot() per minted session
}

// renegPlan is tier 3's cached value for a renegotiation run on one
// session version.
type renegPlan struct {
	prog        string
	setup       int
	note        string
	status      sccp.Status
	transitions []journal.TransitionRecord
	endStore    string
	endBlevel   string
	postSnap    *core.Store[float64] // post-success σ; nil unless succeeded
}

// copyResources defends cached allocation maps against caller
// mutation.
func copyResources(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// replayNegotiation serves a negotiation from a cached plan: it
// re-emits the journal segment the cold run recorded (same label
// scheme, same program, same transition records, same final store
// strings — the replay checker cannot tell them apart) and, on
// success, mints a fresh Session over an independent snapshot of the
// cached final store.
func (n *Negotiator) replayNegotiation(
	j *journal.Journal,
	sr semiring.Semiring[float64],
	req Request,
	provider string,
	planKey cache.Key,
	pl *negPlan,
) (ProviderOutcome, *Session) {
	if pl.prechecked {
		if j != nil {
			j.BeginSegment(journal.Segment{
				Label: "negotiate:" + provider,
				Note:  pl.doomedNote,
			})
			j.RecordSearch(journal.SearchRecord{Kind: "propagate", Value: pl.doomedValue, Reason: "doomed"})
			j.EndSegment(sccp.Stuck.String(), "", "")
		}
		return ProviderOutcome{Provider: provider, Status: sccp.Stuck, Prechecked: true}, nil
	}
	if j != nil {
		j.BeginSegment(journal.Segment{
			Label:   "negotiate:" + provider,
			Program: pl.program,
			Seed:    1,
			Fuel:    negotiationFuel,
		})
		if pl.czeroNote != "" {
			j.RecordSearch(journal.SearchRecord{Kind: "propagate", Value: pl.czeroNote, Reason: "viable"})
		}
		for _, tr := range pl.transitions {
			j.RecordTransition(tr)
		}
		j.EndSegment(pl.status.String(), pl.endStore, pl.endBlevel)
	}
	po := ProviderOutcome{Provider: provider, Status: pl.status}
	if pl.status != sccp.Succeeded {
		return po, nil
	}
	po.AgreedLevel = pl.agreed
	po.Resources = copyResources(pl.resources)
	sess := &Session{
		histKey:      planKey,
		cache:        n.cache,
		provider:     provider,
		service:      req.Service,
		client:       req.Client,
		metric:       req.Metric,
		sr:           sr,
		space:        pl.inst.space,
		store:        pl.storeSnap.Snapshot(),
		reqCon:       pl.inst.reqCon,
		offerAttr:    pl.offer,
		reqAttr:      req.Requirement,
		maxUnits:     pl.inst.maxUnits,
		resourceVars: pl.inst.resourceVars,
		version:      1,
	}
	return po, sess
}
