package broker

import (
	"context"

	"testing"

	"softsoa/internal/soa"
)

// TestRelaxationSucceedsOnSecondRound mirrors the Example 1 → Example
// 2 arc: the strict interval [4,1] fails against the provider's
// x+5 ⊗ 2x store, the fallback drops the client policy to 2x-minus —
// here a flat 0 requirement with a wider interval — and succeeds.
func TestRelaxationSucceedsOnSecondRound(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "failmgmt", 5, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	strict := Request{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), Upper: fptr(1),
	}
	fallbacks := []RelaxationStep{{
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(10),
	}}
	sla, session, trail, err := n.NegotiateWithRelaxation(context.Background(), strict, fallbacks)
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil {
		t.Fatalf("expected agreement after relaxation, trail %+v", trail)
	}
	if trail.Rounds != 2 || trail.RelaxationsUsed != 1 {
		t.Errorf("trail = %+v, want 2 rounds / 1 relaxation", trail)
	}
	if sla.AgreedLevel != 5 {
		t.Errorf("agreed level = %v, want 5 (provider base alone)", sla.AgreedLevel)
	}
	if session == nil || session.Version() != 1 {
		t.Errorf("session = %+v", session)
	}
}

func TestRelaxationFirstRoundWins(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
	}
	sla, _, trail, err := n.NegotiateWithRelaxation(context.Background(), req, []RelaxationStep{{
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if sla == nil || trail.Rounds != 1 || trail.RelaxationsUsed != 0 {
		t.Fatalf("sla=%v trail=%+v", sla, trail)
	}
}

func TestRelaxationAllRoundsFail(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "svc", 9, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
		Lower:       fptr(3), // demand cost ≤ 3; the provider floor is 9
	}
	sla, session, trail, err := n.NegotiateWithRelaxation(context.Background(), req, []RelaxationStep{
		{
			Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
			Lower:       fptr(5), // still impossible
		},
		{
			Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
			Lower:       fptr(7), // still impossible
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla != nil || session != nil {
		t.Fatal("no round should succeed")
	}
	if trail.Rounds != 3 || trail.RelaxationsUsed != 2 {
		t.Errorf("trail = %+v", trail)
	}
	if trail.FinalOutcome == nil || len(trail.FinalOutcome.PerProvider) != 1 {
		t.Errorf("final outcome missing: %+v", trail.FinalOutcome)
	}
}

func TestRelaxationMetricMismatchRejected(t *testing.T) {
	reg := soa.NewRegistry()
	if err := reg.Publish(costDoc("p1", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	n := NewNegotiator(reg)
	req := Request{
		Service: "svc", Client: "c", Metric: soa.MetricCost,
		Requirement: soa.Attribute{Metric: soa.MetricCost, Base: 0, Resource: "failures", MaxUnits: 5},
	}
	_, _, _, err := n.NegotiateWithRelaxation(context.Background(), req, []RelaxationStep{{
		Requirement: soa.Attribute{Metric: soa.MetricReliability, Base: 90, Resource: "failures"},
	}})
	if err == nil {
		t.Fatal("fallback with mismatched metric must fail upfront")
	}
}
