package broker

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"softsoa/internal/broker/store"
	"softsoa/internal/soa"
)

// durableServer builds a broker over the given store with failover
// enabled, mirroring the brokerd production wiring.
func durableServer(st store.Store, snapshotEvery int) *Server {
	return NewServer(DefaultLinkPenalty,
		WithStateStore(st),
		WithSnapshotEvery(snapshotEvery),
		WithBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Hour}),
		WithFailover(FailoverPolicy{Enabled: true, ViolationRate: 0.5, MinObservations: 3}),
	)
}

// driveLifecycle exercises every persisted mutation kind against the
// server: publish, negotiate, renegotiate, observe-to-failover, a
// failed negotiation and a composition (both of which consume ids).
// It returns the two live SLA ids.
func driveLifecycle(t *testing.T, client *Client) []string {
	t.Helper()
	ctx := context.Background()
	if err := client.Publish(ctx, costDoc("flaky", "svc", 2, 0, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(ctx, costDoc("backup", "svc", 3, 0, "us")); err != nil {
		t.Fatal(err)
	}
	req := NegotiateRequest{
		Service: "svc", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(4), Upper: fptr(1),
	}
	sla1, err := client.Negotiate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sla1.Providers[0] != "flaky" {
		t.Fatalf("sla1 bound %s, want flaky", sla1.Providers[0])
	}
	// Accepted renegotiation: drop the per-unit demand entirely.
	if _, err := client.Renegotiate(ctx, RenegotiateRequest{
		ID: sla1.ID,
		Requirement: soa.Attribute{
			Metric: soa.MetricCost, Base: 0, PerUnit: 0, Resource: "failures", MaxUnits: 10,
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Second agreement, degraded until it fails over to backup.
	sla2, err := client.Negotiate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var failedOver bool
	for i := 0; i < 3; i++ {
		obs, err := client.Observe(ctx, sla2.ID, 6)
		if err != nil {
			t.Fatal(err)
		}
		failedOver = failedOver || obs.FailedOver
	}
	if !failedOver {
		t.Fatal("three violations should have failed sla2 over")
	}
	// A compliant observation against the fresh backup agreement.
	if _, err := client.Observe(ctx, sla2.ID, 3); err != nil {
		t.Fatal(err)
	}
	// A doomed negotiation and a composition both mint ids the
	// recovered broker must not reuse.
	impossible := req
	impossible.Lower = fptr(0.5)
	var noAgree *ErrNoAgreement
	if _, err := client.Negotiate(ctx, impossible); !errors.As(err, &noAgree) {
		t.Fatalf("impossible negotiation: err = %v, want ErrNoAgreement", err)
	}
	if _, err := client.Compose(ctx, ComposeRequest{
		Client: "shop", Metric: soa.MetricCost, Stages: []string{"svc"},
	}); err != nil {
		t.Fatal(err)
	}
	return []string{sla1.ID, sla2.ID}
}

// stateBodies captures the wire representation of the recovered
// surface: each SLA document, its compliance report, and the breaker
// board.
func stateBodies(t *testing.T, baseURL string, ids []string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	paths := []string{"/v1/health"}
	for _, id := range ids {
		paths = append(paths, "/v1/slas/"+id, "/v1/slas/"+id+"/compliance")
	}
	for _, p := range paths {
		resp, err := http.Get(baseURL + p)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		//lint:ignore errcheck test response body close
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", p, resp.StatusCode, body)
		}
		out[p] = string(body)
	}
	return out
}

// TestRecoveryBitExact kills a broker (by abandoning it without any
// drain or flush) and recovers a fresh one from the same store: every
// SLA, session version, compliance counter and breaker state must
// come back byte-identical on the wire. Runs once with the WAL alone
// and once with snapshots compacting mid-stream.
func TestRecoveryBitExact(t *testing.T) {
	for _, tc := range []struct {
		name          string
		snapshotEvery int
	}{
		{"wal-only", 0},
		{"snapshot-every-2", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := store.NewMemory()
			srv := durableServer(mem, tc.snapshotEvery)
			ts := httptest.NewServer(srv.Handler())
			client := NewClient(ts.URL, ts.Client())
			ids := driveLifecycle(t, client)
			before := stateBodies(t, ts.URL, ids)
			ts.Close() // crash: no drain, no final snapshot

			srv2 := durableServer(mem, tc.snapshotEvery)
			stats, err := srv2.Recover(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if stats.SLAs != 2 {
				t.Errorf("recovered %d SLAs, want 2", stats.SLAs)
			}
			if stats.Providers != 2 {
				t.Errorf("recovered %d registry docs, want 2", stats.Providers)
			}
			if tc.snapshotEvery > 0 && stats.SnapshotSeq == 0 {
				t.Error("expected a snapshot to have been taken mid-stream")
			}
			ts2 := httptest.NewServer(srv2.Handler())
			t.Cleanup(ts2.Close)
			after := stateBodies(t, ts2.URL, ids)
			for p, want := range before {
				if after[p] != want {
					t.Errorf("GET %s diverged after recovery:\nbefore: %s\nafter:  %s", p, want, after[p])
				}
			}

			// The id counter resumes past everything minted before the
			// crash (sla-1, sla-2, neg-3, comp-4).
			sla, err := NewClient(ts2.URL, ts2.Client()).Negotiate(context.Background(), NegotiateRequest{
				Service: "svc", Client: "shop", Metric: soa.MetricCost,
				Requirement: soa.Attribute{
					Metric: soa.MetricCost, Base: 0, PerUnit: 2, Resource: "failures", MaxUnits: 10,
				},
				Lower: fptr(4), Upper: fptr(1),
			})
			if err != nil {
				t.Fatal(err)
			}
			if sla.ID != "sla-5" {
				t.Errorf("post-recovery id = %s, want sla-5", sla.ID)
			}
		})
	}
}

// TestRecoveryRestoresJournals checks that replayed negotiations and
// renegotiations re-attach flight-recorder journals, so the journal
// route keeps answering after a restart.
func TestRecoveryRestoresJournals(t *testing.T) {
	mem := store.NewMemory()
	srv := durableServer(mem, 0)
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())
	ids := driveLifecycle(t, client)
	ts.Close()

	srv2 := durableServer(mem, 0)
	if _, err := srv2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	j, err := NewClient(ts2.URL, ts2.Client()).Journal(context.Background(), ids[0])
	if err != nil {
		t.Fatalf("journal for %s after recovery: %v", ids[0], err)
	}
	// The recovered journal holds the replayed winning run plus the
	// accepted renegotiation.
	if len(j.Segments()) < 2 {
		t.Errorf("recovered journal has %d segments, want >= 2", len(j.Segments()))
	}
}

// TestRecoverNilStore keeps Recover a no-op on a store-less broker.
func TestRecoverNilStore(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	stats, err := srv.Recover(context.Background())
	if err != nil || stats != nil {
		t.Fatalf("Recover without a store = (%+v, %v), want (nil, nil)", stats, err)
	}
}

// TestFlushWritesFinalSnapshot covers the drain path: after Flush, a
// recovery needs no WAL tail at all.
func TestFlushWritesFinalSnapshot(t *testing.T) {
	mem := store.NewMemory()
	srv := durableServer(mem, 0)
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())
	ids := driveLifecycle(t, client)
	before := stateBodies(t, ts.URL, ids)
	srv.BeginDrain()
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if n := len(mem.Records()); n != 0 {
		t.Errorf("WAL retains %d records after Flush, want 0 (all covered by the snapshot)", n)
	}

	srv2 := durableServer(mem, 0)
	stats, err := srv2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 0 {
		t.Errorf("replayed %d tail records, want 0 after a clean flush", stats.Replayed)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	after := stateBodies(t, ts2.URL, ids)
	for p, want := range before {
		if after[p] != want {
			t.Errorf("GET %s diverged after flush+recover:\nbefore: %s\nafter:  %s", p, want, after[p])
		}
	}
}

// TestFileStoreRecoveryAcrossProcessBoundary runs the same lifecycle
// against the disk-backed store, reopening the state directory the
// way a restarted brokerd would, including a torn WAL tail appended
// by the "crash".
func TestFileStoreRecoveryAcrossProcessBoundary(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := durableServer(st, 0)
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())
	ids := driveLifecycle(t, client)
	before := stateBodies(t, ts.URL, ids)
	ts.Close()
	// Crash mid-append: a torn frame lands after the acknowledged
	// records.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, store.WALName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0bad0bad {"seq":99,"type":"negoti`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := durableServer(st2, 0)
	stats, err := srv2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated != 1 {
		t.Errorf("truncated = %d, want 1 (the torn frame)", stats.Truncated)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	after := stateBodies(t, ts2.URL, ids)
	for p, want := range before {
		if after[p] != want {
			t.Errorf("GET %s diverged after disk recovery:\nbefore: %s\nafter:  %s", p, want, after[p])
		}
	}
}
