package broker

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"softsoa/internal/obs/journal"
	"softsoa/internal/replay"
	"softsoa/internal/soa"
)

// serveForTest serves a pre-built Server (so tests can reach into it)
// and returns a client against it.
func serveForTest(t *testing.T, srv *Server) (*httptest.Server, *Client) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client())
}

// TestJournalReplayExample2 is the acceptance scenario: a live broker
// negotiation and renegotiation shaped like the paper's Example 2
// (offer x+2, requirement x+3 agreed at blevel 5, relaxed to x for
// final store 2x+2 at blevel 2), fetched as a JSONL journal over HTTP
// and verified by deterministic replay.
func TestJournalReplayExample2(t *testing.T) {
	_, client := newTestServer(t)
	ctx := context.Background()

	if err := client.Publish(ctx, &soa.Document{
		Service: "failmgmt", Provider: "p1", Region: "eu",
		Attributes: []soa.Attribute{{
			Name: "fee", Metric: soa.MetricCost,
			Base: 2, PerUnit: 1, Resource: "x", MaxUnits: 10,
		}},
	}); err != nil {
		t.Fatal(err)
	}

	sla, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "failmgmt",
		Client:  "shop",
		Metric:  soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 3, PerUnit: 1, Resource: "x", MaxUnits: 10,
		},
		Lower: fptr(10),
		Upper: fptr(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sla.AgreedLevel != 5 {
		t.Fatalf("negotiated blevel = %g, want 5", sla.AgreedLevel)
	}

	relaxed, err := client.Renegotiate(ctx, RenegotiateRequest{
		ID: sla.ID,
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 0, PerUnit: 1, Resource: "x", MaxUnits: 10,
		},
		Lower: fptr(4),
		Upper: fptr(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.AgreedLevel != 2 {
		t.Fatalf("renegotiated blevel = %g, want 2", relaxed.AgreedLevel)
	}

	j, err := client.Journal(ctx, sla.ID)
	if err != nil {
		t.Fatal(err)
	}
	if meta := j.Meta(); meta.ID != sla.ID || meta.Kind != "negotiation" {
		t.Errorf("journal meta = %+v, want id %s kind negotiation", meta, sla.ID)
	}

	segs := j.Segments()
	if len(segs) != 2 {
		t.Fatalf("journal has %d segments, want 2 (negotiate + renegotiate)", len(segs))
	}
	if segs[0].Label != "negotiate:p1" || segs[1].Label != "renegotiate:p1" {
		t.Errorf("segment labels = %q, %q", segs[0].Label, segs[1].Label)
	}
	if segs[0].Program == "" || segs[1].Program == "" {
		t.Fatalf("segments must be replayable; programs = %q / %q", segs[0].Program, segs[1].Program)
	}
	if segs[1].FinalBlevel != "2" {
		t.Errorf("renegotiation FinalBlevel = %q, want 2", segs[1].FinalBlevel)
	}

	// The recorded rule sequence must show the nonmonotonic pair.
	var rules []string
	for _, ev := range j.Events() {
		if ev.Kind == "transition" && ev.Seg == 1 {
			rules = append(rules, ev.Transition.Rule)
		}
	}
	if len(rules) != 2 || rules[0] != "R7 Retract" || rules[1] != "R1 Tell" {
		t.Errorf("renegotiation rules = %v, want [R7 Retract, R1 Tell]", rules)
	}

	rep, err := replay.Verify(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range rep.Segments {
		if !sr.Replayable {
			t.Errorf("segment %q not replayable", sr.Label)
		}
		for _, m := range sr.Mismatches {
			t.Errorf("segment %q: %s", sr.Label, m)
		}
	}

	// The JSONL dump round-trips byte for byte.
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	j2, err := journal.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := j2.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSONL dump does not round-trip byte for byte")
	}
}

// TestJournalNoAgreement: failed negotiations surface a neg-N journal
// whose doomed providers appear as non-replayable segments.
func TestJournalNoAgreement(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	ts, client := serveForTest(t, srv)
	_ = ts
	ctx := context.Background()

	if err := client.Publish(ctx, costDoc("pricey", "failmgmt", 50, 5, "eu")); err != nil {
		t.Fatal(err)
	}
	_, err := client.Negotiate(ctx, NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 0, PerUnit: 1, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(10), // even the best total (50) exceeds the bound
	})
	if err == nil {
		t.Fatal("want no-agreement error")
	}

	j, ok := srv.journalByID("neg-1")
	if !ok {
		t.Fatal("no journal retained for the failed negotiation")
	}
	segs := j.Segments()
	if len(segs) != 1 || segs[0].Program != "" {
		t.Fatalf("want one non-replayable (prechecked) segment, got %+v", segs)
	}
	if !strings.Contains(segs[0].Note, "prechecked") {
		t.Errorf("segment note = %q, want precheck explanation", segs[0].Note)
	}
}

// TestJournalRetention: the FIFO bound evicts the oldest journal.
func TestJournalRetention(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty, WithJournalRetention(2))
	_, client := serveForTest(t, srv)
	ctx := context.Background()

	if err := client.Publish(ctx, costDoc("p1", "failmgmt", 2, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		sla, err := client.Negotiate(ctx, NegotiateRequest{
			Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
			Requirement: soa.Attribute{
				Name: "budget", Metric: soa.MetricCost,
				Base: 3, PerUnit: 1, Resource: "failures", MaxUnits: 10,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sla.ID)
	}
	if _, ok := srv.journalByID(ids[0]); ok {
		t.Errorf("journal %s should have been evicted", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := srv.journalByID(id); !ok {
			t.Errorf("journal %s missing", id)
		}
	}
}

// TestJournalParallelNegotiations stresses concurrent journaled
// negotiations and renegotiations; run with -race. Every journal must
// verify independently.
func TestJournalParallelNegotiations(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty)
	_, client := serveForTest(t, srv)
	ctx := context.Background()

	if err := client.Publish(ctx, costDoc("p1", "failmgmt", 2, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(ctx, costDoc("p2", "failmgmt", 4, 2, "us")); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sla, err := client.Negotiate(ctx, NegotiateRequest{
				Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
				Requirement: soa.Attribute{
					Name: "budget", Metric: soa.MetricCost,
					Base: 3, PerUnit: 1, Resource: "failures", MaxUnits: 10,
				},
				Lower: fptr(20),
			})
			if err != nil {
				errs <- err
				return
			}
			if _, err := client.Renegotiate(ctx, RenegotiateRequest{
				ID: sla.ID,
				Requirement: soa.Attribute{
					Name: "budget", Metric: soa.MetricCost,
					Base: 0, PerUnit: 1, Resource: "failures", MaxUnits: 10,
				},
				Lower: fptr(20),
			}); err != nil {
				errs <- err
				return
			}
			j, err := client.Journal(ctx, sla.ID)
			if err != nil {
				errs <- err
				return
			}
			rep, err := replay.Verify(j)
			if err != nil {
				errs <- err
				return
			}
			if !rep.OK() {
				for _, sr := range rep.Segments {
					for _, m := range sr.Mismatches {
						t.Errorf("journal %s segment %q: %s", sla.ID, sr.Label, m)
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestJournalRetentionVsLiveRenegotiation: an SLA can outlive its
// journal. When the FIFO bound has evicted sla-1's journal and the
// client renegotiates sla-1, the broker must start a fresh journal —
// never resurrect the evicted one with a partial segment list — and
// the fresh journal must still verify by replay.
func TestJournalRetentionVsLiveRenegotiation(t *testing.T) {
	srv := NewServer(DefaultLinkPenalty, WithJournalRetention(2))
	_, client := serveForTest(t, srv)
	ctx := context.Background()

	if err := client.Publish(ctx, costDoc("p1", "failmgmt", 2, 1, "eu")); err != nil {
		t.Fatal(err)
	}
	req := NegotiateRequest{
		Service: "failmgmt", Client: "shop", Metric: soa.MetricCost,
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 3, PerUnit: 1, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(20),
	}
	var ids []string
	for i := 0; i < 3; i++ {
		sla, err := client.Negotiate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sla.ID)
	}
	if _, ok := srv.journalByID(ids[0]); ok {
		t.Fatalf("precondition: journal %s should have been evicted", ids[0])
	}

	// The SLA is still live; relaxing it must succeed and produce a
	// journal that starts from the renegotiation, not from a
	// partially-resurrected negotiation history.
	if _, err := client.Renegotiate(ctx, RenegotiateRequest{
		ID: ids[0],
		Requirement: soa.Attribute{
			Name: "budget", Metric: soa.MetricCost,
			Base: 0, PerUnit: 1, Resource: "failures", MaxUnits: 10,
		},
		Lower: fptr(20),
	}); err != nil {
		t.Fatal(err)
	}
	j, err := client.Journal(ctx, ids[0])
	if err != nil {
		t.Fatalf("journal after renegotiating an evicted id: %v", err)
	}
	if meta := j.Meta(); meta.Kind != "renegotiation" {
		t.Errorf("journal kind = %q, want renegotiation (a fresh journal)", meta.Kind)
	}
	segs := j.Segments()
	if len(segs) != 1 {
		t.Fatalf("fresh journal has %d segments, want 1 (the renegotiation only)", len(segs))
	}
	if segs[0].Label != "renegotiate:p1" {
		t.Errorf("segment label = %q, want renegotiate:p1", segs[0].Label)
	}
	rep, err := replay.Verify(j)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, sr := range rep.Segments {
			for _, m := range sr.Mismatches {
				t.Errorf("segment %q: %s", sr.Label, m)
			}
		}
	}

	// Re-storing under an evicted id consumes a retention slot again:
	// the FIFO moves on to evict the next-oldest journal.
	if _, ok := srv.journalByID(ids[1]); ok {
		t.Errorf("journal %s should have been evicted by the re-stored %s", ids[1], ids[0])
	}
	if _, ok := srv.journalByID(ids[2]); !ok {
		t.Errorf("journal %s missing", ids[2])
	}
}
