package broker

import (
	"context"
	"fmt"
	"net/http"

	"softsoa/internal/obs"
	"softsoa/internal/obs/journal"
)

// JournalHeader is the response header naming the flight-recorder
// journal a negotiation, renegotiation or composition produced, so a
// client can fetch GET /v1/negotiations/{id}/journal without parsing
// the body.
const JournalHeader = "X-Softsoa-Journal"

// newJournal mints a journal for one request, correlated with the
// request's trace id and wired into the drop-accounting metric.
func (s *Server) newJournal(ctx context.Context, kind string) *journal.Journal {
	var traceID string
	if t := obs.TraceFrom(ctx); t != nil {
		traceID = t.ID()
	}
	j := journal.New(s.journalCap, journal.Meta{Kind: kind, Trace: traceID})
	j.SetOnDrop(func(n int64) { s.bm.journalDropped.Add(n) })
	return j
}

// keepJournal stores the finished journal under its final id, evicting
// the oldest retained journal beyond the retention bound, stamps the
// response header, and hands the journal to the configured sink
// (brokerd -journal-dir). Renegotiations re-store the same journal
// under the same id, which refreshes nothing: the id keeps its
// original retention slot.
func (s *Server) keepJournal(w http.ResponseWriter, id string, j *journal.Journal) {
	s.storeJournal(id, j)
	w.Header().Set(JournalHeader, id)
	if s.journalSink != nil {
		s.journalSink(j)
	}
}

// storeJournal retains the journal under id (FIFO eviction), without
// the response header or sink side effects — crash recovery uses it
// directly when re-attaching replayed journals.
func (s *Server) storeJournal(id string, j *journal.Journal) {
	j.SetID(id)
	var evicted []string
	s.mu.Lock()
	if _, exists := s.journals[id]; !exists {
		s.journalIDs = append(s.journalIDs, id)
	}
	s.journals[id] = j
	for len(s.journalIDs) > s.journalRetention {
		old := s.journalIDs[0]
		s.journalIDs = s.journalIDs[1:]
		delete(s.journals, old)
		evicted = append(evicted, old)
	}
	s.mu.Unlock()
	for _, old := range evicted {
		s.logger.Debug("journal evicted", "journal", old)
	}
}

// journalByID looks up a retained journal.
func (s *Server) journalByID(id string) (*journal.Journal, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.journals[id]
	return j, ok
}

// nextJournalID mints a fresh id with the given prefix ("neg" for
// failed negotiations, "comp" for compositions; successful
// negotiations use their SLA id instead).
func (s *Server) nextJournalID(prefix string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("%s-%d", prefix, s.nextID)
}

// handleJournal serves a retained flight-recorder journal: indented
// JSON by default, the exact dump format under ?format=jsonl (the
// same bytes brokerd -journal-dir writes and softsoa-replay reads).
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.journalByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown journal %q", id))
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		//lint:ignore errcheck the response write is best-effort; a failed write means the client is gone
		_ = j.WriteJSONL(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errcheck the response write is best-effort; a failed write means the client is gone
	_ = j.WriteJSON(w)
}
