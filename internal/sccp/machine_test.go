package sccp

import (
	"strings"
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// negotiationSpace builds the variable space shared by the paper's
// Examples 1–3 (Sec. 4.1): x counts failures, y counts reboots, and
// spv1/spv2 carry the synchronisation constraints sp1/sp2.
func negotiationSpace() (*core.Space[float64], map[string]*core.Constraint[float64]) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 10))
	y := s.AddVariable("y", core.IntDomain(0, 10))
	sp1v := s.AddVariable("spv1", core.IntDomain(0, 1))
	sp2v := s.AddVariable("spv2", core.IntDomain(0, 1))

	sr := semiring.Weighted{}
	cs := map[string]*core.Constraint[float64]{
		// Fig. 7: the four weighted soft constraints.
		"c1": core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return a.Num(x) + 3 }),
		"c2": core.NewConstraint(s, []core.Variable{y}, func(a core.Assignment) float64 { return a.Num(y) + 1 }),
		"c3": core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return 2 * a.Num(x) }),
		"c4": core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 { return a.Num(x) + 5 }),
		// Synchronisation tokens: crisp "flag raised" constraints.
		"sp1": core.NewConstraint(s, []core.Variable{sp1v}, func(a core.Assignment) float64 {
			if a.Num(sp1v) == 1 {
				return sr.One()
			}
			return sr.Zero()
		}),
		"sp2": core.NewConstraint(s, []core.Variable{sp2v}, func(a core.Assignment) float64 {
			if a.Num(sp2v) == 1 {
				return sr.One()
			}
			return sr.Zero()
		}),
	}
	return s, cs
}

// TestExample1TellNegotiationFails reproduces Example 1: the merged
// policies c4 ⊗ c3 have blevel 5, outside P2's final interval [4,1],
// so no shared agreement (SLA) is found and the computation deadlocks
// with P2 blocked.
func TestExample1TellNegotiationFails(t *testing.T) {
	s, cs := negotiationSpace()
	sr := semiring.Weighted{}

	p1 := Tell[float64]{C: cs["c4"], Next: Tell[float64]{C: cs["sp2"], Next: Ask[float64]{
		C: cs["sp1"], Check: Between[float64](sr, 10, 2), Next: Success[float64]{},
	}}}
	p2 := Tell[float64]{C: cs["c3"], Next: Tell[float64]{C: cs["sp1"], Next: Ask[float64]{
		C: cs["sp2"], Check: Between[float64](sr, 4, 1), Next: Success[float64]{},
	}}}

	m := NewMachine(s, Par[float64](p1, p2))
	status, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if status != Stuck {
		t.Fatalf("status = %v, want stuck (no shared agreement)", status)
	}
	if got := m.Store().Blevel(); got != 5 {
		t.Fatalf("final σ⇓∅ = %v, want 5", got)
	}
	// P1 must have completed; the residual agent is P2's blocked ask.
	if !strings.Contains(m.Agent().String(), "ask") {
		t.Errorf("residual agent %q should be a blocked ask", m.Agent())
	}
}

// TestExample2RetractRelaxes reproduces Example 2: P1 retracts c1
// (never told — a pure relaxation), leaving σ = c4⊗c3 ÷ c1 ≡ 2x+2
// with blevel 2, inside both parties' intervals: both succeed.
func TestExample2RetractRelaxes(t *testing.T) {
	s, cs := negotiationSpace()
	sr := semiring.Weighted{}

	p1 := Tell[float64]{C: cs["c4"], Next: Tell[float64]{C: cs["sp2"], Next: Ask[float64]{
		C: cs["sp1"], Check: Between[float64](sr, 10, 2), Next: Retract[float64]{
			C: cs["c1"], Check: Between[float64](sr, 10, 2), Next: Success[float64]{},
		},
	}}}
	p2 := Tell[float64]{C: cs["c3"], Next: Tell[float64]{C: cs["sp1"], Next: Ask[float64]{
		C: cs["sp2"], Check: Between[float64](sr, 4, 1), Next: Success[float64]{},
	}}}

	for seed := int64(1); seed <= 8; seed++ {
		m := NewMachine(s, Par[float64](p1, p2), WithSeed[float64](seed))
		status, err := m.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		if status != Succeeded {
			t.Fatalf("seed %d: status = %v, want succeeded", seed, status)
		}
		if got := m.Store().Blevel(); got != 2 {
			t.Fatalf("seed %d: final σ⇓∅ = %v, want 2", seed, got)
		}
		// The store restricted to x must be the polynomial 2x+2.
		sx := core.ProjectTo(m.Store().Constraint(), "x")
		for v := 0; v <= 10; v++ {
			want := 2*float64(v) + 2
			if got := sx.AtLabels(itoa(v)); got != want {
				t.Fatalf("seed %d: σ(x=%d) = %v, want %v", seed, v, got, want)
			}
		}
	}
}

// TestExample3Update reproduces Example 3: tell(c1) then
// update_{x}(c2) refreshes x and leaves the store y+4.
func TestExample3Update(t *testing.T) {
	s, cs := negotiationSpace()
	p1 := Tell[float64]{C: cs["c1"], Next: Update[float64]{
		Vars: []core.Variable{"x"}, C: cs["c2"], Next: Success[float64]{},
	}}
	m := NewMachine(s, p1)
	status, err := m.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v, want succeeded", status)
	}
	sy := core.ProjectTo(m.Store().Constraint(), "y")
	for v := 0; v <= 10; v++ {
		want := float64(v) + 4
		if got := sy.AtLabels(itoa(v)); got != want {
			t.Errorf("σ(y=%d) = %v, want %v", v, got, want)
		}
	}
	if got := m.Store().Blevel(); got != 4 {
		t.Errorf("final σ⇓∅ = %v, want 4", got)
	}
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

func TestTellCheckBlocksWhenTooCostly(t *testing.T) {
	// A tell whose resulting store would violate the lower threshold
	// must suspend (R1's check is on the next-step store).
	s, cs := negotiationSpace()
	sr := semiring.Weighted{}
	agent := Tell[float64]{C: cs["c4"], Check: Between[float64](sr, 3, 0), Next: Success[float64]{}}
	m := NewMachine(s, agent)
	status, err := m.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if status != Stuck {
		t.Fatalf("status = %v, want stuck (blevel 5 outside [3,0])", status)
	}
	if got := m.Store().Blevel(); got != 0 {
		t.Errorf("store must be unchanged, blevel = %v", got)
	}
}

func TestUpperThresholdBlocksTooGoodStore(t *testing.T) {
	// C1 also forbids stores that are "too good": an empty store has
	// blevel 0 (the One), better than a2 = 2.
	s, cs := negotiationSpace()
	sr := semiring.Weighted{}
	agent := Ask[float64]{C: core.Top(s), Check: Between[float64](sr, 10, 2), Next: Success[float64]{}}
	m := NewMachine(s, agent)
	status, err := m.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if status != Stuck {
		t.Fatalf("status = %v, want stuck (store too good)", status)
	}
	// After telling c4 (blevel 5, within [10,2]) the same ask passes.
	m2 := NewMachine(s, Tell[float64]{C: cs["c4"], Next: agent})
	status, err = m2.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v, want succeeded", status)
	}
}

func TestNaskInfersAbsence(t *testing.T) {
	s, cs := negotiationSpace()
	// nask(c4) fires while c4 is not entailed; after telling c4 it
	// must block.
	m := NewMachine(s, Nask[float64]{C: cs["c4"], Next: Success[float64]{}})
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatalf("nask should fire on empty store, got %v", status)
	}
	m2 := NewMachine(s, Tell[float64]{C: cs["c4"], Next: Nask[float64]{C: cs["c4"], Next: Success[float64]{}}})
	if status, _ := m2.Run(10); status != Stuck {
		t.Fatalf("nask on entailed constraint should block, got %v", status)
	}
}

func TestSumCommitsToEnabledBranch(t *testing.T) {
	s, cs := negotiationSpace()
	// ask(c4) is disabled (not entailed), nask(c4) enabled: the sum
	// must commit to the nask branch regardless of seed.
	sum := MustSum[float64](
		Ask[float64]{C: cs["c4"], Next: Tell[float64]{C: cs["c3"], Next: Success[float64]{}}},
		Nask[float64]{C: cs["c4"], Next: Tell[float64]{C: cs["c1"], Next: Success[float64]{}}},
	)
	for seed := int64(1); seed <= 6; seed++ {
		m := NewMachine[float64](s, sum, WithSeed[float64](seed))
		if status, _ := m.Run(20); status != Succeeded {
			t.Fatalf("seed %d: %v", seed, status)
		}
		// The committed branch told c1 = x+3, so blevel is 3.
		if got := m.Store().Blevel(); got != 3 {
			t.Fatalf("seed %d: blevel = %v, want 3 (nask branch)", seed, got)
		}
	}
}

func TestSumRejectsUnguardedBranch(t *testing.T) {
	s, cs := negotiationSpace()
	_ = s
	if _, err := NewSum[float64](Tell[float64]{C: cs["c1"], Next: Success[float64]{}}); err == nil {
		t.Fatal("sum with tell branch must be rejected")
	}
	if _, err := NewSum[float64](); err == nil {
		t.Fatal("empty sum must be rejected")
	}
}

func TestSumFlattensNestedSums(t *testing.T) {
	s, cs := negotiationSpace()
	_ = s
	inner := MustSum[float64](Nask[float64]{C: cs["c4"], Next: Success[float64]{}})
	outer := MustSum[float64](inner, Ask[float64]{C: cs["c4"], Next: Success[float64]{}})
	if got := len(outer.Branches()); got != 2 {
		t.Fatalf("flattened branches = %d, want 2", got)
	}
}

func TestExistsOpensFreshVariable(t *testing.T) {
	s, _ := negotiationSpace()
	sr := semiring.Weighted{}
	before := s.NumVariables()
	agent := Exists[float64]{
		Prefix: "z",
		Domain: core.IntDomain(0, 4),
		Body: func(fresh core.Variable) Agent[float64] {
			c := core.NewConstraint(s, []core.Variable{fresh}, func(a core.Assignment) float64 {
				return a.Num(fresh) + 7
			})
			return Tell[float64]{C: c, Next: Success[float64]{}}
		},
	}
	m := NewMachine(s, agent)
	status, err := m.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v", status)
	}
	if s.NumVariables() != before+1 {
		t.Errorf("expected exactly one fresh variable, got %d new", s.NumVariables()-before)
	}
	if got := m.Store().Blevel(); got != 7 {
		t.Errorf("blevel = %v, want 7 (best z is 0)", got)
	}
	_ = sr
}

func TestProcedureCall(t *testing.T) {
	s, _ := negotiationSpace()
	defs := Defs[float64]{}
	defs.Declare("addcost", 1, func(args []core.Variable) Agent[float64] {
		v := args[0]
		c := core.NewConstraint(s, []core.Variable{v}, func(a core.Assignment) float64 {
			return 3 * a.Num(v)
		})
		return Tell[float64]{C: c, Next: Success[float64]{}}
	})
	m := NewMachine[float64](s, Call[float64]{Name: "addcost", Args: []core.Variable{"x"}},
		WithDefs[float64](defs))
	status, err := m.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v", status)
	}
	sx := core.ProjectTo(m.Store().Constraint(), "x")
	if got := sx.AtLabels("2"); got != 6 {
		t.Errorf("σ(x=2) = %v, want 6", got)
	}
}

func TestUndeclaredProcedureErrors(t *testing.T) {
	s, _ := negotiationSpace()
	m := NewMachine[float64](s, Call[float64]{Name: "nope"})
	if _, err := m.Run(10); err == nil {
		t.Fatal("expected error for undeclared procedure")
	}
}

func TestArityMismatchErrors(t *testing.T) {
	s, _ := negotiationSpace()
	defs := Defs[float64]{}
	defs.Declare("p", 2, func(args []core.Variable) Agent[float64] { return Success[float64]{} })
	m := NewMachine[float64](s, Call[float64]{Name: "p", Args: []core.Variable{"x"}},
		WithDefs[float64](defs))
	if _, err := m.Run(10); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestDivergingRecursionDetected(t *testing.T) {
	s, _ := negotiationSpace()
	defs := Defs[float64]{}
	defs.Declare("loop", 0, func([]core.Variable) Agent[float64] {
		return Call[float64]{Name: "loop"}
	})
	m := NewMachine[float64](s, Call[float64]{Name: "loop"}, WithDefs[float64](defs))
	if _, err := m.Run(10); err == nil {
		t.Fatal("expected divergence error")
	}
}

func TestRecursionWithProgressTerminates(t *testing.T) {
	// countdown(x): asks decreasing thresholds via store state — here
	// a simpler shape: tell a constraint then recurse a bounded number
	// of times driven by nask on an accumulating flag.
	s, cs := negotiationSpace()
	defs := Defs[float64]{}
	defs.Declare("once", 0, func([]core.Variable) Agent[float64] {
		return MustSum[float64](
			Nask[float64]{C: cs["sp1"], Next: Tell[float64]{C: cs["sp1"], Next: Call[float64]{Name: "once"}}},
			Ask[float64]{C: cs["sp1"], Next: Success[float64]{}},
		)
	})
	m := NewMachine[float64](s, Call[float64]{Name: "once"}, WithDefs[float64](defs))
	status, err := m.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v", status)
	}
}

func TestParallelInterleavingAllSeeds(t *testing.T) {
	// Two independent tells must both land regardless of scheduling.
	s, cs := negotiationSpace()
	for seed := int64(1); seed <= 10; seed++ {
		m := NewMachine(s, Par[float64](
			Tell[float64]{C: cs["c1"], Next: Success[float64]{}},
			Tell[float64]{C: cs["c2"], Next: Success[float64]{}},
		), WithSeed[float64](seed))
		status, err := m.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		if status != Succeeded {
			t.Fatalf("seed %d: %v", seed, status)
		}
		// σ = (x+3) ⊗ (y+1): blevel 4.
		if got := m.Store().Blevel(); got != 4 {
			t.Fatalf("seed %d: blevel = %v, want 4", seed, got)
		}
	}
}

func TestTraceRecordsRulesAndBlevels(t *testing.T) {
	s, cs := negotiationSpace()
	m := NewMachine(s, Tell[float64]{C: cs["c4"], Next: Retract[float64]{C: cs["c4"], Next: Success[float64]{}}})
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatal("run failed")
	}
	tr := m.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length = %d, want 2", len(tr))
	}
	if tr[0].Rule != "R1 Tell" || tr[1].Rule != "R7 Retract" {
		t.Errorf("rules = %q, %q", tr[0].Rule, tr[1].Rule)
	}
	if tr[0].Blevel != 5 || tr[1].Blevel != 0 {
		t.Errorf("blevels = %v, %v; want 5, 0", tr[0].Blevel, tr[1].Blevel)
	}
	if tr[0].Step != 1 || tr[1].Step != 2 {
		t.Errorf("steps = %d, %d", tr[0].Step, tr[1].Step)
	}
}

func TestRunOutOfFuel(t *testing.T) {
	s, cs := negotiationSpace()
	defs := Defs[float64]{}
	// tell/retract forever: real transitions each time, never success.
	defs.Declare("pingpong", 0, func([]core.Variable) Agent[float64] {
		return Tell[float64]{C: cs["c1"], Next: Retract[float64]{C: cs["c1"], Next: Call[float64]{Name: "pingpong"}}}
	})
	m := NewMachine[float64](s, Call[float64]{Name: "pingpong"}, WithDefs[float64](defs))
	status, err := m.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	if status != OutOfFuel {
		t.Fatalf("status = %v, want out-of-fuel", status)
	}
}

func TestBetweenPanicsOnInvertedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a1 > a2")
		}
	}()
	Between[float64](semiring.Weighted{}, 2, 10) // cost 2 is better than 10
}

func TestConstraintThresholds(t *testing.T) {
	// C4: constraint thresholds φ1 (not below) and φ2 (not above).
	s, cs := negotiationSpace()
	phi1 := cs["c3"] // 2x: lower bound constraint
	phi2 := core.Top(s)
	check := BetweenConstraints(phi1, phi2)
	// Empty store 1̄: not strictly below φ1? 1̄ ⊐ φ1 in fact, so the
	// lower test passes; upper: 1̄ ⊐ φ2 = 1̄ is false. Check holds.
	m := NewMachine(s, Ask[float64]{C: core.Top(s), Check: check, Next: Success[float64]{}})
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatalf("unrestricted-ish constraint check should pass, got %v", status)
	}
	// A store strictly below φ1 = 2x (e.g. 3x via c3 ⊗ c1-like) fails
	// the lower threshold.
	heavy := core.Combine(cs["c3"], cs["c4"]) // 3x+5 ⊏ 2x
	st := core.NewStore(s)
	st.Tell(heavy)
	m2 := NewMachine(s, Ask[float64]{C: heavy, Check: check, Next: Success[float64]{}},
		WithStore[float64](st))
	if status, _ := m2.Run(10); status != Stuck {
		t.Fatalf("store below φ1 must block, got %v", status)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Running: "running", Succeeded: "succeeded", Stuck: "stuck",
		OutOfFuel: "out-of-fuel", Status(9): "Status(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestAgentStrings(t *testing.T) {
	s, cs := negotiationSpace()
	_ = s
	agents := []Agent[float64]{
		Success[float64]{},
		Tell[float64]{C: cs["c1"], Next: Success[float64]{}},
		Ask[float64]{C: cs["c1"], Next: Success[float64]{}},
		Nask[float64]{C: cs["c1"], Next: Success[float64]{}},
		Retract[float64]{C: cs["c1"], Next: Success[float64]{}},
		Update[float64]{Vars: []core.Variable{"x"}, C: cs["c2"], Next: Success[float64]{}},
		Par[float64](Success[float64]{}, Success[float64]{}),
		MustSum[float64](Ask[float64]{C: cs["c1"], Next: Success[float64]{}}),
		Exists[float64]{Prefix: "z", Domain: core.IntDomain(0, 1), Body: func(core.Variable) Agent[float64] { return Success[float64]{} }},
		Call[float64]{Name: "p", Args: []core.Variable{"x"}},
	}
	for _, a := range agents {
		if a.String() == "" {
			t.Errorf("%T has empty String()", a)
		}
	}
}
