package sccp

import (
	"strings"
	"testing"
)

// roundTripSources are programs whose formatted form must parse back
// and behave identically.
var roundTripSources = []string{
	example1Src,
	example2Src,
	example3Src,
	`
semiring fuzzy.
var x in 1..9.
main :: tell((x - 1) / 8) -> tell((9 - x) / 8) -> success.
`,
	`
semiring weighted.
var x in 0..5.
var flag in 0..1.
main :: ( ask(flag == 1) -> tell(x + 1) -> success
        + nask(flag == 1) -> tell(x + 2) -> success ).
`,
	`
semiring weighted.
var x in 0..5.
main :: exists z in 0..3 ( tell(z + x) -> success ).
`,
	`
semiring weighted.
var x in 0..3.
main :: tell(5 * (x >= 2) + 1) -> success.
`,
	`
semiring weighted.
var f in 0..1.
main :: timeout 4 ( ask(f == 1) -> success ) else ( tell(f == 1) -> success ).
`,
	`
semiring probabilistic.
var x in 0..4.
cost(v) :: tell((80 + 5 * v) / 100) -> success.
main :: cost(x) || tell(0.9) -> success.
`,
	`
semiring weighted.
var x in 0..3.
main :: tell(x + 3) -> update{x}(x * 2)->[10,_] success.
`,
}

// TestFormatRoundTrip checks Format∘Parse is semantics-preserving:
// the formatted program parses, and both versions run to the same
// status and final consistency level.
func TestFormatRoundTrip(t *testing.T) {
	for i, src := range roundTripSources {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: parse original: %v", i, err)
		}
		formatted := Format(prog)
		prog2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("case %d: parse formatted: %v\n--- formatted ---\n%s", i, err, formatted)
		}

		c1, err := Compile(prog)
		if err != nil {
			t.Fatalf("case %d: compile original: %v", i, err)
		}
		c2, err := Compile(prog2)
		if err != nil {
			t.Fatalf("case %d: compile formatted: %v\n%s", i, err, formatted)
		}
		m1 := c1.NewMachine()
		m2 := c2.NewMachine()
		s1, err1 := m1.Run(300)
		s2, err2 := m2.Run(300)
		if err1 != nil || err2 != nil {
			t.Fatalf("case %d: run errors: %v / %v", i, err1, err2)
		}
		if s1 != s2 {
			t.Errorf("case %d: status %v != %v after formatting\n%s", i, s1, s2, formatted)
		}
		b1 := c1.Semiring.Format(m1.Store().Blevel())
		b2 := c2.Semiring.Format(m2.Store().Blevel())
		if b1 != b2 {
			t.Errorf("case %d: blevel %s != %s after formatting\n%s", i, b1, b2, formatted)
		}
	}
}

// TestFormatIsIdempotent: formatting a formatted program is a fixed
// point.
func TestFormatIsIdempotent(t *testing.T) {
	for i, src := range roundTripSources {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		once := Format(prog)
		prog2, err := Parse(once)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		twice := Format(prog2)
		if once != twice {
			t.Errorf("case %d: Format not idempotent:\n--- once ---\n%s\n--- twice ---\n%s",
				i, once, twice)
		}
	}
}

func TestFormatShapes(t *testing.T) {
	prog, err := Parse(`
semiring weighted.
var x in 0..3.
p(v) :: tell(v)->[inf,_] success.
main :: p(x) || tell(x) -> ( ask(x >= 0) -> success + nask(x >= 0) -> success ).
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(prog)
	for _, want := range []string{
		"semiring weighted.",
		"var x in 0..3.",
		"p(v) :: tell(v) ->[inf,_] success.",
		"main :: p(x) || tell(x) -> ( ask((x >= 0)) -> success + nask((x >= 0)) -> success ).",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}
