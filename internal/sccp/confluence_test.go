package sccp

import (
	"math/rand"
	"testing"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// TestMonotoneFragmentIsConfluent: programs built from tell and ask
// only (the classical ccp fragment — no retract/update/nask) are
// confluent: the final store is the same under every interleaving, so
// sweeping scheduler seeds must not change the outcome. This is the
// semantic property that makes the monotone fragment declarative; the
// nonmonotonic operators deliberately give it up.
func TestMonotoneFragmentIsConfluent(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		s := core.NewSpace[float64](semiring.Weighted{})
		vars := make([]core.Variable, 3)
		for i := range vars {
			vars[i] = s.AddVariable(core.Variable(string(rune('a'+i))), core.IntDomain(0, 4))
		}
		mk := func() *core.Constraint[float64] {
			v := vars[rng.Intn(len(vars))]
			m := float64(rng.Intn(3))
			b := float64(rng.Intn(5))
			return core.NewConstraint(s, []core.Variable{v}, func(a core.Assignment) float64 {
				return m*a.Num(v) + b
			})
		}
		// Three parallel branches of tell;ask;tell chains. The asks
		// wait on constraints told by other branches, exercising real
		// synchronisation.
		t1 := mk()
		t2 := mk()
		t3 := mk()
		branch := func(first, wait, second *core.Constraint[float64]) Agent[float64] {
			return Tell[float64]{C: first, Next: Ask[float64]{C: wait, Next: Tell[float64]{
				C: second, Next: Success[float64]{},
			}}}
		}
		root := Par[float64](
			branch(t1, t1, mk()),
			branch(t2, t1, mk()),
			branch(t3, t2, mk()),
		)

		var reference *core.Constraint[float64]
		for seed := int64(1); seed <= 10; seed++ {
			m := NewMachine(s, root, WithSeed[float64](seed))
			status, err := m.Run(200)
			if err != nil {
				t.Fatal(err)
			}
			if status != Succeeded {
				t.Fatalf("trial %d seed %d: %v", trial, seed, status)
			}
			if reference == nil {
				reference = m.Store().Constraint()
				continue
			}
			if !core.Eq(reference, m.Store().Constraint()) {
				t.Fatalf("trial %d: monotone program diverged across schedules at seed %d",
					trial, seed)
			}
		}
	}
}

// TestNonmonotonicScheduleSensitivity documents the contrast: with
// retract in play, different interleavings CAN observe different
// stores mid-run, but a program whose final actions commute still
// converges. Here a retract races an ask; both schedules must still
// terminate successfully (no deadlock from the race).
func TestNonmonotonicScheduleTermination(t *testing.T) {
	s := core.NewSpace[float64](semiring.Weighted{})
	x := s.AddVariable("x", core.IntDomain(0, 5))
	c := core.NewConstraint(s, []core.Variable{x}, func(a core.Assignment) float64 {
		return a.Num(x) + 1
	})
	root := Par[float64](
		Tell[float64]{C: c, Next: Retract[float64]{C: c, Next: Success[float64]{}}},
		Tell[float64]{C: c, Next: Success[float64]{}},
	)
	for seed := int64(1); seed <= 12; seed++ {
		m := NewMachine(s, root, WithSeed[float64](seed))
		status, err := m.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		if status != Succeeded {
			t.Fatalf("seed %d: %v", seed, status)
		}
		// Net effect: two tells, one retract — exactly one c left.
		if !core.Eq(m.Store().Constraint(), c) {
			t.Fatalf("seed %d: unexpected final store", seed)
		}
	}
}
