package sccp

import (
	"errors"
	"fmt"
	"math/rand"

	"softsoa/internal/core"
	"softsoa/internal/obs/journal"
)

// Status is the outcome of running a machine.
type Status int

const (
	// Running means the configuration can still evolve.
	Running Status = iota
	// Succeeded means the agent reduced to success.
	Succeeded
	// Stuck means no transition rule applies but the agent is not
	// success: a deadlock (e.g. an ask whose check can never hold).
	Stuck
	// OutOfFuel means the step budget was exhausted.
	OutOfFuel
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Stuck:
		return "stuck"
	case OutOfFuel:
		return "out-of-fuel"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Event records one applied transition.
type Event[T any] struct {
	// Step is the 1-based index of the transition.
	Step int
	// Rule names the applied rule (R1 Tell … R10 P-call).
	Rule string
	// Agent describes the acting sub-agent.
	Agent string
	// Blevel is σ⇓∅ after the transition.
	Blevel T
	// Cut marks a transition that committed a nondeterministic sum:
	// rule R5 discarded the remaining branches.
	Cut bool
}

// DefaultTraceCapacity bounds the machine's transition trace: the
// trace is a ring that keeps the most recent transitions and counts
// the overwritten ones (TraceDropped). WithTraceCapacity resizes it;
// WithUnboundedTrace restores the grow-forever behaviour for callers
// that replay or assert on complete histories.
const DefaultTraceCapacity = 4096

// maxExpansion bounds administrative expansions (procedure calls and
// quantifier openings) within a single step, catching diverging
// recursion like p() :: p().
const maxExpansion = 512

// ErrDiverging is returned when procedure expansion exceeds the
// administrative budget within one step.
var ErrDiverging = errors.New("sccp: procedure expansion diverges")

// Machine executes a configuration ⟨A, σ⟩ by the transition system of
// Fig. 4. Scheduling is an interleaving of enabled actions chosen by
// a seeded RNG, so runs are reproducible; different seeds explore
// different interleavings and nondeterministic (sum) commitments.
type Machine[T any] struct {
	space *core.Space[T]
	store *core.Store[T]
	defs  Defs[T]
	rng   *rand.Rand
	root  Agent[T]

	// trace is a ring of the most recent transitions: traceCap is its
	// capacity (0 = unbounded), head the next overwrite position once
	// full, dropped the number of overwritten events.
	trace    []Event[T]
	traceCap int
	head     int
	dropped  int64
	steps    int

	// rec, when set, receives one TransitionRecord per applied
	// transition, flushed at the end of Step so administrative
	// via-suffixes (R9/R10/Timeout) are already folded into the rule
	// name. lastC/lastCheck stage the acting constraint and threshold
	// between record and flush; prevBlevel is σ⇓∅ before the pending
	// transition.
	rec        journal.Recorder
	prevBlevel T
	lastC      *core.Constraint[T]
	lastCheck  Check[T]
}

// MachineOption configures a Machine.
type MachineOption[T any] func(*Machine[T])

// WithDefs supplies procedure declarations (class F).
func WithDefs[T any](d Defs[T]) MachineOption[T] {
	return func(m *Machine[T]) { m.defs = d }
}

// WithSeed seeds the interleaving scheduler (default 1).
func WithSeed[T any](seed int64) MachineOption[T] {
	return func(m *Machine[T]) { m.rng = rand.New(rand.NewSource(seed)) }
}

// WithStore starts execution from an existing store instead of the
// empty store 1̄.
func WithStore[T any](st *core.Store[T]) MachineOption[T] {
	return func(m *Machine[T]) { m.store = st }
}

// WithTraceCapacity bounds the transition trace ring to the n most
// recent events (n < 1 is clamped to 1). The default is
// DefaultTraceCapacity; overwritten events are counted by
// TraceDropped.
func WithTraceCapacity[T any](n int) MachineOption[T] {
	return func(m *Machine[T]) {
		if n < 1 {
			n = 1
		}
		m.traceCap = n
	}
}

// WithUnboundedTrace lets the trace grow without bound — the
// pre-ring behaviour. Only use it for bounded runs whose complete
// history is asserted on or replayed; a long-lived machine with an
// unbounded trace is a memory leak.
func WithUnboundedTrace[T any]() MachineOption[T] {
	return func(m *Machine[T]) { m.traceCap = 0 }
}

// WithRecorder streams every applied transition into rec as a
// journal.TransitionRecord: rule name (with via-suffixes), acting
// agent, the told/retracted constraint in canonical form, the
// threshold annotation, and σ⇓∅ before/after. With a nil recorder
// the machine formats nothing.
func WithRecorder[T any](rec journal.Recorder) MachineOption[T] {
	return func(m *Machine[T]) { m.rec = rec }
}

// NewMachine returns a machine for the initial configuration
// ⟨root, 1̄⟩ over the given space.
func NewMachine[T any](space *core.Space[T], root Agent[T], opts ...MachineOption[T]) *Machine[T] {
	m := &Machine[T]{
		space:    space,
		store:    core.NewStore(space),
		defs:     Defs[T]{},
		rng:      rand.New(rand.NewSource(1)),
		root:     root,
		traceCap: DefaultTraceCapacity,
	}
	for _, o := range opts {
		o(m)
	}
	if m.rec != nil {
		// Baseline for the first record's BlevelBefore; with WithStore
		// the machine may start from a non-trivial σ.
		m.prevBlevel = m.store.Blevel()
	}
	return m
}

// Store returns the machine's store.
func (m *Machine[T]) Store() *core.Store[T] { return m.store }

// Agent returns the current agent.
func (m *Machine[T]) Agent() Agent[T] { return m.root }

// Trace returns the retained transitions, oldest first. Under the
// default bounded ring this is the most recent DefaultTraceCapacity
// transitions; Steps counts all of them and TraceDropped the
// overwritten ones.
func (m *Machine[T]) Trace() []Event[T] {
	out := make([]Event[T], 0, len(m.trace))
	if m.traceCap > 0 && len(m.trace) == m.traceCap {
		out = append(out, m.trace[m.head:]...)
		out = append(out, m.trace[:m.head]...)
		return out
	}
	return append(out, m.trace...)
}

// Steps returns the number of transitions applied so far, counting
// those the bounded trace ring has already dropped.
func (m *Machine[T]) Steps() int { return m.steps }

// TraceDropped returns how many transitions the bounded trace ring
// overwrote.
func (m *Machine[T]) TraceDropped() int64 { return m.dropped }

// Status reports the current status without stepping.
func (m *Machine[T]) Status() Status {
	if _, ok := m.root.(Success[T]); ok {
		return Succeeded
	}
	return Running
}

// Step attempts one transition anywhere in the agent tree. It reports
// whether a transition was applied; administrative rewrites (opening
// a quantifier, expanding a call) may change the agent without
// counting as a transition.
func (m *Machine[T]) Step() (bool, error) {
	next, applied, err := m.step(m.root, 0)
	if err != nil {
		return false, err
	}
	m.root = next
	if applied {
		m.flush()
	}
	return applied, nil
}

// Run steps the machine until success, deadlock, or fuel exhaustion.
func (m *Machine[T]) Run(fuel int) (Status, error) {
	for i := 0; i < fuel; i++ {
		if _, ok := m.root.(Success[T]); ok {
			return Succeeded, nil
		}
		applied, err := m.step1()
		if err != nil {
			return Stuck, err
		}
		if !applied {
			if _, ok := m.root.(Success[T]); ok {
				return Succeeded, nil
			}
			return Stuck, nil
		}
	}
	if _, ok := m.root.(Success[T]); ok {
		return Succeeded, nil
	}
	return OutOfFuel, nil
}

// step1 applies one transition, allowing a bounded number of purely
// administrative rewrites in between.
func (m *Machine[T]) step1() (bool, error) {
	for i := 0; i < maxExpansion; i++ {
		before := m.root
		applied, err := m.Step()
		if err != nil {
			return false, err
		}
		if applied {
			return true, nil
		}
		if agentEq[T](before, m.root) {
			return false, nil
		}
	}
	return false, ErrDiverging
}

// agentEq is a cheap identity check used to detect administrative
// progress; it compares the trees' printed forms.
func agentEq[T any](a, b Agent[T]) bool { return a.String() == b.String() }

func (m *Machine[T]) record(rule string, ag Agent[T], c *core.Constraint[T], check Check[T]) {
	m.steps++
	ev := Event[T]{
		Step:   m.steps,
		Rule:   rule,
		Agent:  ag.String(),
		Blevel: m.store.Blevel(),
	}
	if m.traceCap > 0 && len(m.trace) == m.traceCap {
		m.trace[m.head] = ev
		m.head = (m.head + 1) % m.traceCap
		m.dropped++
	} else {
		m.trace = append(m.trace, ev)
	}
	m.lastC, m.lastCheck = c, check
}

// lastEvent returns the most recently recorded transition, which the
// administrative wrappers (R9/R10/Timeout) annotate in place.
func (m *Machine[T]) lastEvent() *Event[T] {
	if len(m.trace) == 0 {
		return nil
	}
	if m.traceCap > 0 && len(m.trace) == m.traceCap {
		return &m.trace[(m.head+m.traceCap-1)%m.traceCap]
	}
	return &m.trace[len(m.trace)-1]
}

// flush emits the pending transition to the recorder. It runs at the
// end of Step — after the administrative via-suffixes were applied —
// so the recorded rule name matches Trace exactly.
func (m *Machine[T]) flush() {
	ev := m.lastEvent()
	if ev == nil {
		return
	}
	if m.rec != nil {
		sr := m.space.Semiring()
		tr := journal.TransitionRecord{
			Step:         ev.Step,
			Rule:         ev.Rule,
			Agent:        ev.Agent,
			BlevelBefore: sr.Format(m.prevBlevel),
			BlevelAfter:  sr.Format(ev.Blevel),
			Consistent:   !sr.Eq(ev.Blevel, sr.Zero()),
			Cut:          ev.Cut,
		}
		if m.lastC != nil {
			tr.Delta = m.lastC.String()
		}
		if !m.lastCheck.unrestricted() {
			tr.Check = m.lastCheck.String()
		}
		m.rec.RecordTransition(tr)
		m.prevBlevel = ev.Blevel
	}
	m.lastC, m.lastCheck = nil, Check[T]{}
}

// step attempts to find and apply one enabled action in the subtree.
// It returns the (possibly rewritten) subtree and whether a real
// transition was applied.
func (m *Machine[T]) step(a Agent[T], depth int) (Agent[T], bool, error) {
	if depth > maxExpansion {
		return a, false, ErrDiverging
	}
	sr := m.space.Semiring()
	switch ag := a.(type) {
	case Success[T]:
		return a, false, nil

	case Tell[T]: // R1
		candidate := core.Combine(m.store.Constraint(), ag.C)
		if !ag.Check.Holds(sr, candidate) {
			return a, false, nil
		}
		m.store.Tell(ag.C)
		m.record("R1 Tell", ag, ag.C, ag.Check)
		return ag.Next, true, nil

	case Ask[T]: // R2
		if !m.store.Entails(ag.C) || !ag.Check.Holds(sr, m.store.Constraint()) {
			return a, false, nil
		}
		m.record("R2 Ask", ag, nil, ag.Check)
		return ag.Next, true, nil

	case Nask[T]: // R6
		if m.store.Entails(ag.C) || !ag.Check.Holds(sr, m.store.Constraint()) {
			return a, false, nil
		}
		m.record("R6 Nask", ag, nil, ag.Check)
		return ag.Next, true, nil

	case Retract[T]: // R7
		if !m.store.Entails(ag.C) {
			return a, false, nil
		}
		candidate := core.Divide(m.store.Constraint(), ag.C)
		if !ag.Check.Holds(sr, candidate) {
			return a, false, nil
		}
		if !m.store.Retract(ag.C) {
			return a, false, nil
		}
		m.record("R7 Retract", ag, ag.C, ag.Check)
		return ag.Next, true, nil

	case Update[T]: // R8
		candidate := core.Combine(core.ProjectOut(m.store.Constraint(), ag.Vars...), ag.C)
		if !ag.Check.Holds(sr, candidate) {
			return a, false, nil
		}
		m.store.Update(ag.Vars, ag.C)
		m.record("R8 Update", ag, ag.C, ag.Check)
		return ag.Next, true, nil

	case Parallel[T]: // R3/R4
		first, second := ag.Left, ag.Right
		swapped := m.rng.Intn(2) == 1
		if swapped {
			first, second = second, first
		}
		f2, applied, err := m.step(first, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied || !agentEq[T](first, f2) {
			return rebuildPar[T](f2, second, swapped), applied, nil
		}
		s2, applied, err := m.step(second, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied || !agentEq[T](second, s2) {
			return rebuildPar[T](f2, s2, swapped), applied, nil
		}
		return a, false, nil

	case Sum[T]: // R5
		for _, i := range m.rng.Perm(len(ag.branches)) {
			b2, applied, err := m.step(ag.branches[i], depth+1)
			if err != nil {
				return a, false, err
			}
			if applied {
				if len(ag.branches) > 1 {
					// The transition committed the sum: the other
					// branches are discarded (the "cut").
					m.lastEvent().Cut = true
				}
				return b2, true, nil
			}
		}
		return a, false, nil

	case Exists[T]: // R9 (administrative opening, then the body moves)
		fresh := m.space.FreshVariable(ag.Prefix, ag.Domain)
		body := ag.Body(fresh)
		next, applied, err := m.step(body, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied {
			m.lastEvent().Rule += " (via R9 Hide)"
		}
		return next, applied, nil

	case Timeout[T]: // timed extension: body, tick, or expiry
		return m.stepTimeout(ag, depth)

	case Call[T]: // R10 (administrative expansion, then the body moves)
		clause, ok := m.defs[ag.Name]
		if !ok {
			return a, false, fmt.Errorf("sccp: undeclared procedure %q", ag.Name)
		}
		if clause.Arity != len(ag.Args) {
			return a, false, fmt.Errorf("sccp: %s expects %d args, got %d",
				ag.Name, clause.Arity, len(ag.Args))
		}
		body := clause.Body(append([]core.Variable(nil), ag.Args...))
		next, applied, err := m.step(body, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied {
			m.lastEvent().Rule += " (via R10 P-call)"
		}
		return next, applied, nil

	default:
		return a, false, fmt.Errorf("sccp: unknown agent type %T", a)
	}
}

// rebuildPar reassembles a parallel composition after one branch was
// rewritten, applying R4: a succeeded branch disappears.
func rebuildPar[T any](stepped, other Agent[T], swapped bool) Agent[T] {
	if _, ok := stepped.(Success[T]); ok {
		return other
	}
	if _, ok := other.(Success[T]); ok {
		return stepped
	}
	if swapped {
		return Parallel[T]{Left: other, Right: stepped}
	}
	return Parallel[T]{Left: stepped, Right: other}
}
