package sccp

import (
	"errors"
	"fmt"
	"math/rand"

	"softsoa/internal/core"
)

// Status is the outcome of running a machine.
type Status int

const (
	// Running means the configuration can still evolve.
	Running Status = iota
	// Succeeded means the agent reduced to success.
	Succeeded
	// Stuck means no transition rule applies but the agent is not
	// success: a deadlock (e.g. an ask whose check can never hold).
	Stuck
	// OutOfFuel means the step budget was exhausted.
	OutOfFuel
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Stuck:
		return "stuck"
	case OutOfFuel:
		return "out-of-fuel"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Event records one applied transition.
type Event[T any] struct {
	// Step is the 1-based index of the transition.
	Step int
	// Rule names the applied rule (R1 Tell … R10 P-call).
	Rule string
	// Agent describes the acting sub-agent.
	Agent string
	// Blevel is σ⇓∅ after the transition.
	Blevel T
}

// maxExpansion bounds administrative expansions (procedure calls and
// quantifier openings) within a single step, catching diverging
// recursion like p() :: p().
const maxExpansion = 512

// ErrDiverging is returned when procedure expansion exceeds the
// administrative budget within one step.
var ErrDiverging = errors.New("sccp: procedure expansion diverges")

// Machine executes a configuration ⟨A, σ⟩ by the transition system of
// Fig. 4. Scheduling is an interleaving of enabled actions chosen by
// a seeded RNG, so runs are reproducible; different seeds explore
// different interleavings and nondeterministic (sum) commitments.
type Machine[T any] struct {
	space *core.Space[T]
	store *core.Store[T]
	defs  Defs[T]
	rng   *rand.Rand
	root  Agent[T]
	trace []Event[T]
	steps int
}

// MachineOption configures a Machine.
type MachineOption[T any] func(*Machine[T])

// WithDefs supplies procedure declarations (class F).
func WithDefs[T any](d Defs[T]) MachineOption[T] {
	return func(m *Machine[T]) { m.defs = d }
}

// WithSeed seeds the interleaving scheduler (default 1).
func WithSeed[T any](seed int64) MachineOption[T] {
	return func(m *Machine[T]) { m.rng = rand.New(rand.NewSource(seed)) }
}

// WithStore starts execution from an existing store instead of the
// empty store 1̄.
func WithStore[T any](st *core.Store[T]) MachineOption[T] {
	return func(m *Machine[T]) { m.store = st }
}

// NewMachine returns a machine for the initial configuration
// ⟨root, 1̄⟩ over the given space.
func NewMachine[T any](space *core.Space[T], root Agent[T], opts ...MachineOption[T]) *Machine[T] {
	m := &Machine[T]{
		space: space,
		store: core.NewStore(space),
		defs:  Defs[T]{},
		rng:   rand.New(rand.NewSource(1)),
		root:  root,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Store returns the machine's store.
func (m *Machine[T]) Store() *core.Store[T] { return m.store }

// Agent returns the current agent.
func (m *Machine[T]) Agent() Agent[T] { return m.root }

// Trace returns the applied transitions so far.
func (m *Machine[T]) Trace() []Event[T] { return append([]Event[T](nil), m.trace...) }

// Status reports the current status without stepping.
func (m *Machine[T]) Status() Status {
	if _, ok := m.root.(Success[T]); ok {
		return Succeeded
	}
	return Running
}

// Step attempts one transition anywhere in the agent tree. It reports
// whether a transition was applied; administrative rewrites (opening
// a quantifier, expanding a call) may change the agent without
// counting as a transition.
func (m *Machine[T]) Step() (bool, error) {
	next, applied, err := m.step(m.root, 0)
	if err != nil {
		return false, err
	}
	m.root = next
	return applied, nil
}

// Run steps the machine until success, deadlock, or fuel exhaustion.
func (m *Machine[T]) Run(fuel int) (Status, error) {
	for i := 0; i < fuel; i++ {
		if _, ok := m.root.(Success[T]); ok {
			return Succeeded, nil
		}
		applied, err := m.step1()
		if err != nil {
			return Stuck, err
		}
		if !applied {
			if _, ok := m.root.(Success[T]); ok {
				return Succeeded, nil
			}
			return Stuck, nil
		}
	}
	if _, ok := m.root.(Success[T]); ok {
		return Succeeded, nil
	}
	return OutOfFuel, nil
}

// step1 applies one transition, allowing a bounded number of purely
// administrative rewrites in between.
func (m *Machine[T]) step1() (bool, error) {
	for i := 0; i < maxExpansion; i++ {
		before := m.root
		applied, err := m.Step()
		if err != nil {
			return false, err
		}
		if applied {
			return true, nil
		}
		if agentEq[T](before, m.root) {
			return false, nil
		}
	}
	return false, ErrDiverging
}

// agentEq is a cheap identity check used to detect administrative
// progress; it compares the trees' printed forms.
func agentEq[T any](a, b Agent[T]) bool { return a.String() == b.String() }

func (m *Machine[T]) record(rule string, ag Agent[T]) {
	m.steps++
	m.trace = append(m.trace, Event[T]{
		Step:   m.steps,
		Rule:   rule,
		Agent:  ag.String(),
		Blevel: m.store.Blevel(),
	})
}

// step attempts to find and apply one enabled action in the subtree.
// It returns the (possibly rewritten) subtree and whether a real
// transition was applied.
func (m *Machine[T]) step(a Agent[T], depth int) (Agent[T], bool, error) {
	if depth > maxExpansion {
		return a, false, ErrDiverging
	}
	sr := m.space.Semiring()
	switch ag := a.(type) {
	case Success[T]:
		return a, false, nil

	case Tell[T]: // R1
		candidate := core.Combine(m.store.Constraint(), ag.C)
		if !ag.Check.Holds(sr, candidate) {
			return a, false, nil
		}
		m.store.Tell(ag.C)
		m.record("R1 Tell", ag)
		return ag.Next, true, nil

	case Ask[T]: // R2
		if !m.store.Entails(ag.C) || !ag.Check.Holds(sr, m.store.Constraint()) {
			return a, false, nil
		}
		m.record("R2 Ask", ag)
		return ag.Next, true, nil

	case Nask[T]: // R6
		if m.store.Entails(ag.C) || !ag.Check.Holds(sr, m.store.Constraint()) {
			return a, false, nil
		}
		m.record("R6 Nask", ag)
		return ag.Next, true, nil

	case Retract[T]: // R7
		if !m.store.Entails(ag.C) {
			return a, false, nil
		}
		candidate := core.Divide(m.store.Constraint(), ag.C)
		if !ag.Check.Holds(sr, candidate) {
			return a, false, nil
		}
		if !m.store.Retract(ag.C) {
			return a, false, nil
		}
		m.record("R7 Retract", ag)
		return ag.Next, true, nil

	case Update[T]: // R8
		candidate := core.Combine(core.ProjectOut(m.store.Constraint(), ag.Vars...), ag.C)
		if !ag.Check.Holds(sr, candidate) {
			return a, false, nil
		}
		m.store.Update(ag.Vars, ag.C)
		m.record("R8 Update", ag)
		return ag.Next, true, nil

	case Parallel[T]: // R3/R4
		first, second := ag.Left, ag.Right
		swapped := m.rng.Intn(2) == 1
		if swapped {
			first, second = second, first
		}
		f2, applied, err := m.step(first, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied || !agentEq[T](first, f2) {
			return rebuildPar[T](f2, second, swapped), applied, nil
		}
		s2, applied, err := m.step(second, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied || !agentEq[T](second, s2) {
			return rebuildPar[T](f2, s2, swapped), applied, nil
		}
		return a, false, nil

	case Sum[T]: // R5
		for _, i := range m.rng.Perm(len(ag.branches)) {
			b2, applied, err := m.step(ag.branches[i], depth+1)
			if err != nil {
				return a, false, err
			}
			if applied {
				return b2, true, nil
			}
		}
		return a, false, nil

	case Exists[T]: // R9 (administrative opening, then the body moves)
		fresh := m.space.FreshVariable(ag.Prefix, ag.Domain)
		body := ag.Body(fresh)
		next, applied, err := m.step(body, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied {
			m.trace[len(m.trace)-1].Rule += " (via R9 Hide)"
		}
		return next, applied, nil

	case Timeout[T]: // timed extension: body, tick, or expiry
		return m.stepTimeout(ag, depth)

	case Call[T]: // R10 (administrative expansion, then the body moves)
		clause, ok := m.defs[ag.Name]
		if !ok {
			return a, false, fmt.Errorf("sccp: undeclared procedure %q", ag.Name)
		}
		if clause.Arity != len(ag.Args) {
			return a, false, fmt.Errorf("sccp: %s expects %d args, got %d",
				ag.Name, clause.Arity, len(ag.Args))
		}
		body := clause.Body(append([]core.Variable(nil), ag.Args...))
		next, applied, err := m.step(body, depth+1)
		if err != nil {
			return a, false, err
		}
		if applied {
			m.trace[len(m.trace)-1].Rule += " (via R10 P-call)"
		}
		return next, applied, nil

	default:
		return a, false, fmt.Errorf("sccp: unknown agent type %T", a)
	}
}

// rebuildPar reassembles a parallel composition after one branch was
// rewritten, applying R4: a succeeded branch disappears.
func rebuildPar[T any](stepped, other Agent[T], swapped bool) Agent[T] {
	if _, ok := stepped.(Success[T]); ok {
		return other
	}
	if _, ok := other.(Success[T]); ok {
		return stepped
	}
	if swapped {
		return Parallel[T]{Left: other, Right: stepped}
	}
	return Parallel[T]{Left: stepped, Right: other}
}
