package sccp

import (
	"fmt"
	"strings"

	"softsoa/internal/core"
)

// Agent is an nmsccp agent (class A of the Fig. 2 syntax). Agents are
// immutable trees; a Machine rewrites configurations ⟨A, σ⟩ step by
// step.
type Agent[T any] interface {
	fmt.Stringer
	isAgent()
}

// Success is the terminal agent.
type Success[T any] struct{}

func (Success[T]) isAgent()       {}
func (Success[T]) String() string { return "success" }

// Tell adds constraint C to the store under the checked transition:
// ⟨tell(c)→A, σ⟩ ⟶ ⟨A, σ⊗c⟩ when check(σ⊗c) holds (rule R1).
type Tell[T any] struct {
	C     *core.Constraint[T]
	Check Check[T]
	Next  Agent[T]
}

func (Tell[T]) isAgent() {}
func (a Tell[T]) String() string {
	return fmt.Sprintf("tell(c)%s %s", a.Check, a.Next)
}

// Ask proceeds when the store entails C and the check holds on the
// current store (rule R2).
type Ask[T any] struct {
	C     *core.Constraint[T]
	Check Check[T]
	Next  Agent[T]
}

func (Ask[T]) isAgent() {}
func (a Ask[T]) String() string {
	return fmt.Sprintf("ask(c)%s %s", a.Check, a.Next)
}

// Nask proceeds when the store does NOT entail C and the check holds:
// it infers the absence of a statement (rule R6).
type Nask[T any] struct {
	C     *core.Constraint[T]
	Check Check[T]
	Next  Agent[T]
}

func (Nask[T]) isAgent() {}
func (a Nask[T]) String() string {
	return fmt.Sprintf("nask(c)%s %s", a.Check, a.Next)
}

// Retract divides C out of the store: ⟨retract(c)→A, σ⟩ ⟶ ⟨A, σ÷c⟩
// when σ ⊑ c and check(σ÷c) holds (rule R7). Retraction is partial
// removal: C need not have been told verbatim.
type Retract[T any] struct {
	C     *core.Constraint[T]
	Check Check[T]
	Next  Agent[T]
}

func (Retract[T]) isAgent() {}
func (a Retract[T]) String() string {
	return fmt.Sprintf("retract(c)%s %s", a.Check, a.Next)
}

// Update implements update_X(c) (rule R8): transactionally removes
// the influence of all constraints over the variables in Vars by
// projecting the store onto V\X, then tells C — the soft analogue of
// imperative assignment.
type Update[T any] struct {
	Vars  []core.Variable
	C     *core.Constraint[T]
	Check Check[T]
	Next  Agent[T]
}

func (Update[T]) isAgent() {}
func (a Update[T]) String() string {
	names := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		names[i] = string(v)
	}
	return fmt.Sprintf("update{%s}(c)%s %s", strings.Join(names, ","), a.Check, a.Next)
}

// Parallel is A ‖ B: interleaved execution (rules R3/R4); it succeeds
// when both branches succeed.
type Parallel[T any] struct {
	Left, Right Agent[T]
}

func (Parallel[T]) isAgent() {}
func (a Parallel[T]) String() string {
	return fmt.Sprintf("(%s ‖ %s)", a.Left, a.Right)
}

// Par folds ‖ over the agents; Par() is success.
func Par[T any](agents ...Agent[T]) Agent[T] {
	if len(agents) == 0 {
		return Success[T]{}
	}
	acc := agents[len(agents)-1]
	for i := len(agents) - 2; i >= 0; i-- {
		acc = Parallel[T]{Left: agents[i], Right: acc}
	}
	return acc
}

// Sum is the guarded choice E + E (rule R5): each branch must be an
// Ask or Nask (class E of the syntax); the machine commits to one
// branch whose guard is enabled. Construction via NewSum validates
// the branches.
type Sum[T any] struct {
	branches []Agent[T]
}

// NewSum builds a guarded choice. Branches must be Ask, Nask or Sum
// (nested sums are flattened); anything else is rejected, as in the
// paper's grammar E ::= ask(c)→A | nask(c)→A | E+E.
func NewSum[T any](branches ...Agent[T]) (Sum[T], error) {
	var flat []Agent[T]
	for _, b := range branches {
		switch g := b.(type) {
		case Ask[T], Nask[T]:
			flat = append(flat, b)
		case Sum[T]:
			flat = append(flat, g.branches...)
		default:
			return Sum[T]{}, fmt.Errorf("sccp: sum branch %T is not ask/nask guarded", b)
		}
	}
	if len(flat) == 0 {
		return Sum[T]{}, fmt.Errorf("sccp: empty sum")
	}
	return Sum[T]{branches: flat}, nil
}

// MustSum is NewSum panicking on error; for literals in tests and
// examples.
func MustSum[T any](branches ...Agent[T]) Sum[T] {
	s, err := NewSum(branches...)
	if err != nil {
		panic(err)
	}
	return s
}

// Branches returns the guarded branches.
func (a Sum[T]) Branches() []Agent[T] { return append([]Agent[T](nil), a.branches...) }

func (Sum[T]) isAgent() {}
func (a Sum[T]) String() string {
	parts := make([]string, len(a.branches))
	for i, b := range a.branches {
		parts[i] = b.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// Exists is the hiding operator ∃x.A (rule R9). Body is a template
// instantiated with a fresh variable when the quantifier is opened,
// which realises the semantics "A[x/y] with y fresh" without term
// substitution.
type Exists[T any] struct {
	// Prefix names the bound variable; the fresh variable's name is
	// derived from it.
	Prefix core.Variable
	// Domain is the domain of the bound variable.
	Domain []core.DVal
	// Body builds the agent once the fresh variable is known.
	Body func(fresh core.Variable) Agent[T]
}

func (Exists[T]) isAgent() {}
func (a Exists[T]) String() string {
	return fmt.Sprintf("∃%s.(…)", a.Prefix)
}

// Call invokes a declared procedure p(Y) (rule R10). Args are the
// actual parameters, passed to the registered clause.
type Call[T any] struct {
	Name string
	Args []core.Variable
}

func (Call[T]) isAgent() {}
func (a Call[T]) String() string {
	names := make([]string, len(a.Args))
	for i, v := range a.Args {
		names[i] = string(v)
	}
	return fmt.Sprintf("%s(%s)", a.Name, strings.Join(names, ","))
}

// Clause is a procedure declaration p(Y) :: A. The body builder
// receives the actual parameters; formal-for-actual substitution is
// performed by construction. (The paper models parameter passing with
// diagonal constraints d_xy; building the body over the actuals is
// the standard executable realisation and is observationally
// equivalent for entailment — see core.Diagonal for the formal
// device.)
type Clause[T any] struct {
	Name  string
	Arity int
	Body  func(args []core.Variable) Agent[T]
}

// Defs is the class F: a set of procedure declarations indexed by
// name.
type Defs[T any] map[string]Clause[T]

// Declare registers a clause, replacing any previous declaration with
// the same name.
func (d Defs[T]) Declare(name string, arity int, body func(args []core.Variable) Agent[T]) {
	d[name] = Clause[T]{Name: name, Arity: arity, Body: body}
}
