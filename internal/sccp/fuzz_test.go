package sccp

import (
	"strings"
	"testing"
)

// FuzzParseAndCompile checks the nmsccp front end never panics and
// that accepted programs run without interpreter errors (other than
// controlled divergence detection). Run the corpus as a unit test or
// explore with `go test -fuzz=FuzzParseAndCompile ./internal/sccp`.
func FuzzParseAndCompile(f *testing.F) {
	seeds := []string{
		example1Src,
		example2Src,
		example3Src,
		"main :: success.",
		"semiring fuzzy.\nvar x in 1..9.\nmain :: tell((x - 1) / 8) -> success.",
		"var f in 0..1.\nmain :: timeout 3 ( ask(f == 1) -> success ) else ( success ).",
		"p(v) :: tell(3 * v) -> success.\nvar a in 0..4.\nmain :: p(a).",
		"var x in 0..2.\nmain :: exists z in 0..3 ( tell(z + x) -> success ).",
		"main :: tell(",
		"semiring weighted var x",
		"main :: ask(x < ) -> success.",
		"var x in 0..1.\nmain :: tell(x)->[2,10] success.",
		"# only a comment",
		"main :: (ask(1 == 1) -> success + nask(1 == 1) -> success).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Oversized inputs only slow the fuzzer down.
		if len(src) > 4096 {
			t.Skip()
		}
		compiled, err := ParseAndCompile(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Every accepted program must survive the formatter.
		if prog, perr := Parse(src); perr == nil {
			if _, rerr := Parse(Format(prog)); rerr != nil {
				t.Fatalf("formatted form rejected: %v\n%s", rerr, Format(prog))
			}
		}
		// Keep compiled spaces small enough to execute.
		if compiled.Space.NumVariables() > 6 {
			t.Skip()
		}
		size := 1
		for _, v := range compiled.Space.Variables() {
			size *= len(compiled.Space.Domain(v))
			if size > 1<<12 {
				t.Skip()
			}
		}
		m := compiled.NewMachine()
		if _, err := m.Run(64); err != nil &&
			!strings.Contains(err.Error(), "diverges") {
			t.Fatalf("machine error on accepted program %q: %v", src, err)
		}
	})
}
