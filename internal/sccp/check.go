// Package sccp implements nmsccp, the nonmonotonic soft concurrent
// constraint programming language of Bistarelli & Santini used to
// negotiate SLAs (Sec. 2.1 and 4 of the DSN 2008 paper). Agents
// tell/ask/retract/update soft constraints on a shared store under
// checked transitions whose thresholds bound how consistent the store
// must remain; the operational semantics follows Fig. 4 (rules
// R1–R10) with an interleaving, seeded-deterministic scheduler.
//
// The package also provides a surface syntax (lexer.go, parser.go)
// for writing nmsccp programs as text, used by cmd/nmsccp.
package sccp

import (
	"fmt"
	"strings"

	"softsoa/internal/core"
	"softsoa/internal/semiring"
)

// Check is a checked transition →ᵃ²ₐ₁: an interval of acceptable
// store consistency. Each bound is either absent, a semiring value
// (compared against σ⇓∅), or a constraint threshold (compared against
// σ in the ⊑ order), covering the four instances C1–C4 of Fig. 3.
// The zero value is the unrestricted transition (always true).
type Check[T any] struct {
	// LowerValue is a1: the store must not be strictly worse, i.e.
	// ¬(σ⇓∅ <S a1). "We need at least a solution as good as a1."
	LowerValue *T
	// UpperValue is a2: the store must not be strictly better, i.e.
	// ¬(σ⇓∅ >S a2). "None of the solutions is too good."
	UpperValue *T
	// LowerCon is φ1: the store must not be strictly below it,
	// ¬(σ ⊏ φ1).
	LowerCon *core.Constraint[T]
	// UpperCon is φ2: the store must not be strictly above it,
	// ¬(σ ⊐ φ2).
	UpperCon *core.Constraint[T]
}

// Unrestricted returns the transition with no threshold (interval
// [0, 1] in semiring terms): check always passes.
func Unrestricted[T any]() Check[T] { return Check[T]{} }

// Between returns the value-threshold transition →ᵃ²ₐ₁ (instance C1).
// It panics if a1 >S a2 — the paper's intrinsic-wrongness condition:
// the lower threshold cannot be better than the upper one.
func Between[T any](sr semiring.Semiring[T], a1, a2 T) Check[T] {
	if semiring.Gt(sr, a1, a2) {
		panic(fmt.Sprintf("sccp: lower threshold %s better than upper %s",
			sr.Format(a1), sr.Format(a2)))
	}
	return Check[T]{LowerValue: &a1, UpperValue: &a2}
}

// AtLeast returns the transition with only the lower value threshold
// a1: the store must stay at least a1-consistent.
func AtLeast[T any](a1 T) Check[T] { return Check[T]{LowerValue: &a1} }

// AtMost returns the transition with only the upper value threshold
// a2: the store must not become better than a2.
func AtMost[T any](a2 T) Check[T] { return Check[T]{UpperValue: &a2} }

// BetweenConstraints returns the constraint-threshold transition →ᵠ²ᵩ₁
// (instance C4). It panics if φ1 ⊐ φ2.
func BetweenConstraints[T any](phi1, phi2 *core.Constraint[T]) Check[T] {
	if core.Lt(phi2, phi1) {
		panic("sccp: lower constraint threshold strictly above upper")
	}
	return Check[T]{LowerCon: phi1, UpperCon: phi2}
}

// unrestricted reports whether the check carries no threshold at all
// (the zero value), so recorders can omit the annotation.
func (k Check[T]) unrestricted() bool {
	return k.LowerValue == nil && k.UpperValue == nil && k.LowerCon == nil && k.UpperCon == nil
}

// Holds evaluates the check function of Fig. 3 against a store
// constraint σ.
func (k Check[T]) Holds(sr semiring.Semiring[T], sigma *core.Constraint[T]) bool {
	if k.LowerValue != nil || k.UpperValue != nil {
		b := core.Blevel(sigma)
		if k.LowerValue != nil && semiring.Lt(sr, b, *k.LowerValue) {
			return false
		}
		if k.UpperValue != nil && semiring.Gt(sr, b, *k.UpperValue) {
			return false
		}
	}
	if k.LowerCon != nil && core.Lt(sigma, k.LowerCon) {
		return false
	}
	if k.UpperCon != nil && core.Lt(k.UpperCon, sigma) {
		return false
	}
	return true
}

// String renders the transition annotation.
func (k Check[T]) String() string {
	var parts []string
	if k.LowerValue != nil {
		parts = append(parts, fmt.Sprintf("a1=%v", *k.LowerValue))
	}
	if k.UpperValue != nil {
		parts = append(parts, fmt.Sprintf("a2=%v", *k.UpperValue))
	}
	if k.LowerCon != nil {
		parts = append(parts, "φ1")
	}
	if k.UpperCon != nil {
		parts = append(parts, "φ2")
	}
	if len(parts) == 0 {
		return "→"
	}
	return "→[" + strings.Join(parts, ",") + "]"
}
