package sccp

import (
	"testing"

	"softsoa/internal/obs/journal"
)

// tellRetractChain builds an agent performing n tell/retract pairs —
// 2n transitions — ending in success.
func tellRetractChain(n int) (Agent[float64], *Machine[float64], func(...MachineOption[float64]) *Machine[float64]) {
	s, cs := negotiationSpace()
	var a Agent[float64] = Success[float64]{}
	for i := 0; i < n; i++ {
		a = Tell[float64]{C: cs["c4"], Next: Retract[float64]{C: cs["c4"], Next: a}}
	}
	mk := func(opts ...MachineOption[float64]) *Machine[float64] {
		return NewMachine(s, a, opts...)
	}
	return a, mk(), mk
}

// TestTraceRingBoundsMemory: the bounded trace keeps only the most
// recent transitions, counts the overwritten ones, and Steps() keeps
// the true total.
func TestTraceRingBoundsMemory(t *testing.T) {
	_, _, mk := tellRetractChain(10)
	m := mk(WithTraceCapacity[float64](5))
	if status, err := m.Run(100); err != nil || status != Succeeded {
		t.Fatalf("run: %v %v", status, err)
	}
	if m.Steps() != 20 {
		t.Errorf("Steps() = %d, want 20", m.Steps())
	}
	tr := m.Trace()
	if len(tr) != 5 {
		t.Fatalf("trace length = %d, want 5", len(tr))
	}
	if m.TraceDropped() != 15 {
		t.Errorf("TraceDropped() = %d, want 15", m.TraceDropped())
	}
	// Oldest first: the retained window is steps 16..20.
	for k, ev := range tr {
		if want := 16 + k; ev.Step != want {
			t.Errorf("trace[%d].Step = %d, want %d", k, ev.Step, want)
		}
	}
}

// TestTraceCapacityClamped: capacities below 1 clamp to a one-slot
// ring rather than panicking or growing unbounded.
func TestTraceCapacityClamped(t *testing.T) {
	_, _, mk := tellRetractChain(3)
	m := mk(WithTraceCapacity[float64](0))
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 1 || tr[0].Step != 6 {
		t.Fatalf("trace = %+v, want only step 6", tr)
	}
	if m.TraceDropped() != 5 {
		t.Errorf("TraceDropped() = %d, want 5", m.TraceDropped())
	}
}

// TestUnboundedTraceKeepsCompleteHistory: the opt-in restores the
// grow-forever trace used by history-asserting callers.
func TestUnboundedTraceKeepsCompleteHistory(t *testing.T) {
	_, _, mk := tellRetractChain(10)
	m := mk(WithUnboundedTrace[float64]())
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(m.Trace()) != 20 || m.TraceDropped() != 0 {
		t.Errorf("trace length = %d dropped = %d, want 20 / 0", len(m.Trace()), m.TraceDropped())
	}
}

// recSink collects transition records for assertions.
type recSink struct{ recs []journal.TransitionRecord }

func (r *recSink) RecordTransition(tr journal.TransitionRecord) { r.recs = append(r.recs, tr) }

// TestRecorderSeesEveryTransition: the recorder stream is complete
// even when the machine's own trace ring wraps — journalling does not
// depend on trace capacity.
func TestRecorderSeesEveryTransition(t *testing.T) {
	_, _, mk := tellRetractChain(10)
	sink := &recSink{}
	m := mk(WithTraceCapacity[float64](2), WithRecorder[float64](sink))
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) != 20 {
		t.Fatalf("recorder saw %d transitions, want 20", len(sink.recs))
	}
	if len(m.Trace()) != 2 || m.TraceDropped() != 18 {
		t.Errorf("trace length = %d dropped = %d, want 2 / 18", len(m.Trace()), m.TraceDropped())
	}
	for k, rec := range sink.recs {
		if rec.Step != k+1 {
			t.Fatalf("record %d has step %d, want %d", k, rec.Step, k+1)
		}
		want := "R1 Tell"
		if k%2 == 1 {
			want = "R7 Retract"
		}
		if rec.Rule != want {
			t.Errorf("record %d rule = %q, want %q", k, rec.Rule, want)
		}
	}
	// BlevelBefore of each record equals BlevelAfter of the previous.
	for k := 1; k < len(sink.recs); k++ {
		if sink.recs[k].BlevelBefore != sink.recs[k-1].BlevelAfter {
			t.Errorf("record %d blevel_before %q != previous blevel_after %q",
				k, sink.recs[k].BlevelBefore, sink.recs[k-1].BlevelAfter)
		}
	}
}
