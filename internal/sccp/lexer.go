package sccp

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens of the nmsccp surface syntax.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen   // (
	tokRParen   // )
	tokLBrace   // {
	tokRBrace   // }
	tokLBracket // [
	tokRBracket // ]
	tokComma    // ,
	tokDot      // .
	tokDotDot   // ..
	tokArrow    // ->
	tokPar      // ||
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokSlash    // /
	tokLe       // <=
	tokLt       // <
	tokGe       // >=
	tokGt       // >
	tokEq       // ==
	tokNe       // !=
	tokDefine   // ::
	tokUnder    // _
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tokEOF: "end of input", tokIdent: "identifier", tokNumber: "number",
		tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
		tokLBracket: "'['", tokRBracket: "']'", tokComma: "','", tokDot: "'.'",
		tokDotDot: "'..'", tokArrow: "'->'", tokPar: "'||'", tokPlus: "'+'",
		tokMinus: "'-'", tokStar: "'*'", tokSlash: "'/'", tokLe: "'<='",
		tokLt: "'<'", tokGe: "'>='", tokGt: "'>'", tokEq: "'=='", tokNe: "'!='",
		tokDefine: "'::'", tokUnder: "'_'",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("tokKind(%d)", int(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	num  float64
	line int
	col  int
}

// lexError reports a lexical error with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.line, e.col, e.msg)
}

// lex tokenises an nmsccp source text. Comments run from '#' or '//'
// to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	emit := func(kind tokKind, text string, num float64) {
		toks = append(toks, token{kind: kind, text: text, num: num, line: line, col: col})
	}
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)):
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			emit(tokIdent, src[i:j], 0)
			advance(j - i)
		case unicode.IsDigit(rune(c)):
			j := i
			for j < n && unicode.IsDigit(rune(src[j])) {
				j++
			}
			// A fractional part, but not the start of a '..' range.
			if j < n && src[j] == '.' && j+1 < n && unicode.IsDigit(rune(src[j+1])) {
				j++
				for j < n && unicode.IsDigit(rune(src[j])) {
					j++
				}
			}
			text := src[i:j]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, &lexError{line, col, fmt.Sprintf("bad number %q", text)}
			}
			emit(tokNumber, text, v)
			advance(j - i)
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch {
			case two == "->":
				emit(tokArrow, two, 0)
				advance(2)
			case two == "||":
				emit(tokPar, two, 0)
				advance(2)
			case two == "..":
				emit(tokDotDot, two, 0)
				advance(2)
			case two == "<=":
				emit(tokLe, two, 0)
				advance(2)
			case two == ">=":
				emit(tokGe, two, 0)
				advance(2)
			case two == "==":
				emit(tokEq, two, 0)
				advance(2)
			case two == "!=":
				emit(tokNe, two, 0)
				advance(2)
			case two == "::":
				emit(tokDefine, two, 0)
				advance(2)
			default:
				kinds := map[byte]tokKind{
					'(': tokLParen, ')': tokRParen, '{': tokLBrace, '}': tokRBrace,
					'[': tokLBracket, ']': tokRBracket, ',': tokComma, '.': tokDot,
					'+': tokPlus, '-': tokMinus, '*': tokStar, '/': tokSlash,
					'<': tokLt, '>': tokGt, '_': tokUnder,
				}
				k, ok := kinds[c]
				if !ok {
					return nil, &lexError{line, col, fmt.Sprintf("unexpected character %q", string(c))}
				}
				emit(k, string(c), 0)
				advance(1)
			}
		}
	}
	emit(tokEOF, "", 0)
	return toks, nil
}

// isKeyword reports whether an identifier is reserved.
func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "semiring", "var", "in", "success", "tell", "ask", "nask",
		"retract", "update", "exists", "main", "inf", "timeout", "else":
		return true
	}
	return false
}
