package sccp

import (
	"fmt"
	"strings"
)

// Format renders a parsed program back into canonical surface syntax.
// The output parses to a semantically identical program (checked by
// the round-trip tests), so Format∘Parse is a formatter for nmsccp
// sources: declarations first, one clause per line, normalised
// spacing and explicit parentheses around composite continuations.
func Format(prog *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "semiring %s.\n", prog.SemiringName)
	if len(prog.Vars) > 0 {
		b.WriteString("\n")
	}
	for _, v := range prog.Vars {
		fmt.Fprintf(&b, "var %s in %d..%d.\n", v.Name, v.Lo, v.Hi)
	}
	if len(prog.Clauses) > 0 {
		b.WriteString("\n")
	}
	for _, cl := range prog.Clauses {
		fmt.Fprintf(&b, "%s(%s) :: %s.\n", cl.Name, strings.Join(cl.Params, ", "),
			formatAgent(cl.Body))
	}
	fmt.Fprintf(&b, "\nmain :: %s.\n", formatAgent(prog.Main))
	return b.String()
}

// formatAgent renders an agent with minimal but unambiguous
// parenthesisation: '||' binds loosest, '+' tighter, prefixes
// tightest (matching the parser's grammar).
func formatAgent(a AstAgent) string {
	switch ag := a.(type) {
	case aSuccess:
		return "success"
	case aAction:
		head := ag.Kind
		if ag.Kind == "update" {
			head = fmt.Sprintf("update{%s}", strings.Join(ag.UpdateVars, ", "))
		}
		arrow := "->"
		if ag.Lower != "" || ag.Upper != "" {
			arrow = fmt.Sprintf("->[%s,%s]", orUnder(ag.Lower), orUnder(ag.Upper))
		}
		return fmt.Sprintf("%s(%s) %s %s",
			head, formatExpr(ag.Expr), arrow, formatPrefix(ag.Next))
	case aPar:
		return fmt.Sprintf("%s || %s", formatSumOperand(ag.Left), formatSumOperand(ag.Right))
	case aSum:
		parts := make([]string, len(ag.Branches))
		for i, br := range ag.Branches {
			parts[i] = formatAgent(br)
		}
		return strings.Join(parts, " + ")
	case aExists:
		return fmt.Sprintf("exists %s in %d..%d ( %s )", ag.Var, ag.Lo, ag.Hi, formatAgent(ag.Body))
	case aTimeout:
		return fmt.Sprintf("timeout %d ( %s ) else ( %s )",
			ag.Budget, formatAgent(ag.Body), formatAgent(ag.Else))
	case aCall:
		return fmt.Sprintf("%s(%s)", ag.Name, strings.Join(ag.Args, ", "))
	default:
		return fmt.Sprintf("/* unknown agent %T */ success", a)
	}
}

// formatPrefix renders an action continuation, parenthesising
// composites so the continuation stays a single prefix.
func formatPrefix(a AstAgent) string {
	switch a.(type) {
	case aPar, aSum:
		return "( " + formatAgent(a) + " )"
	default:
		return formatAgent(a)
	}
}

// formatSumOperand parenthesises sums under '||'.
func formatSumOperand(a AstAgent) string {
	if _, ok := a.(aSum); ok {
		return "( " + formatAgent(a) + " )"
	}
	return formatAgent(a)
}

func orUnder(s string) string {
	if s == "" {
		return "_"
	}
	return s
}

// formatExpr renders an expression with explicit parentheses around
// binary subterms, which is always re-parseable.
func formatExpr(e Expr) string {
	switch ex := e.(type) {
	case eNum:
		if ex.V == inf() {
			return "inf"
		}
		return trimFloat(ex.V)
	case eVar:
		return ex.Name
	case eBin:
		return fmt.Sprintf("(%s %s %s)", formatExpr(ex.L), ex.Op, formatExpr(ex.R))
	case eCmp:
		// Parenthesised so a comparison nested in arithmetic (where it
		// evaluates to 1/0) re-parses with the same shape.
		return fmt.Sprintf("(%s %s %s)", formatExpr(ex.L), ex.Op, formatExpr(ex.R))
	default:
		return "0"
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	// The lexer has no exponent syntax; fall back to plain decimals.
	if strings.ContainsAny(s, "eE") {
		s = fmt.Sprintf("%f", v)
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
	}
	return s
}
