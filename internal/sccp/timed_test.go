package sccp

import (
	"testing"
)

func TestTimeoutBodyActsImmediately(t *testing.T) {
	s, cs := negotiationSpace()
	agent := Timeout[float64]{
		Budget: 5,
		Body:   Tell[float64]{C: cs["c4"], Next: Success[float64]{}},
		Else:   Tell[float64]{C: cs["c3"], Next: Success[float64]{}},
	}
	m := NewMachine[float64](s, agent)
	status, err := m.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v", status)
	}
	// The body's c4 (blevel 5) landed, not the else-branch's c3.
	if got := m.Store().Blevel(); got != 5 {
		t.Fatalf("blevel = %v, want 5 (body branch)", got)
	}
}

func TestTimeoutExpiresToElse(t *testing.T) {
	s, cs := negotiationSpace()
	// The body asks for a token nobody ever raises; after 3 ticks the
	// else-branch runs.
	agent := Timeout[float64]{
		Budget: 3,
		Body:   Ask[float64]{C: cs["sp1"], Next: Success[float64]{}},
		Else:   Tell[float64]{C: cs["c3"], Next: Success[float64]{}},
	}
	m := NewMachine[float64](s, agent)
	status, err := m.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v", status)
	}
	if got := m.Store().Blevel(); got != 0 {
		t.Fatalf("blevel = %v, want 0 (c3 = 2x best at x=0)", got)
	}
	// Trace: 3 ticks then the else tell.
	ticks := 0
	for _, ev := range m.Trace() {
		if ev.Rule == "Tick Timeout" {
			ticks++
		}
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestTimeoutRacesParallelPartner(t *testing.T) {
	// A client waits (with deadline) for a provider token; the
	// provider raises it after one transition — in some interleaving
	// orders a tick passes first, but the body must win within budget.
	s, cs := negotiationSpace()
	client := Timeout[float64]{
		Budget: 10,
		Body:   Ask[float64]{C: cs["sp1"], Next: Tell[float64]{C: cs["c4"], Next: Success[float64]{}}},
		Else:   Success[float64]{},
	}
	provider := Tell[float64]{C: cs["sp1"], Next: Success[float64]{}}
	for seed := int64(1); seed <= 8; seed++ {
		m := NewMachine(s, Par[float64](client, provider), WithSeed[float64](seed))
		status, err := m.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		if status != Succeeded {
			t.Fatalf("seed %d: status = %v", seed, status)
		}
		if got := m.Store().Blevel(); got != 5 {
			t.Fatalf("seed %d: blevel = %v, want 5 (client told c4)", seed, got)
		}
	}
}

func TestTimeoutZeroBudgetIsElse(t *testing.T) {
	s, cs := negotiationSpace()
	agent := Timeout[float64]{
		Budget: 0,
		Body:   Tell[float64]{C: cs["c4"], Next: Success[float64]{}},
		Else:   Tell[float64]{C: cs["c1"], Next: Success[float64]{}},
	}
	m := NewMachine[float64](s, agent)
	if status, _ := m.Run(10); status != Succeeded {
		t.Fatal("expired timeout should run else")
	}
	if got := m.Store().Blevel(); got != 3 {
		t.Fatalf("blevel = %v, want 3 (c1 branch)", got)
	}
}

func TestTimeoutString(t *testing.T) {
	a := Timeout[float64]{Budget: 2, Body: Success[float64]{}, Else: Success[float64]{}}
	if got := a.String(); got != "timeout(2){success}else{success}" {
		t.Errorf("String = %q", got)
	}
}

// TestParseTimeoutProgram exercises the surface syntax: an Example-1
// style negotiation where the blocked client gives up at its deadline
// and settles for success without agreement, instead of deadlocking.
func TestParseTimeoutProgram(t *testing.T) {
	src := `
semiring weighted.
var x in 0..10.
var spv1 in 0..1.
var spv2 in 0..1.

p1() :: tell(x + 5) -> tell(spv2 == 1) -> ask(spv1 == 1)->[10,2] success.
p2() :: tell(2 * x) -> tell(spv1 == 1) ->
        timeout 4 ( ask(spv2 == 1)->[4,1] success ) else ( retract(2 * x) -> success ).

main :: p1() || p2().
`
	c, err := ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine()
	status, err := m.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if status != Succeeded {
		t.Fatalf("status = %v, want succeeded (deadline fires, p2 withdraws c3)", status)
	}
	// p2 retracted its 2x policy: the store is back to x+5, blevel 5.
	if got := m.Store().Blevel(); got != 5 {
		t.Fatalf("blevel = %v, want 5", got)
	}
}

func TestParseTimeoutErrors(t *testing.T) {
	cases := map[string]string{
		"zero budget": `
var x in 0..1.
main :: timeout 0 ( success ) else ( success ).`,
		"missing else": `
var x in 0..1.
main :: timeout 3 ( success ) ( success ).`,
		"undeclared var in else": `
var x in 0..1.
main :: timeout 3 ( success ) else ( tell(q) -> success ).`,
	}
	for name, src := range cases {
		if _, err := ParseAndCompile(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
